//! The MPI reference port of TPC with query aggregation.
//!
//! Every rank stores the replicated root block plus a contiguous range of
//! subtree blocks. Queries are partitioned over the ranks; each rank
//! traverses the root block for its queries, resolves crossings into
//! locally owned subtrees immediately, and **batches** all foreign
//! crossings into one all-to-all exchange — the optimization the paper
//! credits for MPI's superior TPC scaling ("the MPI version aggregates
//! multiple queries to reduce latency sensitivity and improve bandwidth
//! utilization").

use allscale_des::SimDuration;
use allscale_mpi::{run_spmd, RankCtx};
use allscale_net::ClusterSpec;
use allscale_region::TreePath;

use super::{dist2, gen_points, oracle, query_point, KdTree, TpcConfig, TpcResult};

/// The rank owning subtree block `i` (contiguous block distribution,
/// mirroring the AllScale version's hint-based placement).
pub fn owner_of(subtree: usize, nsub: usize, ranks: usize) -> usize {
    subtree * ranks / nsub
}

/// Run the MPI version on a fresh simulated cluster.
pub fn run(cfg: &TpcConfig) -> TpcResult {
    run_with(cfg, &ClusterSpec::meggie(cfg.nodes))
}

/// Run with a custom cluster spec.
pub fn run_with(cfg: &TpcConfig, spec: &ClusterSpec) -> TpcResult {
    let cfg = cfg.clone();
    let cfg_out = cfg.clone();
    let h = cfg.split_depth;
    let levels = cfg.levels;
    let nsub = 1usize << h;
    let q_total = cfg.total_queries();
    let radius = cfg.radius;
    let cores = spec.cores_per_node as f64;
    let ns_node = allscale_core::CostModel::default().ns_per_tree_node * cfg.work_scale;
    let points_n = cfg.total_points();

    let report = run_spmd(spec, move |ctx: &mut RankCtx<'_, (u64, u64)>| {
        let me = ctx.rank();
        let n = ctx.size();
        // Build the tree deterministically; in a real MPI code the build
        // is itself distributed — here it is outside the measured window,
        // matching the AllScale version's pre-built distribution phase.
        let tree = KdTree::build(&gen_points(points_n));
        ctx.barrier(); // measurement starts here
        let t0 = ctx.now();

        // My query share (contiguous).
        let q_lo = q_total * me as u64 / n as u64;
        let q_hi = q_total * (me + 1) as u64 / n as u64;

        let r2 = radius * radius;
        let mut local_count: u64 = 0;
        let mut visits: u64 = 0;
        // Crossings destined for each rank: (qid, subtree) pairs.
        let mut outbox: Vec<Vec<(u64, u32)>> = vec![Vec::new(); n];

        // A bounded traversal of one subtree (or the root block).
        let traverse_sub = |tree: &KdTree,
                                start: TreePath,
                                q: &[f64; 7],
                                visits: &mut u64|
         -> u64 {
            let mut count = 0;
            let mut stack = vec![start];
            while let Some(path) = stack.pop() {
                *visits += 1;
                let node = tree.node(&path);
                if dist2(&node.point, q) <= r2 {
                    count += 1;
                }
                if path.depth() + 1 >= levels {
                    continue;
                }
                let d = node.dim as usize;
                let diff = q[d] - node.point[d];
                if diff <= radius {
                    stack.push(path.left());
                }
                if diff >= -radius {
                    stack.push(path.right());
                }
            }
            count
        };

        let region = allscale_region::BitmaskTreeRegion::new(h);
        for qid in q_lo..q_hi {
            let q = query_point(qid);
            // Root-block traversal, collecting crossings at depth h.
            let mut stack = vec![TreePath::ROOT];
            while let Some(path) = stack.pop() {
                if path.depth() == h {
                    let block =
                        allscale_region::BitmaskTreeRegion::block_of(h, &path).unwrap();
                    let owner = owner_of(block, nsub, n);
                    if owner == me {
                        local_count += traverse_sub(&tree, path, &q, &mut visits);
                    } else {
                        outbox[owner].push((qid, block as u32));
                    }
                    continue;
                }
                visits += 1;
                let node = tree.node(&path);
                if dist2(&node.point, &q) <= r2 {
                    local_count += 1;
                }
                if path.depth() + 1 >= levels {
                    continue;
                }
                let d = node.dim as usize;
                let diff = q[d] - node.point[d];
                if diff <= radius {
                    stack.push(path.left());
                }
                if diff >= -radius {
                    stack.push(path.right());
                }
            }
        }
        ctx.compute(SimDuration::from_nanos_f64(visits as f64 * ns_node / cores));

        // One aggregated exchange round: subtree blocks are leaves of the
        // block decomposition, so no further crossings can occur.
        let inbox = ctx.alltoall(1, outbox);
        let mut visits2: u64 = 0;
        for batch in inbox {
            for (qid, block) in batch {
                let q = query_point(qid);
                let start = region.subtree_root(block as usize);
                debug_assert_eq!(owner_of(block as usize, nsub, n), me);
                local_count += traverse_sub(&tree, start, &q, &mut visits2);
            }
        }
        ctx.compute(SimDuration::from_nanos_f64(
            visits2 as f64 * ns_node / cores,
        ));

        // Global total.
        (ctx.allreduce_sum(local_count as f64) as u64, t0.as_nanos())
    });

    let total = report.results[0].0;
    let t0 = report.results.iter().map(|&(_, t)| t).max().unwrap_or(0);
    let seconds = (report.finish_time.as_nanos() - t0) as f64 / 1e9;
    let validated = if cfg_out.validate {
        oracle(&cfg_out).iter().sum::<u64>() == total
    } else {
        true
    };
    TpcResult {
        compute_seconds: seconds,
        queries_per_sec: q_total as f64 / seconds,
        total_count: total,
        validated,
        remote_msgs: report.traffic.remote_msgs(),
        remote_bytes: report.traffic.remote_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_against_oracle_small() {
        let res = run(&TpcConfig::small(2));
        assert!(res.validated, "MPI TPC must match the brute force");
    }

    #[test]
    fn single_rank_works() {
        let res = run(&TpcConfig::small(1));
        assert!(res.validated);
    }

    #[test]
    fn matches_allscale_version() {
        let cfg = TpcConfig::small(4);
        let m = run(&cfg);
        let a = crate::tpc::allscale_version::run(&cfg);
        assert_eq!(m.total_count, a.total_count);
        assert!(m.validated && a.validated);
    }

    #[test]
    fn owner_distribution_is_contiguous_and_balanced() {
        let owners: Vec<usize> = (0..16).map(|i| owner_of(i, 16, 4)).collect();
        assert_eq!(owners, vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3]);
    }
}

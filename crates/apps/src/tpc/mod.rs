//! The two-point correlation benchmark (paper Table 1 row 3: TPC).
//!
//! "TPC computes the number of points within a certain distance of a given
//! query point in 7D space. For each query, TPC performs a pruned,
//! parallel kd-tree traversal." The kd-tree is the data item; it is
//! distributed with the *blocked* tree region scheme of Fig. 4c: the top
//! `h` levels form the root block (replicated — it is read by every
//! query), the `2^h` complete subtrees below are spread over the nodes.
//!
//! The AllScale version spawns one task per query; when a traversal
//! crosses from the root block into a subtree owned elsewhere, a child
//! task is forwarded to that locality — "a large number of inherently
//! small tasks to be forwarded to localities owning traversed kd-tree
//! nodes", the behaviour that caps its scaling in the paper's Fig. 7. The
//! MPI version batches all (query, subtree) crossings into one exchange
//! round — the paper's "aggregates multiple queries" optimization.

pub mod allscale_version;
pub mod mpi_version;

use serde::{Deserialize, Serialize};

use allscale_region::TreePath;

/// Dimensionality of the point space.
pub const DIMS: usize = 7;
/// Extent of each coordinate: points live in `[0, 100)^7`.
pub const EXTENT: f64 = 100.0;

/// One kd-tree node: the splitting point and its dimension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KdNode {
    /// The point stored at this node (the median of its subtree).
    pub point: [f64; DIMS],
    /// The splitting dimension (depth mod 7).
    pub dim: u8,
}

/// Benchmark configuration.
#[derive(Debug, Clone)]
pub struct TpcConfig {
    /// Cluster nodes.
    pub nodes: usize,
    /// Tree levels: the tree holds `2^levels - 1` points.
    pub levels: u8,
    /// Split depth of the blocked region scheme (`2^h` subtrees).
    pub split_depth: u8,
    /// Queries **per node** (weak scaling of query load).
    pub queries_per_node: u64,
    /// Search radius.
    pub radius: f64,
    /// AllScale query batch size (1 = the paper's unbatched prototype;
    /// larger = the A3 ablation implementing the paper's future work).
    pub batch: usize,
    /// Validate counts against the brute-force oracle.
    pub validate: bool,
    /// Work scale: each visited simulated tree node stands for this many
    /// real node visits (the paper's tree is 2^29 points; ours is far
    /// smaller, so per-visit cost is scaled to restore the paper's
    /// compute-to-communication ratio; see EXPERIMENTS.md).
    pub work_scale: f64,
}

impl TpcConfig {
    /// A small test configuration.
    pub fn small(nodes: usize) -> Self {
        TpcConfig {
            nodes,
            levels: 9, // 511 points
            split_depth: 3,
            queries_per_node: 6,
            radius: 60.0,
            batch: 1,
            validate: true,
            work_scale: 1.0,
        }
    }

    /// The scaled-down stand-in for the paper's 2^29 points / radius 20.
    pub fn paper_scaled(nodes: usize) -> Self {
        TpcConfig {
            nodes,
            levels: 17, // 131071 points
            split_depth: 7,
            queries_per_node: 24,
            radius: 20.0,
            batch: 1,
            validate: false,
            work_scale: 16.0,
        }
    }

    /// Total points in the tree.
    pub fn total_points(&self) -> u64 {
        (1u64 << self.levels) - 1
    }

    /// Total queries.
    pub fn total_queries(&self) -> u64 {
        self.queries_per_node * self.nodes as u64
    }
}

/// splitmix64 (shared with the PIC app's determinism approach).
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[inline]
fn unit(key: u64) -> f64 {
    (mix(key) >> 11) as f64 / (1u64 << 53) as f64
}

/// The deterministic point cloud.
pub fn gen_points(n: u64) -> Vec<[f64; DIMS]> {
    (0..n)
        .map(|i| {
            let mut p = [0.0; DIMS];
            for (d, c) in p.iter_mut().enumerate() {
                *c = unit(i.wrapping_mul(31).wrapping_add(d as u64 * 0x51_7CC1)) * EXTENT;
            }
            p
        })
        .collect()
}

/// The deterministic query point for query id `qid`.
pub fn query_point(qid: u64) -> [f64; DIMS] {
    let mut p = [0.0; DIMS];
    for (d, c) in p.iter_mut().enumerate() {
        *c = unit(qid.wrapping_mul(0x9FACE).wrapping_add(d as u64 * 0xBEEF_CAFE)) * EXTENT;
    }
    p
}

/// Squared Euclidean distance.
#[inline]
pub fn dist2(a: &[f64; DIMS], b: &[f64; DIMS]) -> f64 {
    let mut s = 0.0;
    for d in 0..DIMS {
        let x = a[d] - b[d];
        s += x * x;
    }
    s
}

/// A complete balanced kd-tree in implicit (path-addressed) layout.
#[derive(Debug, Clone)]
pub struct KdTree {
    /// Node at BFS index `i` (complete tree of `levels` levels).
    pub nodes: Vec<KdNode>,
    /// Number of levels.
    pub levels: u8,
}

impl KdTree {
    /// Build the balanced tree over `points` (length must be `2^k - 1`).
    pub fn build(points: &[[f64; DIMS]]) -> KdTree {
        let n = points.len();
        assert!((n + 1).is_power_of_two(), "need 2^k - 1 points");
        let levels = (n + 1).trailing_zeros() as u8;
        let mut nodes: Vec<Option<KdNode>> = vec![None; n];
        let mut idxs: Vec<usize> = (0..n).collect();
        build_rec(points, &mut idxs, 0, TreePath::ROOT, &mut nodes);
        KdTree {
            nodes: nodes.into_iter().map(|n| n.expect("complete tree")).collect(),
            levels,
        }
    }

    /// The node at a tree path.
    pub fn node(&self, path: &TreePath) -> &KdNode {
        &self.nodes[path.bfs_index() as usize]
    }

    /// Sequential pruned traversal: points within `radius` of `q`.
    pub fn count_within(&self, q: &[f64; DIMS], radius: f64) -> u64 {
        let mut count = 0;
        let mut stack = vec![TreePath::ROOT];
        let r2 = radius * radius;
        while let Some(path) = stack.pop() {
            let node = self.node(&path);
            if dist2(&node.point, q) <= r2 {
                count += 1;
            }
            if path.depth() + 1 >= self.levels {
                continue;
            }
            let diff = q[node.dim as usize] - node.point[node.dim as usize];
            if diff <= radius {
                stack.push(path.left());
            }
            if diff >= -radius {
                stack.push(path.right());
            }
        }
        count
    }
}

fn build_rec(
    points: &[[f64; DIMS]],
    idxs: &mut [usize],
    depth: u8,
    path: TreePath,
    out: &mut [Option<KdNode>],
) {
    if idxs.is_empty() {
        return;
    }
    let dim = (depth as usize) % DIMS;
    // Stable, deterministic ordering: by coordinate, ties by point index.
    idxs.sort_unstable_by(|&a, &b| {
        points[a][dim]
            .partial_cmp(&points[b][dim])
            .unwrap()
            .then(a.cmp(&b))
    });
    let mid = idxs.len() / 2;
    out[path.bfs_index() as usize] = Some(KdNode {
        point: points[idxs[mid]],
        dim: dim as u8,
    });
    let (left, rest) = idxs.split_at_mut(mid);
    let right = &mut rest[1..];
    build_rec(points, left, depth + 1, path.left(), out);
    build_rec(points, right, depth + 1, path.right(), out);
}

/// Brute-force oracle: exact counts for each query.
pub fn oracle(cfg: &TpcConfig) -> Vec<u64> {
    let points = gen_points(cfg.total_points());
    let r2 = cfg.radius * cfg.radius;
    (0..cfg.total_queries())
        .map(|qid| {
            let q = query_point(qid);
            points.iter().filter(|p| dist2(p, &q) <= r2).count() as u64
        })
        .collect()
}

/// Result of one benchmark execution.
#[derive(Debug, Clone)]
pub struct TpcResult {
    /// Virtual seconds in the query phase (build/distribution excluded).
    pub compute_seconds: f64,
    /// Queries per second.
    pub queries_per_sec: f64,
    /// Total count over all queries.
    pub total_count: u64,
    /// Whether validation passed (true when skipped).
    pub validated: bool,
    /// Remote messages during the query phase (approx: whole run).
    pub remote_msgs: u64,
    /// Remote bytes.
    pub remote_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_build_is_deterministic_and_complete() {
        let pts = gen_points(127);
        let t1 = KdTree::build(&pts);
        let t2 = KdTree::build(&pts);
        assert_eq!(t1.nodes.len(), 127);
        assert_eq!(t1.levels, 7);
        assert_eq!(t1.nodes, t2.nodes);
    }

    #[test]
    fn kd_counts_match_brute_force() {
        let pts = gen_points(255);
        let tree = KdTree::build(&pts);
        for qid in 0..20u64 {
            let q = query_point(qid);
            for radius in [5.0, 20.0, 60.0, 150.0] {
                let r2 = radius * radius;
                let brute = pts.iter().filter(|p| dist2(p, &q) <= r2).count() as u64;
                assert_eq!(
                    tree.count_within(&q, radius),
                    brute,
                    "qid={qid} radius={radius}"
                );
            }
        }
    }

    #[test]
    fn kd_invariant_left_below_right_above() {
        let pts = gen_points(63);
        let tree = KdTree::build(&pts);
        // For each internal node: all left-descendants ≤ split coord, all
        // right-descendants ≥.
        fn check(tree: &KdTree, path: TreePath) {
            if path.depth() + 1 >= tree.levels {
                return;
            }
            let node = tree.node(&path);
            let d = node.dim as usize;
            let mut stack = vec![(path.left(), true), (path.right(), false)];
            while let Some((p, is_left)) = stack.pop() {
                let v = tree.node(&p).point[d];
                if is_left {
                    assert!(v <= node.point[d]);
                } else {
                    assert!(v >= node.point[d]);
                }
                if p.depth() + 1 < tree.levels
                    && p.depth() == path.depth() + 1
                {
                    // Only need one extra level to catch gross violations;
                    // full-subtree check would be O(n²).
                    stack.push((p.left(), is_left));
                    stack.push((p.right(), is_left));
                }
            }
            check(tree, path.left());
            check(tree, path.right());
        }
        check(&tree, TreePath::ROOT);
    }

    #[test]
    fn radius_zero_counts_only_exact_hits() {
        let pts = gen_points(31);
        let tree = KdTree::build(&pts);
        // A query at an existing point with radius 0 finds exactly it.
        let q = pts[17];
        assert_eq!(tree.count_within(&q, 0.0), 1);
    }

    #[test]
    fn oracle_counts_are_plausible() {
        let cfg = TpcConfig::small(2);
        let counts = oracle(&cfg);
        assert_eq!(counts.len() as u64, cfg.total_queries());
        // Radius 60 in a 100-extent 7-D cube catches some but not all.
        assert!(counts.iter().any(|&c| c > 0));
        assert!(counts.iter().all(|&c| c < cfg.total_points()));
    }
}

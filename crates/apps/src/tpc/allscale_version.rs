//! The AllScale port of TPC.
//!
//! The kd-tree is a runtime-managed data item with the blocked region
//! scheme (Fig. 4c). Query tasks read the (persistently replicated) root
//! block wherever they are spawned; each crossing into a subtree block
//! becomes a *child task* whose read requirement pins it to the subtree's
//! owner — the runtime forwards it there (Algorithm 2 line 4-6). This is
//! exactly the fine-grained task forwarding whose communication overhead
//! the paper reports as the AllScale TPC bottleneck.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::Arc;

use allscale_core::{
    pfor, CostModel, Done, ItemId, PforSpec, Requirement, RtConfig, RtCtx, Runtime, SplitOutcome,
    TaskCtx, TaskValue, WorkItem,
};
use allscale_des::{SimDuration, SimTime};
use allscale_region::{
    BitmaskTreeRegion, GridBox, ItemType, TreeFragment, TreePath,
};

use super::{dist2, gen_points, oracle, query_point, KdNode, KdTree, TpcConfig, TpcResult, DIMS};

/// The kd-tree data item type: blocked tree regions over [`KdNode`]s.
pub struct TpcTreeItem;

impl ItemType for TpcTreeItem {
    type Region = BitmaskTreeRegion;
    type Fragment = TreeFragment<KdNode, BitmaskTreeRegion>;
    const BYTES_PER_ELEMENT: usize = 8 * DIMS + 8;
}

type TreeFrag = TreeFragment<KdNode, BitmaskTreeRegion>;

struct TpcShared {
    item: ItemId,
    h: u8,
    levels: u8,
    radius: f64,
    total_queries: u64,
    batch: u64,
    ns_per_node: f64,
}

enum TpcParam {
    /// A contiguous range of query ids.
    Queries { lo: u64, hi: u64 },
    /// Continue the given queries inside one subtree block.
    Sub { subtree: usize, qids: Vec<u64> },
}

struct TpcWork {
    param: TpcParam,
    depth: u32,
    shared: Arc<TpcShared>,
}

impl WorkItem for TpcWork {
    fn name(&self) -> &'static str {
        "tpc-query"
    }
    fn depth(&self) -> u32 {
        self.depth
    }
    fn can_split(&self) -> bool {
        matches!(self.param, TpcParam::Queries { lo, hi } if hi - lo > self.shared.batch)
    }
    fn requirements(&self) -> Vec<Requirement> {
        let region = match &self.param {
            TpcParam::Queries { .. } => BitmaskTreeRegion::of_root_block(self.shared.h),
            TpcParam::Sub { subtree, .. } => {
                BitmaskTreeRegion::of_subtree(self.shared.h, *subtree)
            }
        };
        vec![Requirement::read(self.shared.item, region)]
    }
    fn cost(&self, _cost: &CostModel, _loc: usize) -> SimDuration {
        SimDuration::ZERO // charged per visited node via TaskCtx::charge
    }
    fn placement_hint(&self) -> Option<f64> {
        match &self.param {
            TpcParam::Queries { lo, .. } => {
                Some(*lo as f64 / self.shared.total_queries as f64)
            }
            TpcParam::Sub { .. } => None, // pinned by its data requirement
        }
    }
    fn split(self: Box<Self>) -> SplitOutcome {
        let TpcParam::Queries { lo, hi } = self.param else {
            unreachable!("Sub tasks never split");
        };
        let mid = lo + (hi - lo) / 2;
        let depth = self.depth + 1;
        let children: Vec<Box<dyn WorkItem>> = [(lo, mid), (mid, hi)]
            .into_iter()
            .map(|(l, h)| {
                Box::new(TpcWork {
                    param: TpcParam::Queries { lo: l, hi: h },
                    depth,
                    shared: self.shared.clone(),
                }) as Box<dyn WorkItem>
            })
            .collect();
        SplitOutcome {
            children,
            combine: Box::new(sum_counts),
        }
    }
    fn process(self: Box<Self>, ctx: &mut TaskCtx<'_>) -> Done {
        let sh = &self.shared;
        let ns = sh.ns_per_node;
        match &self.param {
            TpcParam::Queries { lo, hi } => {
                // Traverse the root block for each query; collect the
                // subtree crossings.
                let mut local: u64 = 0;
                let mut visits: u64 = 0;
                let mut crossings: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
                {
                    let frag = ctx.fragment::<TreeFrag>(sh.item);
                    for qid in *lo..*hi {
                        let q = query_point(qid);
                        let r2 = sh.radius * sh.radius;
                        let mut stack = vec![TreePath::ROOT];
                        while let Some(path) = stack.pop() {
                            if path.depth() == sh.h {
                                let block =
                                    BitmaskTreeRegion::block_of(sh.h, &path).expect("below split");
                                crossings.entry(block).or_default().push(qid);
                                continue;
                            }
                            visits += 1;
                            let node = frag.get(&path).expect("root block replicated");
                            if dist2(&node.point, &q) <= r2 {
                                local += 1;
                            }
                            if path.depth() + 1 >= sh.levels {
                                continue;
                            }
                            let d = node.dim as usize;
                            let diff = q[d] - node.point[d];
                            if diff <= sh.radius {
                                stack.push(path.left());
                            }
                            if diff >= -sh.radius {
                                stack.push(path.right());
                            }
                        }
                    }
                }
                ctx.charge(SimDuration::from_nanos_f64(visits as f64 * ns));
                let depth = self.depth + 1;
                let children: Vec<Box<dyn WorkItem>> = crossings
                    .into_iter()
                    .map(|(subtree, qids)| {
                        Box::new(TpcWork {
                            param: TpcParam::Sub { subtree, qids },
                            depth,
                            shared: sh.clone(),
                        }) as Box<dyn WorkItem>
                    })
                    .collect();
                if children.is_empty() {
                    return Done::Value(Some(Box::new(local)));
                }
                Done::Children(SplitOutcome {
                    children,
                    combine: Box::new(move |vals| {
                        let children_sum = sum_value(vals);
                        Some(Box::new(local + children_sum))
                    }),
                })
            }
            TpcParam::Sub { subtree, qids } => {
                let mut count: u64 = 0;
                let mut visits: u64 = 0;
                {
                    let frag = ctx.fragment::<TreeFrag>(sh.item);
                    let region = BitmaskTreeRegion::new(sh.h);
                    let root = region.subtree_root(*subtree);
                    for &qid in qids {
                        let q = query_point(qid);
                        let r2 = sh.radius * sh.radius;
                        let mut stack = vec![root];
                        while let Some(path) = stack.pop() {
                            visits += 1;
                            let node = frag.get(&path).expect("subtree block local");
                            if dist2(&node.point, &q) <= r2 {
                                count += 1;
                            }
                            if path.depth() + 1 >= sh.levels {
                                continue;
                            }
                            let d = node.dim as usize;
                            let diff = q[d] - node.point[d];
                            if diff <= sh.radius {
                                stack.push(path.left());
                            }
                            if diff >= -sh.radius {
                                stack.push(path.right());
                            }
                        }
                    }
                }
                ctx.charge(SimDuration::from_nanos_f64(visits as f64 * ns));
                Done::Value(Some(Box::new(count)))
            }
        }
    }
    fn descriptor_bytes(&self) -> usize {
        match &self.param {
            TpcParam::Queries { .. } => 96,
            TpcParam::Sub { qids, .. } => 64 + qids.len() * 8,
        }
    }
    fn result_bytes(&self) -> usize {
        8
    }
}

fn sum_value(vals: Vec<TaskValue>) -> u64 {
    vals.into_iter()
        .map(|v| *v.expect("counts").downcast::<u64>().expect("u64 counts"))
        .sum()
}

fn sum_counts(vals: Vec<TaskValue>) -> TaskValue {
    Some(Box::new(sum_value(vals)))
}

struct DriverState {
    item: Option<ItemId>,
    compute_start: SimTime,
    compute_end: SimTime,
    total: u64,
}

/// Run the AllScale version on a fresh simulated cluster.
pub fn run(cfg: &TpcConfig) -> TpcResult {
    run_with(cfg, RtConfig::meggie(cfg.nodes))
}

/// Run with a custom runtime configuration.
pub fn run_with(cfg: &TpcConfig, rt_cfg: RtConfig) -> TpcResult {
    let cfg = cfg.clone();
    let cfg_out = cfg.clone();
    let tree = Arc::new(KdTree::build(&gen_points(cfg.total_points())));
    let h = cfg.split_depth;
    let levels = cfg.levels;
    assert!(levels > h, "tree must extend below the split depth");
    let nsub = 1usize << h;
    let q_total = cfg.total_queries();
    let cost = CostModel::default();
    let ns_node = cost.ns_per_tree_node * cfg.work_scale;

    let state = Rc::new(RefCell::new(DriverState {
        item: None,
        compute_start: SimTime::ZERO,
        compute_end: SimTime::ZERO,
        total: 0,
    }));
    let st = state.clone();
    let batch = cfg.batch as u64;
    let radius = cfg.radius;

    let runtime = Runtime::new(rt_cfg);
    let report = runtime.run(
        move |phase: usize, ctx: &mut RtCtx<'_>, prev: TaskValue| -> Option<Box<dyn WorkItem>> {
            match phase {
                0 => {
                    // Distribute the prebuilt tree: one pfor index per
                    // block (0 = root block, 1+i = subtree i); first touch
                    // places each block at its hint target.
                    let item = ctx.create_item::<TpcTreeItem>("kdtree");
                    st.borrow_mut().item = Some(item);
                    let tree = tree.clone();
                    Some(pfor(
                        PforSpec {
                            name: "tpc-distribute",
                            range: GridBox::<1>::from_shape([nsub as i64 + 1]).unwrap(),
                            grain: 1,
                            ns_per_point: 200.0,
                            axis0_pieces: 0,
                        },
                        move |tile| {
                            let mut region = BitmaskTreeRegion::new(h);
                            for idx in tile.points() {
                                if idx[0] == 0 {
                                    region.set_root_block(true);
                                } else {
                                    region.set_subtree(idx[0] as usize - 1, true);
                                }
                            }
                            vec![Requirement::write(item, region)]
                        },
                        move |tctx, p| {
                            let frag = tctx.fragment_mut::<TreeFrag>(item);
                            if p[0] == 0 {
                                // Root block: all paths shallower than h.
                                for bfs in 0..((1u64 << h) - 1) {
                                    let path = TreePath::from_bfs_index(bfs);
                                    frag.set(path, tree.node(&path).clone());
                                }
                            } else {
                                let region = BitmaskTreeRegion::new(h);
                                let root = region.subtree_root(p[0] as usize - 1);
                                let mut stack = vec![root];
                                while let Some(path) = stack.pop() {
                                    frag.set(path, tree.node(&path).clone());
                                    if path.depth() + 1 < levels {
                                        stack.push(path.left());
                                        stack.push(path.right());
                                    }
                                }
                            }
                        },
                    ))
                }
                1 => {
                    let item = st.borrow().item.unwrap();
                    // Replicate the root block everywhere (runtime
                    // (replicate) rule): it is read by every query task.
                    let root_region = BitmaskTreeRegion::of_root_block(h);
                    let owner = (0..ctx.nodes())
                        .find(|&loc| {
                            !ctx.owned_region_at(loc, item)
                                .intersect_dyn(&root_region)
                                .is_empty_dyn()
                        })
                        .expect("root block owned somewhere");
                    ctx.broadcast_replicate(item, owner, &root_region);
                    st.borrow_mut().compute_start = ctx.now();
                    Some(Box::new(TpcWork {
                        param: TpcParam::Queries {
                            lo: 0,
                            hi: q_total,
                        },
                        depth: 0,
                        shared: Arc::new(TpcShared {
                            item,
                            h,
                            levels,
                            radius,
                            total_queries: q_total,
                            batch,
                            ns_per_node: ns_node,
                        }),
                    }))
                }
                _ => {
                    let mut s = st.borrow_mut();
                    s.compute_end = ctx.now();
                    s.total = *prev
                        .expect("query phase yields a count")
                        .downcast::<u64>()
                        .expect("u64 total");
                    None
                }
            }
        },
    );

    let s = state.borrow();
    let compute_seconds = (s.compute_end - s.compute_start).as_secs_f64();
    let validated = if cfg_out.validate {
        oracle(&cfg_out).iter().sum::<u64>() == s.total
    } else {
        true
    };
    TpcResult {
        compute_seconds,
        queries_per_sec: q_total as f64 / compute_seconds,
        total_count: s.total,
        validated,
        remote_msgs: report.remote_msgs,
        remote_bytes: report.remote_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_against_oracle_small() {
        let res = run(&TpcConfig::small(2));
        assert!(res.validated, "AllScale TPC must match the brute force");
        assert!(res.total_count > 0);
    }

    #[test]
    fn single_node_works() {
        let res = run(&TpcConfig::small(1));
        assert!(res.validated);
    }

    #[test]
    fn four_nodes_with_batching() {
        let mut cfg = TpcConfig::small(4);
        cfg.batch = 4;
        let res = run(&cfg);
        assert!(res.validated);
    }
}

//! The particle-in-cell mini-app (paper Table 1 row 2: iPiC3D).
//!
//! The real iPiC3D simulates charged particles in electromagnetic fields;
//! its data-structure profile — "three regular 3D grids — two holding
//! electromagnetic field data, while an additional grid holds lists of
//! particles" — is what stresses the runtime, and is what this mini-app
//! reproduces exactly (see DESIGN.md, substitution table):
//!
//! - two scalar field grids `E` (double-buffered, updated with a 7-point
//!   stencil coupled to `B`) and a static grid `B`;
//! - a particle grid whose cells hold particle lists; each step pushes
//!   every particle with the field at its cell and *migrates* it to the
//!   cell containing its new position (the operation that forces the
//!   runtime to manage dynamic, irregular data);
//! - a charge-density grid `RHO` filled by a per-step moment-deposition
//!   phase (read particle lists, write field cells).
//!
//! Metric: particle updates per second. Weak scaling: a fixed number of
//! cells (and so particles) per node, blocks along the first axis.

pub mod allscale_version;
pub mod mpi_version;

use serde::{Deserialize, Serialize};

/// One charged particle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Particle {
    /// Unique id (checksums, debugging).
    pub id: u64,
    /// Position in domain units (cell size = 1).
    pub pos: [f64; 3],
    /// Velocity in domain units per time unit.
    pub vel: [f64; 3],
}

/// The particle list of one grid cell.
pub type Cell = Vec<Particle>;

/// Time step length.
pub const DT: f64 = 0.05;
/// Field diffusion coefficient.
pub const ALPHA: f64 = 0.05;
/// Field-to-B coupling.
pub const BETA: f64 = 0.01;
/// Velocity cap: no particle crosses more than one cell per step.
pub const MAX_STEP: f64 = 0.9;

/// Benchmark configuration.
#[derive(Debug, Clone)]
pub struct PicConfig {
    /// Cluster nodes.
    pub nodes: usize,
    /// Cell layers along x **per node** (weak scaling).
    pub cells_x_per_node: i64,
    /// Cells along y.
    pub cells_y: i64,
    /// Cells along z.
    pub cells_z: i64,
    /// Particles seeded per cell.
    pub particles_per_cell: usize,
    /// Time steps.
    pub steps: usize,
    /// Validate conservation + AllScale/MPI agreement.
    pub validate: bool,
    /// Work scale: each simulated particle stands for this many real
    /// ones (virtual push cost and the reported update rate both scale
    /// by it; see EXPERIMENTS.md).
    pub work_scale: f64,
}

impl PicConfig {
    /// A small test configuration.
    pub fn small(nodes: usize) -> Self {
        PicConfig {
            nodes,
            cells_x_per_node: 4,
            cells_y: 6,
            cells_z: 6,
            particles_per_cell: 3,
            steps: 2,
            validate: true,
            work_scale: 1.0,
        }
    }

    /// The scaled-down stand-in for the paper's 48·10⁶ particles/node.
    pub fn paper_scaled(nodes: usize) -> Self {
        PicConfig {
            nodes,
            cells_x_per_node: 8,
            cells_y: 16,
            cells_z: 16,
            particles_per_cell: 8,
            steps: 3,
            validate: false,
            // 48e6 real particles per node over 2048×8 simulated ones.
            work_scale: 48.0e6 / (8.0 * 16.0 * 16.0 * 8.0),
        }
    }

    /// Total cells along x.
    pub fn cells_x(&self) -> i64 {
        self.cells_x_per_node * self.nodes as i64
    }

    /// Grid shape.
    pub fn shape(&self) -> [i64; 3] {
        [self.cells_x(), self.cells_y, self.cells_z]
    }

    /// Total cell count.
    pub fn total_cells(&self) -> u64 {
        (self.cells_x() * self.cells_y * self.cells_z) as u64
    }

    /// Total particle count.
    pub fn total_particles(&self) -> u64 {
        self.total_cells() * self.particles_per_cell as u64
    }

    /// Total particle updates across all steps (in *represented* real
    /// particles — scaled by `work_scale`).
    pub fn total_updates(&self) -> f64 {
        (self.total_particles() * self.steps as u64) as f64 * self.work_scale
    }
}

/// Deterministic pseudo-random stream from a key (splitmix64) — identical
/// across versions without sharing RNG state.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A unit-interval float from a key.
#[inline]
fn unit(key: u64) -> f64 {
    (mix(key) >> 11) as f64 / (1u64 << 53) as f64
}

/// Initial field value of cell `(x, y, z)`.
#[inline]
pub fn e_init(x: i64, y: i64, z: i64) -> f64 {
    unit((x as u64) << 40 | (y as u64) << 20 | z as u64) - 0.5
}

/// Static B value of cell `(x, y, z)`.
#[inline]
pub fn b_init(x: i64, y: i64, z: i64) -> f64 {
    unit(((x as u64) << 40 | (y as u64) << 20 | z as u64) ^ 0xB00B_5EED) - 0.5
}

/// The particles seeded in cell `(x, y, z)`.
pub fn seed_cell(x: i64, y: i64, z: i64, shape: [i64; 3], ppc: usize) -> Cell {
    let cell_index = ((x * shape[1]) + y) * shape[2] + z;
    (0..ppc)
        .map(|k| {
            let id = (cell_index as u64) * ppc as u64 + k as u64;
            let key = mix(id ^ 0x5EED_0FA5);
            Particle {
                id,
                pos: [
                    x as f64 + unit(key ^ 1),
                    y as f64 + unit(key ^ 2),
                    z as f64 + unit(key ^ 3),
                ],
                vel: [
                    (unit(key ^ 4) - 0.5) * 2.0,
                    (unit(key ^ 5) - 0.5) * 2.0,
                    (unit(key ^ 6) - 0.5) * 2.0,
                ],
            }
        })
        .collect()
}

/// The field update of one cell (7-point stencil coupled to B) — shared by
/// all versions. Neighbour values outside the domain are the cell's own
/// value (zero-flux boundary).
#[inline]
pub fn field_update(center: f64, neighbours: [f64; 6], b: f64) -> f64 {
    let lap = neighbours.iter().sum::<f64>() - 6.0 * center;
    center + ALPHA * lap + BETA * b
}

/// Push one particle with the field value at its current cell; reflects at
/// domain walls. Returns the updated particle.
pub fn push(p: &Particle, e: f64, extent: [f64; 3]) -> Particle {
    let mut q = p.clone();
    // Acceleration along a per-particle fixed unit direction scaled by E —
    // a stand-in for the Boris mover that preserves its data access
    // pattern (field gather at the particle's cell).
    let dir_key = mix(p.id ^ 0xACCE_1E7A);
    let dir = [
        unit(dir_key ^ 1) - 0.5,
        unit(dir_key ^ 2) - 0.5,
        unit(dir_key ^ 3) - 0.5,
    ];
    #[allow(clippy::needless_range_loop)] // three parallel arrays, one index
    for d in 0..3 {
        q.vel[d] += e * dir[d] * DT * 10.0;
        // Cap the displacement to stay within one cell per step.
        let step = (q.vel[d] * DT).clamp(-MAX_STEP, MAX_STEP);
        q.pos[d] += step;
        // Reflective walls.
        if q.pos[d] < 0.0 {
            q.pos[d] = -q.pos[d];
            q.vel[d] = -q.vel[d];
        }
        if q.pos[d] >= extent[d] {
            q.pos[d] = 2.0 * extent[d] - q.pos[d];
            // Guard against landing exactly on the wall from rounding.
            if q.pos[d] >= extent[d] {
                q.pos[d] = extent[d] - 1e-9;
            }
            q.vel[d] = -q.vel[d];
        }
    }
    q
}

/// The cell containing a position.
#[inline]
pub fn cell_of(pos: [f64; 3]) -> [i64; 3] {
    [
        pos[0].floor() as i64,
        pos[1].floor() as i64,
        pos[2].floor() as i64,
    ]
}

/// Moment deposition: the charge contribution of one particle to its cell
/// (a simple charge-density stand-in preserving the gather access
/// pattern: read particle list, write field cell).
#[inline]
pub fn deposit(p: &Particle) -> f64 {
    1.0 + 0.1 * (p.vel[0] * p.vel[0] + p.vel[1] * p.vel[1] + p.vel[2] * p.vel[2])
}

/// Order-independent exact checksum of a particle.
pub fn particle_checksum(p: &Particle) -> u64 {
    let mut acc = mix(p.id);
    for d in 0..3u64 {
        acc = acc.wrapping_add(mix(p.pos[d as usize].to_bits() ^ (d << 60)));
        acc = acc.wrapping_add(mix(p.vel[d as usize].to_bits() ^ (d << 50) ^ 0xF00D));
    }
    acc
}

/// Result of one benchmark execution.
#[derive(Debug, Clone)]
pub struct PicResult {
    /// Virtual seconds in the time-step phases.
    pub compute_seconds: f64,
    /// Particle updates per second.
    pub updates_per_sec: f64,
    /// Final particle count (must equal the seeded count).
    pub particles: u64,
    /// Order-independent checksum over all final particles.
    pub checksum: u64,
    /// Total deposited charge in milli-units (0 when the version does not
    /// run a moment phase).
    pub rho_total: u64,
    /// Whether validation passed (true when skipped).
    pub validated: bool,
    /// Remote messages.
    pub remote_msgs: u64,
    /// Remote bytes.
    pub remote_bytes: u64,
}

/// Sequential oracle: the whole simulation on flat vectors. Returns
/// `(particle count, checksum)`.
pub fn oracle(cfg: &PicConfig) -> (u64, u64) {
    let shape = cfg.shape();
    let (nx, ny, nz) = (shape[0], shape[1], shape[2]);
    let extent = [nx as f64, ny as f64, nz as f64];
    let idx = |x: i64, y: i64, z: i64| -> usize { (((x * ny) + y) * nz + z) as usize };

    let mut e: Vec<f64> = Vec::with_capacity((nx * ny * nz) as usize);
    let mut b: Vec<f64> = Vec::with_capacity((nx * ny * nz) as usize);
    let mut cells: Vec<Cell> = Vec::with_capacity((nx * ny * nz) as usize);
    for x in 0..nx {
        for y in 0..ny {
            for z in 0..nz {
                e.push(e_init(x, y, z));
                b.push(b_init(x, y, z));
                cells.push(seed_cell(x, y, z, shape, cfg.particles_per_cell));
            }
        }
    }

    for _ in 0..cfg.steps {
        // Field update.
        let mut e2 = e.clone();
        for x in 0..nx {
            for y in 0..ny {
                for z in 0..nz {
                    let c = e[idx(x, y, z)];
                    let nb = |xx: i64, yy: i64, zz: i64| -> f64 {
                        if xx < 0 || xx >= nx || yy < 0 || yy >= ny || zz < 0 || zz >= nz {
                            c
                        } else {
                            e[idx(xx, yy, zz)]
                        }
                    };
                    e2[idx(x, y, z)] = field_update(
                        c,
                        [
                            nb(x - 1, y, z),
                            nb(x + 1, y, z),
                            nb(x, y - 1, z),
                            nb(x, y + 1, z),
                            nb(x, y, z - 1),
                            nb(x, y, z + 1),
                        ],
                        b[idx(x, y, z)],
                    );
                }
            }
        }
        e = e2;
        // Particle push + migration.
        let mut next: Vec<Cell> = vec![Vec::new(); cells.len()];
        for x in 0..nx {
            for y in 0..ny {
                for z in 0..nz {
                    for p in &cells[idx(x, y, z)] {
                        let q = push(p, e[idx(x, y, z)], extent);
                        let c = cell_of(q.pos);
                        next[idx(c[0], c[1], c[2])].push(q);
                    }
                }
            }
        }
        cells = next;
    }

    let mut count = 0u64;
    let mut acc = 0u64;
    for cell in &cells {
        for p in cell {
            count += 1;
            acc = acc.wrapping_add(particle_checksum(p));
        }
    }
    (count, acc)
}

/// Total deposited charge of the final oracle state — used to validate the
/// moment-deposition phase (order-independent: per-cell sums are folded
/// through bit-exact u64 accumulation of rounded milli-units).
pub fn oracle_rho_total(cfg: &PicConfig) -> u64 {
    // Re-run the oracle and deposit.
    let shape = cfg.shape();
    let (nx, ny, nz) = (shape[0], shape[1], shape[2]);
    let extent = [nx as f64, ny as f64, nz as f64];
    let idx = |x: i64, y: i64, z: i64| -> usize { (((x * ny) + y) * nz + z) as usize };
    let mut e: Vec<f64> = Vec::new();
    let mut b: Vec<f64> = Vec::new();
    let mut cells: Vec<Cell> = Vec::new();
    for x in 0..nx {
        for y in 0..ny {
            for z in 0..nz {
                e.push(e_init(x, y, z));
                b.push(b_init(x, y, z));
                cells.push(seed_cell(x, y, z, shape, cfg.particles_per_cell));
            }
        }
    }
    for _ in 0..cfg.steps {
        let mut e2 = e.clone();
        for x in 0..nx {
            for y in 0..ny {
                for z in 0..nz {
                    let c = e[idx(x, y, z)];
                    let nb = |xx: i64, yy: i64, zz: i64| -> f64 {
                        if xx < 0 || xx >= nx || yy < 0 || yy >= ny || zz < 0 || zz >= nz {
                            c
                        } else {
                            e[idx(xx, yy, zz)]
                        }
                    };
                    e2[idx(x, y, z)] = field_update(
                        c,
                        [
                            nb(x - 1, y, z),
                            nb(x + 1, y, z),
                            nb(x, y - 1, z),
                            nb(x, y + 1, z),
                            nb(x, y, z - 1),
                            nb(x, y, z + 1),
                        ],
                        b[idx(x, y, z)],
                    );
                }
            }
        }
        e = e2;
        let mut next: Vec<Cell> = vec![Vec::new(); cells.len()];
        for x in 0..nx {
            for y in 0..ny {
                for z in 0..nz {
                    for p in &cells[idx(x, y, z)] {
                        let q = push(p, e[idx(x, y, z)], extent);
                        let c = cell_of(q.pos);
                        next[idx(c[0], c[1], c[2])].push(q);
                    }
                }
            }
        }
        cells = next;
    }
    // Quantized per particle BEFORE summation, so the result is exactly
    // order-independent across distributed fragments.
    let mut total = 0u64;
    for cell in &cells {
        for p in cell {
            total = total.wrapping_add(deposit_quantized(p));
        }
    }
    total
}

/// Per-particle deposit in exact milli-units (order-independent sums).
#[inline]
pub fn deposit_quantized(p: &Particle) -> u64 {
    (deposit(p) * 1000.0).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic_and_in_cell() {
        let shape = [4, 4, 4];
        let c1 = seed_cell(1, 2, 3, shape, 5);
        let c2 = seed_cell(1, 2, 3, shape, 5);
        assert_eq!(c1, c2);
        assert_eq!(c1.len(), 5);
        for p in &c1 {
            assert_eq!(cell_of(p.pos), [1, 2, 3]);
        }
        // Distinct cells get distinct ids.
        let other = seed_cell(0, 0, 0, shape, 5);
        assert!(c1.iter().all(|p| other.iter().all(|q| q.id != p.id)));
    }

    #[test]
    fn push_respects_walls_and_cap() {
        let extent = [4.0, 4.0, 4.0];
        let p = Particle {
            id: 7,
            pos: [3.95, 0.01, 2.0],
            vel: [100.0, -100.0, 0.0],
        };
        let q = push(&p, 1.0, extent);
        for (d, &e) in extent.iter().enumerate() {
            assert!(q.pos[d] >= 0.0 && q.pos[d] < e, "axis {d}");
            assert!((q.pos[d] - p.pos[d]).abs() <= MAX_STEP + 4.0 * MAX_STEP);
        }
    }

    #[test]
    fn oracle_conserves_particles() {
        let cfg = PicConfig::small(2);
        let (count, _) = oracle(&cfg);
        assert_eq!(count, cfg.total_particles());
    }

    #[test]
    fn oracle_is_deterministic() {
        let cfg = PicConfig::small(1);
        assert_eq!(oracle(&cfg), oracle(&cfg));
    }
}

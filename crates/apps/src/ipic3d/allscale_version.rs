//! The AllScale port of the PIC mini-app: field grids and the particle
//! grid are runtime-managed data items; each step is a field `pfor` plus a
//! particle `pfor` whose tiles read the *dilated* previous-step particle
//! grid (incoming migrants) and write their own tile of the next-step
//! grid. All particle movement between address spaces happens implicitly
//! through the runtime's replica/migration machinery.

use std::cell::RefCell;
use std::rc::Rc;

use allscale_core::{
    pfor, CostModel, Grid, PforSpec, Requirement, RtConfig, RtCtx, Runtime, TaskValue, WorkItem,
};
use allscale_des::{SimDuration, SimTime};
use allscale_region::{BoxRegion, GridBox, GridFragment};

use super::{
    b_init, cell_of, deposit_quantized, e_init, field_update, oracle, oracle_rho_total,
    particle_checksum, push, seed_cell, Cell, PicConfig, PicResult,
};

struct Items {
    e: [Grid<f64, 3>; 2],
    b: Grid<f64, 3>,
    p: [Grid<Cell, 3>; 2],
    rho: Grid<u64, 3>,
}

struct DriverState {
    items: Option<Items>,
    compute_start: SimTime,
    compute_end: SimTime,
    count: u64,
    checksum: u64,
    rho_total: u64,
}

/// Run the AllScale version on a fresh simulated cluster.
pub fn run(cfg: &PicConfig) -> PicResult {
    run_with(cfg, RtConfig::meggie(cfg.nodes))
}

/// Run with a custom runtime configuration.
pub fn run_with(cfg: &PicConfig, rt_cfg: RtConfig) -> PicResult {
    let cfg = cfg.clone();
    let cfg_out = cfg.clone();
    let shape = cfg.shape();
    let extent = [shape[0] as f64, shape[1] as f64, shape[2] as f64];
    let steps = cfg.steps;
    let ppc = cfg.particles_per_cell;
    let cost = CostModel::default();
    let ns_field = cost.ns_per_flop * 10.0 * cfg.work_scale; // ~10 flops/cell
    let ns_particle = cost.ns_per_particle_update * cfg.work_scale;
    let grain = (cfg.total_cells() / (cfg.nodes as u64 * 40)).max(8);

    let state = Rc::new(RefCell::new(DriverState {
        items: None,
        compute_start: SimTime::ZERO,
        compute_end: SimTime::ZERO,
        count: 0,
        checksum: 0,
        rho_total: 0,
    }));
    let st = state.clone();

    let runtime = Runtime::new(rt_cfg);
    let report = runtime.run(
        move |phase: usize, ctx: &mut RtCtx<'_>, _prev: TaskValue| -> Option<Box<dyn WorkItem>> {
            // Phases: 0 init; then per step two phases (field, particles);
            // final wrap-up.
            if phase == 0 {
                let items = Items {
                    e: [
                        Grid::<f64, 3>::create(ctx, "E0", shape),
                        Grid::<f64, 3>::create(ctx, "E1", shape),
                    ],
                    b: Grid::<f64, 3>::create(ctx, "B", shape),
                    p: [
                        Grid::<Cell, 3>::create(ctx, "P0", shape),
                        Grid::<Cell, 3>::create(ctx, "P1", shape),
                    ],
                    rho: Grid::<u64, 3>::create(ctx, "RHO", shape),
                };
                let (e0, e1, b, p0, p1, rho) = (
                    items.e[0],
                    items.e[1],
                    items.b,
                    items.p[0],
                    items.p[1],
                    items.rho,
                );
                st.borrow_mut().items = Some(items);
                return Some(pfor(
                    PforSpec {
                        name: "pic-init",
                        range: GridBox::from_shape(shape).unwrap(),
                        grain,
                        ns_per_point: ns_particle * ppc as f64 / 4.0,
                            axis0_pieces: cfg.nodes as u64 * 4,
                    },
                    move |tile| {
                        let r = BoxRegion::from_box(*tile);
                        vec![
                            Requirement::write(e0.id, r.clone()),
                            Requirement::write(e1.id, r.clone()),
                            Requirement::write(b.id, r.clone()),
                            Requirement::write(p0.id, r.clone()),
                            Requirement::write(p1.id, r.clone()),
                            Requirement::write(rho.id, r),
                        ]
                    },
                    move |tctx, p| {
                        let (x, y, z) = (p[0], p[1], p[2]);
                        e0.set(tctx, p.0, e_init(x, y, z));
                        e1.set(tctx, p.0, 0.0);
                        b.set(tctx, p.0, b_init(x, y, z));
                        p0.set(tctx, p.0, seed_cell(x, y, z, shape, ppc));
                        p1.set(tctx, p.0, Vec::new());
                        rho.set(tctx, p.0, 0);
                    },
                ));
            }

            let step = (phase - 1) / 3;
            if step < steps {
                if phase == 1 {
                    st.borrow_mut().compute_start = ctx.now();
                }
                let s = st.borrow();
                let items = s.items.as_ref().unwrap();
                let (e_src, e_dst) = if step.is_multiple_of(2) {
                    (items.e[0], items.e[1])
                } else {
                    (items.e[1], items.e[0])
                };
                let (p_src, p_dst) = if step.is_multiple_of(2) {
                    (items.p[0], items.p[1])
                } else {
                    (items.p[1], items.p[0])
                };
                let b = items.b;
                let rho = items.rho;
                drop(s);
                let universe = GridBox::from_shape(shape).unwrap();

                if (phase - 1).is_multiple_of(3) {
                    // Field phase: E_dst = stencil(E_src) + B.
                    return Some(pfor(
                        PforSpec {
                            name: "pic-field",
                            range: universe,
                            grain,
                            ns_per_point: ns_field,
                            axis0_pieces: cfg.nodes as u64 * 4,
                        },
                        move |tile| {
                            let r = BoxRegion::from_box(*tile);
                            vec![
                                Requirement::read(e_src.id, r.dilate_within(1, &universe)),
                                Requirement::read(b.id, r.clone()),
                                Requirement::write(e_dst.id, r),
                            ]
                        },
                        move |tctx, p| {
                            let (x, y, z) = (p[0], p[1], p[2]);
                            let c = e_src.get(tctx, p.0);
                            let nb = |xx: i64, yy: i64, zz: i64| -> f64 {
                                if xx < 0
                                    || xx >= shape[0]
                                    || yy < 0
                                    || yy >= shape[1]
                                    || zz < 0
                                    || zz >= shape[2]
                                {
                                    c
                                } else {
                                    e_src.get(tctx, [xx, yy, zz])
                                }
                            };
                            let v = field_update(
                                c,
                                [
                                    nb(x - 1, y, z),
                                    nb(x + 1, y, z),
                                    nb(x, y - 1, z),
                                    nb(x, y + 1, z),
                                    nb(x, y, z - 1),
                                    nb(x, y, z + 1),
                                ],
                                b.get(tctx, p.0),
                            );
                            e_dst.set(tctx, p.0, v);
                        },
                    ));
                }
                if (phase - 1) % 3 == 2 {
                    // Moment phase: deposit charge density from the freshly
                    // pushed particle buffer (read particles, write RHO).
                    return Some(pfor(
                        PforSpec {
                            name: "pic-moments",
                            range: universe,
                            grain,
                            ns_per_point: ns_particle * ppc as f64 / 4.0,
                            axis0_pieces: cfg.nodes as u64 * 4,
                        },
                        move |tile| {
                            let r = BoxRegion::from_box(*tile);
                            vec![
                                Requirement::read(p_dst.id, r.clone()),
                                Requirement::write(rho.id, r),
                            ]
                        },
                        move |tctx, p| {
                            let cell = p_dst.get(tctx, p.0);
                            let total: u64 = cell.iter().map(deposit_quantized).sum();
                            rho.set(tctx, p.0, total);
                        },
                    ));
                }
                // Particle phase: gather from the dilated source tile,
                // push with E_dst (this step's field), keep landers.
                return Some(pfor(
                    PforSpec {
                        name: "pic-particles",
                        range: universe,
                        grain,
                        ns_per_point: ns_particle * ppc as f64,
                            axis0_pieces: cfg.nodes as u64 * 4,
                    },
                    move |tile| {
                        let r = BoxRegion::from_box(*tile);
                        let dil = r.dilate_within(1, &universe);
                        vec![
                            Requirement::read(p_src.id, dil.clone()),
                            Requirement::read(e_dst.id, dil),
                            Requirement::write(p_dst.id, r),
                        ]
                    },
                    move |tctx, p| {
                        // Collect particles landing in THIS cell from the
                        // 27-cell neighbourhood (incl. itself).
                        let me = [p[0], p[1], p[2]];
                        let mut landed: Cell = Vec::new();
                        for dx in -1..=1 {
                            for dy in -1..=1 {
                                for dz in -1..=1 {
                                    let s = [me[0] + dx, me[1] + dy, me[2] + dz];
                                    if s[0] < 0
                                        || s[0] >= shape[0]
                                        || s[1] < 0
                                        || s[1] >= shape[1]
                                        || s[2] < 0
                                        || s[2] >= shape[2]
                                    {
                                        continue;
                                    }
                                    let src_cell = p_src.get(tctx, s);
                                    let e_here = e_dst.get(tctx, s);
                                    for particle in &src_cell {
                                        let q = push(particle, e_here, extent);
                                        if cell_of(q.pos) == me {
                                            landed.push(q);
                                        }
                                    }
                                }
                            }
                        }
                        p_dst.set(tctx, me, landed);
                    },
                ));
            }

            // Wrap-up: count + checksum from the final particle buffer.
            let mut s = st.borrow_mut();
            s.compute_end = ctx.now();
            let items = s.items.as_ref().unwrap();
            let final_p = if steps.is_multiple_of(2) { items.p[0] } else { items.p[1] };
            let rho_item = items.rho;
            let (mut count, mut acc, mut rho_total) = (0u64, 0u64, 0u64);
            for loc in 0..ctx.nodes() {
                let frag = ctx.fragment_at::<GridFragment<Cell, 3>>(loc, final_p.id);
                frag.for_each(|_, cell| {
                    for particle in cell {
                        count += 1;
                        acc = acc.wrapping_add(particle_checksum(particle));
                    }
                });
                let rfrag = ctx.fragment_at::<GridFragment<u64, 3>>(loc, rho_item.id);
                rfrag.for_each(|_, v| rho_total = rho_total.wrapping_add(*v));
            }
            s.count = count;
            s.checksum = acc;
            s.rho_total = rho_total;
            None
        },
    );

    let s = state.borrow();
    let compute_seconds = (s.compute_end - s.compute_start).as_secs_f64();
    let validated = if cfg_out.validate {
        let (oc, osum) = oracle(&cfg_out);
        s.count == oc && s.checksum == osum && s.rho_total == oracle_rho_total(&cfg_out)
    } else {
        s.count == cfg_out.total_particles()
    };
    let _ = SimDuration::ZERO;
    PicResult {
        compute_seconds,
        updates_per_sec: cfg_out.total_updates() / compute_seconds,
        particles: s.count,
        checksum: s.checksum,
        rho_total: s.rho_total,
        validated,
        remote_msgs: report.remote_msgs,
        remote_bytes: report.remote_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_against_oracle_small() {
        let res = run(&PicConfig::small(2));
        assert!(res.validated, "AllScale PIC must match the oracle");
        assert!(res.updates_per_sec > 0.0);
    }

    #[test]
    fn single_node_works() {
        let res = run(&PicConfig::small(1));
        assert!(res.validated);
    }

    #[test]
    fn four_nodes_conserve_particles() {
        let cfg = PicConfig::small(4);
        let res = run(&cfg);
        assert_eq!(res.particles, cfg.total_particles());
        assert!(res.validated);
    }
}

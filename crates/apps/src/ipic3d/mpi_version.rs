//! The MPI reference port of the PIC mini-app: x-block decomposition with
//! explicit ghost planes for the field and explicit emigrant/immigrant
//! particle exchange per step — the hand-managed counterpart of the
//! runtime-managed AllScale version.

use allscale_des::SimDuration;
use allscale_mpi::{run_spmd, RankCtx};
use allscale_net::ClusterSpec;

use super::{
    b_init, cell_of, deposit_quantized, e_init, field_update, oracle, oracle_rho_total,
    particle_checksum, push, seed_cell, Cell, Particle, PicConfig, PicResult,
};

const TAG_FIELD_UP: u32 = 1;
const TAG_FIELD_DOWN: u32 = 2;
const TAG_PART_UP: u32 = 3;
const TAG_PART_DOWN: u32 = 4;

/// Run the MPI version on a fresh simulated cluster.
pub fn run(cfg: &PicConfig) -> PicResult {
    run_with(cfg, &ClusterSpec::meggie(cfg.nodes))
}

/// Run with a custom cluster spec.
pub fn run_with(cfg: &PicConfig, spec: &ClusterSpec) -> PicResult {
    let cfg = cfg.clone();
    let cfg_out = cfg.clone();
    let shape = cfg.shape();
    let (nx, ny, nz) = (shape[0], shape[1], shape[2]);
    let extent = [nx as f64, ny as f64, nz as f64];
    let steps = cfg.steps;
    let ppc = cfg.particles_per_cell;
    let cores = spec.cores_per_node as f64;
    let cost = allscale_core::CostModel::default();
    let ns_field = cost.ns_per_flop * 10.0 * cfg.work_scale;
    let ns_particle = cost.ns_per_particle_update * cfg.work_scale;

    let report = run_spmd(spec, move |ctx: &mut RankCtx<'_, (u64, u64, u64, u64)>| {
        let me = ctx.rank();
        let n = ctx.size();
        let lx = (nx as usize) / n; // x-layers per rank
        let x0 = me as i64 * lx as i64;
        let plane = (ny * nz) as usize;
        let idx = |x: usize, y: i64, z: i64| -> usize { x * plane + (y * nz + z) as usize };

        // Field buffers with ghost planes at x index 0 and lx+1.
        let mut e = vec![0.0f64; (lx + 2) * plane];
        let mut e2 = vec![0.0f64; (lx + 2) * plane];
        let b: Vec<f64> = {
            let mut v = vec![0.0f64; (lx + 2) * plane];
            for x in 0..lx {
                for y in 0..ny {
                    for z in 0..nz {
                        v[idx(x + 1, y, z)] = b_init(x0 + x as i64, y, z);
                    }
                }
            }
            v
        };
        for x in 0..lx {
            for y in 0..ny {
                for z in 0..nz {
                    e[idx(x + 1, y, z)] = e_init(x0 + x as i64, y, z);
                }
            }
        }
        // Particle cells (own block only, no ghosts — migrants are
        // exchanged explicitly).
        let mut cells: Vec<Cell> = Vec::with_capacity(lx * plane);
        for x in 0..lx {
            for y in 0..ny {
                for z in 0..nz {
                    cells.push(seed_cell(x0 + x as i64, y, z, shape, ppc));
                }
            }
        }
        let cell_at = |x: usize, y: i64, z: i64| -> usize { x * plane + (y * nz + z) as usize };
        let mut rho_cells: Vec<u64> = vec![0; lx * plane];
        ctx.compute(SimDuration::from_nanos_f64(
            (lx * plane) as f64 * ns_particle * ppc as f64 / 4.0 / cores,
        ));
        ctx.barrier();
        let t0 = ctx.now();

        for _ in 0..steps {
            // ------------------------------------------------ field phase
            // Exchange E ghost planes.
            if me > 0 {
                let first: Vec<f64> = e[idx(1, 0, 0)..idx(1, 0, 0) + plane].to_vec();
                ctx.send(me - 1, TAG_FIELD_DOWN, &first);
            }
            if me < n - 1 {
                let last: Vec<f64> = e[idx(lx, 0, 0)..idx(lx, 0, 0) + plane].to_vec();
                ctx.send(me + 1, TAG_FIELD_UP, &last);
            }
            if me > 0 {
                let ghost: Vec<f64> = ctx.recv(me - 1, TAG_FIELD_UP);
                e[idx(0, 0, 0)..idx(0, 0, 0) + plane].copy_from_slice(&ghost);
            }
            if me < n - 1 {
                let ghost: Vec<f64> = ctx.recv(me + 1, TAG_FIELD_DOWN);
                e[idx(lx + 1, 0, 0)..idx(lx + 1, 0, 0) + plane].copy_from_slice(&ghost);
            }
            // Update E over the local block.
            for x in 0..lx {
                let gx = x0 + x as i64;
                for y in 0..ny {
                    for z in 0..nz {
                        let c = e[idx(x + 1, y, z)];
                        let nbx = |gxx: i64, xi: usize| -> f64 {
                            if gxx < 0 || gxx >= nx {
                                c
                            } else {
                                e[idx(xi, y, z)]
                            }
                        };
                        let nb_in = |yy: i64, zz: i64| -> f64 {
                            if yy < 0 || yy >= ny || zz < 0 || zz >= nz {
                                c
                            } else {
                                e[idx(x + 1, yy, zz)]
                            }
                        };
                        e2[idx(x + 1, y, z)] = field_update(
                            c,
                            [
                                nbx(gx - 1, x),
                                nbx(gx + 1, x + 2),
                                nb_in(y - 1, z),
                                nb_in(y + 1, z),
                                nb_in(y, z - 1),
                                nb_in(y, z + 1),
                            ],
                            b[idx(x + 1, y, z)],
                        );
                    }
                }
            }
            std::mem::swap(&mut e, &mut e2);
            ctx.compute(SimDuration::from_nanos_f64(
                (lx * plane) as f64 * ns_field / cores,
            ));

            // --------------------------------------------- particle phase
            let mut next: Vec<Cell> = vec![Vec::new(); cells.len()];
            let mut up: Vec<Particle> = Vec::new(); // to rank-1
            let mut down: Vec<Particle> = Vec::new(); // to rank+1
            let mut pushed = 0u64;
            for x in 0..lx {
                for y in 0..ny {
                    for z in 0..nz {
                        let e_here = e[idx(x + 1, y, z)];
                        for p in &cells[cell_at(x, y, z)] {
                            let q = push(p, e_here, extent);
                            pushed += 1;
                            let c = cell_of(q.pos);
                            let cx = c[0] - x0;
                            if cx < 0 {
                                up.push(q);
                            } else if cx >= lx as i64 {
                                down.push(q);
                            } else {
                                next[cell_at(cx as usize, c[1], c[2])].push(q);
                            }
                        }
                    }
                }
            }
            ctx.compute(SimDuration::from_nanos_f64(
                pushed as f64 * ns_particle / cores,
            ));
            // Exchange migrants (one hop is enough: displacement < 1 cell).
            if me > 0 {
                ctx.send(me - 1, TAG_PART_UP, &up);
            }
            if me < n - 1 {
                ctx.send(me + 1, TAG_PART_DOWN, &down);
            }
            let mut arrivals: Vec<Particle> = Vec::new();
            if me > 0 {
                arrivals.extend(ctx.recv::<Vec<Particle>>(me - 1, TAG_PART_DOWN));
            }
            if me < n - 1 {
                arrivals.extend(ctx.recv::<Vec<Particle>>(me + 1, TAG_PART_UP));
            }
            for q in arrivals {
                let c = cell_of(q.pos);
                let cx = c[0] - x0;
                assert!(
                    (0..lx as i64).contains(&cx),
                    "migrant {} landed outside its neighbour block",
                    q.id
                );
                next[cell_at(cx as usize, c[1], c[2])].push(q);
            }
            cells = next;

            // Moment deposition: charge density per cell (local only).
            rho_cells = cells
                .iter()
                .map(|cell| cell.iter().map(deposit_quantized).sum::<u64>())
                .collect();
            ctx.compute(SimDuration::from_nanos_f64(
                cells.iter().map(Vec::len).sum::<usize>() as f64 * ns_particle / 4.0 / cores,
            ));
        }
        ctx.barrier();

        // Local count + checksum + rho total.
        let mut count = 0u64;
        let mut acc = 0u64;
        for cell in &cells {
            for p in cell {
                count += 1;
                acc = acc.wrapping_add(particle_checksum(p));
            }
        }
        let rho: u64 = rho_cells
            .iter()
            .fold(0u64, |a, &v| a.wrapping_add(v));
        (count, acc, rho, t0.as_nanos())
    });

    let particles: u64 = report.results.iter().map(|&(c, _, _, _)| c).sum();
    let checksum = report
        .results
        .iter()
        .fold(0u64, |a, &(_, s, _, _)| a.wrapping_add(s));
    let rho_total = report
        .results
        .iter()
        .fold(0u64, |a, &(_, _, r, _)| a.wrapping_add(r));
    let t0 = report.results.iter().map(|&(_, _, _, t)| t).max().unwrap_or(0);
    let seconds = (report.finish_time.as_nanos() - t0) as f64 / 1e9;
    let validated = if cfg_out.validate {
        let (oc, osum) = oracle(&cfg_out);
        particles == oc && checksum == osum && rho_total == oracle_rho_total(&cfg_out)
    } else {
        particles == cfg_out.total_particles()
    };
    PicResult {
        compute_seconds: seconds,
        updates_per_sec: cfg_out.total_updates() / seconds,
        particles,
        checksum,
        rho_total,
        validated,
        remote_msgs: report.traffic.remote_msgs(),
        remote_bytes: report.traffic.remote_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_against_oracle_small() {
        let res = run(&PicConfig::small(2));
        assert!(res.validated, "MPI PIC must match the oracle");
    }

    #[test]
    fn single_rank_works() {
        let res = run(&PicConfig::small(1));
        assert!(res.validated);
        assert_eq!(res.remote_msgs, 0);
    }

    #[test]
    fn matches_allscale_version() {
        let cfg = PicConfig::small(2);
        let m = run(&cfg);
        let a = crate::ipic3d::allscale_version::run(&cfg);
        assert_eq!(m.particles, a.particles);
        assert_eq!(m.checksum, a.checksum, "same physics in both versions");
    }
}

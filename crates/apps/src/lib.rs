//! # allscale-apps — the paper's evaluation applications
//!
//! The three codes of Table 1, each in an AllScale port and an MPI
//! reference port running on the same simulated cluster:
//!
//! - [`stencil`]: 2D heat-diffusion kernel (Parallel Research Kernels);
//! - [`ipic3d`]: a particle-in-cell mini-app with the data-structure
//!   profile of iPiC3D (field grids + per-cell particle lists);
//! - [`tpc`]: two-point correlation via pruned kd-tree traversal.
//!
//! Beyond the paper's batch codes, [`serve`] is a sharded key-value
//! store driven by the runtime's open-loop request-serving subsystem —
//! the workload behind the SLO-placement saturation sweeps.
//!
//! Every application ships a sequential oracle; the AllScale and MPI
//! versions are validated against it (and against each other) in tests.

#![warn(missing_docs)]

pub mod ipic3d;
pub mod serve;
pub mod stencil;
pub mod tpc;

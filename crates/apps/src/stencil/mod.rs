//! The 2D stencil benchmark (paper Section 3.4, Fig. 6, and Table 1 row 1).
//!
//! A five-point heat-diffusion kernel derived from the Parallel Research
//! Kernels: two double-buffered 2D grids updated over `T` time steps with
//! the diffusion rule of the paper's Fig. 6. Weak scaling: a fixed number
//! of grid points per node, blocks along the first axis. Metric: FLOPS
//! (7 flops per cell update).

pub mod allscale_version;
pub mod mpi_version;

/// Flops per cell update of the kernel (4 adds within the parenthesis,
/// 1 scale, 1 add, 1 fused neighbour subtract ≈ the PRK counting of 7).
pub const FLOPS_PER_CELL: u64 = 7;

/// The diffusion constant used by all versions.
pub const C: f64 = 0.125;

/// Benchmark configuration.
#[derive(Debug, Clone)]
pub struct StencilConfig {
    /// Cluster nodes.
    pub nodes: usize,
    /// Grid rows **per node** (weak scaling along the first axis).
    pub rows_per_node: i64,
    /// Grid columns (fixed).
    pub cols: i64,
    /// Time steps.
    pub steps: usize,
    /// Verify against the sequential oracle (costs an oracle run).
    pub validate: bool,
    /// Work scale: each simulated cell stands for this many real cells.
    /// The virtual per-cell compute cost and the reported FLOPS both
    /// scale by it, so throughput *shapes* match the paper's full-size
    /// problems while real (host) computation stays laptop-sized. See
    /// EXPERIMENTS.md for the calibration.
    pub work_scale: f64,
}

impl StencilConfig {
    /// A small, test-friendly configuration.
    pub fn small(nodes: usize) -> Self {
        StencilConfig {
            nodes,
            rows_per_node: 32,
            cols: 32,
            steps: 3,
            validate: true,
            work_scale: 1.0,
        }
    }

    /// The scaled-down stand-in for the paper's 20,000² elements/node.
    /// Rows (the distributed axis) are long; weak scaling adds rows.
    pub fn paper_scaled(nodes: usize) -> Self {
        StencilConfig {
            nodes,
            rows_per_node: 512,
            cols: 256,
            steps: 3,
            validate: false,
            // 20,000² real cells per node over 512×256 simulated ones.
            work_scale: 20_000.0 * 20_000.0 / (512.0 * 256.0),
        }
    }

    /// Total rows of the global grid.
    pub fn total_rows(&self) -> i64 {
        self.rows_per_node * self.nodes as i64
    }

    /// Total cells.
    pub fn total_cells(&self) -> u64 {
        (self.total_rows() * self.cols) as u64
    }

    /// Total floating-point operations over the run's compute phases
    /// (in *represented* real cells — scaled by `work_scale`).
    pub fn total_flops(&self) -> f64 {
        // Interior cells only.
        let interior = ((self.total_rows() - 2) * (self.cols - 2)) as u64;
        (interior * self.steps as u64 * FLOPS_PER_CELL) as f64 * self.work_scale
    }
}

/// The initial value of cell `(x, y)` — shared by every version.
#[inline]
pub fn initial(x: i64, y: i64) -> f64 {
    ((x * 31 + y * 17) % 101) as f64 / 101.0
}

/// One cell update — the kernel of paper Fig. 6 — shared by every version.
#[inline]
pub fn update(center: f64, left: f64, right: f64, up: f64, down: f64) -> f64 {
    center + C * (up + down + left + right - 4.0 * center)
}

/// Sequential oracle: runs the full stencil and returns the final field.
pub fn oracle(cfg: &StencilConfig) -> Vec<Vec<f64>> {
    let rows = cfg.total_rows() as usize;
    let cols = cfg.cols as usize;
    let mut a: Vec<Vec<f64>> = (0..rows)
        .map(|x| (0..cols).map(|y| initial(x as i64, y as i64)).collect())
        .collect();
    let mut b = a.clone();
    for _ in 0..cfg.steps {
        for x in 1..rows - 1 {
            for y in 1..cols - 1 {
                b[x][y] = update(a[x][y], a[x][y - 1], a[x][y + 1], a[x - 1][y], a[x + 1][y]);
            }
        }
        std::mem::swap(&mut a, &mut b);
    }
    a
}

/// Result of one benchmark execution.
#[derive(Debug, Clone)]
pub struct StencilResult {
    /// Virtual seconds spent in the time-step phases (init excluded).
    pub compute_seconds: f64,
    /// Throughput in GFLOPS.
    pub gflops: f64,
    /// Order-independent checksum of the final field.
    pub checksum: u64,
    /// Whether validation against the oracle passed (true when skipped).
    pub validated: bool,
    /// Remote messages sent during the whole run.
    pub remote_msgs: u64,
    /// Remote bytes moved during the whole run.
    pub remote_bytes: u64,
}

/// Order-independent exact checksum of field values: XOR-rotate of the bit
/// patterns keyed by position.
pub fn checksum_cell(x: i64, y: i64, v: f64) -> u64 {
    let key = (x as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (y as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    v.to_bits() ^ key.rotate_left((x % 61) as u32)
}

/// Combine cell checksums (wrapping add → order independent).
pub fn checksum_fold(acc: u64, cell: u64) -> u64 {
    acc.wrapping_add(cell)
}

/// Checksum of the oracle's final field.
pub fn oracle_checksum(field: &[Vec<f64>]) -> u64 {
    let mut acc = 0u64;
    for (x, row) in field.iter().enumerate() {
        for (y, &v) in row.iter().enumerate() {
            acc = checksum_fold(acc, checksum_cell(x as i64, y as i64, v));
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_diffuses_toward_mean() {
        let cfg = StencilConfig {
            nodes: 1,
            rows_per_node: 16,
            cols: 16,
            steps: 10,
            validate: false,
            work_scale: 1.0,
        };
        let final_field = oracle(&cfg);
        // Interior variance shrinks under diffusion.
        let initial_var = variance(&(0..16).map(|x| (0..16).map(|y| initial(x, y)).collect()).collect::<Vec<Vec<f64>>>());
        let final_var = variance(&final_field);
        assert!(final_var < initial_var, "{final_var} !< {initial_var}");
    }

    fn variance(f: &[Vec<f64>]) -> f64 {
        let vals: Vec<f64> = f
            .iter()
            .skip(1)
            .take(f.len() - 2)
            .flat_map(|r| r.iter().skip(1).take(r.len() - 2).copied())
            .collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64
    }

    #[test]
    fn checksums_are_order_independent() {
        let cells = [(0i64, 1i64, 0.5f64), (3, 4, -2.0), (7, 7, 1e9)];
        let fwd = cells
            .iter()
            .fold(0u64, |a, &(x, y, v)| checksum_fold(a, checksum_cell(x, y, v)));
        let rev = cells
            .iter()
            .rev()
            .fold(0u64, |a, &(x, y, v)| checksum_fold(a, checksum_cell(x, y, v)));
        assert_eq!(fwd, rev);
    }

    #[test]
    fn config_arithmetic() {
        let cfg = StencilConfig::small(4);
        assert_eq!(cfg.total_rows(), 128);
        assert_eq!(cfg.total_cells(), 128 * 32);
        assert_eq!(cfg.total_flops(), (126 * 30 * 3 * FLOPS_PER_CELL) as f64);
    }
}

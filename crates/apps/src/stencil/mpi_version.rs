//! The MPI reference port of the stencil: explicit row-block
//! decomposition, user-managed ghost rows, `sendrecv` halo exchange per
//! time step — the style the paper compares against ("state-of-the-art
//! MPI based implementations depending on explicit user-managed data
//! distributions").

use allscale_des::SimDuration;
use allscale_mpi::{run_spmd, RankCtx};
use allscale_net::ClusterSpec;

use super::{
    checksum_cell, checksum_fold, initial, oracle, oracle_checksum, update, StencilConfig,
    StencilResult, FLOPS_PER_CELL,
};

const TAG_UP: u32 = 1;
const TAG_DOWN: u32 = 2;

/// Run the MPI version on a fresh simulated cluster.
pub fn run(cfg: &StencilConfig) -> StencilResult {
    run_with(cfg, &ClusterSpec::meggie(cfg.nodes))
}

/// Run with a custom cluster spec.
pub fn run_with(cfg: &StencilConfig, spec: &ClusterSpec) -> StencilResult {
    let cfg = cfg.clone();
    let rows = cfg.total_rows() as usize;
    let cols = cfg.cols as usize;
    let steps = cfg.steps;
    let cores = spec.cores_per_node as f64;
    let ns_per_flop = allscale_core::CostModel::default().ns_per_flop;
    let scale = cfg.work_scale;

    let cfg2 = cfg.clone();
    let report = run_spmd(spec, move |ctx: &mut RankCtx<'_, (u64, u64)>| {
        let me = ctx.rank();
        let n = ctx.size();
        let rows_local = rows / n;
        let row0 = me * rows_local; // global index of my first row
        let is_first = me == 0;
        let is_last = me == n - 1;

        // Local buffers with one ghost row on each side.
        let width = cols;
        let mut a = vec![vec![0.0f64; width]; rows_local + 2];
        let mut b = vec![vec![0.0f64; width]; rows_local + 2];
        for x in 0..rows_local {
            for y in 0..width {
                let v = initial((row0 + x) as i64, y as i64);
                a[x + 1][y] = v;
                b[x + 1][y] = v;
            }
        }
        // Charge initialization, matching the AllScale version's init pfor.
        ctx.compute(SimDuration::from_nanos_f64(
            (rows_local * width) as f64 * scale.max(1.0) / cores,
        ));
        ctx.barrier();
        let t0 = ctx.now();

        for _ in 0..steps {
            // Halo exchange: my first real row goes up, my last goes down.
            if !is_first {
                ctx.send(me - 1, TAG_DOWN, &a[1]);
            }
            if !is_last {
                ctx.send(me + 1, TAG_UP, &a[rows_local]);
            }
            if !is_first {
                a[0] = ctx.recv(me - 1, TAG_UP);
            }
            if !is_last {
                a[rows_local + 1] = ctx.recv(me + 1, TAG_DOWN);
            }

            // Compute: interior cells of my block (global interior only).
            let mut cells = 0u64;
            #[allow(clippy::needless_range_loop)] // dual-buffer indexing
            for x in 1..=rows_local {
                let gx = row0 + x - 1;
                if gx == 0 || gx == rows - 1 {
                    continue;
                }
                for y in 1..width - 1 {
                    b[x][y] = update(a[x][y], a[x][y - 1], a[x][y + 1], a[x - 1][y], a[x + 1][y]);
                    cells += 1;
                }
            }
            ctx.compute(SimDuration::from_nanos_f64(
                cells as f64 * FLOPS_PER_CELL as f64 * ns_per_flop * scale / cores,
            ));
            std::mem::swap(&mut a, &mut b);
        }
        ctx.barrier();

        // Local checksum over owned (non-ghost) rows.
        let mut acc = 0u64;
        #[allow(clippy::needless_range_loop)] // ghost offset indexing
        for x in 1..=rows_local {
            let gx = (row0 + x - 1) as i64;
            for (y, &v) in a[x].iter().enumerate() {
                acc = checksum_fold(acc, checksum_cell(gx, y as i64, v));
            }
        }
        (acc, t0.as_nanos())
    });

    let checksum = report
        .results
        .iter()
        .fold(0u64, |a, &(c, _)| a.wrapping_add(c));
    let t0 = report.results.iter().map(|&(_, t)| t).max().unwrap_or(0);
    let seconds = (report.finish_time.as_nanos() - t0) as f64 / 1e9;
    let validated = if cfg2.validate {
        oracle_checksum(&oracle(&cfg2)) == checksum
    } else {
        true
    };
    StencilResult {
        compute_seconds: seconds,
        gflops: cfg2.total_flops() / seconds / 1e9,
        checksum,
        validated,
        remote_msgs: report.traffic.remote_msgs(),
        remote_bytes: report.traffic.remote_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_against_oracle_small() {
        let res = run(&StencilConfig::small(4));
        assert!(res.validated, "MPI result must match the oracle");
    }

    #[test]
    fn single_rank_runs() {
        let res = run(&StencilConfig::small(1));
        assert!(res.validated);
        assert_eq!(res.remote_msgs, 0);
    }

    #[test]
    fn matches_allscale_version_bit_for_bit() {
        let cfg = StencilConfig::small(2);
        let m = run(&cfg);
        let a = crate::stencil::allscale_version::run(&cfg);
        assert_eq!(m.checksum, a.checksum, "both versions run the same kernel");
    }
}

//! The AllScale port of the stencil (paper Fig. 6b): two `Grid<f64,2>`
//! data items, `pfor` over the interior per time step, implicit data
//! management. Compare with the explicit halo exchange of
//! [`crate::stencil::mpi_version`].

use std::cell::RefCell;
use std::rc::Rc;

use allscale_core::{
    pfor, CostModel, Grid, PforSpec, Requirement, RtConfig, RtCtx, RunReport, Runtime, TaskValue,
    WorkItem,
};
use allscale_des::SimTime;
use allscale_region::{BoxRegion, GridBox, GridFragment, Point};

use super::{
    checksum_cell, checksum_fold, initial, oracle, oracle_checksum, update, StencilConfig,
    StencilResult, FLOPS_PER_CELL,
};

struct DriverState {
    a: Option<Grid<f64, 2>>,
    b: Option<Grid<f64, 2>>,
    compute_start: SimTime,
    compute_end: SimTime,
    checksum: u64,
}

/// Run the AllScale version on a fresh simulated cluster.
pub fn run(cfg: &StencilConfig) -> StencilResult {
    run_with(cfg, RtConfig::meggie(cfg.nodes))
}

/// Run with a custom runtime configuration (policy/index ablations).
pub fn run_with(cfg: &StencilConfig, rt_cfg: RtConfig) -> StencilResult {
    run_with_report(cfg, rt_cfg).0
}

/// Like [`run_with`], but also hands back the full [`RunReport`] — used
/// by the fault-recovery example and tests to inspect the resilience
/// counters (checkpoints, detections, recoveries, retries) alongside the
/// application-level result.
pub fn run_with_report(cfg: &StencilConfig, rt_cfg: RtConfig) -> (StencilResult, RunReport) {
    let cfg = cfg.clone();
    let cfg_out = cfg.clone();
    let rows = cfg.total_rows();
    let cols = cfg.cols;
    let steps = cfg.steps;
    let cost = CostModel::default();
    let ns_per_cell = cost.ns_per_flop * FLOPS_PER_CELL as f64 * cfg.work_scale;

    let state = Rc::new(RefCell::new(DriverState {
        a: None,
        b: None,
        compute_start: SimTime::ZERO,
        compute_end: SimTime::ZERO,
        checksum: 0,
    }));
    let st = state.clone();

    let runtime = Runtime::new(rt_cfg);
    let report = runtime.run(
        move |phase: usize, ctx: &mut RtCtx<'_>, _prev: TaskValue| -> Option<Box<dyn WorkItem>> {
            // Phase layout: 0 = init, 1..=steps = time steps, steps+1 = wrap-up.
            if phase == 0 {
                let a = Grid::<f64, 2>::create(ctx, "A", [rows, cols]);
                let b = Grid::<f64, 2>::create(ctx, "B", [rows, cols]);
                {
                    let mut s = st.borrow_mut();
                    s.a = Some(a);
                    s.b = Some(b);
                }
                // Initialize both buffers over the full grid (Fig. 6b
                // lines 5-7); first touch distributes the data.
                return Some(pfor(
                    PforSpec {
                        name: "stencil-init",
                        range: a.full_box(),
                        grain: tile_grain(&cfg),
                        ns_per_point: cfg.work_scale.max(1.0),
                        axis0_pieces: cfg.nodes as u64 * 4,
                    },
                    move |tile| {
                        vec![
                            Requirement::write(a.id, BoxRegion::from_box(*tile)),
                            Requirement::write(b.id, BoxRegion::from_box(*tile)),
                        ]
                    },
                    move |tctx, p| {
                        let v = initial(p[0], p[1]);
                        a.set(tctx, p.0, v);
                        b.set(tctx, p.0, v);
                    },
                ));
            }
            if phase <= steps {
                if phase == 1 {
                    st.borrow_mut().compute_start = ctx.now();
                }
                let s = st.borrow();
                let (a, b) = (s.a.unwrap(), s.b.unwrap());
                // Double buffering: swap roles per step (Fig. 6b line 18).
                let (src, dst) = if phase % 2 == 1 { (a, b) } else { (b, a) };
                drop(s);
                let universe = GridBox::from_shape([rows, cols]).unwrap();
                let interior = GridBox::new(Point([1, 1]), Point([rows - 1, cols - 1])).unwrap();
                return Some(pfor(
                    PforSpec {
                        name: "stencil-step",
                        range: interior,
                        grain: tile_grain(&cfg),
                        ns_per_point: ns_per_cell,
                        axis0_pieces: cfg.nodes as u64 * 4,
                    },
                    move |tile| {
                        let read = BoxRegion::from_box(*tile).dilate_within(1, &universe);
                        vec![
                            Requirement::read(src.id, read),
                            Requirement::write(dst.id, BoxRegion::from_box(*tile)),
                        ]
                    },
                    move |tctx, p| {
                        let c = src.get(tctx, p.0);
                        let l = src.get(tctx, [p[0], p[1] - 1]);
                        let r = src.get(tctx, [p[0], p[1] + 1]);
                        let u = src.get(tctx, [p[0] - 1, p[1]]);
                        let d = src.get(tctx, [p[0] + 1, p[1]]);
                        dst.set(tctx, p.0, update(c, l, r, u, d));
                    },
                ));
            }
            // Wrap-up: record times and checksum the final field.
            let mut s = st.borrow_mut();
            s.compute_end = ctx.now();
            let final_grid = if steps % 2 == 1 { s.b.unwrap() } else { s.a.unwrap() };
            let mut acc = 0u64;
            for loc in 0..ctx.nodes() {
                let frag = ctx.fragment_at::<GridFragment<f64, 2>>(loc, final_grid.id);
                let owned = ctx.owned_region_at(loc, final_grid.id);
                frag.for_each(|p, v| {
                    // Only owned cells count (replicas are transient, but
                    // by wrap-up they are all dropped anyway).
                    let _ = &owned;
                    acc = checksum_fold(acc, checksum_cell(p[0], p[1], *v));
                });
            }
            s.checksum = acc;
            None
        },
    );

    let s = state.borrow();
    let compute_seconds = (s.compute_end - s.compute_start).as_secs_f64();
    let validated = if cfg_out.validate {
        oracle_checksum(&oracle(&cfg_out)) == s.checksum
    } else {
        true
    };
    let result = StencilResult {
        compute_seconds,
        gflops: cfg_out.total_flops() / compute_seconds / 1e9,
        checksum: s.checksum,
        validated,
        remote_msgs: report.remote_msgs,
        remote_bytes: report.remote_bytes,
    };
    (result, report)
}

/// Tile grain: aim for ~2 tiles per core so the split tree bottoms out at
/// the policy's saturation depth with meaningful leaf work.
fn tile_grain(cfg: &StencilConfig) -> u64 {
    let total = cfg.total_cells();
    let leaves = (cfg.nodes as u64) * 40; // 2× a 20-core node
    (total / leaves).max(64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_against_oracle_small() {
        let cfg = StencilConfig::small(4);
        let res = run(&cfg);
        assert!(res.validated, "distributed result must match the oracle");
        assert!(res.gflops > 0.0);
    }

    #[test]
    fn validates_on_single_node() {
        let cfg = StencilConfig::small(1);
        let res = run(&cfg);
        assert!(res.validated);
        assert_eq!(res.remote_msgs, 0);
    }

    #[test]
    fn deterministic_checksums() {
        let cfg = StencilConfig::small(2);
        let r1 = run(&cfg);
        let r2 = run(&cfg);
        assert_eq!(r1.checksum, r2.checksum);
        assert_eq!(r1.remote_msgs, r2.remote_msgs);
    }
}

//! A sharded key-value store served under open-loop load — the workload
//! behind the serving subsystem's saturation sweeps.
//!
//! The store is a [`DistMap<u64, u64>`] whose hash buckets are grouped
//! into contiguous *shards*; a setup phase preloads every key and pins
//! each shard to one locality via first touch. The request stream is
//! precomputed from a seed: shard popularity follows a Zipf distribution
//! (the classic hot-shard regime), keys within a shard are uniform, and
//! a configurable fraction of requests are writes. Reads are point gets
//! or splittable multi-gets (small task trees whose leaves place
//! data-aware); writes are commutative increments, so the final value of
//! every key is independent of the interleaving — which is what lets the
//! conformance suite check "no acknowledged write is lost" across
//! fail-stop recovery without assuming an order.
//!
//! [`run_with`] drives the three phases (preload, serve, verify) on any
//! [`RtConfig`] and panics if the surviving store contents disagree with
//! the write oracle.

use std::cell::RefCell;
use std::rc::Rc;

use allscale_core::{
    pfor, CostModel, DistMap, Done, PforSpec, Request, Requirement, RtConfig, RtCtx, RunReport,
    Runtime, ServeSpec, SloConfig, SplitOutcome, TaskCtx, TaskValue, WorkItem,
};
use allscale_des::rng::{XorShift64Star, ZipfSampler, MIX_GOLDEN};
use allscale_des::{ArrivalProcess, SimDuration};
use allscale_region::{BucketRegion, GridBox, KeyedFragment};

/// Workload configuration of the serving benchmark.
#[derive(Debug, Clone)]
pub struct ServeAppConfig {
    /// Number of shards (contiguous bucket ranges).
    pub shards: u32,
    /// Hash buckets per shard. Also the granularity of write
    /// invalidation: a write to a replicated shard punches a one-bucket
    /// hole in every replica, so too few buckets per shard lets a
    /// modest write rate erode whole replicas within one control
    /// period and replication stops paying off.
    pub buckets_per_shard: u32,
    /// Keys preloaded into the store.
    pub keys: u64,
    /// Offered load of the open-loop Poisson arrival process, requests
    /// per virtual second.
    pub rate_rps: f64,
    /// Total requests injected.
    pub requests: u64,
    /// Write fraction in parts per million.
    pub write_ppm: u32,
    /// Fraction of reads that are multi-gets, in parts per million.
    pub multiget_ppm: u32,
    /// Keys per multi-get (its task tree has this many leaves).
    pub multiget_fanout: u32,
    /// Zipf exponent of the shard popularity distribution (0 = uniform).
    pub zipf_s: f64,
    /// Virtual flops charged per single-key operation.
    pub service_flops: u64,
    /// Seed of the arrival process and the request plan.
    pub seed: u64,
    /// SLO and controller policy.
    pub slo: SloConfig,
}

impl Default for ServeAppConfig {
    fn default() -> Self {
        ServeAppConfig {
            shards: 8,
            buckets_per_shard: 64,
            keys: 2048,
            rate_rps: 300_000.0,
            requests: 20_000,
            write_ppm: 20_000,
            multiget_ppm: 150_000,
            multiget_fanout: 4,
            zipf_s: 1.2,
            service_flops: 12_000,
            seed: 42,
            slo: SloConfig::default(),
        }
    }
}

impl ServeAppConfig {
    /// A small configuration for tests (short stream, low rate).
    pub fn small() -> Self {
        ServeAppConfig {
            keys: 512,
            rate_rps: 150_000.0,
            requests: 3_000,
            ..Default::default()
        }
    }

    /// Total bucket count of the store.
    pub fn buckets(&self) -> u32 {
        self.shards * self.buckets_per_shard
    }
}

/// The value every key is preloaded with.
fn initial_value(key: u64) -> u64 {
    key.wrapping_mul(3).wrapping_add(7)
}

/// The shard a key belongs to.
fn shard_of(cfg: &ServeAppConfig, key: u64) -> u32 {
    BucketRegion::bucket_of_bytes(cfg.buckets(), &key.to_le_bytes()) / cfg.buckets_per_shard
}

/// One precomputed request.
#[derive(Debug, Clone)]
enum PlannedOp {
    /// Read `keys` (one key = leaf get, several = splittable multi-get).
    Read(Vec<u64>),
    /// Increment `key` by `delta`.
    Write(u64, u64),
}

/// The full request stream, precomputed from the seed so the driver, the
/// factory and the oracle all agree on it — and so a post-recovery
/// replay regenerates it identically.
#[derive(Debug, Clone)]
struct Plan {
    reqs: Vec<(u32, PlannedOp)>,
}

fn build_plan(cfg: &ServeAppConfig) -> Plan {
    // Group the key space by shard once.
    let mut shard_keys: Vec<Vec<u64>> = vec![Vec::new(); cfg.shards as usize];
    for k in 0..cfg.keys {
        shard_keys[shard_of(cfg, k) as usize].push(k);
    }
    assert!(
        shard_keys.iter().all(|ks| !ks.is_empty()),
        "every shard needs at least one key; use more keys or fewer shards"
    );
    let mut rng = XorShift64Star::with_mix(cfg.seed, MIX_GOLDEN);
    let zipf = ZipfSampler::new(cfg.shards as usize, cfg.zipf_s);
    let mut reqs = Vec::with_capacity(cfg.requests as usize);
    for i in 0..cfg.requests {
        let shard = zipf.sample(&mut rng);
        let keys = &shard_keys[shard];
        let pick = |rng: &mut XorShift64Star| keys[(rng.next() % keys.len() as u64) as usize];
        let op = if rng.next_ppm() < cfg.write_ppm {
            PlannedOp::Write(pick(&mut rng), (i % 1_000) + 1)
        } else if rng.next_ppm() < cfg.multiget_ppm {
            let n = cfg.multiget_fanout.max(2) as usize;
            PlannedOp::Read((0..n).map(|_| pick(&mut rng)).collect())
        } else {
            PlannedOp::Read(vec![pick(&mut rng)])
        };
        reqs.push((shard as u32, op));
    }
    Plan { reqs }
}

/// A get over one or more keys. A single key is a leaf; several keys
/// split into per-key leaf gets (a small read task tree).
struct GetTask {
    map: DistMap<u64, u64>,
    buckets: u32,
    keys: Vec<u64>,
    flops: u64,
    depth: u32,
}

impl GetTask {
    fn region(&self) -> BucketRegion {
        let mut r = BucketRegion::new(self.buckets);
        for k in &self.keys {
            r.set(
                BucketRegion::bucket_of_bytes(self.buckets, &k.to_le_bytes()),
                true,
            );
        }
        r
    }
}

impl WorkItem for GetTask {
    fn name(&self) -> &'static str {
        "serve-get"
    }
    fn depth(&self) -> u32 {
        self.depth
    }
    fn can_split(&self) -> bool {
        self.keys.len() > 1
    }
    fn requirements(&self) -> Vec<Requirement> {
        vec![Requirement::read(self.map.id, self.region())]
    }
    fn cost(&self, cost: &CostModel, locality: usize) -> SimDuration {
        cost.flops(locality, self.flops * self.keys.len() as u64)
    }
    fn process(self: Box<Self>, ctx: &mut TaskCtx<'_>) -> Done {
        for k in &self.keys {
            // A read racing a replica invalidation may miss — the value
            // is not part of the correctness contract, writes are.
            let _ = self.map.get(ctx, k);
        }
        Done::Value(None)
    }
    fn split(self: Box<Self>) -> SplitOutcome {
        let children: Vec<Box<dyn WorkItem>> = self
            .keys
            .iter()
            .map(|&k| {
                Box::new(GetTask {
                    map: self.map,
                    buckets: self.buckets,
                    keys: vec![k],
                    flops: self.flops,
                    depth: self.depth + 1,
                }) as Box<dyn WorkItem>
            })
            .collect();
        SplitOutcome {
            children,
            combine: Box::new(|_| None),
        }
    }
}

/// A commutative increment of one key (leaf write).
struct PutTask {
    map: DistMap<u64, u64>,
    buckets: u32,
    key: u64,
    delta: u64,
    flops: u64,
}

impl WorkItem for PutTask {
    fn name(&self) -> &'static str {
        "serve-put"
    }
    fn depth(&self) -> u32 {
        0
    }
    fn can_split(&self) -> bool {
        false
    }
    fn requirements(&self) -> Vec<Requirement> {
        let b = BucketRegion::bucket_of_bytes(self.buckets, &self.key.to_le_bytes());
        vec![Requirement::write(
            self.map.id,
            BucketRegion::of_bucket(self.buckets, b),
        )]
    }
    fn cost(&self, cost: &CostModel, locality: usize) -> SimDuration {
        cost.flops(locality, self.flops)
    }
    fn process(self: Box<Self>, ctx: &mut TaskCtx<'_>) -> Done {
        let cur = self.map.get(ctx, &self.key).unwrap_or(0);
        self.map.insert(ctx, self.key, cur.wrapping_add(self.delta));
        Done::Value(None)
    }
    fn split(self: Box<Self>) -> SplitOutcome {
        unreachable!("puts never split")
    }
}

/// Outcome of a serving run: the report plus the verification verdict.
pub struct ServeOutcome {
    /// The runtime's run report (serving stats in `monitor.serve`).
    pub report: RunReport,
    /// Keys whose final value was checked against the write oracle.
    pub keys_checked: u64,
}

/// Run the serving benchmark on `rt`: preload, serve the precomputed
/// stream, verify every key against the write oracle.
///
/// # Panics
/// Panics if any acknowledged write is missing from the surviving store
/// (the oracle check) — including across fail-stop recoveries.
pub fn run_with(cfg: &ServeAppConfig, rt: RtConfig) -> ServeOutcome {
    let cfg = cfg.clone();
    let buckets = cfg.buckets();
    let plan = Rc::new(build_plan(&cfg));
    let map_cell: Rc<RefCell<Option<DistMap<u64, u64>>>> = Rc::new(RefCell::new(None));
    let checked: Rc<RefCell<u64>> = Rc::new(RefCell::new(0));

    let mc = map_cell.clone();
    let plan_d = plan.clone();
    let checked_d = checked.clone();
    let cfg_d = cfg.clone();
    let runtime = Runtime::new(rt);
    let report = runtime.run(
        move |phase: usize, ctx: &mut RtCtx<'_>, _prev: TaskValue| -> Option<Box<dyn WorkItem>> {
            match phase {
                0 => {
                    let map = DistMap::<u64, u64>::create(ctx, "serve-kv", buckets);
                    *mc.borrow_mut() = Some(map);
                    let keys = cfg_d.keys;
                    let per_shard = cfg_d.buckets_per_shard;
                    // One leaf tile per shard: first touch pins each
                    // shard's buckets to one locality, block-wise.
                    Some(pfor(
                        PforSpec {
                            name: "preload",
                            range: GridBox::<1>::from_shape([buckets as i64]).unwrap(),
                            grain: per_shard as u64,
                            ns_per_point: 800.0,
                            axis0_pieces: cfg_d.shards as u64,
                        },
                        move |tile| {
                            vec![Requirement::write(
                                map.id,
                                map.range_region(tile.lo()[0] as u32, tile.hi()[0] as u32),
                            )]
                        },
                        move |tctx, p| {
                            let my_bucket = p[0] as u32;
                            for k in 0..keys {
                                let b =
                                    BucketRegion::bucket_of_bytes(buckets, &k.to_le_bytes());
                                if b == my_bucket {
                                    map.insert(tctx, k, initial_value(k));
                                }
                            }
                        },
                    ))
                }
                1 => {
                    let map = mc.borrow().expect("map created in phase 0");
                    let shard_regions: Vec<_> = (0..cfg_d.shards)
                        .map(|s| {
                            Box::new(map.range_region(
                                s * cfg_d.buckets_per_shard,
                                (s + 1) * cfg_d.buckets_per_shard,
                            )) as Box<dyn allscale_core::DynRegion>
                        })
                        .collect();
                    let plan_f = plan_d.clone();
                    let flops = cfg_d.service_flops;
                    let factory = move |req: u64| -> Request {
                        let (shard, op) = &plan_f.reqs[req as usize];
                        match op {
                            PlannedOp::Read(keys) => Request {
                                shard: *shard as usize,
                                write: false,
                                work: Box::new(GetTask {
                                    map,
                                    buckets,
                                    keys: keys.clone(),
                                    flops,
                                    depth: 0,
                                }),
                            },
                            PlannedOp::Write(key, delta) => Request {
                                shard: *shard as usize,
                                write: true,
                                work: Box::new(PutTask {
                                    map,
                                    buckets,
                                    key: *key,
                                    delta: *delta,
                                    flops,
                                }),
                            },
                        }
                    };
                    ctx.serve(ServeSpec {
                        item: map.id,
                        shard_regions,
                        arrivals: ArrivalProcess::Poisson {
                            rate_rps: cfg_d.rate_rps,
                            seed: cfg_d.seed,
                        },
                        max_requests: cfg_d.requests,
                        slo: cfg_d.slo.clone(),
                        factory: Box::new(factory),
                    });
                    None
                }
                2 => {
                    // Write oracle: increments commute, so the expected
                    // final value of each key is its initial value plus
                    // the sum of all planned deltas — regardless of the
                    // execution interleaving or mid-serving recoveries.
                    let map = mc.borrow().expect("map created in phase 0");
                    let mut expected: Vec<u64> =
                        (0..cfg_d.keys).map(initial_value).collect();
                    for (_, op) in &plan_d.reqs {
                        if let PlannedOp::Write(key, delta) = op {
                            expected[*key as usize] =
                                expected[*key as usize].wrapping_add(*delta);
                        }
                    }
                    let mut n = 0u64;
                    for loc in 0..ctx.nodes() {
                        // Only the owned region is authoritative — other
                        // localities may hold stale read replicas.
                        let owned = ctx.owned_region_at(loc, map.id);
                        let owned = owned
                            .as_any()
                            .downcast_ref::<BucketRegion>()
                            .expect("bucket region");
                        let frag =
                            ctx.fragment_at::<KeyedFragment<u64, u64>>(loc, map.id);
                        for (k, v) in frag.iter() {
                            let b =
                                BucketRegion::bucket_of_bytes(buckets, &k.to_le_bytes());
                            if owned.contains(b) {
                                assert_eq!(
                                    *v, expected[*k as usize],
                                    "key {k} lost acknowledged writes (locality {loc})"
                                );
                                n += 1;
                            }
                        }
                    }
                    assert_eq!(
                        n, cfg_d.keys,
                        "ownership must cover every preloaded key exactly once"
                    );
                    *checked_d.borrow_mut() = n;
                    None
                }
                _ => unreachable!("three phases"),
            }
        },
    );
    let keys_checked = *checked.borrow();
    ServeOutcome {
        report,
        keys_checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_deterministic_and_skewed() {
        let cfg = ServeAppConfig::small();
        let a = build_plan(&cfg);
        let b = build_plan(&cfg);
        assert_eq!(a.reqs.len(), b.reqs.len());
        for (x, y) in a.reqs.iter().zip(&b.reqs) {
            assert_eq!(x.0, y.0);
            assert_eq!(format!("{:?}", x.1), format!("{:?}", y.1));
        }
        // Shard 0 dominates under Zipf 1.2.
        let hot = a.reqs.iter().filter(|(s, _)| *s == 0).count();
        assert!(hot * 2 > a.reqs.len() / 2, "hot shard carries >25%: {hot}");
        // Writes are present but a small minority.
        let writes = a
            .reqs
            .iter()
            .filter(|(_, op)| matches!(op, PlannedOp::Write(..)))
            .count();
        assert!(writes > 0 && writes < a.reqs.len() / 5);
    }

    #[test]
    fn small_run_serves_and_verifies() {
        let cfg = ServeAppConfig::small();
        let out = run_with(&cfg, RtConfig::test(4, 2));
        let v = &out.report.monitor.serve;
        assert_eq!(v.offered, cfg.requests);
        assert_eq!(v.completed + v.shed, v.offered);
        assert_eq!(out.keys_checked, cfg.keys);
        assert!(v.latency.tally().count() > 0);
        // Two work phases: the preload pfor and the serving phase (the
        // verify phase returns no work item).
        assert_eq!(out.report.phases, 2);
    }

    #[test]
    fn same_seed_is_bit_identical() {
        let cfg = ServeAppConfig::small();
        let a = run_with(&cfg, RtConfig::test(4, 2)).report.to_json();
        let b = run_with(&cfg, RtConfig::test(4, 2)).report.to_json();
        assert_eq!(a, b);
    }
}

//! The data-integrity service: end-to-end checksums and replica scrubbing.
//!
//! The formal model's data-preservation property (paper Section 2.5)
//! assumes that bytes, once transferred or checkpointed, stay what they
//! were. Real fabrics and real storage break that assumption rarely but
//! not never — and a runtime that owns *all* data movement (Section 3.2)
//! is exactly the layer that can close the gap without touching user
//! code. This module holds the policy side of that service:
//!
//! - **verified transfers** — every runtime payload is framed with an
//!   FNV-1a checksum ([`allscale_net::frame`]); a receiver that detects a
//!   mismatch discards the bytes and re-requests the transfer under the
//!   resilience retry policy instead of consuming poison;
//! - **verified checkpoints** — each checkpoint shard stores its
//!   checksum; `restore` refuses a corrupt shard and falls back to an
//!   older checkpoint (or a full restart) rather than resurrecting bad
//!   state;
//! - **background scrubbing** — a periodic pass on the simulated clock
//!   walks persistent replicas, compares their fingerprints against the
//!   owner's primary copy, repairs divergent replicas with a fresh billed
//!   transfer, and quarantines replicas that keep diverging.
//!
//! The mechanism — frame sealing/opening at the transfer sites, shard
//! verification during recovery, and the scrub tick — lives in
//! [`crate::runtime`]; the [`DataItemManager`](crate::DataItemManager)
//! contributes the `peek_bytes`/`drop_persistent` audit primitives.
//!
//! Like batching, tracing, and resilience, the whole service is
//! **off by default** (`RtConfig::integrity = None`): a disabled run is
//! byte-identical to one built before the service existed.

use std::collections::BTreeMap;

use allscale_des::SimDuration;

use crate::task::ItemId;

/// Configuration of the data-integrity service.
#[derive(Debug, Clone, Copy)]
pub struct IntegrityConfig {
    /// Frame every runtime payload with a checksum and verify on receipt;
    /// a detected corruption is re-requested under the retry policy
    /// instead of delivered. With this off (and a corrupting fault plan),
    /// poisoned bytes are consumed silently — the ablation baseline.
    pub verify_transfers: bool,
    /// Store per-shard checksums with every checkpoint and verify them
    /// during recovery, falling back to an older checkpoint (or a full
    /// restart) when a shard fails its check.
    pub verify_checkpoints: bool,
    /// Period of the background replica scrubber (`None` disables it).
    pub scrub_period: Option<SimDuration>,
    /// Strikes (divergences found by the scrubber) after which a replica
    /// is quarantined out of the replica set instead of repaired again.
    pub quarantine_after: u32,
}

impl Default for IntegrityConfig {
    fn default() -> Self {
        IntegrityConfig {
            verify_transfers: true,
            verify_checkpoints: true,
            scrub_period: Some(SimDuration::from_micros(100)),
            quarantine_after: 3,
        }
    }
}

/// Integrity metrics, aggregated into [`crate::Monitor`].
#[derive(Debug, Clone, Default)]
pub struct IntegrityStats {
    /// Transfers corrupted on the wire by fault injection (mirrors
    /// `TrafficStats::corrupted`).
    pub wire_corruptions: u64,
    /// Wire corruptions caught by checksum verification (mirrors
    /// `TrafficStats::corrupt_detected`).
    pub wire_detected: u64,
    /// Wire corruptions delivered unverified — nonzero only when a
    /// corrupting fault plan runs without `verify_transfers` (mirrors
    /// `TrafficStats::corrupt_undetected`).
    pub wire_undetected: u64,
    /// Transfer re-requests issued after a detected corruption (mirrors
    /// `TrafficStats::re_requests`).
    pub re_requests: u64,
    /// At-rest corruption events injected by the fault plan's rot arm
    /// (persistent replicas and checkpoint shards).
    pub rot_injected: u64,
    /// Checkpoint shards refused during recovery because their stored
    /// checksum no longer matched.
    pub checkpoint_shards_rejected: u64,
    /// Recoveries that had to fall back past a corrupt checkpoint to an
    /// older one (or to a full restart).
    pub checkpoint_fallbacks: u64,
    /// Anchor/delta chain links checksum-verified during recovery
    /// reconstructions (each link's shards are verified before the delta
    /// is applied).
    pub ckpt_links_verified: u64,
    /// Completed scrubber passes over the cluster.
    pub scrub_passes: u64,
    /// Replica audits performed (one per replica region per pass).
    pub replicas_scrubbed: u64,
    /// Audits that found the replica diverging from its owner.
    pub scrub_divergent: u64,
    /// Divergent replicas repaired with a fresh transfer from the owner.
    pub scrub_repairs: u64,
    /// Replicas quarantined out of the replica set after repeated
    /// divergence.
    pub quarantines: u64,
}

/// Live state of the integrity service, owned by the runtime world.
pub(crate) struct IntegrityManager {
    /// The configured policy.
    pub cfg: IntegrityConfig,
    /// Divergence strikes per (holder locality, item), accumulated by the
    /// scrubber and consulted for quarantine decisions.
    strikes: BTreeMap<(usize, ItemId), u32>,
}

impl IntegrityManager {
    /// A manager with the given policy.
    pub fn new(cfg: IntegrityConfig) -> Self {
        IntegrityManager {
            cfg,
            strikes: BTreeMap::new(),
        }
    }

    /// Record one divergence of `item`'s replica at `holder`; returns the
    /// accumulated strike count.
    pub fn strike(&mut self, holder: usize, item: ItemId) -> u32 {
        let n = self.strikes.entry((holder, item)).or_insert(0);
        *n += 1;
        *n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let cfg = IntegrityConfig::default();
        assert!(cfg.verify_transfers);
        assert!(cfg.verify_checkpoints);
        assert!(cfg.scrub_period.unwrap() > SimDuration::ZERO);
        assert!(cfg.quarantine_after >= 1);
    }

    #[test]
    fn strikes_accumulate_per_holder_and_item() {
        let mut mgr = IntegrityManager::new(IntegrityConfig::default());
        assert_eq!(mgr.strike(1, ItemId(0)), 1);
        assert_eq!(mgr.strike(1, ItemId(0)), 2);
        // Distinct holder or item: independent counters.
        assert_eq!(mgr.strike(2, ItemId(0)), 1);
        assert_eq!(mgr.strike(1, ItemId(1)), 1);
        assert_eq!(mgr.strike(1, ItemId(0)), 3);
    }
}

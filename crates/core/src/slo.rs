//! The request-serving subsystem: open-loop workloads, per-shard
//! latency SLOs and the placement controller that enforces them.
//!
//! The paper's runtime targets batch-parallel phases, but its machinery
//! — distributed data items, replicate/broadcast transfers, the cost
//! model, monitoring — is exactly what an online request-serving tier
//! needs. This module adds the missing piece: an application registers a
//! [`ServeSpec`] (an arrival process plus a factory turning request
//! numbers into small task trees over a sharded data item), and the
//! runtime drives an *open-loop* serving phase on the virtual clock.
//! Requests arrive whether or not earlier ones finished, which is what
//! makes saturation observable: once offered load exceeds capacity,
//! queues grow and tail latency diverges instead of the arrival rate
//! politely slowing down.
//!
//! A periodic controller watches per-shard latency histograms. When a
//! shard's p99 over the last control period exceeds the SLO it
//! replicates the shard to every locality (reads then run node-locally
//! at whichever frontend admitted them), and optionally sheds read load
//! at admission while the shard remains hot. Replicas that stay cold
//! for several consecutive periods are retired. Writes are never shed;
//! a write to a replicated shard first invalidates the written region
//! everywhere so the single-writer discipline of the data-item manager
//! is preserved.

use std::collections::BTreeMap;

use allscale_des::{ArrivalGen, ArrivalProcess, LogHistogram, SimDuration, SimTime};

use crate::dynamic::DynRegion;
use crate::task::{ItemId, TaskId, WorkItem};

/// The service-level objective and controller policy of a serving phase.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// The latency objective: per-shard p99 over a control period must
    /// stay at or below this many nanoseconds.
    pub p99_slo_ns: u64,
    /// How often the controller wakes up to examine shard histograms.
    pub control_period: SimDuration,
    /// Replicate shards whose p99 violates the SLO to all localities.
    pub replicate_hot: bool,
    /// Retire replica sets of shards that stayed cold for
    /// [`SloConfig::cold_periods`] consecutive periods.
    pub retire_cold: bool,
    /// Shed read requests to shards that are currently violating the
    /// SLO (writes are never shed).
    pub shed_overload: bool,
    /// Minimum completed requests in a window before its p99 is
    /// trusted; smaller windows are ignored (too noisy to act on).
    pub min_window: u64,
    /// A replicated shard with at most this many completions in a
    /// period counts as cold.
    pub cold_window: u64,
    /// Consecutive cold periods before a replica set is retired.
    pub cold_periods: u32,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            p99_slo_ns: 200_000,
            control_period: SimDuration::from_millis(2),
            replicate_hot: true,
            retire_cold: true,
            shed_overload: false,
            min_window: 16,
            cold_window: 2,
            cold_periods: 4,
        }
    }
}

impl SloConfig {
    /// A static-placement baseline: the controller observes (histograms
    /// and violation counters still fill in) but never acts.
    pub fn observe_only(mut self) -> Self {
        self.replicate_hot = false;
        self.retire_cold = false;
        self.shed_overload = false;
        self
    }
}

/// One request produced by a [`RequestFactory`]: which shard it targets,
/// whether it writes, and the root work item of its task tree.
pub struct Request {
    /// Index into [`ServeSpec::shard_regions`] of the shard this
    /// request primarily touches (the controller's accounting key).
    pub shard: usize,
    /// Whether the request updates the data item. Writes are never shed
    /// and invalidate replicated regions at admission.
    pub write: bool,
    /// The root work item; its task tree carries the actual data
    /// requirements.
    pub work: Box<dyn WorkItem>,
}

/// Turns a request sequence number into a [`Request`]. Implemented for
/// any `FnMut(u64) -> Request` closure; factories must be deterministic
/// functions of the sequence number and their own seeded state so a
/// replayed serving phase regenerates the identical request stream.
pub trait RequestFactory {
    /// Build request number `req` (0-based, dense).
    fn make(&mut self, req: u64) -> Request;
}

impl<F: FnMut(u64) -> Request> RequestFactory for F {
    fn make(&mut self, req: u64) -> Request {
        self(req)
    }
}

/// A serving phase, registered by the application driver via
/// `RtCtx::serve`. The runtime runs it as the next phase: open-loop
/// arrivals on the virtual clock, request task trees through the normal
/// scheduler, and the SLO controller on its control period.
pub struct ServeSpec {
    /// The sharded data item requests operate on.
    pub item: ItemId,
    /// The region of each shard, indexed by shard id. Used by the
    /// controller to replicate, invalidate and retire whole shards.
    pub shard_regions: Vec<Box<dyn DynRegion>>,
    /// The open-loop arrival process.
    pub arrivals: ArrivalProcess,
    /// Total requests to inject before the phase winds down.
    pub max_requests: u64,
    /// SLO and controller policy.
    pub slo: SloConfig,
    /// The request factory.
    pub factory: Box<dyn RequestFactory>,
}

/// A request admitted but not yet completed (its root task is in
/// flight).
pub(crate) struct PendingReq {
    /// Request sequence number.
    pub req: u64,
    /// Target shard.
    pub shard: usize,
    /// Write request?
    pub write: bool,
    /// Virtual arrival time (latency is measured from here).
    pub arrival: SimTime,
    /// The locality that admitted it (span attribution).
    pub frontend: usize,
}

/// Live state of the serving phase inside the runtime world.
pub(crate) struct ServeSession {
    /// The sharded item.
    pub item: ItemId,
    /// Shard regions (indexed by shard id).
    pub shard_regions: Vec<Box<dyn DynRegion>>,
    /// SLO and controller policy.
    pub slo: SloConfig,
    /// Request factory.
    pub factory: Box<dyn RequestFactory>,
    /// Arrival-gap generator.
    pub gen: ArrivalGen,
    /// Total requests to inject.
    pub max_requests: u64,
    /// Next request sequence number.
    pub next_req: u64,
    /// Virtual time the phase started.
    pub started: SimTime,
    /// In-flight request roots, keyed by root task id.
    pub roots: BTreeMap<TaskId, PendingReq>,
    /// Whether all arrivals have been injected.
    pub arrivals_done: bool,
    /// Per-shard latency window of the current control period.
    pub window: Vec<LogHistogram>,
    /// Which shards are currently replicated everywhere.
    pub replicated: Vec<bool>,
    /// Replicated shards whose replicas were partially invalidated by a
    /// write since the last broadcast (re-replicated if still hot).
    pub eroded: Vec<bool>,
    /// Which shards currently shed read load at admission.
    pub shedding: Vec<bool>,
    /// Consecutive cold periods per replicated shard.
    pub cold_streak: Vec<u32>,
}

impl ServeSession {
    /// Build the session for `spec`, starting at virtual time `now`.
    pub(crate) fn new(spec: ServeSpec, now: SimTime) -> Self {
        let shards = spec.shard_regions.len();
        assert!(shards > 0, "a serving phase needs at least one shard");
        assert!(spec.max_requests > 0, "a serving phase needs requests");
        ServeSession {
            item: spec.item,
            shard_regions: spec.shard_regions,
            slo: spec.slo,
            factory: spec.factory,
            gen: ArrivalGen::new(spec.arrivals),
            max_requests: spec.max_requests,
            next_req: 0,
            started: now,
            roots: BTreeMap::new(),
            arrivals_done: false,
            window: vec![LogHistogram::new(); shards],
            replicated: vec![false; shards],
            eroded: vec![false; shards],
            shedding: vec![false; shards],
            cold_streak: vec![0; shards],
        }
    }

    /// All arrivals injected and all admitted trees completed?
    pub(crate) fn finished(&self) -> bool {
        self.arrivals_done && self.roots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::task::{Done, Requirement, SplitOutcome, TaskCtx};

    struct Nop;
    impl WorkItem for Nop {
        fn name(&self) -> &'static str {
            "nop"
        }
        fn depth(&self) -> u32 {
            0
        }
        fn can_split(&self) -> bool {
            false
        }
        fn requirements(&self) -> Vec<Requirement> {
            Vec::new()
        }
        fn cost(&self, _cost: &CostModel, _locality: usize) -> SimDuration {
            SimDuration::ZERO
        }
        fn process(self: Box<Self>, _ctx: &mut TaskCtx<'_>) -> Done {
            Done::Value(None)
        }
        fn split(self: Box<Self>) -> SplitOutcome {
            unreachable!("nop never splits")
        }
    }

    #[test]
    fn factory_closures_are_factories() {
        let mut f = |req: u64| Request {
            shard: (req % 3) as usize,
            write: req.is_multiple_of(5),
            work: Box::new(Nop),
        };
        let r = RequestFactory::make(&mut f, 10);
        assert_eq!(r.shard, 1);
        assert!(r.write);
    }

    #[test]
    fn observe_only_disables_all_actions() {
        let s = SloConfig::default().observe_only();
        assert!(!s.replicate_hot && !s.retire_cold && !s.shed_overload);
    }
}

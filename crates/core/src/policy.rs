//! Scheduling policies (paper Algorithm 2, lines 3 and 12).
//!
//! "Whenever a task is scheduled, in a first step a customizable scheduling
//! policy is consulted to select the variant to be executed. … If neither
//! \[a process covering all requirements nor one covering all write
//! requirements\] is available, the scheduling policy will be once more
//! consulted to select a desirable locality."
//!
//! The default [`DataAwarePolicy`] splits tasks until the cluster is
//! saturated and spreads placement-hinted tasks proportionally over the
//! localities — which is what makes first-touch initialization lay data
//! out in blocks ("during the initialization phase of applications, it is
//! responsible for spreading out tasks such that data items get evenly
//! distributed throughout the system"). [`RoundRobinPolicy`] and
//! [`RandomPolicy`] serve as ablation baselines (DESIGN.md, A2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which variant of a task to run (paper Def. 2.3 / Section 3.3: each task
/// has a serial *process* variant and, where possible, a parallel *split*
/// variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Execute the task body directly.
    Process,
    /// Decompose into child tasks.
    Split,
}

/// Snapshot of runtime information a policy may consult.
pub struct PolicyEnv<'a> {
    /// Number of localities.
    pub nodes: usize,
    /// Cores per locality.
    pub cores_per_node: usize,
    /// Tasks currently queued or running per locality.
    pub load: &'a [usize],
}

/// A task-scheduling policy.
pub trait SchedulingPolicy: 'static {
    /// Choose the variant for a task at recursion `depth` with the given
    /// split capability and placement hint.
    fn pick_variant(
        &mut self,
        depth: u32,
        can_split: bool,
        hint: Option<f64>,
        env: &PolicyEnv<'_>,
    ) -> Variant;

    /// Choose a target locality for a task whose requirements pin it
    /// nowhere (Algorithm 2 line 12).
    fn pick_target(&mut self, hint: Option<f64>, origin: usize, env: &PolicyEnv<'_>) -> usize;

    /// Policy name for reports.
    fn name(&self) -> &'static str;
}

/// Map a placement hint in `[0, 1)` to a locality.
pub fn hint_to_node(hint: f64, nodes: usize) -> usize {
    ((hint.clamp(0.0, 1.0)) * nodes as f64) as usize % nodes.max(1)
}

/// The default policy: split until ~`oversubscription` leaf tasks exist
/// per core, place hinted tasks by hint, unhinted ones on the least-loaded
/// locality.
pub struct DataAwarePolicy {
    /// Target number of leaf tasks per core (default 2).
    pub oversubscription: usize,
}

impl Default for DataAwarePolicy {
    fn default() -> Self {
        DataAwarePolicy {
            oversubscription: 2,
        }
    }
}

impl SchedulingPolicy for DataAwarePolicy {
    fn pick_variant(
        &mut self,
        depth: u32,
        can_split: bool,
        _hint: Option<f64>,
        env: &PolicyEnv<'_>,
    ) -> Variant {
        if !can_split {
            return Variant::Process;
        }
        let target_leaves =
            (env.nodes * env.cores_per_node * self.oversubscription).max(1) as u64;
        // A complete binary split tree has 2^depth tasks at this depth.
        if (1u64 << depth.min(62)) < target_leaves {
            Variant::Split
        } else {
            Variant::Process
        }
    }

    fn pick_target(&mut self, hint: Option<f64>, origin: usize, env: &PolicyEnv<'_>) -> usize {
        match hint {
            Some(h) => hint_to_node(h, env.nodes),
            None => {
                // Least-loaded locality; ties break toward the origin to
                // preserve locality.
                let mut best = origin;
                let mut best_load = env.load.get(origin).copied().unwrap_or(0);
                for (n, &l) in env.load.iter().enumerate() {
                    if l < best_load {
                        best = n;
                        best_load = l;
                    }
                }
                best
            }
        }
    }

    fn name(&self) -> &'static str {
        "data-aware"
    }
}

/// Ablation: ignore hints, place tasks round-robin.
pub struct RoundRobinPolicy {
    next: usize,
    oversubscription: usize,
}

impl Default for RoundRobinPolicy {
    fn default() -> Self {
        RoundRobinPolicy {
            next: 0,
            oversubscription: 2,
        }
    }
}

impl SchedulingPolicy for RoundRobinPolicy {
    fn pick_variant(
        &mut self,
        depth: u32,
        can_split: bool,
        _hint: Option<f64>,
        env: &PolicyEnv<'_>,
    ) -> Variant {
        if !can_split {
            return Variant::Process;
        }
        let target = (env.nodes * env.cores_per_node * self.oversubscription).max(1) as u64;
        if (1u64 << depth.min(62)) < target {
            Variant::Split
        } else {
            Variant::Process
        }
    }

    fn pick_target(&mut self, _hint: Option<f64>, _origin: usize, env: &PolicyEnv<'_>) -> usize {
        let t = self.next % env.nodes;
        self.next = self.next.wrapping_add(1);
        t
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Ablation: uniformly random placement (seeded, deterministic).
///
/// This is the "no information" baseline for scheduling experiments: it
/// measures what locality hints and load feedback buy by *discarding
/// both*. [`RandomPolicy::pick_target`] therefore ignores the position
/// hint, the spawning locality, and the load vector **on purpose** — the
/// only inputs are the node count and the policy's own seeded RNG stream.
/// Making it hint- or origin-sensitive would silently turn the ablation
/// into a weaker data-aware policy and corrupt any comparison against
/// [`DataAwarePolicy`].
///
/// The stream is deterministic per seed and advances exactly once per
/// `pick_target` call, so runs are reproducible and two policies built
/// from the same seed make identical decisions (pinned by
/// `random_policy_is_a_pure_seeded_ablation` below).
pub struct RandomPolicy {
    rng: StdRng,
    oversubscription: usize,
}

impl RandomPolicy {
    /// A random policy with the given seed.
    pub fn new(seed: u64) -> Self {
        RandomPolicy {
            rng: StdRng::seed_from_u64(seed),
            oversubscription: 2,
        }
    }
}

impl SchedulingPolicy for RandomPolicy {
    fn pick_variant(
        &mut self,
        depth: u32,
        can_split: bool,
        _hint: Option<f64>,
        env: &PolicyEnv<'_>,
    ) -> Variant {
        if !can_split {
            return Variant::Process;
        }
        let target = (env.nodes * env.cores_per_node * self.oversubscription).max(1) as u64;
        if (1u64 << depth.min(62)) < target {
            Variant::Split
        } else {
            Variant::Process
        }
    }

    // Intentionally blind: `_hint`, `_origin`, and `env.load` must not
    // influence the draw (see the type-level docs for why).
    fn pick_target(&mut self, _hint: Option<f64>, _origin: usize, env: &PolicyEnv<'_>) -> usize {
        self.rng.gen_range(0..env.nodes)
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env<'a>(nodes: usize, cores: usize, load: &'a [usize]) -> PolicyEnv<'a> {
        PolicyEnv {
            nodes,
            cores_per_node: cores,
            load,
        }
    }

    #[test]
    fn data_aware_splits_until_saturation() {
        let mut p = DataAwarePolicy::default();
        let load = vec![0; 4];
        let e = env(4, 2, &load); // target 16 leaves
        assert_eq!(p.pick_variant(0, true, None, &e), Variant::Split);
        assert_eq!(p.pick_variant(3, true, None, &e), Variant::Split);
        assert_eq!(p.pick_variant(4, true, None, &e), Variant::Process);
        assert_eq!(p.pick_variant(0, false, None, &e), Variant::Process);
    }

    #[test]
    fn hints_spread_blockwise() {
        let mut p = DataAwarePolicy::default();
        let load = vec![0; 8];
        let e = env(8, 1, &load);
        assert_eq!(p.pick_target(Some(0.0), 0, &e), 0);
        assert_eq!(p.pick_target(Some(0.49), 0, &e), 3);
        assert_eq!(p.pick_target(Some(0.99), 0, &e), 7);
        // Hint 1.0 clamps into the last node.
        assert_eq!(p.pick_target(Some(1.0), 0, &e), 0);
    }

    /// Pins the ablation semantics of `RandomPolicy::pick_target`: the
    /// draw depends *only* on `(seed, call index, env.nodes)`. Hints,
    /// origin, and load must all be invisible, and the stream must be
    /// reproducible per seed.
    #[test]
    fn random_policy_is_a_pure_seeded_ablation() {
        const NODES: usize = 5;
        const DRAWS: usize = 64;

        // Reference stream: no hint, origin 0, idle cluster.
        let idle = vec![0usize; NODES];
        let mut reference = RandomPolicy::new(42);
        let expected: Vec<usize> = (0..DRAWS)
            .map(|_| reference.pick_target(None, 0, &env(NODES, 2, &idle)))
            .collect();

        // Same seed, wildly different hints / origins / loads: the
        // stream must be identical draw for draw.
        let skewed = vec![9999, 0, 17, 3, 250];
        let mut blind = RandomPolicy::new(42);
        for (i, &want) in expected.iter().enumerate() {
            let hint = Some(i as f64 / DRAWS as f64);
            let origin = i % NODES;
            let got = blind.pick_target(hint, origin, &env(NODES, 2, &skewed));
            assert_eq!(got, want, "draw {i}: hint/origin/load leaked in");
        }

        // Every draw lands in range, and over a modest window the policy
        // actually spreads (it is random placement, not a constant).
        assert!(expected.iter().all(|&t| t < NODES));
        let mut seen = [false; NODES];
        for &t in &expected {
            seen[t] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "64 uniform draws over 5 nodes must cover all nodes: {expected:?}"
        );

        // A different seed gives a different stream (ablation runs are
        // seed-keyed, not accidentally identical).
        let mut other = RandomPolicy::new(43);
        let other_stream: Vec<usize> = (0..DRAWS)
            .map(|_| other.pick_target(None, 0, &env(NODES, 2, &idle)))
            .collect();
        assert_ne!(expected, other_stream, "seeds must key distinct streams");

        // Variant selection is the shared saturation rule, untouched by
        // the ablation: split until ~2x oversubscription, then process.
        let mut p = RandomPolicy::new(7);
        let e = env(4, 2, &idle[..4]); // target 16 leaves
        assert_eq!(p.pick_variant(0, true, None, &e), Variant::Split);
        assert_eq!(p.pick_variant(4, true, None, &e), Variant::Process);
        assert_eq!(p.pick_variant(0, false, None, &e), Variant::Process);
    }

    #[test]
    fn unhinted_tasks_go_to_least_loaded() {
        let mut p = DataAwarePolicy::default();
        let load = vec![5, 2, 9, 2];
        let e = env(4, 1, &load);
        assert_eq!(p.pick_target(None, 0, &e), 1); // first least-loaded
        let load2 = vec![0, 0, 0, 0];
        let e2 = env(4, 1, &load2);
        assert_eq!(p.pick_target(None, 2, &e2), 2); // tie → origin
    }

    #[test]
    fn round_robin_cycles() {
        let mut p = RoundRobinPolicy::default();
        let load = vec![0; 3];
        let e = env(3, 1, &load);
        let ts: Vec<usize> = (0..6).map(|_| p.pick_target(Some(0.9), 0, &e)).collect();
        assert_eq!(ts, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn random_policy_is_deterministic_per_seed() {
        let run = |seed| {
            let mut p = RandomPolicy::new(seed);
            let load = vec![0; 16];
            let e = env(16, 1, &load);
            (0..32).map(|_| p.pick_target(None, 0, &e)).collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}

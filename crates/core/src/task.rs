//! The task model: work items with process/split variants, data
//! requirements, and the `prec` recursive-parallelism operator.
//!
//! The paper's compiler (Section 3.3) lowers each task of the input program
//! into "a serial and parallel implementation variant … \[and\] a function
//! computing requirements with each code variant". In this reproduction the
//! same artifact is expressed directly: a [`WorkItem`] exposes a *process*
//! variant (`process` + `requirements` + `cost`) and, when `can_split`, a
//! *split* variant producing child work items and a combiner — exactly the
//! variant structure of the `prec` operator the AllScale API builds on.

use std::any::Any;
use std::fmt;
use std::sync::Arc;

use allscale_des::SimDuration;

use crate::cost::CostModel;
use crate::dim::DataItemManager;
use crate::dynamic::DynRegion;

/// Identifies a data item across the whole runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ItemId(pub u32);

/// Identifies a task instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u64);

/// Read or read/write access (paper Definition 2.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessMode {
    /// The task only reads the region; replicas are permissible.
    Read,
    /// The task updates the region; exclusive ownership required.
    Write,
}

/// One data requirement of a task variant: which region of which item, and
/// with which access mode.
pub struct Requirement {
    /// The accessed data item.
    pub item: ItemId,
    /// The accessed region (type-erased).
    pub region: Box<dyn DynRegion>,
    /// Access mode.
    pub mode: AccessMode,
}

impl Requirement {
    /// A read requirement.
    pub fn read(item: ItemId, region: impl DynRegion + 'static) -> Self {
        Requirement {
            item,
            region: Box::new(region),
            mode: AccessMode::Read,
        }
    }

    /// A write requirement.
    pub fn write(item: ItemId, region: impl DynRegion + 'static) -> Self {
        Requirement {
            item,
            region: Box::new(region),
            mode: AccessMode::Write,
        }
    }
}

impl fmt::Debug for Requirement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?} {:?} of {:?}", self.mode, self.region, self.item)
    }
}

/// The value a task produces (consumed by its parent's combiner). `None`
/// for effect-only tasks such as `pfor` bodies.
pub type TaskValue = Option<Box<dyn Any>>;

/// Execution context handed to a task's process variant: typed access to
/// the fragments held by the executing locality.
pub struct TaskCtx<'a> {
    /// The locality (cluster node) the task runs on.
    pub locality: usize,
    pub(crate) dim: &'a mut DataItemManager,
    pub(crate) charged: SimDuration,
}

impl TaskCtx<'_> {
    /// Charge additional virtual compute time to this task — for work
    /// whose extent is data-dependent and only known while executing
    /// (e.g. the number of kd-tree nodes a pruned traversal visits).
    pub fn charge(&mut self, dur: SimDuration) {
        self.charged += dur;
    }

    /// Immutable access to the local fragment of `item`.
    ///
    /// # Panics
    /// Panics if the item is unknown or `F` is not its fragment type.
    pub fn fragment<F: 'static>(&self, item: ItemId) -> &F {
        self.dim
            .fragment_any(item)
            .downcast_ref::<F>()
            .expect("wrong fragment type for item")
    }

    /// Mutable access to the local fragment of `item`.
    ///
    /// # Panics
    /// Panics if the item is unknown or `F` is not its fragment type.
    pub fn fragment_mut<F: 'static>(&mut self, item: ItemId) -> &mut F {
        self.dim
            .fragment_any_mut(item)
            .downcast_mut::<F>()
            .expect("wrong fragment type for item")
    }

    /// Split-borrow two distinct items mutably (the common "read A, write
    /// B" pattern of double-buffered kernels needs both at once).
    pub fn fragment_pair_mut<FA: 'static, FB: 'static>(
        &mut self,
        a: ItemId,
        b: ItemId,
    ) -> (&FA, &mut FB) {
        let (fa, fb) = self.dim.fragment_pair_any(a, b);
        (
            fa.downcast_ref::<FA>().expect("wrong fragment type"),
            fb.downcast_mut::<FB>().expect("wrong fragment type"),
        )
    }
}

/// What a finished process variant yields.
pub enum Done {
    /// The task is complete with this value.
    Value(TaskValue),
    /// The task continues as a set of child tasks (the model's `spawn` +
    /// `sync` from within a running task, e.g. TPC forwarding traversal
    /// tasks to the localities owning remote subtrees). The task's locks
    /// are released before the children are scheduled.
    Children(SplitOutcome),
}

/// Result of running a task's split variant.
#[allow(clippy::type_complexity)]
pub struct SplitOutcome {
    /// Child work items, scheduled independently.
    pub children: Vec<Box<dyn WorkItem>>,
    /// Combiner running (at the parent's locality) once all children have
    /// completed, receiving their values in order.
    pub combine: Box<dyn FnOnce(Vec<TaskValue>) -> TaskValue>,
}

/// A schedulable unit of work with up to two variants (paper Def. 2.3,
/// Section 3.3): a *process* variant executing the work directly, and —
/// when [`WorkItem::can_split`] — a *split* variant decomposing it.
pub trait WorkItem: 'static {
    /// Short name for monitoring and traces.
    fn name(&self) -> &'static str;

    /// Recursion depth (the scheduler's variant policy splits shallow tasks
    /// and processes deep ones).
    fn depth(&self) -> u32;

    /// Whether a split variant exists.
    fn can_split(&self) -> bool;

    /// Data requirements of the *process* variant (paper Definition 2.7).
    /// Split variants require no data: decomposition is pure.
    fn requirements(&self) -> Vec<Requirement>;

    /// Virtual compute cost of the process variant on `locality`.
    fn cost(&self, cost: &CostModel, locality: usize) -> SimDuration;

    /// Execute the process variant.
    fn process(self: Box<Self>, ctx: &mut TaskCtx<'_>) -> Done;

    /// Where in `[0, 1)` this task's work sits within the overall problem
    /// domain, if meaningful. The scheduling policy uses hints to spread
    /// unpinned tasks block-wise (which makes first-touch initialization
    /// produce block data distributions).
    fn placement_hint(&self) -> Option<f64> {
        None
    }

    /// Execute the split variant.
    ///
    /// # Panics
    /// May panic when `can_split()` is false; the scheduler never calls it
    /// in that case.
    fn split(self: Box<Self>) -> SplitOutcome;

    /// Serialized size of the task descriptor when forwarded to another
    /// locality (bills the network).
    fn descriptor_bytes(&self) -> usize {
        192
    }

    /// Serialized size of the produced value when returned cross-locality.
    fn result_bytes(&self) -> usize {
        16
    }
}

/// The operation table of a `prec` (recursive-parallel) computation over a
/// parameter type `P` — the paper's context-aware primitive for nested
/// recursive parallelism underlying the AllScale API.
#[allow(clippy::type_complexity)] // the operation table IS the type
pub struct PrecOps<P> {
    /// Task family name.
    pub name: &'static str,
    /// Whether a parameter can still be decomposed.
    pub can_split: Box<dyn Fn(&P, u32) -> bool>,
    /// Decompose a parameter into sub-parameters.
    pub split: Box<dyn Fn(&P) -> Vec<P>>,
    /// Combine child values into this task's value.
    pub combine: Box<dyn Fn(Vec<TaskValue>) -> TaskValue>,
    /// The base-case body.
    pub process: Box<dyn Fn(&mut TaskCtx<'_>, &P) -> TaskValue>,
    /// Placement hint for a parameter (fraction of the problem domain).
    pub hint: Box<dyn Fn(&P) -> Option<f64>>,
    /// Data requirements of the base case for a parameter.
    pub requirements: Box<dyn Fn(&P) -> Vec<Requirement>>,
    /// Virtual compute cost of the base case.
    pub cost: Box<dyn Fn(&P, &CostModel, usize) -> SimDuration>,
    /// Forwarded descriptor size in bytes.
    pub descriptor_bytes: usize,
    /// Result size in bytes.
    pub result_bytes: usize,
}

/// A `prec` task instance: a parameter plus the shared operation table.
pub struct Prec<P: 'static> {
    /// This task's parameter (e.g. an index range).
    pub param: P,
    /// Recursion depth below the root call.
    pub depth: u32,
    /// Shared operations.
    pub ops: Arc<PrecOps<P>>,
}

impl<P: 'static> Prec<P> {
    /// The root task of a `prec` computation.
    pub fn root(param: P, ops: Arc<PrecOps<P>>) -> Box<dyn WorkItem> {
        Box::new(Prec {
            param,
            depth: 0,
            ops,
        })
    }
}

impl<P: 'static> WorkItem for Prec<P> {
    fn name(&self) -> &'static str {
        self.ops.name
    }
    fn depth(&self) -> u32 {
        self.depth
    }
    fn can_split(&self) -> bool {
        (self.ops.can_split)(&self.param, self.depth)
    }
    fn requirements(&self) -> Vec<Requirement> {
        (self.ops.requirements)(&self.param)
    }
    fn cost(&self, cost: &CostModel, locality: usize) -> SimDuration {
        (self.ops.cost)(&self.param, cost, locality)
    }
    fn process(self: Box<Self>, ctx: &mut TaskCtx<'_>) -> Done {
        Done::Value((self.ops.process)(ctx, &self.param))
    }
    fn placement_hint(&self) -> Option<f64> {
        (self.ops.hint)(&self.param)
    }
    fn split(self: Box<Self>) -> SplitOutcome {
        let parts = (self.ops.split)(&self.param);
        let depth = self.depth + 1;
        let ops = self.ops.clone();
        let children: Vec<Box<dyn WorkItem>> = parts
            .into_iter()
            .map(|param| {
                Box::new(Prec {
                    param,
                    depth,
                    ops: ops.clone(),
                }) as Box<dyn WorkItem>
            })
            .collect();
        let combine_ops = self.ops.clone();
        SplitOutcome {
            children,
            combine: Box::new(move |vals| (combine_ops.combine)(vals)),
        }
    }
    fn descriptor_bytes(&self) -> usize {
        self.ops.descriptor_bytes
    }
    fn result_bytes(&self) -> usize {
        self.ops.result_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use allscale_region::BoxRegion;

    #[allow(clippy::arc_with_non_send_sync)] // single-threaded simulation
    fn sum_ops() -> Arc<PrecOps<(u64, u64)>> {
        // Recursive range sum: split ranges longer than 4.
        Arc::new(PrecOps {
            name: "sum",
            can_split: Box::new(|(lo, hi), _| hi - lo > 4),
            split: Box::new(|&(lo, hi)| {
                let mid = (lo + hi) / 2;
                vec![(lo, mid), (mid, hi)]
            }),
            combine: Box::new(|vals| {
                let total: u64 = vals
                    .into_iter()
                    .map(|v| *v.unwrap().downcast::<u64>().unwrap())
                    .sum();
                Some(Box::new(total))
            }),
            process: Box::new(|_ctx, &(lo, hi)| Some(Box::new((lo..hi).sum::<u64>()))),
            hint: Box::new(|&(lo, _)| Some(lo as f64 / 16.0)),
            requirements: Box::new(|_| Vec::new()),
            cost: Box::new(|&(lo, hi), c, l| c.flops(l, hi - lo)),
            descriptor_bytes: 64,
            result_bytes: 8,
        })
    }

    #[test]
    fn prec_splits_until_grain() {
        let root = Prec::root((0u64, 16u64), sum_ops());
        assert!(root.can_split());
        assert_eq!(root.depth(), 0);
        let out = root.split();
        assert_eq!(out.children.len(), 2);
        assert_eq!(out.children[0].depth(), 1);
        let out = crate::task::SplitOutcome {
            children: out.children,
            combine: out.combine,
        };
        // Depth-2 children of range 4 stop splitting.
        let leaf = out
            .children
            .into_iter()
            .next()
            .unwrap()
            .split()
            .children
            .into_iter()
            .next()
            .unwrap();
        assert!(!leaf.can_split());
    }

    #[test]
    fn prec_combiner_reduces_child_values() {
        let root = Prec::root((0u64, 8u64), sum_ops());
        let out = root.split();
        let vals: Vec<TaskValue> = vec![
            Some(Box::new(6u64)),  // 0+1+2+3
            Some(Box::new(22u64)), // 4+5+6+7
        ];
        let total = (out.combine)(vals).unwrap();
        assert_eq!(*total.downcast::<u64>().unwrap(), 28);
    }

    #[test]
    fn requirement_constructors() {
        let r = Requirement::read(ItemId(1), BoxRegion::<2>::cuboid([0, 0], [2, 2]));
        assert_eq!(r.mode, AccessMode::Read);
        assert_eq!(r.item, ItemId(1));
        assert!(!r.region.is_empty_dyn());
        let w = Requirement::write(ItemId(2), BoxRegion::<2>::cuboid([0, 0], [1, 1]));
        assert_eq!(w.mode, AccessMode::Write);
    }

    #[test]
    fn prec_cost_delegates() {
        let root = Prec::root((0u64, 100u64), sum_ops());
        let c = CostModel::default();
        assert_eq!(root.cost(&c, 0), c.flops(0, 100));
    }
}

//! The AllScale runtime: localities, the scheduler (paper Algorithm 2),
//! and the full task/data lifecycle over the simulated cluster.
//!
//! Execution is event-driven on [`allscale_des::Sim`]. The world holds one
//! [`Locality`] per simulated cluster node (core pool + data item manager)
//! plus the distributed index and the global task tables. The life of a
//! task:
//!
//! 1. **assign** (Algorithm 2): the policy picks the variant; split tasks
//!    are forwarded to their placement-hint locality and decomposed there,
//!    process tasks are forwarded to a locality covering their data
//!    requirements — all requirements if possible, else all write
//!    requirements, else wherever the policy says. Index lookups
//!    (Algorithm 1) and task forwards are billed on the network.
//! 2. **prepare**: locks are acquired in the local data item manager
//!    (parking the task on conflict); missing write regions are migrated
//!    in (or first-touch allocated), missing read regions are replicated
//!    in; each transfer is billed at real serialized size.
//! 3. **execute**: the process body runs as real Rust code against the
//!    local fragments; its virtual duration occupies a core.
//! 4. **complete**: locks release, replicas drop (with release messages to
//!    their owners), the result travels to the parent, and combiners fire
//!    when all children are done.
//!
//! Applications are sequences of *phases* (an [`AppDriver`]): the root
//! work item of phase *k+1* is requested once phase *k*'s task tree has
//! fully completed — the `sync` points of the application's main function.

use std::collections::BTreeMap;

use allscale_des::{CorePool, LogHistogram, Sim, SimDuration, SimTime};
use allscale_net::{
    frame, AnyTopology, Batch, BatchParams, ClusterSpec, Coalescer, Delivered, Enqueue, FaultPlan,
    Network, RetryPolicy, StorageTier,
};
use allscale_region::{fnv1a_64, ItemType};
use allscale_trace::{
    EventKind, SpawnVariant, TraceConfig, TraceEvent, TraceSink, TransferPurpose,
};

use crate::cost::CostModel;
use crate::dim::DataItemManager;
use crate::dynamic::{DynRegion, ItemDescriptor};
use crate::index::{CentralIndex, DistIndex, Hop, Resolution};
use crate::integrity::{IntegrityConfig, IntegrityManager};
use crate::loc_cache::LocationCache;
use crate::monitor::{Monitor, RunReport};
use crate::policy::{DataAwarePolicy, PolicyEnv, SchedulingPolicy, Variant};
use crate::resilience::{
    reconstruct, CkptKind, CkptMode, ResilienceConfig, ResilienceManager, SavedCkpt,
};
use crate::scheduler::{
    DataAwareScheduler, Placement, Scheduler, StealConfig, WorkStealingScheduler,
};
use crate::slo::{PendingReq, ServeSession, ServeSpec};
use crate::task::{
    AccessMode, Done, ItemId, Requirement, SplitOutcome, TaskCtx, TaskId, TaskValue, WorkItem,
};

/// A simulated cluster node: cores plus its data item manager.
pub struct Locality {
    /// The node's core pool.
    pub cores: CorePool,
    /// The node's data item manager.
    pub dim: DataItemManager,
    /// Tasks currently assigned here (queued, preparing, or running).
    pub load: usize,
    /// Busy-until time of the node's communication thread (HPX dedicates
    /// a network thread; control messages are handled there rather than
    /// queueing behind long compute tasks on the core pool).
    pub comm_busy: SimTime,
}

/// Either index implementation (experiment A1 toggles them).
enum IndexImpl {
    Dist(DistIndex),
    Central(CentralIndex),
}

impl IndexImpl {
    fn register_item(&mut self, item: ItemId, empty: &dyn DynRegion) {
        match self {
            IndexImpl::Dist(i) => i.register_item(item, empty),
            IndexImpl::Central(i) => i.register_item(item, empty),
        }
    }
    fn remove_item(&mut self, item: ItemId) {
        if let IndexImpl::Dist(i) = self {
            i.remove_item(item)
        }
    }
    fn update_leaf(&mut self, item: ItemId, p: usize, region: Box<dyn DynRegion>) -> Vec<Hop> {
        match self {
            IndexImpl::Dist(i) => i.update_leaf(item, p, region),
            IndexImpl::Central(i) => i.update_leaf(item, p, region),
        }
    }
}

struct Inflight {
    loc: usize,
    wi: Option<Box<dyn WorkItem>>,
    parent: Option<(TaskId, usize)>,
    reqs: Vec<Requirement>,
    /// Read replicas imported for this task: (item, owner, region).
    replicas: Vec<(ItemId, usize, Box<dyn DynRegion>)>,
    pending_transfers: usize,
    pending_done: Option<(Done, usize)>,
}

struct ParentRecord {
    loc: usize,
    pending: usize,
    results: Vec<Option<TaskValue>>,
    combine: Option<Box<dyn FnOnce(Vec<TaskValue>) -> TaskValue>>,
    parent: Option<(TaskId, usize)>,
    result_bytes: usize,
}

/// Runtime configuration.
pub struct RtConfig {
    /// The simulated machine.
    pub spec: ClusterSpec,
    /// Virtual-time cost constants.
    pub cost: CostModel,
    /// Scheduling policy (Algorithm 2's pluggable part). With
    /// `stealing` unset this drives the default [`DataAwareScheduler`];
    /// with it set, the policy still makes the variant and
    /// fallback-target decisions inside the [`WorkStealingScheduler`].
    pub policy: Box<dyn SchedulingPolicy>,
    /// Switch the scheduler family to per-locality bounded task queues
    /// with work stealing (see [`StealConfig`] for the knobs: queue
    /// threshold, victim policy, attempts, seed). `None` (the default)
    /// keeps the paper's direct data-aware placement.
    pub stealing: Option<StealConfig>,
    /// Use the central-directory index instead of the hierarchical one
    /// (ablation A1).
    pub central_index: bool,
    /// Fault plan installed into the network (`None` = reliable fabric).
    pub faults: Option<FaultPlan>,
    /// Enable the resilience manager: periodic checkpoints, the heartbeat
    /// failure detector, and automatic recovery. `None` (the default)
    /// keeps the runtime fault-oblivious; combined with an injected
    /// locality death, such a run deadlocks — enable this whenever the
    /// fault plan kills nodes.
    pub resilience: Option<ResilienceConfig>,
    /// Enable the data-integrity service: checksum framing of every
    /// runtime payload with verify-on-receive and bounded re-requests,
    /// checksummed checkpoint shards, and the background replica
    /// scrubber. `None` (the default) leaves the runtime
    /// integrity-oblivious — combined with a corrupting fault plan, such
    /// a run silently consumes poisoned bytes (the ablation baseline).
    pub integrity: Option<IntegrityConfig>,
    /// Structured tracing: `Some` records task, data, index, network and
    /// resilience events into bounded per-locality rings (consumed from
    /// [`RunReport::trace`](crate::monitor::RunReport)). `None` (the
    /// default) leaves the sink disabled — each instrumentation site then
    /// costs a single branch on the simulated hot path.
    pub trace: Option<TraceConfig>,
}

impl RtConfig {
    /// Default configuration on a Meggie-like cluster of `nodes` nodes.
    pub fn meggie(nodes: usize) -> Self {
        RtConfig {
            spec: ClusterSpec::meggie(nodes),
            cost: CostModel::default(),
            policy: Box::new(DataAwarePolicy::default()),
            stealing: None,
            central_index: false,
            faults: None,
            resilience: None,
            integrity: None,
            trace: None,
        }
    }

    /// Small test configuration.
    pub fn test(nodes: usize, cores: usize) -> Self {
        RtConfig {
            spec: ClusterSpec::test(nodes, cores),
            cost: CostModel::default(),
            policy: Box::new(DataAwarePolicy::default()),
            stealing: None,
            central_index: false,
            faults: None,
            resilience: None,
            integrity: None,
            trace: None,
        }
    }

    /// Enable the data-integrity service with the given policy. See
    /// [`IntegrityConfig`] for the knobs; [`IntegrityConfig::default`]
    /// turns on transfer and checkpoint verification plus the scrubber.
    pub fn with_integrity(mut self, cfg: IntegrityConfig) -> Self {
        self.integrity = Some(cfg);
        self
    }

    /// Enable transfer batching with the given coalescer knobs: runtime
    /// messages to the same destination are buffered up to the flush
    /// window and priced as one wire message, and adjacent data transfers
    /// in one staging plan are merged region-wise. The default (`None` in
    /// [`allscale_net::NetParams::batching`]) sends every message
    /// individually — the ablation baseline.
    pub fn with_batching(mut self, params: BatchParams) -> Self {
        self.spec.net.batching = Some(params);
        self
    }

    /// Switch to the work-stealing scheduler family: admitted process
    /// tasks land in per-locality bounded queues (spilling past a full
    /// one), and a locality that runs dry steals from a victim chosen
    /// by `cfg.victim`. Steal requests, grants/denies and stolen-task
    /// handoffs are billed control traffic on the simulated network, so
    /// batching, faults and tracing all apply to them.
    pub fn with_work_stealing(mut self, cfg: StealConfig) -> Self {
        self.stealing = Some(cfg);
        self
    }
}

/// The simulated world of a runtime execution.
pub struct RtWorld {
    /// Machine description.
    pub spec: ClusterSpec,
    /// The interconnect cost engine.
    pub net: Network<AnyTopology>,
    /// Cost constants.
    pub cost: CostModel,
    /// One entry per cluster node.
    pub localities: Vec<Locality>,
    /// Monitoring counters.
    pub monitor: Monitor,
    index: IndexImpl,
    /// Location cache in front of the hierarchical index (keyed by start
    /// locality, so it behaves as one private cache per locality). Unused
    /// when the central-directory ablation is active.
    loc_cache: LocationCache,
    item_descs: BTreeMap<ItemId, ItemDescriptor>,
    inflight: BTreeMap<TaskId, Inflight>,
    parents: BTreeMap<TaskId, ParentRecord>,
    parked: Vec<TaskId>,
    retry_scheduled: bool,
    next_task: u64,
    next_item: u32,
    /// The pluggable scheduler subsystem (decision-only; this module
    /// executes its decisions and bills their traffic).
    scheduler: Box<dyn Scheduler>,
    driver: Option<Box<dyn AppDriver>>,
    phase: usize,
    finish_time: SimTime,
    done: bool,
    /// Resilience-manager state (`None` when the service is disabled).
    resilience: Option<ResilienceManager>,
    /// A checkpoint drain still in flight: armed at a boundary, committed
    /// by a scheduled event when the slower storage tier finishes. At
    /// most one per world — the next checkpointing boundary write-fences
    /// on it instead of arming a second capture.
    pending_ckpt: Option<PendingCkpt>,
    /// Integrity-service state (`None` when the service is disabled).
    integrity: Option<IntegrityManager>,
    /// Localities declared dead by the failure detector.
    dead: Vec<bool>,
    /// Bumped on every recovery; events scheduled through
    /// [`schedule_task_event`] in an older epoch become no-ops, which is
    /// how the in-flight phase's stale work is discarded wholesale.
    run_epoch: u64,
    /// Retry policy for runtime messages (default when no resilience).
    retry_policy: RetryPolicy,
    /// Trace recording handle; a disabled sink unless `RtConfig::trace`
    /// was set. The network layer holds a clone for fault-event recording.
    trace: TraceSink,
    /// Batching knobs (`None` = every runtime message is sent
    /// individually, the ablation baseline).
    batching: Option<BatchParams>,
    /// Outgoing-message coalescer: per-(src, dst) buffers of runtime
    /// messages awaiting a batch flush. Permanently empty when batching
    /// is off.
    coalescer: Coalescer<PendingMsg>,
    /// Monotonic id stamped on each batch flush (trace correlation).
    next_batch: u64,
    /// A serving phase registered by the driver via [`RtCtx::serve`],
    /// consumed at the next phase boundary.
    pending_serve: Option<ServeSpec>,
    /// The live serving phase, if one is running.
    serving: Option<ServeSession>,
}

type RtSim = Sim<RtWorld>;

/// An application as a sequence of phases. Phase *k+1* begins only after
/// phase *k*'s entire task tree has completed (the application's `sync`).
pub trait AppDriver: 'static {
    /// Produce the root work item of `phase` (0-based), or `None` when the
    /// application is finished. `prev` is the value of the previous
    /// phase's root task (`None` for phase 0).
    fn next_phase(
        &mut self,
        phase: usize,
        ctx: &mut RtCtx<'_>,
        prev: TaskValue,
    ) -> Option<Box<dyn WorkItem>>;
}

impl<F> AppDriver for F
where
    F: FnMut(usize, &mut RtCtx<'_>, TaskValue) -> Option<Box<dyn WorkItem>> + 'static,
{
    fn next_phase(
        &mut self,
        phase: usize,
        ctx: &mut RtCtx<'_>,
        prev: TaskValue,
    ) -> Option<Box<dyn WorkItem>> {
        self(phase, ctx, prev)
    }
}

/// Driver-facing handle on the runtime between phases.
pub struct RtCtx<'a> {
    world: &'a mut RtWorld,
    now: SimTime,
}

impl RtCtx<'_> {
    /// Number of localities.
    pub fn nodes(&self) -> usize {
        self.world.localities.len()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Create a data item of type `I` (paper action `create`): registers
    /// the descriptor on every locality and in the index. No data is
    /// allocated — allocation happens on first touch.
    pub fn create_item<I: ItemType>(&mut self, name: &'static str) -> ItemId {
        let id = ItemId(self.world.next_item);
        self.world.next_item += 1;
        let desc = ItemDescriptor::of::<I>(name);
        for loc in &mut self.world.localities {
            loc.dim.register(id, desc.clone());
        }
        self.world
            .index
            .register_item(id, (desc.empty_region)().as_ref());
        self.world.item_descs.insert(id, desc);
        trace_instant(self.world, self.now, 0, EventKind::ItemCreate { item: id.0 });
        id
    }

    /// Destroy a data item everywhere (paper action `destroy`).
    pub fn destroy_item(&mut self, item: ItemId) {
        for loc in &mut self.world.localities {
            loc.dim.destroy(item);
        }
        self.world.index.remove_item(item);
        self.world.loc_cache.forget(item);
        self.world.item_descs.remove(&item);
        trace_instant(self.world, self.now, 0, EventKind::ItemDestroy { item: item.0 });
    }

    /// Read access to the fragment of `item` at `loc` — out-of-band
    /// access for result verification and oracles (not billed).
    pub fn fragment_at<F: 'static>(&self, loc: usize, item: ItemId) -> &F {
        self.world.localities[loc]
            .dim
            .fragment_any(item)
            .downcast_ref::<F>()
            .expect("wrong fragment type")
    }

    /// The region `loc` currently owns of `item`.
    pub fn owned_region_at(&self, loc: usize, item: ItemId) -> Box<dyn DynRegion> {
        self.world.localities[loc].dim.owned_region(item)
    }

    /// Replicate `region` of `item` (owned by `owner`) to every other
    /// locality as a *persistent* replica — the runtime-initiated
    /// (replicate) rule, used for read-mostly data such as the top of the
    /// TPC kd-tree. Writers to the region will be fenced permanently, so
    /// only use this for data that is read-only from here on.
    ///
    /// Billed as a binomial broadcast on the simulated network.
    pub fn broadcast_replicate(&mut self, item: ItemId, owner: usize, region: &dyn DynRegion) {
        let nodes = self.world.localities.len();
        let bytes = {
            let dim = &mut self.world.localities[owner].dim;
            // Sentinel task id marks the export as persistent.
            dim.export_replica(item, region, usize::MAX, TaskId(u64::MAX))
        };
        let wire = seal_payload(self.world, bytes);
        let mut t = self.now;
        for dst in 0..nodes {
            if dst == owner {
                continue;
            }
            // A locality the broadcast cannot reach simply misses out on
            // the replica (it re-fetches on demand if it ever revives —
            // under fail-stop it never does).
            let tag = Payload::data(TransferPurpose::Broadcast, None, item);
            let Some(arrival) = send_msg(self.world, t, owner, dst, wire.len(), tag, false) else {
                continue;
            };
            t = arrival.at;
            let mut data = open_payload(self.world, &wire, arrival.intact);
            // Persistent replicas live until the end of the run — long
            // enough for at-rest rot to matter.
            rot_payload(self.world, &mut data);
            self.world.localities[dst].dim.import_persistent(item, &data);
            self.world.monitor.per_locality[dst].replicas_in += 1;
        }
    }

    /// Register a request-serving phase: the runtime runs it *as* the
    /// next phase. Call from a driver phase that returns `None`; instead
    /// of finishing the application, the runtime injects `spec`'s
    /// open-loop arrival stream on the virtual clock, runs each admitted
    /// request's task tree through the normal scheduler, drives the SLO
    /// controller on its control period, and only then asks the driver
    /// for the phase after.
    ///
    /// Deterministic replay after a recovery relies on the driver
    /// re-registering an identical spec when re-asked for the same
    /// phase: the arrival process and the factory are reseeded, so the
    /// restored boundary replays the exact request stream.
    ///
    /// # Panics
    /// Panics if a serving phase is already registered.
    pub fn serve(&mut self, spec: ServeSpec) {
        assert!(
            self.world.pending_serve.is_none(),
            "one serving phase may be registered per boundary"
        );
        self.world.pending_serve = Some(spec);
    }

    /// Migrate ownership of `region` of `item` from `from` to `to`
    /// (runtime-initiated (migrate) rule) — the load-balancing primitive:
    /// "the scheduling policy may decide to migrate data between nodes,
    /// which will implicitly lead to the redirection of future tasks to
    /// the newly designated localities".
    pub fn migrate_region(&mut self, item: ItemId, region: &dyn DynRegion, from: usize, to: usize) {
        let w = &mut self.world;
        let now = self.now;
        // Remap endpoints off localities the detector has declared dead —
        // the same rule task placement applies (`live_target`). Without
        // it, a policy handing data to a crashed locality would re-own
        // the region to a node that can never serve it: every later
        // reader's request to it is lost, the phase stalls, and no
        // further death exists for the detector to recover from.
        let from = live_target(w, from);
        let to = live_target(w, to);
        if from == to {
            return;
        }
        let bytes = w.localities[from].dim.export_migration(item, region);
        let new_src_owned = w.localities[from].dim.owned_region(item);
        let hops1 = index_update(w, now, item, from, new_src_owned);
        w.localities[to].dim.import_owned(item, &bytes);
        let new_dst_owned = w.localities[to].dim.owned_region(item);
        let hops2 = index_update(w, now, item, to, new_dst_owned);
        // Driver-initiated migration is synchronous bookkeeping; a lost
        // transfer only truncates the billing (recovery restores any
        // halfway state from the checkpoint).
        let wire = seal_payload(w, bytes);
        let tag = Payload::data(TransferPurpose::Migrate, None, item);
        let sent = send_msg(w, now, from, to, wire.len(), tag, false);
        if let Some(d) = sent {
            if !d.intact {
                // Silent-corruption baseline: what actually arrived
                // replaces the optimistically imported copy.
                let data = open_payload(w, &wire, false);
                w.localities[to].dim.import_owned(item, &data);
            }
        }
        let t = sent.map(|d| d.at).unwrap_or(now);
        bill_hops(w, t, &hops1, Some(item));
        bill_hops(w, t, &hops2, Some(item));
        w.monitor.per_locality[to].migrations_in += 1;
    }

    /// Snapshot the owned data of every item on every locality — the
    /// resilience manager's checkpoint.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            per_locality: self
                .world
                .localities
                .iter()
                .map(|l| l.dim.checkpoint())
                .collect(),
        }
    }

    /// Restore a checkpoint taken earlier in this run.
    ///
    /// # Panics
    /// Panics if the snapshot's locality count differs from the runtime's
    /// — restoring such a snapshot would silently drop (or skip) shards.
    pub fn restore(&mut self, snap: &Checkpoint) {
        assert_eq!(
            snap.per_locality.len(),
            self.world.localities.len(),
            "checkpoint shape mismatch: snapshot has {} locality shards, runtime has {} localities",
            snap.per_locality.len(),
            self.world.localities.len(),
        );
        for (loc, data) in self.world.localities.iter_mut().zip(&snap.per_locality) {
            loc.dim.restore(data);
        }
        // Re-advertise ownership in the index. Restore is out-of-band
        // (not billed), but cached resolutions still become stale.
        let items: Vec<ItemId> = self.world.item_descs.keys().copied().collect();
        for item in items {
            self.world.loc_cache.bump(item);
            for p in 0..self.world.localities.len() {
                let owned = self.world.localities[p].dim.owned_region(item);
                self.world.index.update_leaf(item, p, owned);
            }
        }
    }

    /// Test hook: flip a byte in the first non-empty stored shard of each
    /// of the newest `n` retained checkpoints — simulated targeted
    /// at-rest corruption, for exercising the recovery fallback chain
    /// without a fault plan's random rot arm. No-op when resilience is
    /// off or fewer checkpoints are retained.
    #[doc(hidden)]
    pub fn corrupt_newest_checkpoints(&mut self, n: usize) {
        let Some(mgr) = &mut self.world.resilience else {
            return;
        };
        for entry in mgr.saved.iter_mut().rev().take(n) {
            'entry: for row in entry.shards.iter_mut() {
                for (_, bytes) in row.iter_mut() {
                    if !bytes.is_empty() {
                        bytes[0] ^= 0xff;
                        break 'entry;
                    }
                }
            }
        }
    }

    /// Test hook: how many checkpoints (anchor + delta links) the
    /// resilience manager currently retains.
    #[doc(hidden)]
    pub fn retained_checkpoints(&self) -> usize {
        self.world
            .resilience
            .as_ref()
            .map(|m| m.saved.len())
            .unwrap_or(0)
    }

    /// Verify the runtime's distributed state against the formal model's
    /// invariants (paper Section 2.5) at a phase boundary:
    ///
    /// 1. **exclusive ownership** — the owned (primary) regions of every
    ///    item are pairwise disjoint across localities (the distributed
    ///    counterpart of *exclusive writes*: a writable copy exists in at
    ///    most one address space);
    /// 2. **index consistency** — each locality's advertised index leaf
    ///    region equals its data item manager's owned region;
    /// 3. **quiescent locks** — no `Lr`/`Lw` entries survive a phase
    ///    boundary (every (start) was matched by an (end));
    /// 4. **fenced writes** — persistent replicas stay backed: every
    ///    persistent export record still lies inside its recorder's owned
    ///    region (the broadcast source was not migrated or written away),
    ///    and every persistent replica is covered by the union of such
    ///    fences. A recovery that restores data without resetting replica
    ///    bookkeeping — or a driver migrating a broadcast region — trips
    ///    this check.
    ///
    /// Returns a list of violations (empty = consistent). Used by the
    /// cross-crate model-conformance tests.
    pub fn verify_consistency(&self) -> Vec<String> {
        let mut violations = Vec::new();
        let items: Vec<ItemId> = self.world.item_descs.keys().copied().collect();
        let nodes = self.world.localities.len();
        for item in items {
            // 1. Pairwise disjoint ownership.
            for a in 0..nodes {
                let ra = self.world.localities[a].dim.owned_region(item);
                for b in a + 1..nodes {
                    let rb = self.world.localities[b].dim.owned_region(item);
                    let overlap = ra.intersect_dyn(rb.as_ref());
                    if !overlap.is_empty_dyn() {
                        violations.push(format!(
                            "item {item:?}: localities {a} and {b} both own {overlap:?}"
                        ));
                    }
                }
            }
            // 2. Index leaves match DIM ownership.
            if let IndexImpl::Dist(idx) = &self.world.index {
                for p in 0..nodes {
                    let advertised = idx.leaf_region(item, p);
                    let owned = self.world.localities[p].dim.owned_region(item);
                    if !advertised.eq_dyn(owned.as_ref()) {
                        violations.push(format!(
                            "item {item:?}: index leaf of locality {p} disagrees with DIM                              (index {advertised:?} vs owned {owned:?})"
                        ));
                    }
                }
            }
            // 3. No locks held between phases.
            for (p, loc) in self.world.localities.iter().enumerate() {
                if loc.dim.has_locks(item) {
                    violations.push(format!(
                        "item {item:?}: locality {p} still holds locks at a phase boundary"
                    ));
                }
            }
            // 4. Fenced writes: persistent replicas stay backed by their
            //    exporter's owned data.
            let mut fences: Option<Box<dyn DynRegion>> = None;
            for (p, loc) in self.world.localities.iter().enumerate() {
                let fence = loc.dim.persistent_export_region(item);
                let stray = fence.difference_dyn(loc.dim.owned_region(item).as_ref());
                if !stray.is_empty_dyn() {
                    violations.push(format!(
                        "item {item:?}: locality {p} exported {stray:?} as a persistent replica but no longer owns it (fenced region migrated or written away)"
                    ));
                }
                fences = Some(match fences {
                    None => fence,
                    Some(f) => f.union_dyn(fence.as_ref()),
                });
            }
            if let Some(fences) = fences {
                for (p, loc) in self.world.localities.iter().enumerate() {
                    let orphan = loc
                        .dim
                        .persistent_region(item)
                        .difference_dyn(fences.as_ref());
                    if !orphan.is_empty_dyn() {
                        violations.push(format!(
                            "item {item:?}: locality {p} holds persistent replica {orphan:?} with no backing export fence"
                        ));
                    }
                }
            }
        }
        violations
    }

    /// Plan and apply an automatic rebalancing of a grid item distributed
    /// in axis-0 bands (see [`crate::rebalance`]): observed busy times
    /// since the start of the run drive a migration plan equalizing
    /// predicted time. Returns the number of migrations performed.
    pub fn auto_rebalance<const D: usize>(&mut self, item: ItemId, trigger: f64) -> usize {
        let busy = self.busy_ns();
        let owned: Vec<allscale_region::BoxRegion<D>> = (0..self.world.localities.len())
            .map(|l| {
                self.world.localities[l]
                    .dim
                    .owned_region(item)
                    .as_any()
                    .downcast_ref::<allscale_region::BoxRegion<D>>()
                    .expect("auto_rebalance requires a grid item")
                    .clone()
            })
            .collect();
        let plan = crate::rebalance::plan_rebalance(&busy, &owned, trigger);
        let n = plan.len();
        for m in plan {
            self.migrate_region(item, &m.region, m.from, m.to);
        }
        n
    }

    /// Per-locality busy nanoseconds so far (load-balancing input).
    pub fn busy_ns(&self) -> Vec<u64> {
        self.world
            .monitor
            .per_locality
            .iter()
            .map(|l| l.busy_ns)
            .collect()
    }
}

/// A full-application data snapshot (resilience manager payload).
#[derive(Clone)]
pub struct Checkpoint {
    pub(crate) per_locality: Vec<Vec<(ItemId, Vec<u8>)>>,
}

impl Checkpoint {
    /// Total serialized size of the snapshot.
    pub fn bytes(&self) -> usize {
        self.per_locality
            .iter()
            .flat_map(|l| l.iter().map(|(_, b)| b.len()))
            .sum()
    }
}

/// An asynchronous checkpoint in flight: the copy-on-write capture was
/// armed at a phase boundary, the storage drain is running in the
/// background, and a scheduled event commits the checkpoint when the
/// slower tier finishes. Discarded as *torn* if a recovery strikes
/// first — a partially drained checkpoint is never restored from.
struct PendingCkpt {
    /// Phase counter at the arming boundary.
    phase: usize,
    /// Full anchor or delta against the previous checkpoint.
    kind: CkptKind,
    /// Items each locality will store (changed shards only, for a
    /// delta), ascending.
    plan: Vec<Vec<ItemId>>,
    /// Boundary fingerprints per locality: `item -> (fp, len)` — becomes
    /// the manager's change-detection reference at commit.
    fps: Vec<BTreeMap<ItemId, (u64, u64)>>,
    /// When the capture was armed.
    started: SimTime,
    /// When the slower storage tier finishes draining.
    completes_at: SimTime,
    /// `Monitor::total_tasks()` at the boundary.
    tasks_done: u64,
    /// Full boundary-state bytes the checkpoint represents.
    logical_bytes: u64,
    /// Bytes actually written to each tier (delta shards only).
    stored_bytes: u64,
    /// Shards actually written (sum over localities).
    stored_shards: u64,
}

/// The runtime entry point.
pub struct Runtime {
    sim: RtSim,
}

impl Runtime {
    /// Build a runtime over the given configuration.
    pub fn new(config: RtConfig) -> Self {
        let nodes = config.spec.nodes;
        let trace = match &config.trace {
            Some(cfg) => TraceSink::enabled(nodes, cfg),
            None => TraceSink::disabled(),
        };
        let mut net = Network::new(config.spec.build_topology(), config.spec.net.clone());
        if let Some(plan) = config.faults {
            net.install_faults(plan);
        }
        if config.integrity.is_some_and(|i| i.verify_transfers) {
            net.set_integrity(true);
        }
        net.install_trace(trace.clone());
        let localities = (0..nodes)
            .map(|i| Locality {
                cores: CorePool::new(config.spec.cores_per_node),
                dim: DataItemManager::new(i),
                load: 0,
                comm_busy: SimTime::ZERO,
            })
            .collect();
        let index = if config.central_index {
            IndexImpl::Central(CentralIndex::new(nodes))
        } else {
            IndexImpl::Dist(DistIndex::new(nodes))
        };
        let batching = config.spec.net.batching;
        let scheduler: Box<dyn Scheduler> = match config.stealing {
            Some(cfg) => Box::new(WorkStealingScheduler::new(
                config.policy,
                cfg,
                nodes,
                config.spec.cores_per_node,
            )),
            None => Box::new(DataAwareScheduler::new(config.policy)),
        };
        let world = RtWorld {
            spec: config.spec,
            net,
            cost: config.cost,
            localities,
            monitor: Monitor::new(nodes),
            index,
            loc_cache: LocationCache::new(),
            item_descs: BTreeMap::new(),
            inflight: BTreeMap::new(),
            parents: BTreeMap::new(),
            parked: Vec::new(),
            retry_scheduled: false,
            next_task: 0,
            next_item: 0,
            scheduler,
            driver: None,
            phase: 0,
            finish_time: SimTime::ZERO,
            done: false,
            resilience: config
                .resilience
                .map(|cfg| ResilienceManager::new(cfg, nodes)),
            pending_ckpt: None,
            integrity: config.integrity.map(IntegrityManager::new),
            dead: vec![false; nodes],
            run_epoch: 0,
            retry_policy: config
                .resilience
                .map(|cfg| cfg.retry)
                .unwrap_or_default(),
            trace,
            batching,
            coalescer: Coalescer::new(batching.unwrap_or_default()),
            next_batch: 0,
            pending_serve: None,
            serving: None,
        };
        let sim = Sim::new(world);
        Runtime { sim }
    }

    /// Run an application to completion; returns the run report.
    ///
    /// # Panics
    /// Panics if the application deadlocks (tasks parked forever).
    pub fn run(mut self, driver: impl AppDriver) -> RunReport {
        self.sim.world.driver = Some(Box::new(driver));
        self.sim.schedule(SimDuration::ZERO, |sim| {
            advance_phase(sim, None);
        });
        if let Some(mgr) = &self.sim.world.resilience {
            let period = mgr.cfg.heartbeat_period;
            self.sim.schedule(period, heartbeat_tick);
        }
        if let Some(period) = self.sim.world.integrity.as_ref().and_then(|m| m.cfg.scrub_period) {
            self.sim.schedule(period, scrub_tick);
        }
        self.sim.run();
        self.sim.world.monitor.cache = self.sim.world.loc_cache.stats();
        self.sim.world.monitor.resilience.net_retries = self.sim.world.net.stats().retries;
        self.sim.world.monitor.resilience.net_dropped = self.sim.world.net.stats().dropped;
        {
            let wire = self.sim.world.net.stats().clone();
            let g = &mut self.sim.world.monitor.integrity;
            g.wire_corruptions = wire.corrupted;
            g.wire_detected = wire.corrupt_detected;
            g.wire_undetected = wire.corrupt_undetected;
            g.re_requests = wire.re_requests;
        }
        let w = &self.sim.world;
        assert!(
            w.inflight.is_empty() && w.parents.is_empty(),
            "runtime deadlock: {} tasks in flight, {} parents pending, {} parked",
            w.inflight.len(),
            w.parents.len(),
            w.parked.len()
        );
        RunReport {
            finish_time: w.finish_time,
            phases: w.phase,
            monitor: w.monitor.clone(),
            remote_msgs: w.net.stats().remote_msgs(),
            remote_bytes: w.net.stats().remote_bytes(),
            traffic: w.net.stats().clone(),
            storage: w
                .resilience
                .as_ref()
                .map(|m| m.storage.stats.clone())
                .unwrap_or_default(),
            events: self.sim.events_run(),
            trace: w.trace.take(),
        }
    }
}

// ------------------------------------------------------------------ billing

/// Semantic tag carried by every [`send`]: why the message crosses the
/// wire and which task/item it feeds. Recorded on transfer trace events
/// and used by the critical-path analyzer to attribute chain time.
#[derive(Clone, Copy)]
struct Payload {
    purpose: TransferPurpose,
    task: Option<TaskId>,
    item: Option<ItemId>,
}

impl Payload {
    /// A message feeding `task` (forward, result, release).
    fn task(purpose: TransferPurpose, task: TaskId) -> Self {
        Payload {
            purpose,
            task: Some(task),
            item: None,
        }
    }

    /// A data movement of `item`, optionally feeding `task`.
    fn data(purpose: TransferPurpose, task: Option<TaskId>, item: ItemId) -> Self {
        Payload {
            purpose,
            task,
            item: Some(item),
        }
    }
}

/// Record an epoch-stamped instant on `loc`'s runtime track. `kind` is a
/// small `Copy` value, so building it costs a few register moves even
/// when the sink is disabled; the sink itself adds one branch.
fn trace_instant(w: &RtWorld, now: SimTime, loc: usize, kind: EventKind) {
    let epoch = w.run_epoch;
    w.trace
        .record(|| TraceEvent::instant(now.as_nanos(), loc as u32, kind).in_epoch(epoch));
}

/// Record an epoch-stamped span occupying `core` of `loc`.
fn trace_core_span(
    w: &RtWorld,
    start: SimTime,
    dur: SimDuration,
    loc: usize,
    core: usize,
    kind: EventKind,
) {
    let epoch = w.run_epoch;
    w.trace.record(|| {
        TraceEvent::span(start.as_nanos(), dur.as_nanos(), loc as u32, kind)
            .on_core(core)
            .in_epoch(epoch)
    });
}

/// Bill a message on the network and in the monitor; returns the arrival
/// time, or `None` when the message was lost for good — the destination
/// (or source) is dead, or every retry attempt was dropped. Attempts and
/// backoff latency are billed on the simulated clock by the network's
/// retry wrapper; a definitive loss is counted in the resilience stats
/// and leaves the work it carried stranded until recovery reaps it.
///
/// Remote deliveries land in the monitor's transfer-latency histogram
/// (tracing on or off) and, when the sink is enabled, as a transfer span
/// attributed to the destination locality; definitive losses become
/// `TransferLost` instants at the sender.
fn send(
    w: &mut RtWorld,
    now: SimTime,
    from: usize,
    to: usize,
    bytes: usize,
    tag: Payload,
) -> Option<SimTime> {
    send_msg(w, now, from, to, bytes, tag, false).map(|d| d.at)
}

/// [`send`] with an explicit `gate` switch: when set, a remote delivery
/// additionally serializes through the destination's communication
/// thread (the LogP `o` term — see [`handle_msg`]) and the returned time
/// is handling-complete rather than wire arrival. The deferred-send path
/// gates in both batched and unbatched modes, so the two stay comparable;
/// synchronous callers ([`send`]) do not gate.
///
/// The returned [`Delivered`] carries the wire's integrity verdict:
/// `intact` is `false` only when a corrupting fault plan runs with
/// checksum verification off — verification on turns a corrupt delivery
/// into a re-request inside the retry loop, so a verified delivery is
/// always intact.
fn send_msg(
    w: &mut RtWorld,
    now: SimTime,
    from: usize,
    to: usize,
    bytes: usize,
    tag: Payload,
    gate: bool,
) -> Option<Delivered> {
    w.monitor.per_locality[from].msgs_sent += 1;
    w.monitor.per_locality[from].bytes_sent += bytes as u64;
    match w
        .net
        .transfer_with_retry_frame(now, from, to, bytes, &w.retry_policy)
    {
        Ok(delivered) => {
            let arrival = delivered.at;
            if from != to {
                let end = if gate { handle_msg(w, to, arrival) } else { arrival };
                w.monitor.transfer_latency.record((end - now).as_nanos());
                let epoch = w.run_epoch;
                w.trace.record(|| {
                    TraceEvent::span(
                        now.as_nanos(),
                        (end - now).as_nanos(),
                        to as u32,
                        EventKind::Transfer {
                            purpose: tag.purpose,
                            src: from as u32,
                            dst: to as u32,
                            bytes: bytes as u64,
                            task: tag.task.map(|t| t.0),
                            item: tag.item.map(|i| i.0),
                            batch: None,
                        },
                    )
                    .in_epoch(epoch)
                });
                Some(Delivered {
                    at: end,
                    intact: delivered.intact,
                })
            } else {
                Some(delivered)
            }
        }
        Err(_) => {
            w.monitor.resilience.failed_transfers += 1;
            let epoch = w.run_epoch;
            w.trace.record(|| {
                TraceEvent::instant(
                    now.as_nanos(),
                    from as u32,
                    EventKind::TransferLost {
                        purpose: tag.purpose,
                        src: from as u32,
                        dst: to as u32,
                        bytes: bytes as u64,
                        task: tag.task.map(|t| t.0),
                    },
                )
                .in_epoch(epoch)
            });
            None
        }
    }
}

/// Serialize one incoming runtime message through `to`'s communication
/// thread: handling starts once the message has arrived *and* the thread
/// is free, and occupies it for the per-message CPU overhead. Returns
/// the handling-complete time. This per-message serial cost is what a
/// batch amortizes — a flush of `n` messages pays it once.
fn handle_msg(w: &mut RtWorld, to: usize, arrival: SimTime) -> SimTime {
    let start = w.localities[to].comm_busy.max(arrival);
    let end = start + w.cost.msg_cpu();
    w.localities[to].comm_busy = end;
    end
}

// ---------------------------------------------------------------- integrity

/// Whether transfer verification is on: data payloads are framed with a
/// checksum and opened at the receiver.
fn verify_on(w: &RtWorld) -> bool {
    w.integrity.as_ref().is_some_and(|m| m.cfg.verify_transfers)
}

/// Wrap a data payload for the wire. With transfer verification on, the
/// payload is sealed under its FNV-1a checksum (the framed length —
/// payload plus [`frame::FRAME_OVERHEAD`] — is what gets billed);
/// otherwise the bytes travel bare. Control messages are not sealed
/// individually: their fixed `control_msg_bytes` size already stands for
/// a fully framed wire message.
fn seal_payload(w: &RtWorld, payload: Vec<u8>) -> Vec<u8> {
    if verify_on(w) {
        frame::seal(&payload)
    } else {
        payload
    }
}

/// Recover the payload of an arrived data transfer. With verification
/// on, the frame is opened and checked — the network never delivers a
/// corrupt message in that mode (it re-requests instead), so a mismatch
/// here would be an *undetected* corruption and the check is the
/// zero-undetected oracle. With verification off, a delivery flagged
/// non-intact has the wire's bit flip applied to the raw bytes: the
/// receiver consumes poison without noticing (the ablation baseline).
fn open_payload(w: &mut RtWorld, wire: &[u8], intact: bool) -> Vec<u8> {
    if verify_on(w) {
        return frame::open(wire)
            .expect("verified transfer delivered a corrupt frame (undetected corruption)")
            .to_vec();
    }
    let mut payload = wire.to_vec();
    if !intact {
        let salt = w.net.faults_mut().map(|f| f.corruption_salt()).unwrap_or(1);
        frame::corrupt_in_place(&mut payload, salt);
    }
    payload
}

/// Draw from the fault plan's at-rest rot arm for a buffer entering
/// long-lived storage (a persistent replica or a checkpoint shard); a
/// strike flips one bit. No-op (and no generator advance) unless the
/// fault plan configures rot.
fn rot_payload(w: &mut RtWorld, bytes: &mut [u8]) {
    let Some(f) = w.net.faults_mut() else { return };
    if f.rot_strikes() {
        let salt = f.corruption_salt();
        frame::corrupt_in_place(bytes, salt);
        w.monitor.integrity.rot_injected += 1;
    }
}

/// A runtime message parked in the coalescer: its semantic tag plus the
/// continuation to run once the batch carrying it is delivered (`Some`
/// handling-complete time) or definitively lost (`None`).
struct PendingMsg {
    tag: Payload,
    deliver: DeliverFn,
}

/// Continuation run when a batched message is delivered or lost.
type DeliverFn = Box<dyn FnOnce(&mut RtSim, Option<Delivered>)>;

/// Send a runtime message through the batching layer. With batching off
/// it is billed immediately ([`send_msg`] gated on the destination's
/// comm thread) and `deliver` is scheduled for the handling-complete
/// time; with batching on it is enqueued in the per-(src, dst) coalescer
/// and `deliver` fires when the batch flushes — at the flush-window
/// deadline, or immediately when a byte or message cap closes the batch.
/// `deliver` receives `None` when the message (or the whole batch
/// carrying it) is definitively lost; loss continuations run
/// synchronously.
fn send_deferred(
    sim: &mut RtSim,
    from: usize,
    to: usize,
    bytes: usize,
    tag: Payload,
    deliver: impl FnOnce(&mut RtSim, Option<Delivered>) + 'static,
) {
    debug_assert_ne!(from, to, "deferred sends are remote-only");
    let now = sim.now();
    if sim.world.batching.is_none() {
        match send_msg(&mut sim.world, now, from, to, bytes, tag, true) {
            Some(handled) => {
                schedule_task_event(sim, handled.at, move |sim| deliver(sim, Some(handled)))
            }
            None => deliver(sim, None),
        }
        return;
    }
    // Sender-side accounting happens at enqueue time; the wire is billed
    // once per flush.
    sim.world.monitor.per_locality[from].msgs_sent += 1;
    sim.world.monitor.per_locality[from].bytes_sent += bytes as u64;
    let msg = PendingMsg {
        tag,
        deliver: Box::new(deliver),
    };
    match sim.world.coalescer.enqueue(now, from, to, bytes, msg) {
        Enqueue::Joined => {}
        Enqueue::Opened { deadline, gen } => {
            // Eager-flush policy: hold the batch only while the sender's
            // NIC is busy anyway. A lone message on an idle NIC departs
            // at `now` — but the flush event is *scheduled*, so every
            // same-destination send of the current event cascade (all at
            // the same virtual instant, FIFO before the flush fires)
            // still joins the batch. Under backpressure the batch rides
            // until the NIC frees, capped by the flush window, so
            // batching never adds more delay than the window and adds
            // none at all when the wire is idle.
            let eager = sim.world.net.tx_free_at(from).max(now);
            let fire = eager.min(deadline);
            schedule_task_event(sim, fire, move |sim| {
                if let Some(batch) = sim.world.coalescer.take_if_gen(from, to, gen) {
                    flush_batch(sim, batch);
                }
            });
        }
        Enqueue::Full => {
            let batch = sim
                .world
                .coalescer
                .take(from, to)
                .expect("cap-flushed batch present");
            flush_batch(sim, batch);
        }
    }
}

/// Put a closed batch on the wire as one priced message and fire every
/// member's continuation at the batch's handling-complete time. A fault
/// verdict applies to the whole flush: on a definitive loss, every
/// member's continuation fires with `None`.
fn flush_batch(sim: &mut RtSim, batch: Batch<PendingMsg>) {
    let now = sim.now();
    let src = batch.src;
    let dst = batch.dst;
    let msgs = batch.entries.len() as u64;
    let id = sim.world.next_batch;
    sim.world.next_batch += 1;
    let outcome = {
        let w = &mut sim.world;
        w.net
            .transfer_batch_frame(now, src, dst, batch.bytes, msgs, batch.cause, &w.retry_policy)
    };
    match outcome {
        Ok(delivered) => {
            let w = &mut sim.world;
            let handled = handle_msg(w, dst, delivered.at);
            let intact = delivered.intact;
            let epoch = w.run_epoch;
            w.trace.record(|| {
                TraceEvent::span(
                    now.as_nanos(),
                    (handled - now).as_nanos(),
                    dst as u32,
                    EventKind::BatchFlush {
                        src: src as u32,
                        dst: dst as u32,
                        msgs: msgs as u32,
                        bytes: batch.bytes as u64,
                        cause: batch.cause,
                        batch: id,
                    },
                )
                .in_epoch(epoch)
            });
            for e in &batch.entries {
                // Per-member latency runs from its enqueue to the flush's
                // handling-complete time: the batching wait is transfer
                // time, and the critical path attributes it as such.
                let at = e.at.min(handled);
                w.monitor.transfer_latency.record((handled - at).as_nanos());
                let tag = e.payload.tag;
                let bytes = e.bytes;
                w.trace.record(|| {
                    TraceEvent::span(
                        at.as_nanos(),
                        (handled - at).as_nanos(),
                        dst as u32,
                        EventKind::Transfer {
                            purpose: tag.purpose,
                            src: src as u32,
                            dst: dst as u32,
                            bytes: bytes as u64,
                            task: tag.task.map(|t| t.0),
                            item: tag.item.map(|i| i.0),
                            batch: Some(id),
                        },
                    )
                    .in_epoch(epoch)
                });
            }
            let entries = batch.entries;
            schedule_task_event(sim, handled, move |sim| {
                // The wire verdict applies to the whole flush: one frame
                // carried every member.
                let arrival = Delivered {
                    at: handled,
                    intact,
                };
                for e in entries {
                    (e.payload.deliver)(sim, Some(arrival));
                }
            });
        }
        Err(_) => {
            for e in batch.entries {
                let PendingMsg { tag, deliver } = e.payload;
                let w = &mut sim.world;
                w.monitor.resilience.failed_transfers += 1;
                let epoch = w.run_epoch;
                w.trace.record(|| {
                    TraceEvent::instant(
                        now.as_nanos(),
                        src as u32,
                        EventKind::TransferLost {
                            purpose: tag.purpose,
                            src: src as u32,
                            dst: dst as u32,
                            bytes: e.bytes as u64,
                            task: tag.task.map(|t| t.0),
                        },
                    )
                    .in_epoch(epoch)
                });
                deliver(sim, None);
            }
        }
    }
}

/// Bill a chain of control-message hops; returns completion time.
///
/// Besides wire time, each hop occupies a core at the *receiving* process
/// for the per-message CPU overhead (the LogP `o` term): this is what
/// makes a centralized directory congest under load while the
/// hierarchical index spreads handling over the tree.
///
/// Index operations apply their logical state change before billing, so a
/// hop lost to fault injection truncates the remaining billing chain but
/// never the index mutation itself.
fn bill_hops(w: &mut RtWorld, mut now: SimTime, hops: &[Hop], item: Option<ItemId>) -> SimTime {
    let bytes = w.cost.control_msg_bytes;
    let cpu = w.cost.msg_cpu();
    for &(a, b) in hops {
        let tag = Payload {
            purpose: TransferPurpose::Control,
            task: None,
            item,
        };
        match send(w, now, a, b, bytes, tag) {
            Some(arrival) => now = arrival,
            None => return now,
        }
        let start = w.localities[b].comm_busy.max(now);
        let end = start + cpu;
        w.localities[b].comm_busy = end;
        now = end;
    }
    now
}

/// Schedule a task-lifecycle event guarded by the current recovery epoch:
/// if a recovery happens before the event fires, it becomes a no-op. This
/// is how an entire in-flight phase is discarded — its completions,
/// transfer arrivals, and retries are all stale after the world is
/// rewound to the checkpoint.
fn schedule_task_event(
    sim: &mut RtSim,
    at: SimTime,
    f: impl FnOnce(&mut RtSim) + 'static,
) {
    let epoch = sim.world.run_epoch;
    sim.schedule_at(at, move |sim| {
        if sim.world.run_epoch == epoch {
            f(sim);
        }
    });
}

/// Remap a scheduling target away from localities known to be dead. The
/// detector's knowledge only — an undetected death is *not* remapped (the
/// runtime cannot know), so tasks sent there are lost and stall the phase
/// until the heartbeat detector catches up.
fn live_target(w: &RtWorld, target: usize) -> usize {
    if w.dead[target] {
        live_successor(w, target)
    } else {
        target
    }
}

/// The next live locality after `p` on the ring (successor heir rule).
/// At least one live locality must remain — the runtime does not model
/// whole-cluster loss.
fn live_successor(w: &RtWorld, p: usize) -> usize {
    let nodes = w.localities.len();
    (1..nodes)
        .map(|d| (p + d) % nodes)
        .find(|&q| !w.dead[q])
        .expect("at least one live locality")
}

/// The locality hosting the cluster-global duties (failure detection,
/// phase driving): the lowest-indexed locality not declared dead.
/// Identical to locality 0 until 0 itself is declared dead — the duties
/// then fail over to the next survivor instead of dying with their host
/// (the detector is no longer a single point of failure).
fn detector_host(w: &RtWorld) -> usize {
    w.dead.iter().position(|d| !d).unwrap_or(0)
}

/// Resolve `region` of `item` from locality `at`, going through the
/// location cache when the hierarchical index is active: hits cost no
/// control messages, misses pay Algorithm 1's traversal hops. The lookup
/// (and its hops) is counted in the monitor either way; billing the hops
/// on the network stays with the caller.
fn index_resolve(
    w: &mut RtWorld,
    now: SimTime,
    item: ItemId,
    at: usize,
    region: &dyn DynRegion,
) -> (Resolution, Vec<Hop>) {
    let (pieces, hops) = match &w.index {
        IndexImpl::Dist(idx) => w.loc_cache.resolve(idx, item, at, region),
        IndexImpl::Central(idx) => idx.resolve(item, at, region),
    };
    w.monitor.index_lookups += 1;
    w.monitor.index_lookup_hops += hops.len() as u64;
    trace_instant(
        w,
        now,
        at,
        EventKind::IndexLookup {
            item: item.0,
            hops: hops.len() as u32,
            cache_hit: hops.is_empty(),
        },
    );
    (pieces, hops)
}

/// Update locality `p`'s advertised region of `item` in the index,
/// invalidating the item's cached resolutions (epoch bump) *before* the
/// update becomes visible — the cache must never serve a pre-update owner.
/// Counts the propagation hops in the monitor; billing stays with the
/// caller.
fn index_update(
    w: &mut RtWorld,
    now: SimTime,
    item: ItemId,
    p: usize,
    region: Box<dyn DynRegion>,
) -> Vec<Hop> {
    w.loc_cache.bump(item);
    let hops = w.index.update_leaf(item, p, region);
    w.monitor.index_update_hops += hops.len() as u64;
    trace_instant(
        w,
        now,
        p,
        EventKind::IndexUpdate {
            item: item.0,
            hops: hops.len() as u32,
        },
    );
    hops
}

fn policy_env(w: &RtWorld) -> (usize, usize, Vec<usize>) {
    (
        w.localities.len(),
        w.spec.cores_per_node,
        w.localities.iter().map(|l| l.load).collect(),
    )
}

// ------------------------------------------------------------- phase driver

fn advance_phase(sim: &mut RtSim, prev: TaskValue) {
    if let Some(resume) = maybe_checkpoint(sim, prev.is_none()) {
        // The boundary stalls — a synchronous drain, an incremental
        // change-detection scan, or a write-fence on the previous drain
        // — and re-enters itself once the stall lifts.
        schedule_task_event(sim, resume, move |sim| advance_phase(sim, prev));
        return;
    }
    let phase = sim.world.phase;
    let now = sim.now();
    // Phase orchestration is hosted by the detector locality: the lowest-
    // indexed live one (locality 0 until a recovery declares it dead).
    let home = detector_host(&sim.world);
    if phase > 0 {
        trace_instant(
            &sim.world,
            now,
            home,
            EventKind::PhaseEnd {
                phase: phase as u32 - 1,
            },
        );
    }
    let mut driver = sim.world.driver.take().expect("driver present");
    let next = {
        let mut ctx = RtCtx {
            world: &mut sim.world,
            now,
        };
        driver.next_phase(phase, &mut ctx, prev)
    };
    sim.world.driver = Some(driver);
    match next {
        Some(root) => {
            trace_instant(
                &sim.world,
                now,
                home,
                EventKind::PhaseBegin {
                    phase: phase as u32,
                },
            );
            sim.world.phase += 1;
            assign_task(sim, home, root, None);
        }
        None => {
            if let Some(spec) = sim.world.pending_serve.take() {
                // The driver registered a serving phase instead of a
                // root work item: run it as this phase.
                trace_instant(
                    &sim.world,
                    now,
                    home,
                    EventKind::PhaseBegin {
                        phase: phase as u32,
                    },
                );
                sim.world.phase += 1;
                start_serving(sim, spec);
            } else {
                sim.world.done = true;
                sim.world.finish_time = sim.now();
            }
        }
    }
}

// --------------------------------------------------------------- resilience

/// Drive the checkpoint pipeline at a phase boundary. Returns `Some(t)`
/// when the boundary must stall until `t` (a synchronous drain, the
/// incremental change-detection scan, or a write-fence on a still-
/// running previous drain) — the caller reschedules itself and re-enters.
/// Returns `None` when the phase may proceed immediately.
///
/// Boundaries whose phase value is `Some` never checkpoint: `TaskValue`
/// is an opaque `Box<dyn Any>` that cannot be serialized into the
/// checkpoint, so the replay (which feeds `None`) would not be faithful.
/// Drivers that thread values between phases simply get coarser
/// checkpoints.
fn maybe_checkpoint(sim: &mut RtSim, prev_is_none: bool) -> Option<SimTime> {
    sim.world.resilience.as_ref()?;
    let now = sim.now();
    let phase = sim.world.phase;
    if let Some(p) = &sim.world.pending_ckpt {
        if p.phase == phase {
            // Re-entry into the boundary that armed this capture (stall
            // resume, or a same-instant scheduling race with the commit
            // event): commit if the drain is done, else let the phase
            // run alongside its own background drain.
            if p.completes_at <= now {
                commit_pending_ckpt(sim);
            }
            return None;
        }
        if p.completes_at > now {
            // The previous drain has not landed by this boundary:
            // write-fence. The boundary stalls until the commit, which
            // also keeps captures strictly one-at-a-time.
            let wait = p.completes_at - now;
            let (pphase, until) = (p.phase, p.completes_at);
            let w = &mut sim.world;
            w.monitor.resilience.ckpt_fence_ns += wait.as_nanos();
            let host = detector_host(w);
            let epoch = w.run_epoch;
            w.trace.record(|| {
                TraceEvent::span(
                    now.as_nanos(),
                    wait.as_nanos(),
                    host as u32,
                    EventKind::CheckpointFence {
                        phase: pphase as u32,
                    },
                )
                .in_epoch(epoch)
            });
            return Some(until);
        }
        // Drain finished but its commit event has not fired yet at this
        // exact instant: commit inline (the scheduled event no-ops).
        commit_pending_ckpt(sim);
    }
    let due = {
        let mgr = sim.world.resilience.as_ref().expect("resilience enabled");
        prev_is_none && mgr.due(phase)
    };
    if !due {
        return None;
    }
    // ---- capture: fingerprint the boundary and arm the COW snapshot.
    let fps: Vec<BTreeMap<ItemId, (u64, u64)>> = sim
        .world
        .localities
        .iter()
        .map(|l| {
            l.dim
                .owned_fingerprints()
                .into_iter()
                .map(|(id, fp, len)| (id, (fp, len)))
                .collect()
        })
        .collect();
    let logical_bytes: u64 = fps
        .iter()
        .flat_map(|m| m.values().map(|&(_, len)| len))
        .sum();
    let tasks_done = sim.world.monitor.total_tasks();
    let w = &mut sim.world;
    let mgr = w.resilience.as_mut().expect("resilience enabled");
    let kind = mgr.next_kind();
    let mode = mgr.cfg.ckpt.mode;
    // The change-detection scan is billed (at memory-bandwidth rate)
    // only when incremental checkpointing actually consumes it.
    let fp_ns = if mgr.cfg.ckpt.incremental {
        mgr.storage.fingerprint_ns(logical_bytes)
    } else {
        0
    };
    let plan: Vec<Vec<ItemId>> = match kind {
        CkptKind::Anchor => fps.iter().map(|m| m.keys().copied().collect()).collect(),
        CkptKind::Delta => fps
            .iter()
            .zip(&mgr.last_fps)
            .map(|(cur, last)| {
                cur.iter()
                    .filter(|(id, sig)| last.get(id) != Some(sig))
                    .map(|(id, _)| *id)
                    .collect()
            })
            .collect(),
    };
    // Both tiers are written (fast local restore + death-surviving
    // remote replica); one locality's shards drain sequentially through
    // each tier channel, distinct localities drain in parallel — the
    // drain completes when the slowest locality's slower tier does.
    let mut drain_ns = 0u64;
    let mut stored_bytes = 0u64;
    let mut stored_shards = 0u64;
    for (loc, ids) in plan.iter().enumerate() {
        let bytes: u64 = ids.iter().map(|id| fps[loc][id].1).sum();
        let shards = ids.len() as u64;
        stored_bytes += bytes;
        stored_shards += shards;
        let local = mgr.storage.write_ns(StorageTier::Local, shards, bytes);
        let remote = mgr.storage.write_ns(StorageTier::Remote, shards, bytes);
        drain_ns = drain_ns.max(local.max(remote));
    }
    w.monitor.resilience.ckpt_fp_ns += fp_ns;
    w.monitor.resilience.ckpt_drain_ns += drain_ns;
    let completes_at = now + SimDuration::from_nanos(fp_ns + drain_ns);
    for l in w.localities.iter_mut() {
        l.dim.arm_snapshot();
    }
    w.pending_ckpt = Some(PendingCkpt {
        phase,
        kind,
        plan,
        fps,
        started: now,
        completes_at,
        tasks_done,
        logical_bytes,
        stored_bytes,
        stored_shards,
    });
    let host = detector_host(w);
    trace_instant(
        w,
        now,
        host,
        EventKind::Checkpoint {
            phase: phase as u32,
            bytes: logical_bytes,
        },
    );
    schedule_task_event(sim, completes_at, commit_pending_ckpt);
    match mode {
        CkptMode::Sync => {
            // The classic blocking checkpoint: the boundary stalls for
            // the scan plus the full drain.
            sim.world.monitor.resilience.ckpt_stall_ns += fp_ns + drain_ns;
            Some(completes_at)
        }
        CkptMode::Async => {
            // Only the change-detection scan happens at the boundary;
            // the drain overlaps the next phase's compute.
            if fp_ns > 0 {
                Some(now + SimDuration::from_nanos(fp_ns))
            } else {
                None
            }
        }
    }
}

/// Commit the in-flight checkpoint: finish the copy-on-write capture
/// (lazily serializing everything the phase never touched), keep only
/// the planned shards, checksum them pre-rot, and hand the link to the
/// resilience manager. Scheduled at the drain's completion time;
/// idempotent (the boundary may have committed inline already) and
/// epoch-guarded (a recovery tears the drain instead).
fn commit_pending_ckpt(sim: &mut RtSim) {
    let Some(p) = sim.world.pending_ckpt.take() else {
        return;
    };
    let now = sim.now();
    debug_assert!(p.completes_at <= now, "commit fired before the drain finished");
    let w = &mut sim.world;
    let full: Vec<Vec<(ItemId, Vec<u8>)>> = w
        .localities
        .iter_mut()
        .map(|l| l.dim.finish_snapshot())
        .collect();
    let cow: u64 = w
        .localities
        .iter_mut()
        .map(|l| l.dim.take_cow_captures())
        .sum();
    w.monitor.resilience.cow_captures += cow;
    // Roster and stored shards come from the *boundary* state; checksums
    // are computed over the in-memory bytes before the stored copy is
    // exposed to at-rest rot, so a rotted shard fails verification at
    // reconstruction time.
    let roster: Vec<Vec<ItemId>> = full
        .iter()
        .map(|shards| shards.iter().map(|(id, _)| *id).collect())
        .collect();
    let mut shards: Vec<Vec<(ItemId, Vec<u8>)>> = Vec::with_capacity(full.len());
    let mut sums: Vec<Vec<u64>> = Vec::with_capacity(full.len());
    for (loc, row) in full.iter().enumerate() {
        let mut kept = Vec::with_capacity(p.plan[loc].len());
        let mut row_sums = Vec::with_capacity(p.plan[loc].len());
        for (id, bytes) in row {
            if p.plan[loc].binary_search(id).is_ok() {
                row_sums.push(fnv1a_64(bytes));
                kept.push((*id, bytes.clone()));
            }
        }
        shards.push(kept);
        sums.push(row_sums);
    }
    let entry = SavedCkpt {
        phase: p.phase,
        kind: p.kind,
        shards,
        sums,
        roster,
    };
    let validate = {
        let mgr = w.resilience.as_ref().expect("resilience enabled");
        mgr.cfg.ckpt.validate_reconstruction
    };
    w.monitor.resilience.checkpoints += 1;
    w.monitor.resilience.checkpoint_bytes += p.stored_bytes;
    w.monitor.resilience.ckpt_logical_bytes += p.logical_bytes;
    match p.kind {
        CkptKind::Anchor => w.monitor.resilience.ckpt_anchors += 1,
        CkptKind::Delta => w.monitor.resilience.ckpt_deltas += 1,
    }
    let mut rows = {
        let mgr = w.resilience.as_mut().expect("resilience enabled");
        mgr.save(entry, p.tasks_done);
        mgr.last_fps = p.fps;
        if validate {
            // Test/debug aid (meaningful without rot injection): the
            // anchor+delta chain must reconstruct the boundary state
            // bit-for-bit.
            let upto = mgr.saved.len() - 1;
            let (snap, _) = reconstruct(&mgr.saved, upto, false)
                .expect("committed chain must reconstruct");
            assert_eq!(
                snap.per_locality, full,
                "delta reconstruction diverged from the full boundary snapshot"
            );
        }
        std::mem::take(&mut mgr.saved.last_mut().expect("entry just saved").shards)
    };
    // At-rest rot strikes the *stored* copy only, after checksums and
    // validation (rot_payload borrows the whole world, so the rows take
    // a round trip out of the manager).
    for row in rows.iter_mut() {
        for (_, bytes) in row.iter_mut() {
            rot_payload(w, bytes);
        }
    }
    w.resilience
        .as_mut()
        .expect("resilience enabled")
        .saved
        .last_mut()
        .expect("entry just saved")
        .shards = rows;
    let host = detector_host(w);
    let epoch = w.run_epoch;
    let dur = now - p.started;
    w.trace.record(|| {
        TraceEvent::span(
            p.started.as_nanos(),
            dur.as_nanos(),
            host as u32,
            EventKind::CheckpointDrain {
                phase: p.phase as u32,
                shards: p.stored_shards as u32,
                bytes: p.stored_bytes,
            },
        )
        .in_epoch(epoch)
    });
}

// ------------------------------------------------------------------ serving

/// Begin the serving phase registered by the driver: install the session
/// and schedule the first open-loop arrival and the first controller
/// tick. Both chains are epoch-guarded, so a recovery mid-phase disarms
/// them wholesale and the replayed driver restarts the stream.
fn start_serving(sim: &mut RtSim, spec: ServeSpec) {
    let now = sim.now();
    let shards = spec.shard_regions.len();
    let mut session = ServeSession::new(spec, now);
    // Replays accumulate into the same per-shard histograms (like
    // `tasks_reexecuted`); only (re)size them on shard-count change.
    if sim.world.monitor.serve.per_shard.len() != shards {
        sim.world.monitor.serve.per_shard = vec![LogHistogram::new(); shards];
    }
    let first = session.gen.next_gap();
    let period = session.slo.control_period;
    sim.world.serving = Some(session);
    schedule_task_event(sim, now + first, serve_arrival);
    schedule_task_event(sim, now + period, slo_tick);
}

/// One open-loop arrival: build the request, admit or shed it, and
/// schedule the next arrival — on the virtual clock, independent of any
/// completion. This independence is what makes saturation observable:
/// past the capacity knee, in-flight requests pile up and tail latency
/// diverges instead of the arrival rate slowing down.
fn serve_arrival(sim: &mut RtSim) {
    let now = sim.now();
    let Some(mut session) = sim.world.serving.take() else {
        return;
    };
    let req = session.next_req;
    session.next_req += 1;
    let request = session.factory.make(req);
    let shard = request.shard;
    assert!(
        shard < session.shard_regions.len(),
        "request factory produced shard {shard} of {}",
        session.shard_regions.len()
    );
    let nodes = sim.world.localities.len();
    // Frontends take turns admitting requests (a round-robin load
    // balancer in front of the cluster), skipping dead localities.
    let frontend = live_target(&sim.world, (req % nodes as u64) as usize);
    {
        let m = &mut sim.world.monitor.serve;
        m.offered += 1;
        if request.write {
            m.writes += 1;
        } else {
            m.reads += 1;
        }
    }
    trace_instant(
        &sim.world,
        now,
        frontend,
        EventKind::RequestArrival {
            req,
            shard: shard as u32,
            write: request.write,
        },
    );
    if !request.write && session.slo.shed_overload && session.shedding[shard] {
        // Load shedding applies to reads only — a shed write would be a
        // lost acknowledged update.
        sim.world.monitor.serve.shed += 1;
        trace_instant(
            &sim.world,
            now,
            frontend,
            EventKind::RequestShed {
                req,
                shard: shard as u32,
            },
        );
    } else {
        if request.write && session.replicated[shard] {
            // A write to a replicated shard first invalidates the
            // written region everywhere, lifting the broadcast's write
            // fences region-precisely; untouched replicas keep serving
            // reads.
            let mut any = false;
            for r in request.work.requirements() {
                if r.mode == AccessMode::Write {
                    any |= invalidate_persistent(sim, r.item, r.region.as_ref());
                }
            }
            if any {
                sim.world.monitor.serve.invalidations += 1;
                session.eroded[shard] = true;
            }
        }
        sim.world.monitor.serve.admitted += 1;
        let tid = assign_task(sim, frontend, request.work, None);
        trace_instant(
            &sim.world,
            now,
            frontend,
            EventKind::RequestAdmit { req, task: tid.0 },
        );
        session.roots.insert(
            tid,
            PendingReq {
                req,
                shard,
                write: request.write,
                arrival: now,
                frontend,
            },
        );
    }
    if session.next_req < session.max_requests {
        let gap = session.gen.next_gap();
        sim.world.serving = Some(session);
        schedule_task_event(sim, now + gap, serve_arrival);
    } else {
        session.arrivals_done = true;
        sim.world.serving = Some(session);
        maybe_finish_serving(sim);
    }
}

/// Release the persistent export fences overlapping `region` of `item`
/// at every live exporter and drop the matching persistent replicas at
/// every live holder, each notified by a billed control message (the
/// invalidation fan-out). Returns whether any replica state was touched.
/// Like driver-initiated migration, the bookkeeping is synchronous and
/// the messages only bill the traffic.
fn invalidate_persistent(sim: &mut RtSim, item: ItemId, region: &dyn DynRegion) -> bool {
    let now = sim.now();
    let nodes = sim.world.localities.len();
    let mut any = false;
    for p in 0..nodes {
        if sim.world.dead[p] {
            continue;
        }
        let overlap = {
            let dim = &sim.world.localities[p].dim;
            dim.persistent_export_region(item).intersect_dyn(region)
        };
        if overlap.is_empty_dyn() {
            continue;
        }
        any = true;
        sim.world.localities[p]
            .dim
            .release_persistent_exports(item, overlap.as_ref());
        for q in 0..nodes {
            if q == p || sim.world.dead[q] {
                continue;
            }
            sim.world.localities[q]
                .dim
                .drop_persistent_region(item, overlap.as_ref());
            let bytes = sim.world.cost.control_msg_bytes;
            let tag = Payload::data(TransferPurpose::Control, None, item);
            let _ = send_msg(&mut sim.world, now, p, q, bytes, tag, false);
        }
    }
    any
}

/// Lock-time write invalidation: a task writing the served item that
/// finds part of its region behind a broadcast write fence invalidates
/// the fenced part everywhere instead of parking forever. The fence may
/// postdate the request's admission — the SLO controller broadcasts a
/// hot shard while earlier writes are still queued, and admission-time
/// invalidation only lifts fences that already exist. Returns whether
/// any fence was lifted (the caller then retries lock acquisition).
fn unfence_serving_writes(sim: &mut RtSim, tid: TaskId) -> bool {
    let Some(item) = sim.world.serving.as_ref().map(|s| s.item) else {
        return false;
    };
    let writes: Vec<Box<dyn DynRegion>> = sim.world.inflight[&tid]
        .reqs
        .iter()
        .filter(|r| r.item == item && r.mode == AccessMode::Write)
        .map(|r| r.region.clone_box())
        .collect();
    let mut any = false;
    for region in &writes {
        any |= invalidate_persistent(sim, item, region.as_ref());
    }
    if any {
        sim.world.monitor.serve.invalidations += 1;
        if let Some(session) = sim.world.serving.as_mut() {
            for s in 0..session.shard_regions.len() {
                if session.replicated[s]
                    && writes.iter().any(|w| {
                        !session.shard_regions[s]
                            .intersect_dyn(w.as_ref())
                            .is_empty_dyn()
                    })
                {
                    session.eroded[s] = true;
                }
            }
        }
    }
    any
}

/// Account a completed request root: record its end-to-end latency,
/// emit the request span, and wind the phase down once the stream is
/// drained. Returns false when `tid` is not a serving request (the
/// caller then treats it as a phase root).
fn serve_root_done(sim: &mut RtSim, tid: TaskId) -> bool {
    let now = sim.now();
    let pending = match sim.world.serving.as_mut() {
        Some(s) => s.roots.remove(&tid),
        None => return false,
    };
    let Some(p) = pending else {
        return false;
    };
    let lat = (now - p.arrival).as_nanos();
    if let Some(s) = sim.world.serving.as_mut() {
        s.window[p.shard].record(lat);
    }
    let m = &mut sim.world.monitor.serve;
    m.completed += 1;
    m.latency.record(lat);
    m.per_shard[p.shard].record(lat);
    let epoch = sim.world.run_epoch;
    sim.world.trace.record(|| {
        TraceEvent::span(
            p.arrival.as_nanos(),
            lat,
            p.frontend as u32,
            EventKind::Request {
                req: p.req,
                shard: p.shard as u32,
                write: p.write,
            },
        )
        .in_epoch(epoch)
    });
    maybe_finish_serving(sim);
    true
}

/// End the serving phase once all arrivals are injected and all admitted
/// trees completed, then hand control back to the phase driver.
fn maybe_finish_serving(sim: &mut RtSim) {
    if !sim.world.serving.as_ref().is_some_and(|s| s.finished()) {
        return;
    }
    let session = sim.world.serving.take().expect("serving session");
    let now = sim.now();
    // Accumulates across a mid-phase recovery's replay, like the other
    // re-execution counters — deterministic either way.
    sim.world.monitor.serve.serve_ns += (now - session.started).as_nanos();
    advance_phase(sim, None);
}

/// One SLO controller round: every live locality reports its shard
/// latency windows to the controller host (billed control messages), and
/// the controller acts on each shard — replicating hot ones, arming read
/// shedding, retiring replica sets that stayed cold — then rearms.
fn slo_tick(sim: &mut RtSim) {
    if sim.world.serving.is_none() {
        return; // phase over: stop rearming, let the queue drain
    }
    let now = sim.now();
    let host = detector_host(&sim.world);
    let nodes = sim.world.localities.len();
    for p in 0..nodes {
        if p == host || sim.world.dead[p] {
            continue;
        }
        let bytes = sim.world.cost.control_msg_bytes;
        let tag = Payload {
            purpose: TransferPurpose::Control,
            task: None,
            item: None,
        };
        let _ = send_msg(&mut sim.world, now, p, host, bytes, tag, false);
    }
    let mut session = sim.world.serving.take().expect("serving session");
    let shards = session.shard_regions.len();
    for s in 0..shards {
        let count = session.window[s].tally().count();
        let p99 = session.window[s].p99();
        // Small windows are too noisy to act on (a single straggler
        // would trigger a broadcast).
        let hot = count >= session.slo.min_window && p99 > session.slo.p99_slo_ns;
        if hot {
            sim.world.monitor.serve.slo_violations += 1;
        }
        session.shedding[s] = hot && session.slo.shed_overload;
        if hot
            && session.slo.replicate_hot
            && (!session.replicated[s] || session.eroded[s])
        {
            replicate_shard(sim, &session, s, p99);
            session.replicated[s] = true;
            session.eroded[s] = false;
            session.cold_streak[s] = 0;
        } else if session.replicated[s] {
            if count <= session.slo.cold_window {
                session.cold_streak[s] += 1;
            } else {
                session.cold_streak[s] = 0;
            }
            if session.slo.retire_cold && session.cold_streak[s] >= session.slo.cold_periods {
                retire_shard(sim, &session, s);
                session.replicated[s] = false;
                session.eroded[s] = false;
                session.cold_streak[s] = 0;
            }
        }
        session.window[s] = LogHistogram::new();
    }
    let period = session.slo.control_period;
    sim.world.serving = Some(session);
    schedule_task_event(sim, now + period, slo_tick);
}

/// Broadcast-replicate a hot shard from its owner to every live
/// locality: reads then run node-locally at whichever frontend admitted
/// them, which is what relieves the owner past the saturation knee.
fn replicate_shard(sim: &mut RtSim, session: &ServeSession, s: usize, p99: u64) {
    let now = sim.now();
    let item = session.item;
    let region = session.shard_regions[s].as_ref();
    let nodes = sim.world.localities.len();
    // The broadcast exports from the shard's single owner; under the
    // ring-successor graft ownership stays whole, but a shard somehow
    // fragmented across owners is simply skipped this round.
    let owner = (0..nodes).find(|&p| {
        !sim.world.dead[p]
            && region
                .difference_dyn(sim.world.localities[p].dim.owned_region(item).as_ref())
                .is_empty_dyn()
    });
    let Some(owner) = owner else {
        return;
    };
    let mut ctx = RtCtx {
        world: &mut sim.world,
        now,
    };
    ctx.broadcast_replicate(item, owner, region);
    sim.world.monitor.serve.replications += 1;
    trace_instant(
        &sim.world,
        now,
        owner,
        EventKind::SloReplicate {
            shard: s as u32,
            p99_ns: p99,
        },
    );
}

/// Retire a cold shard's replica set: the broadcast's write fences lift
/// and every holder drops its replica, freeing writers and memory.
fn retire_shard(sim: &mut RtSim, session: &ServeSession, s: usize) {
    let now = sim.now();
    invalidate_persistent(sim, session.item, session.shard_regions[s].as_ref());
    sim.world.monitor.serve.retirements += 1;
    let host = detector_host(&sim.world);
    trace_instant(&sim.world, now, host, EventKind::SloRetire { shard: s as u32 });
}

/// One round of the failure detector: the host locality (the lowest
/// survivor, locality 0 until it dies) pings every live peer (ping + ack
/// as priority probes on the faulty network — [`Network::probe`] — with
/// no retries; the suspicion counter *is* the retry), declares
/// localities dead after `suspicion_threshold` consecutive silent
/// rounds, and rearms itself. The next live locality probes the host in
/// turn, so a dead host is itself detected instead of silencing the
/// detector.
fn heartbeat_tick(sim: &mut RtSim) {
    if sim.world.done {
        return; // stop rearming: lets the event queue drain
    }
    let now = sim.now();
    let nodes = sim.world.localities.len();
    let threshold = match &sim.world.resilience {
        Some(mgr) => mgr.cfg.suspicion_threshold,
        None => return,
    };
    let host = detector_host(&sim.world);
    // Fail-stop ground truth: a crashed process executes nothing, so an
    // (undetectedly) dead host runs no probe round of its own. The
    // backup probe below is what eventually notices the host.
    let host_up = !sim
        .world
        .net
        .faults()
        .is_some_and(|f| f.is_dead(host, now));
    let mut detected: Vec<usize> = Vec::new();
    if host_up {
        for p in 0..nodes {
            if p == host || sim.world.dead[p] {
                continue;
            }
            sim.world.monitor.resilience.heartbeats += 1;
            let alive = match sim.world.net.probe(now, host, p) {
                Ok(arr) => sim.world.net.probe(arr, p, host).is_ok(),
                Err(_) => false,
            };
            let mgr = sim.world.resilience.as_mut().expect("resilience enabled");
            if alive {
                mgr.misses[p] = 0;
            } else {
                mgr.misses[p] += 1;
                let misses = mgr.misses[p];
                if misses >= threshold {
                    detected.push(p);
                }
                trace_instant(
                    &sim.world,
                    now,
                    host,
                    EventKind::Suspicion {
                        suspect: p as u32,
                        misses,
                    },
                );
            }
        }
    }
    // Backup probe of the host by its lowest live peer: the detection
    // duty must not die with its host (the old single point of failure —
    // a dead locality 0 silenced detection entirely).
    let backup = (host + 1..nodes).find(|&p| !sim.world.dead[p]);
    if let Some(backup) = backup {
        let backup_up = !sim
            .world
            .net
            .faults()
            .is_some_and(|f| f.is_dead(backup, now));
        if backup_up {
            sim.world.monitor.resilience.heartbeats += 1;
            let alive = match sim.world.net.probe(now, backup, host) {
                Ok(arr) => sim.world.net.probe(arr, host, backup).is_ok(),
                Err(_) => false,
            };
            let mgr = sim.world.resilience.as_mut().expect("resilience enabled");
            if alive {
                mgr.misses[host] = 0;
            } else {
                mgr.misses[host] += 1;
                let misses = mgr.misses[host];
                if misses >= threshold {
                    detected.push(host);
                }
                trace_instant(
                    &sim.world,
                    now,
                    backup,
                    EventKind::Suspicion {
                        suspect: host as u32,
                        misses,
                    },
                );
            }
        }
    }
    for p in detected {
        detect_and_recover(sim, p);
    }
    let period = sim
        .world
        .resilience
        .as_ref()
        .expect("resilience enabled")
        .cfg
        .heartbeat_period;
    sim.schedule(period, heartbeat_tick);
}

/// One pass of the background replica scrubber: every live locality
/// holding persistent replicas fingerprints them against the owning
/// locality's authoritative copy (FNV-1a over the serialized overlap,
/// exchanged as a billed control round-trip). A divergent replica is
/// repaired with a fresh, billed copy from the owner; a replica that
/// diverges [`IntegrityConfig::quarantine_after`] times is evicted
/// instead — a holder that keeps rotting the same item is not worth
/// re-shipping to, and readers fall back to on-demand replication.
///
/// The scrubber runs on the simulated clock independently of phase
/// boundaries, so long phases still get audited; like the heartbeat it
/// survives recoveries (it is not epoch-guarded) because replica
/// hygiene is orthogonal to which phase is executing.
fn scrub_tick(sim: &mut RtSim) {
    if sim.world.done {
        return; // stop rearming: lets the event queue drain
    }
    let Some(period) = sim
        .world
        .integrity
        .as_ref()
        .and_then(|m| m.cfg.scrub_period)
    else {
        return;
    };
    let quarantine_after = sim
        .world
        .integrity
        .as_ref()
        .expect("integrity enabled")
        .cfg
        .quarantine_after;
    let now = sim.now();
    let nodes = sim.world.localities.len();
    let ctrl = sim.world.cost.control_msg_bytes;
    let items: Vec<ItemId> = sim.world.item_descs.keys().copied().collect();
    for holder in 0..nodes {
        if sim.world.dead[holder] {
            continue;
        }
        let mut audited = 0u32;
        let mut divergent = 0u32;
        for &item in &items {
            let held = sim.world.localities[holder].dim.persistent_region(item);
            if held.is_empty_dyn() {
                continue;
            }
            for owner in 0..nodes {
                if owner == holder || sim.world.dead[owner] {
                    continue;
                }
                let overlap = sim.world.localities[owner]
                    .dim
                    .persistent_export_region(item)
                    .intersect_dyn(held.as_ref());
                if overlap.is_empty_dyn() {
                    continue;
                }
                audited += 1;
                sim.world.monitor.integrity.replicas_scrubbed += 1;
                // Fingerprint exchange: request + digest reply, both
                // billed control messages. A lost leg skips this audit —
                // the next pass retries.
                let tag = Payload::data(TransferPurpose::Control, None, item);
                let Some(t) = send(&mut sim.world, now, holder, owner, ctrl, tag) else {
                    continue;
                };
                let tag = Payload::data(TransferPurpose::Control, None, item);
                let Some(t) = send(&mut sim.world, t, owner, holder, ctrl, tag) else {
                    continue;
                };
                let mine = frame::fnv1a64(
                    &sim.world.localities[holder].dim.peek_bytes(item, overlap.as_ref()),
                );
                let theirs = frame::fnv1a64(
                    &sim.world.localities[owner].dim.peek_bytes(item, overlap.as_ref()),
                );
                if mine == theirs {
                    continue;
                }
                divergent += 1;
                sim.world.monitor.integrity.scrub_divergent += 1;
                let strikes = sim
                    .world
                    .integrity
                    .as_mut()
                    .expect("integrity enabled")
                    .strike(holder, item);
                if strikes >= quarantine_after {
                    sim.world.localities[holder].dim.drop_persistent(item);
                    sim.world.monitor.integrity.quarantines += 1;
                    trace_instant(
                        &sim.world,
                        t,
                        holder,
                        EventKind::Quarantine {
                            item: item.0,
                            strikes,
                        },
                    );
                    break; // replica evicted: nothing left to audit
                }
                // Repair: a fresh billed copy from the owner, sealed and
                // verified like any other data transfer.
                let bytes = sim.world.localities[owner].dim.peek_bytes(item, overlap.as_ref());
                let wire = seal_payload(&sim.world, bytes);
                let tag = Payload::data(TransferPurpose::Scrub, None, item);
                let Some(d) = send_msg(&mut sim.world, t, owner, holder, wire.len(), tag, false)
                else {
                    continue;
                };
                let mut data = open_payload(&mut sim.world, &wire, d.intact);
                // The repair lands on the same storage that rotted the
                // replica: a holder whose medium keeps striking will
                // re-diverge and eventually hit the quarantine threshold.
                rot_payload(&mut sim.world, &mut data);
                sim.world.localities[holder].dim.import_persistent(item, &data);
                sim.world.monitor.integrity.scrub_repairs += 1;
                trace_instant(
                    &sim.world,
                    d.at,
                    holder,
                    EventKind::ScrubRepair {
                        item: item.0,
                        owner: owner as u32,
                        bytes: data.len() as u64,
                    },
                );
            }
        }
        if audited > 0 {
            trace_instant(
                &sim.world,
                now,
                holder,
                EventKind::ScrubPass {
                    replicas: audited,
                    divergent,
                },
            );
        }
    }
    sim.world.monitor.integrity.scrub_passes += 1;
    sim.schedule(period, scrub_tick);
}

/// Declare `dead` failed and orchestrate recovery: discard the in-flight
/// phase (epoch bump makes its pending events no-ops), rewind every
/// locality to the newest *verifiable* checkpoint, graft the dead
/// locality's shards onto its live ring successor, re-advertise all
/// ownership in the index with a location-cache epoch bump, and replay
/// from the checkpointed phase boundary. Safe by the model's Section 2.5
/// properties: checkpointed data is preserved, and a task either
/// completed before the checkpoint (its effects are in the snapshot) or
/// re-runs from it — never both.
///
/// With checkpoint verification on, every shard's stored checksum is
/// re-checked first: a checkpoint with any corrupt shard is abandoned
/// for good and recovery falls back to the previous retained checkpoint,
/// or to a full restart when none survives — restoring rotted state
/// would violate data preservation far more subtly than restarting.
fn detect_and_recover(sim: &mut RtSim, dead: usize) {
    if sim.world.dead[dead] {
        return;
    }
    let now = sim.now();
    let w = &mut sim.world;
    w.dead[dead] = true;
    w.run_epoch += 1;
    w.monitor.resilience.detections += 1;
    w.monitor.resilience.recoveries += 1;
    if let Some(t0) = w.net.faults().and_then(|f| f.death_time(dead)) {
        if now >= t0 {
            w.monitor.resilience.detection_latency_ns += (now - t0).as_nanos();
        }
    }
    // A drain still in flight is torn: its capture is abandoned on every
    // locality and recovery proceeds from the last *committed*
    // checkpoint — a partially drained snapshot is never restored from.
    if let Some(p) = w.pending_ckpt.take() {
        w.monitor.resilience.ckpt_torn += 1;
        let mut cow = 0u64;
        for l in w.localities.iter_mut() {
            l.dim.abort_snapshot();
            cow += l.dim.take_cow_captures();
        }
        w.monitor.resilience.cow_captures += cow;
        let host = detector_host(w);
        trace_instant(
            w,
            now,
            host,
            EventKind::CheckpointTorn {
                phase: p.phase as u32,
            },
        );
    }
    let (tasks_at_checkpoint, mut chain) = {
        let mgr = w.resilience.as_mut().expect("resilience enabled");
        mgr.misses.fill(0);
        (mgr.tasks_at_checkpoint, std::mem::take(&mut mgr.saved))
    };
    let verify = w
        .integrity
        .as_ref()
        .is_some_and(|m| m.cfg.verify_checkpoints);
    // Fall back newest-first across the retained points: each candidate
    // is the full reconstruction of its anchor+delta chain, and every
    // link is checksum-verified — a delta is only as good as the links
    // under it. Rejected points stay dropped so a later recovery does
    // not re-try them.
    let mut saved: Option<(usize, Checkpoint)> = None;
    let mut restore_delay_ns = 0u64;
    let mut upto = chain.len();
    while upto > 0 {
        upto -= 1;
        match reconstruct(&chain, upto, verify) {
            Ok((snap, cost)) => {
                if verify {
                    w.monitor.integrity.ckpt_links_verified += cost.links;
                }
                // Bill the restore reads: survivors pull their shards
                // from the fast local tier, a dead locality's shards
                // only survive on the remote tier. Localities read in
                // parallel; the restore completes at the slowest.
                let mut read_ns = 0u64;
                {
                    let dead = w.dead.clone();
                    let mgr = w.resilience.as_mut().expect("resilience enabled");
                    for (loc, &is_dead) in dead.iter().enumerate() {
                        let tier = if is_dead {
                            StorageTier::Remote
                        } else {
                            StorageTier::Local
                        };
                        let ns = mgr.storage.read_ns(tier, cost.shards[loc], cost.bytes[loc]);
                        read_ns = read_ns.max(ns);
                    }
                }
                w.monitor.resilience.recovery_read_ns += read_ns;
                restore_delay_ns = read_ns;
                saved = Some((chain[upto].phase, snap));
                break;
            }
            Err(bad) => {
                w.monitor.integrity.checkpoint_shards_rejected += bad;
                w.monitor.integrity.checkpoint_fallbacks += 1;
            }
        }
    }
    // Reinstate the surviving history and re-point incremental change
    // detection at what was actually restored.
    {
        chain.truncate(if saved.is_some() { upto + 1 } else { 0 });
        let mgr = w.resilience.as_mut().expect("resilience enabled");
        mgr.saved = chain;
        mgr.since_anchor = mgr
            .saved
            .iter()
            .rev()
            .take_while(|s| s.kind == CkptKind::Delta)
            .count();
        mgr.last_fps = match &saved {
            Some((_, snap)) => snap
                .per_locality
                .iter()
                .map(|row| {
                    row.iter()
                        .map(|(id, b)| (*id, (fnv1a_64(b), b.len() as u64)))
                        .collect()
                })
                .collect(),
            None => vec![BTreeMap::new(); w.localities.len()],
        };
    }
    let reexecuted = w.monitor.total_tasks().saturating_sub(tasks_at_checkpoint);
    w.monitor.resilience.tasks_reexecuted += reexecuted;
    // Discard the in-flight phase's bookkeeping; its scheduled events are
    // disarmed by the epoch bump above.
    w.inflight.clear();
    w.parents.clear();
    w.parked.clear();
    w.retry_scheduled = false;
    // Buffered-but-unflushed messages belong to the abandoned run; their
    // flush timers are already disarmed by the epoch bump.
    w.coalescer.clear();
    // Queued tasks and steal/wait state belong to the abandoned phase
    // too — stale grants and denies are disarmed by the epoch bump.
    w.scheduler.clear();
    // An in-flight serving phase is abandoned wholesale (its arrivals,
    // completions and controller ticks are epoch-disarmed). The replayed
    // driver re-registers the spec with the same seeds, so the identical
    // request stream replays from the restored boundary — acknowledged
    // writes are re-applied, none are lost.
    w.serving = None;
    w.pending_serve = None;
    for l in w.localities.iter_mut() {
        l.load = 0;
    }
    let nodes = w.localities.len();
    let grafted: u64 = match saved {
        Some((phase, snap)) => {
            // Pass 1: rewind every survivor, wipe every dead locality
            // (fail-stop: a crashed process loses its volatile data).
            for p in 0..nodes {
                if w.dead[p] {
                    w.localities[p].dim.wipe_all();
                } else {
                    w.localities[p].dim.restore(&snap.per_locality[p]);
                }
            }
            // Pass 2: graft each dead locality's checkpointed shards onto
            // its live ring successor — after the survivors' own restore,
            // so the graft is not clobbered.
            let mut restored = 0u64;
            for p in 0..nodes {
                if !w.dead[p] {
                    continue;
                }
                let heir = live_successor(w, p);
                for (item, bytes) in &snap.per_locality[p] {
                    w.localities[heir].dim.import_owned(*item, bytes);
                    restored += bytes.len() as u64;
                }
            }
            w.monitor.resilience.restored_bytes += restored;
            // Re-advertise all ownership; bump the cache epochs first so
            // no pre-recovery resolution survives.
            let items: Vec<ItemId> = w.item_descs.keys().copied().collect();
            for item in items {
                w.loc_cache.bump(item);
                for p in 0..nodes {
                    let owned = w.localities[p].dim.owned_region(item);
                    w.index.update_leaf(item, p, owned);
                }
            }
            w.phase = phase;
            restored
        }
        None => {
            // No checkpoint yet: restart the application from scratch.
            let items: Vec<ItemId> = w.item_descs.keys().copied().collect();
            for item in items {
                w.index.remove_item(item);
                w.loc_cache.forget(item);
            }
            w.item_descs.clear();
            for p in 0..nodes {
                w.localities[p].dim = DataItemManager::new(p);
            }
            w.next_item = 0;
            w.phase = 0;
            0
        }
    };
    let host = detector_host(w);
    trace_instant(
        w,
        now,
        host,
        EventKind::Recovery {
            dead: dead as u32,
            phase: w.phase as u32,
            restored_bytes: grafted,
        },
    );
    // Replay from the restored boundary once the tier reads land
    // (guarded: a second recovery before this fires would supersede it).
    let resume = now + SimDuration::from_nanos(restore_delay_ns);
    schedule_task_event(sim, resume, |sim| advance_phase(sim, None));
}

// -------------------------------------------------------------- Algorithm 2

/// Assign a task to a node (paper Algorithm 2); returns the new task's
/// id (the serving subsystem keys in-flight requests by it).
fn assign_task(
    sim: &mut RtSim,
    at: usize,
    wi: Box<dyn WorkItem>,
    parent: Option<(TaskId, usize)>,
) -> TaskId {
    let tid = TaskId(sim.world.next_task);
    sim.world.next_task += 1;

    // Line 3: pick the variant.
    let (nodes, cores, load) = policy_env(&sim.world);
    let env = PolicyEnv {
        nodes,
        cores_per_node: cores,
        load: &load,
    };
    let variant =
        sim.world
            .scheduler
            .pick_variant(wi.depth(), wi.can_split(), wi.placement_hint(), &env);

    match variant {
        Variant::Split => {
            // Pure decomposition: the policy chooses where it runs
            // (remapped off localities known dead).
            let target = sim
                .world
                .scheduler
                .pick_target(wi.placement_hint(), at, &env);
            let target = live_target(&sim.world, target);
            let now = sim.now();
            trace_instant(
                &sim.world,
                now,
                at,
                EventKind::TaskSpawn {
                    task: tid.0,
                    parent: parent.map(|(p, _)| p.0),
                    variant: SpawnVariant::Split,
                    target: target as u32,
                },
            );
            sim.world.localities[target].load += 1;
            if target != at {
                let bytes = wi.descriptor_bytes();
                let tag = Payload::task(TransferPurpose::TaskForward, tid);
                send_deferred(sim, at, target, bytes, tag, move |sim, arrival| {
                    if arrival.is_none() {
                        // The task descriptor is lost (undetected dead
                        // target or exhausted retries): the phase stalls
                        // until the failure detector triggers recovery.
                        sim.world.localities[target].load -= 1;
                        return;
                    }
                    do_split(sim, target, tid, wi, parent);
                });
            } else {
                schedule_task_event(sim, now, move |sim| {
                    do_split(sim, target, tid, wi, parent)
                });
            }
        }
        Variant::Process => {
            let reqs = wi.requirements();
            let preferred = pick_process_target(sim, at, wi.as_ref(), &reqs, &env);
            let preferred = live_target(&sim.world, preferred);
            // The scheduler routes the admitted task: directly to its
            // data-aware locality, or into a (possibly spilled) queue.
            let placement = sim.world.scheduler.admit(preferred, &sim.world.dead);
            let target = placement.loc();
            let queued = matches!(placement, Placement::Enqueue(_));
            let now = sim.now();
            trace_instant(
                &sim.world,
                now,
                at,
                EventKind::TaskSpawn {
                    task: tid.0,
                    parent: parent.map(|(p, _)| p.0),
                    variant: SpawnVariant::Process,
                    target: target as u32,
                },
            );
            let bytes = wi.descriptor_bytes();
            sim.world.localities[target].load += 1;
            sim.world.inflight.insert(
                tid,
                Inflight {
                    loc: target,
                    wi: Some(wi),
                    parent,
                    reqs,
                    replicas: Vec::new(),
                    pending_transfers: 0,
                    pending_done: None,
                },
            );
            if target != at {
                let tag = Payload::task(TransferPurpose::TaskForward, tid);
                send_deferred(sim, at, target, bytes, tag, move |sim, arrival| {
                    if arrival.is_none() {
                        // Lost task descriptor: drop the assignment and
                        // stall until recovery.
                        sim.world.inflight.remove(&tid);
                        sim.world.localities[target].load -= 1;
                        return;
                    }
                    if queued {
                        enqueue_task(sim, target, tid);
                    } else {
                        prepare_task(sim, tid);
                    }
                });
            } else {
                schedule_task_event(sim, now, move |sim| {
                    if queued {
                        enqueue_task(sim, target, tid);
                    } else {
                        prepare_task(sim, tid);
                    }
                });
            }
        }
    }
    tid
}

/// Algorithm 2 lines 4-13: find the execution locality for a process task.
fn pick_process_target(
    sim: &mut RtSim,
    at: usize,
    wi: &dyn WorkItem,
    reqs: &[Requirement],
    env: &PolicyEnv<'_>,
) -> usize {
    if reqs.is_empty() {
        return sim.world.scheduler.pick_target(wi.placement_hint(), at, env);
    }
    // Fast path: everything already available right here (covers
    // persistent replicas, e.g. the broadcast tree top).
    let local_ok = reqs.iter().all(|r| {
        let dim = &sim.world.localities[at].dim;
        match r.mode {
            AccessMode::Read => dim.covers_stable(r.item, r.region.as_ref()),
            AccessMode::Write => r
                .region
                .difference_dyn(dim.owned_region(r.item).as_ref())
                .is_empty_dyn(),
        }
    });
    if local_ok {
        return at;
    }
    // Line 4: a process covering ALL requirements.
    let all_owner = common_owner(sim, at, reqs.iter());
    if let Some(p) = all_owner {
        return p;
    }
    // Line 7: a process covering all WRITE requirements.
    let w_owner = common_owner(
        sim,
        at,
        reqs.iter().filter(|r| r.mode == AccessMode::Write),
    );
    if let Some(p) = w_owner {
        return p;
    }
    // Line 12: the policy decides.
    sim.world.scheduler.pick_target(wi.placement_hint(), at, env)
}

/// The single process owning every requirement in `iter`, if one exists.
/// Bills the index lookups used to find out.
fn common_owner<'r>(
    sim: &mut RtSim,
    at: usize,
    iter: impl Iterator<Item = &'r Requirement>,
) -> Option<usize> {
    let mut owner: Option<usize> = None;
    let mut any = false;
    let now = sim.now();
    for req in iter {
        any = true;
        let (pieces, hops) = index_resolve(&mut sim.world, now, req.item, at, req.region.as_ref());
        bill_hops(&mut sim.world, now, &hops, Some(req.item));
        // Coverage check: pieces must tile the region with one owner.
        let mut covered: Option<Box<dyn DynRegion>> = None;
        for (piece, host) in &pieces {
            match owner {
                None => owner = Some(*host),
                Some(o) if o != *host => return None,
                _ => {}
            }
            covered = Some(match covered {
                None => piece.clone_box(),
                Some(c) => c.union_dyn(piece.as_ref()),
            });
        }
        let fully = match covered {
            None => false,
            Some(c) => req.region.difference_dyn(c.as_ref()).is_empty_dyn(),
        };
        if !fully {
            return None;
        }
    }
    if any {
        owner
    } else {
        None
    }
}

// ------------------------------------------------------------ work stealing
//
// The queue-family driver. A process task admitted as `Enqueue` lands in
// its locality's bounded queue; the pump activates queued tasks while
// execution slots (one per core) are free. A locality whose queue runs
// dry starts a *steal round*: a billed control request to a victim
// (chosen by the scheduler's victim policy), answered either by a grant
// — the task descriptor travels back as a billed `TaskForward`, and the
// thief re-resolves the task's data requirements locally through the
// normal staging path (location cache included) — or by a billed deny.
// After `max_attempts` denies the thief parks as a *waiter*; a later
// surplus enqueue anywhere hands it work directly. Every leg is a
// normal runtime message: batching coalesces it, fault injection can
// drop it (a lost request or deny counts as a deny; a lost handoff
// strands the task until recovery, exactly like a lost forward), and
// the trace records `StealRequest`/`StealGrant`/`StealDeny` instants.
//
// Liveness without timers: the protocol advances only on message
// continuations and enqueue/finish events, so a run with no faults
// cannot livelock (each round either moves a task or parks the thief),
// and the event queue still drains when the application completes.

/// Enqueue an admitted (or stolen) task at `loc`, activate what fits,
/// and hand surplus queued work to any parked waiter.
fn enqueue_task(sim: &mut RtSim, loc: usize, tid: TaskId) {
    sim.world.scheduler.enqueue(loc, tid);
    sim.world.monitor.scheduler.tasks_queued += 1;
    pump_queue(sim, loc);
    // Surplus push: a queue still backed up after pumping feeds parked
    // waiters directly — no request leg, just the handoff.
    while let Some((waiter, task)) = sim.world.scheduler.take_handoff(loc, &sim.world.dead) {
        sim.world.monitor.scheduler.handoffs += 1;
        grant_steal(sim, loc, waiter, task);
    }
}

/// Activate queued tasks at `loc` while slots are free; steal when dry.
fn pump_queue(sim: &mut RtSim, loc: usize) {
    while let Some(tid) = sim.world.scheduler.next_runnable(loc) {
        prepare_task(sim, tid);
    }
    maybe_steal(sim, loc);
}

/// Start a steal round from `thief` if it is idle with a dry queue.
fn maybe_steal(sim: &mut RtSim, thief: usize) {
    if !sim.world.scheduler.should_steal(thief) {
        return;
    }
    sim.world.scheduler.begin_steal(thief);
    steal_attempt(sim, thief, 0);
}

/// One victim attempt of a steal round (`attempt` victims already tried).
fn steal_attempt(sim: &mut RtSim, thief: usize, attempt: usize) {
    let victim = sim.world.scheduler.steal_victim(thief, &sim.world.dead);
    let Some(victim) = victim else {
        // Nothing to steal anywhere: park as a waiter until surplus
        // work shows up.
        sim.world.scheduler.enlist_waiter(thief);
        return;
    };
    let now = sim.now();
    sim.world.monitor.scheduler.steal_requests += 1;
    trace_instant(
        &sim.world,
        now,
        thief,
        EventKind::StealRequest {
            thief: thief as u32,
            victim: victim as u32,
        },
    );
    let ctrl = sim.world.cost.control_msg_bytes;
    let tag = Payload {
        purpose: TransferPurpose::Control,
        task: None,
        item: None,
    };
    send_deferred(sim, thief, victim, ctrl, tag, move |sim, arr| {
        if arr.is_none() {
            // A lost request (undetected-dead victim, exhausted
            // retries) is indistinguishable from a deny to the thief.
            steal_denied(sim, thief, attempt);
            return;
        }
        match sim.world.scheduler.steal_task(victim) {
            Some(tid) => grant_steal(sim, victim, thief, tid),
            None => {
                let t = sim.now();
                sim.world.monitor.scheduler.steal_denies += 1;
                trace_instant(
                    &sim.world,
                    t,
                    victim,
                    EventKind::StealDeny {
                        victim: victim as u32,
                        thief: thief as u32,
                    },
                );
                let ctrl = sim.world.cost.control_msg_bytes;
                send_deferred(sim, victim, thief, ctrl, tag, move |sim, _arr| {
                    // A lost deny reply times out into the same path.
                    steal_denied(sim, thief, attempt);
                });
            }
        }
    });
}

/// The thief's attempt came back empty: try the next victim, or park.
fn steal_denied(sim: &mut RtSim, thief: usize, attempt: usize) {
    sim.world.scheduler.end_steal(thief);
    if !sim.world.scheduler.should_steal(thief) {
        // Work arrived (or a slot filled) while the request was in
        // flight; the enqueue's pump already took over.
        return;
    }
    let next = attempt + 1;
    if next >= sim.world.scheduler.max_attempts() {
        sim.world.scheduler.enlist_waiter(thief);
        return;
    }
    sim.world.scheduler.begin_steal(thief);
    steal_attempt(sim, thief, next);
}

/// Hand the queued task `tid` from `victim` to `thief`: re-home its
/// inflight record and ship the descriptor as a billed `TaskForward`.
/// On arrival the thief enqueues it and its staging re-resolves the
/// task's data requirements from the thief's side (through the location
/// cache), migrating or replicating whatever the new home is missing.
fn grant_steal(sim: &mut RtSim, victim: usize, thief: usize, tid: TaskId) {
    let now = sim.now();
    sim.world.monitor.scheduler.steal_grants += 1;
    trace_instant(
        &sim.world,
        now,
        victim,
        EventKind::StealGrant {
            victim: victim as u32,
            thief: thief as u32,
            task: tid.0,
        },
    );
    let bytes = {
        let inf = sim.world.inflight.get_mut(&tid).expect("stolen task in flight");
        inf.loc = thief;
        inf.wi.as_ref().expect("queued task holds its descriptor").descriptor_bytes()
    };
    sim.world.localities[victim].load -= 1;
    sim.world.localities[thief].load += 1;
    let tag = Payload::task(TransferPurpose::TaskForward, tid);
    send_deferred(sim, victim, thief, bytes, tag, move |sim, arr| {
        if arr.is_none() {
            // The stolen descriptor is lost — same fate as a lost
            // forward: the task strands until recovery reaps it, and
            // the thief goes back to stealing (finitely: every loss
            // removes a task from the run).
            sim.world.inflight.remove(&tid);
            sim.world.localities[thief].load -= 1;
            sim.world.scheduler.end_steal(thief);
            maybe_steal(sim, thief);
            return;
        }
        sim.world.scheduler.end_steal(thief);
        enqueue_task(sim, thief, tid);
    });
}

// -------------------------------------------------------------------- split

fn do_split(
    sim: &mut RtSim,
    loc: usize,
    tid: TaskId,
    wi: Box<dyn WorkItem>,
    parent: Option<(TaskId, usize)>,
) {
    let overhead = sim.world.cost.task_overhead(loc);
    let now = sim.now();
    let (core, start, end) = sim.world.localities[loc].cores.acquire_indexed(now, overhead);
    sim.world.monitor.per_locality[loc].busy_ns += overhead.as_nanos();
    sim.world.monitor.per_locality[loc].tasks_split += 1;
    trace_core_span(
        &sim.world,
        start,
        end - start,
        loc,
        core,
        EventKind::TaskSplit { task: tid.0 },
    );
    schedule_task_event(sim, end, move |sim| {
        let result_bytes = wi.result_bytes();
        let SplitOutcome { children, combine } = wi.split();
        sim.world.localities[loc].load -= 1;
        if children.is_empty() {
            let value = combine(Vec::new());
            finish_task(sim, loc, tid, parent, value);
            return;
        }
        sim.world.parents.insert(
            tid,
            ParentRecord {
                loc,
                pending: children.len(),
                results: children.iter().map(|_| None).collect(),
                combine: Some(combine),
                parent,
                result_bytes,
            },
        );
        for (i, child) in children.into_iter().enumerate() {
            assign_task(sim, loc, child, Some((tid, i)));
        }
    });
}

// ------------------------------------------------------------- preparation

/// Acquire locks and stage data for a process task; parks on conflict.
fn prepare_task(sim: &mut RtSim, tid: TaskId) {
    let loc = sim.world.inflight[&tid].loc;
    let now = sim.now();

    // 1. Locks (atomic). On conflict, park and retry after completions.
    {
        let inf = sim.world.inflight.get_mut(&tid).unwrap();
        let dim = &mut sim.world.localities[loc].dim;
        if dim.try_lock(tid, &inf.reqs).is_err() {
            if unfence_serving_writes(sim, tid) {
                return prepare_task(sim, tid);
            }
            sim.world.monitor.per_locality[loc].lock_conflicts += 1;
            sim.world.parked.push(tid);
            trace_instant(&sim.world, now, loc, EventKind::TaskParked { task: tid.0 });
            return;
        }
    }

    // 2. Plan transfers: check feasibility first (sources unlocked),
    //    releasing our locks and parking if anything is fenced.
    let plan = match plan_transfers(&mut sim.world, now, tid, loc) {
        Ok(plan) => plan,
        Err(()) => {
            sim.world.localities[loc].dim.unlock_all(tid);
            if unfence_serving_writes(sim, tid) {
                return prepare_task(sim, tid);
            }
            sim.world.monitor.per_locality[loc].lock_conflicts += 1;
            sim.world.parked.push(tid);
            trace_instant(&sim.world, now, loc, EventKind::TaskParked { task: tid.0 });
            return;
        }
    };

    // 3. Apply the plan.
    let mut pending = 0usize;
    for mv in plan {
        match mv {
            Move::FirstTouch { item, region } => {
                sim.world.localities[loc].dim.init_owned(item, region.as_ref());
                let owned = sim.world.localities[loc].dim.owned_region(item);
                let hops = index_update(&mut sim.world, now, item, loc, owned);
                bill_hops(&mut sim.world, now, &hops, Some(item));
                sim.world.monitor.per_locality[loc].first_touch += 1;
                trace_instant(
                    &sim.world,
                    now,
                    loc,
                    EventKind::FirstTouch {
                        item: item.0,
                        task: tid.0,
                    },
                );
            }
            Move::Migrate { item, region, src } => {
                // `pending` is committed before any send: a transfer that
                // is lost must strand the task (never let it run without
                // its data), so the phase stalls until recovery reaps it.
                pending += 1;
                // Export (and fence) at plan time, before the request
                // goes out: the source must be fenced before any other
                // plan can run during a batching window, or two tasks
                // could stage overlapping migrations of the same region.
                // A lost request then strands the exported data until
                // recovery — same fate as the task it was feeding.
                let bytes = sim.world.localities[src]
                    .dim
                    .export_migration(item, region.as_ref());
                let bytes = seal_payload(&sim.world, bytes);
                let src_owned = sim.world.localities[src].dim.owned_region(item);
                let hops = index_update(&mut sim.world, now, item, src, src_owned);
                bill_hops(&mut sim.world, now, &hops, Some(item));
                // Advertise the destination in the index immediately and
                // fence the region as in-flight. Between the source
                // giving the region up and the transfer landing, the
                // region must still resolve to *someone* — a planner
                // finding no owner would first-touch a second primary
                // into existence (and a later migration would serve its
                // default-initialized copy, silently dropping every
                // write committed to the real one). The fence makes the
                // advertised owner refuse to serve the region until the
                // data actually arrives.
                let fence_region = region.clone_box();
                sim.world.localities[loc]
                    .dim
                    .fence_inbound(item, tid, region.as_ref());
                let dst_adv = sim.world.localities[loc]
                    .dim
                    .owned_region(item)
                    .union_dyn(region.as_ref());
                let hops = index_update(&mut sim.world, now, item, loc, dst_adv);
                bill_hops(&mut sim.world, now, &hops, Some(item));
                let ctrl = sim.world.cost.control_msg_bytes;
                let req_tag = Payload::data(TransferPurpose::Control, Some(tid), item);
                send_deferred(sim, loc, src, ctrl, req_tag, move |sim, arr| {
                    if arr.is_none() {
                        return;
                    }
                    let len = bytes.len();
                    let tag = Payload::data(TransferPurpose::Migrate, Some(tid), item);
                    send_deferred(sim, src, loc, len, tag, move |sim, arr| {
                        let Some(d) = arr else {
                            return;
                        };
                        let data = open_payload(&mut sim.world, &bytes, d.intact);
                        let loc2 = sim.world.inflight[&tid].loc;
                        sim.world.localities[loc2].dim.import_owned(item, &data);
                        sim.world.localities[loc]
                            .dim
                            .release_inbound(item, tid, fence_region.as_ref());
                        let owned = sim.world.localities[loc2].dim.owned_region(item);
                        let t = sim.now();
                        let hops = index_update(&mut sim.world, t, item, loc2, owned);
                        bill_hops(&mut sim.world, t, &hops, Some(item));
                        sim.world.monitor.per_locality[loc2].migrations_in += 1;
                        transfer_done(sim, tid);
                    });
                });
            }
            Move::Replicate { item, region, src } => {
                pending += 1;
                let bytes = sim.world.localities[src].dim.export_replica(
                    item,
                    region.as_ref(),
                    loc,
                    tid,
                );
                let bytes = seal_payload(&sim.world, bytes);
                let region2 = region.clone_box();
                let ctrl = sim.world.cost.control_msg_bytes;
                let req_tag = Payload::data(TransferPurpose::Control, Some(tid), item);
                send_deferred(sim, loc, src, ctrl, req_tag, move |sim, arr| {
                    if arr.is_none() {
                        return;
                    }
                    let len = bytes.len();
                    let tag = Payload::data(TransferPurpose::Replicate, Some(tid), item);
                    send_deferred(sim, src, loc, len, tag, move |sim, arr| {
                        let Some(d) = arr else {
                            return;
                        };
                        let data = open_payload(&mut sim.world, &bytes, d.intact);
                        let loc2 = sim.world.inflight[&tid].loc;
                        sim.world.localities[loc2].dim.import_replica(item, &data, tid);
                        sim.world.monitor.per_locality[loc2].replicas_in += 1;
                        sim.world
                            .inflight
                            .get_mut(&tid)
                            .unwrap()
                            .replicas
                            .push((item, src, region2));
                        transfer_done(sim, tid);
                    });
                });
            }
        }
    }
    sim.world.inflight.get_mut(&tid).unwrap().pending_transfers = pending;
    if pending == 0 {
        start_execution(sim, tid);
    }
}

enum Move {
    FirstTouch {
        item: ItemId,
        region: Box<dyn DynRegion>,
    },
    Migrate {
        item: ItemId,
        region: Box<dyn DynRegion>,
        src: usize,
    },
    Replicate {
        item: ItemId,
        region: Box<dyn DynRegion>,
        src: usize,
    },
}

/// Compute the data movements needed to satisfy `tid`'s requirements at
/// `loc`. Errors when a source is fenced by locks or exports.
fn plan_transfers(
    w: &mut RtWorld,
    now: SimTime,
    tid: TaskId,
    loc: usize,
) -> Result<Vec<Move>, ()> {
    let mut plan = Vec::new();
    // Collect requirement facts first to appease the borrow checker.
    let reqs: Vec<(ItemId, Box<dyn DynRegion>, AccessMode)> = w.inflight[&tid]
        .reqs
        .iter()
        .map(|r| (r.item, r.region.clone_box(), r.mode))
        .collect();
    for (item, region, mode) in reqs {
        match mode {
            AccessMode::Write => {
                let owned = w.localities[loc].dim.owned_region(item);
                let missing = region.difference_dyn(owned.as_ref());
                if missing.is_empty_dyn() {
                    continue;
                }
                // Another task's migration is already landing this data
                // here: park until the fence lifts, never plan against
                // (or first-touch over) data still on the wire.
                if w.localities[loc].dim.inbound_fenced(item, missing.as_ref()) {
                    return Err(());
                }
                let (pieces, _hops) = index_resolve(w, now, item, loc, missing.as_ref());
                let mut found: Option<Box<dyn DynRegion>> = None;
                for (piece, src) in pieces {
                    if src == loc {
                        // Index says we own it; treat as present.
                        found = Some(match found {
                            None => piece,
                            Some(f) => f.union_dyn(piece.as_ref()),
                        });
                        continue;
                    }
                    // Migration requires an unfenced source that actually
                    // holds the data (not one still awaiting it).
                    let sdim = &w.localities[src].dim;
                    if sdim.locked_any(item, piece.as_ref())
                        || sdim.exported(item, piece.as_ref())
                        || sdim.inbound_fenced(item, piece.as_ref())
                    {
                        return Err(());
                    }
                    found = Some(match found {
                        None => piece.clone_box(),
                        Some(f) => f.union_dyn(piece.as_ref()),
                    });
                    plan.push(Move::Migrate {
                        item,
                        region: piece,
                        src,
                    });
                }
                let nowhere = match found {
                    None => missing,
                    Some(f) => missing.difference_dyn(f.as_ref()),
                };
                if !nowhere.is_empty_dyn() {
                    plan.push(Move::FirstTouch {
                        item,
                        region: nowhere,
                    });
                }
            }
            AccessMode::Read => {
                let base = w.localities[loc].dim.read_base(item);
                let missing = region.difference_dyn(base.as_ref());
                if missing.is_empty_dyn() {
                    continue;
                }
                // Data migrating here is still on the wire: park until
                // it lands rather than replicate a stale copy.
                if w.localities[loc].dim.inbound_fenced(item, missing.as_ref()) {
                    return Err(());
                }
                let (pieces, _hops) = index_resolve(w, now, item, loc, missing.as_ref());
                let mut found: Option<Box<dyn DynRegion>> = None;
                for (piece, src) in pieces {
                    if src == loc {
                        found = Some(match found {
                            None => piece,
                            Some(f) => f.union_dyn(piece.as_ref()),
                        });
                        continue;
                    }
                    // Replication requires a write-unlocked source that
                    // actually holds the data (not one still awaiting an
                    // inbound migration).
                    if w.localities[src].dim.write_locked(item, piece.as_ref())
                        || w.localities[src].dim.inbound_fenced(item, piece.as_ref())
                    {
                        return Err(());
                    }
                    found = Some(match found {
                        None => piece.clone_box(),
                        Some(f) => f.union_dyn(piece.as_ref()),
                    });
                    plan.push(Move::Replicate {
                        item,
                        region: piece,
                        src,
                    });
                }
                let nowhere = match found {
                    None => missing,
                    Some(f) => missing.difference_dyn(f.as_ref()),
                };
                if !nowhere.is_empty_dyn() {
                    // Reading data that exists nowhere: first-touch it
                    // (default values), mirroring lazy initialization.
                    plan.push(Move::FirstTouch {
                        item,
                        region: nowhere,
                    });
                }
            }
        }
    }
    if w.batching.is_some() {
        coalesce_moves(&mut plan);
    }
    Ok(plan)
}

/// Region-level coalescing: merge transfers of the same item from the
/// same source into one move carrying the union region, so a staging
/// plan puts one large transfer on the wire instead of many cell-sized
/// ones. First-occurrence order is preserved; first-touch allocations
/// are local and pass through untouched.
fn coalesce_moves(plan: &mut Vec<Move>) {
    let mut merged: Vec<Move> = Vec::with_capacity(plan.len());
    for mv in plan.drain(..) {
        match mv {
            Move::Migrate { item, region, src } => {
                if let Some(Move::Migrate { region: r, .. }) = merged.iter_mut().find(|m| {
                    matches!(m, Move::Migrate { item: i, src: s, .. } if *i == item && *s == src)
                }) {
                    *r = r.union_dyn(region.as_ref());
                } else {
                    merged.push(Move::Migrate { item, region, src });
                }
            }
            Move::Replicate { item, region, src } => {
                if let Some(Move::Replicate { region: r, .. }) = merged.iter_mut().find(|m| {
                    matches!(m, Move::Replicate { item: i, src: s, .. } if *i == item && *s == src)
                }) {
                    *r = r.union_dyn(region.as_ref());
                } else {
                    merged.push(Move::Replicate { item, region, src });
                }
            }
            first_touch => merged.push(first_touch),
        }
    }
    *plan = merged;
}

fn transfer_done(sim: &mut RtSim, tid: TaskId) {
    let inf = sim.world.inflight.get_mut(&tid).unwrap();
    inf.pending_transfers -= 1;
    if inf.pending_transfers == 0 {
        start_execution(sim, tid);
    }
}

// ---------------------------------------------------------------- execution

fn start_execution(sim: &mut RtSim, tid: TaskId) {
    let loc = sim.world.inflight[&tid].loc;
    // Run the real task body now (its effects are fenced by the held
    // locks), then occupy a core for its declared + charged duration; the
    // completion — lock release, replica drop, result propagation — fires
    // when the core time elapses.
    let (wi, declared) = {
        let inf = sim.world.inflight.get_mut(&tid).unwrap();
        let wi = inf.wi.take().expect("work item present");
        let declared = wi.cost(&sim.world.cost, loc);
        (wi, declared)
    };
    let result_bytes = wi.result_bytes();
    let done = {
        let mut ctx = TaskCtx {
            locality: loc,
            dim: &mut sim.world.localities[loc].dim,
            charged: SimDuration::ZERO,
        };
        let done = wi.process(&mut ctx);
        let charged = ctx.charged;
        sim.world.inflight.get_mut(&tid).unwrap().pending_done = Some((done, result_bytes));
        charged
    };
    let speed = sim.world.cost.speed(loc);
    let charged = SimDuration::from_nanos_f64(done.as_nanos() as f64 / speed);
    let dur = declared + charged + sim.world.cost.task_overhead(loc);
    let now = sim.now();
    let (core, start, end) = sim.world.localities[loc].cores.acquire_indexed(now, dur);
    sim.world.monitor.per_locality[loc].busy_ns += dur.as_nanos();
    sim.world.monitor.task_durations.record(dur.as_nanos());
    trace_core_span(
        &sim.world,
        start,
        end - start,
        loc,
        core,
        EventKind::TaskExec { task: tid.0 },
    );
    schedule_task_event(sim, end, move |sim| finish_execution(sim, tid));
}

fn finish_execution(sim: &mut RtSim, tid: TaskId) {
    let loc = sim.world.inflight[&tid].loc;
    let (done_pack, parent, replicas) = {
        let inf = sim.world.inflight.get_mut(&tid).unwrap();
        (
            inf.pending_done.take().expect("process ran"),
            inf.parent,
            std::mem::take(&mut inf.replicas),
        )
    };
    let (done, result_bytes) = done_pack;
    sim.world.monitor.per_locality[loc].tasks_executed += 1;

    // Release locks (model rule (end)) and drop imported replicas
    // (runtime replica removal), notifying owners so write fences lift.
    sim.world.localities[loc].dim.unlock_all(tid);
    let mut dropped_items: Vec<ItemId> = Vec::new();
    for (item, owner, region) in replicas {
        if !dropped_items.contains(&item) {
            sim.world.localities[loc].dim.drop_replica_holds(item, tid);
            dropped_items.push(item);
        }
        let _ = region;
        let bytes = sim.world.cost.control_msg_bytes;
        let tag = Payload::data(TransferPurpose::Control, Some(tid), item);
        send_deferred(sim, loc, owner, bytes, tag, move |sim, arr| {
            if arr.is_none() {
                // A lost release leaves the owner's export fence
                // standing; any writer it blocks stays parked until
                // recovery clears the slate.
                return;
            }
            sim.world.localities[owner].dim.release_exports_of(item, tid);
            schedule_retries(sim);
        });
    }
    sim.world.inflight.remove(&tid);
    sim.world.localities[loc].load -= 1;

    // Queue family: the finished task's slot frees — activate the next
    // queued task, and steal if the queue is dry.
    if sim.world.scheduler.uses_queues() {
        sim.world.scheduler.release_slot(loc);
        pump_queue(sim, loc);
    }

    match done {
        Done::Value(v) => finish_task(sim, loc, tid, parent, v),
        Done::Children(SplitOutcome { children, combine }) => {
            if children.is_empty() {
                let v = combine(Vec::new());
                finish_task(sim, loc, tid, parent, v);
                return;
            }
            sim.world.parents.insert(
                tid,
                ParentRecord {
                    loc,
                    pending: children.len(),
                    results: children.iter().map(|_| None).collect(),
                    combine: Some(combine),
                    parent,
                    result_bytes,
                },
            );
            for (i, child) in children.into_iter().enumerate() {
                assign_task(sim, loc, child, Some((tid, i)));
            }
        }
    }
    schedule_retries(sim);
}

// --------------------------------------------------------------- completion

fn finish_task(
    sim: &mut RtSim,
    loc: usize,
    tid: TaskId,
    parent: Option<(TaskId, usize)>,
    value: TaskValue,
) {
    trace_instant(
        &sim.world,
        sim.now(),
        loc,
        EventKind::TaskEnd {
            task: tid.0,
            parent: parent.map(|(p, _)| p.0),
        },
    );
    match parent {
        Some((ptid, idx)) => {
            let p_loc = sim.world.parents[&ptid].loc;
            let bytes = sim.world.parents[&ptid].result_bytes;
            if p_loc != loc {
                // A lost result message orphans the parent; the phase
                // stalls until the failure detector triggers recovery.
                let tag = Payload::task(TransferPurpose::Result, tid);
                send_deferred(sim, loc, p_loc, bytes, tag, move |sim, arr| {
                    if arr.is_some() {
                        child_done(sim, ptid, idx, value);
                    }
                });
            } else {
                child_done(sim, ptid, idx, value);
            }
        }
        None => {
            // Root of a serving request, or root of a phase.
            if serve_root_done(sim, tid) {
                return;
            }
            advance_phase(sim, value);
        }
    }
}

fn child_done(sim: &mut RtSim, ptid: TaskId, idx: usize, value: TaskValue) {
    let (ready, loc) = {
        let p = sim.world.parents.get_mut(&ptid).expect("parent record");
        p.results[idx] = Some(value);
        p.pending -= 1;
        (p.pending == 0, p.loc)
    };
    if !ready {
        return;
    }
    let (results, combine, parent) = {
        let mut p = sim.world.parents.remove(&ptid).unwrap();
        (
            std::mem::take(&mut p.results),
            p.combine.take().unwrap(),
            p.parent,
        )
    };
    let values: Vec<TaskValue> = results
        .into_iter()
        .map(|r| r.expect("all children reported"))
        .collect();
    let combined = combine(values);
    trace_instant(
        &sim.world,
        sim.now(),
        loc,
        EventKind::TaskEnd {
            task: ptid.0,
            parent: parent.map(|(p, _)| p.0),
        },
    );
    // Reinstate parent slot for finish_task's lookup.
    match parent {
        Some((gp, gidx)) => {
            // Deliver to grandparent.
            let p_loc = sim.world.parents[&gp].loc;
            let bytes = sim.world.parents[&gp].result_bytes;
            if p_loc != loc {
                let tag = Payload::task(TransferPurpose::Result, ptid);
                send_deferred(sim, loc, p_loc, bytes, tag, move |sim, arr| {
                    // A lost combined result stalls until recovery.
                    if arr.is_some() {
                        child_done(sim, gp, gidx, combined);
                    }
                });
            } else {
                child_done(sim, gp, gidx, combined);
            }
        }
        None => {
            if serve_root_done(sim, ptid) {
                return;
            }
            advance_phase(sim, combined);
        }
    }
}

// ------------------------------------------------------------------ retries

fn schedule_retries(sim: &mut RtSim) {
    if sim.world.parked.is_empty() || sim.world.retry_scheduled {
        return;
    }
    sim.world.retry_scheduled = true;
    let at = sim.now() + SimDuration::from_nanos(1);
    schedule_task_event(sim, at, |sim| {
        sim.world.retry_scheduled = false;
        let parked = std::mem::take(&mut sim.world.parked);
        for tid in parked {
            prepare_task(sim, tid);
        }
    });
}

//! The scheduler subsystem: a swappable layer between Algorithm 2's
//! variant/target decisions and the task lifecycle in [`crate::runtime`].
//!
//! Two families implement the [`Scheduler`] trait:
//!
//! - [`DataAwareScheduler`] — the paper's behavior, unchanged: every
//!   process task executes directly at the locality its data
//!   requirements (or the [`SchedulingPolicy`]) picked. This is the
//!   default; with it the runtime is exactly the pre-refactor one.
//! - [`WorkStealingScheduler`] — per-locality bounded task queues with a
//!   local-queue-threshold trigger and work stealing (the HPX-style
//!   decentralized alternative). Admission still honors the data-aware
//!   preferred target (so first-touch layout is preserved), but a task
//!   whose preferred queue is at [`StealConfig::queue_threshold`] spills
//!   to the shortest live queue, and a locality that runs dry *steals*:
//!   it picks a victim via the pluggable [`VictimPolicy`], sends a
//!   billed steal request, and the victim hands over the back of its
//!   queue. Stolen tasks re-resolve their data requirements at the thief
//!   through the normal staging machinery (location cache included).
//!
//! The trait only *decides*; all effects — billing steal messages,
//! moving descriptors, tracing — stay in the runtime, which drives the
//! queue family through the `enqueue`/`next_runnable`/`steal_*` hooks.
//! Direct schedulers leave those hooks at their no-op defaults.
//!
//! Everything here is deterministic: queues are `VecDeque`s, victim
//! cursors are per-thief counters, and the `Random` victim policy draws
//! from a seeded xorshift — two runs of the same configuration make
//! identical decisions, which the conformance suite relies on.

use std::collections::VecDeque;

use allscale_des::rng::XorShift64;

use crate::policy::{PolicyEnv, SchedulingPolicy, Variant};
use crate::task::TaskId;

/// Where an admitted process task goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Execute directly at the locality (data-aware family).
    Execute(usize),
    /// Enqueue in the locality's bounded task queue (stealing family).
    Enqueue(usize),
}

impl Placement {
    /// The locality the task was routed to, either way.
    pub fn loc(self) -> usize {
        match self {
            Placement::Execute(l) | Placement::Enqueue(l) => l,
        }
    }
}

/// A pluggable scheduler. Decision-only: the runtime owns all effects.
///
/// The queue-family hooks default to no-ops so direct schedulers (which
/// return [`Placement::Execute`] from [`Scheduler::admit`]) implement
/// just the three Algorithm-2 decisions.
pub trait Scheduler: 'static {
    /// Scheduler name for reports.
    fn name(&self) -> &'static str;

    /// Choose the variant for a task (Algorithm 2 line 3).
    fn pick_variant(
        &mut self,
        depth: u32,
        can_split: bool,
        hint: Option<f64>,
        env: &PolicyEnv<'_>,
    ) -> Variant;

    /// Choose a target locality for a task pinned nowhere (Algorithm 2
    /// line 12).
    fn pick_target(&mut self, hint: Option<f64>, origin: usize, env: &PolicyEnv<'_>) -> usize;

    /// Route a process task whose data-aware `preferred` locality is
    /// already decided (and live). Direct schedulers execute there;
    /// queueing schedulers may spill past a full queue — but only to a
    /// locality not flagged in `dead`.
    fn admit(&mut self, preferred: usize, dead: &[bool]) -> Placement {
        let _ = dead;
        Placement::Execute(preferred)
    }

    /// Whether this scheduler routes tasks through per-locality queues
    /// (the runtime then drives the hooks below).
    fn uses_queues(&self) -> bool {
        false
    }

    /// Append a task to `loc`'s queue.
    fn enqueue(&mut self, loc: usize, task: TaskId) {
        let _ = (loc, task);
        unreachable!("direct schedulers never enqueue");
    }

    /// Pop the next task to activate at `loc`, if a slot is free — the
    /// scheduler takes the slot. `None` when the queue is empty or every
    /// slot is taken.
    fn next_runnable(&mut self, loc: usize) -> Option<TaskId> {
        let _ = loc;
        None
    }

    /// Return the slot an activated task held (called at completion).
    fn release_slot(&mut self, loc: usize) {
        let _ = loc;
    }

    /// Tasks queued (not yet activated) at `loc`.
    fn queue_len(&self, loc: usize) -> usize {
        let _ = loc;
        0
    }

    /// Whether `loc` should start a steal round: it has a free slot, an
    /// empty queue, and no steal already in flight.
    fn should_steal(&self, loc: usize) -> bool {
        let _ = loc;
        false
    }

    /// Mark a steal round in flight from `loc`.
    fn begin_steal(&mut self, loc: usize) {
        let _ = loc;
    }

    /// Clear `loc`'s steal/wait state (round over, grant arrived, or
    /// handoff lost).
    fn end_steal(&mut self, loc: usize) {
        let _ = loc;
    }

    /// Pick a steal victim for `thief`: a live locality (never one
    /// flagged in `dead`, never the thief) with a non-empty queue.
    fn steal_victim(&mut self, thief: usize, dead: &[bool]) -> Option<usize> {
        let _ = (thief, dead);
        None
    }

    /// Give up the back of `victim`'s queue (the coldest task — its
    /// data was staged least recently, so it is the cheapest to move).
    fn steal_task(&mut self, victim: usize) -> Option<TaskId> {
        let _ = victim;
        None
    }

    /// Register `loc` as an idle waiter after an exhausted steal round;
    /// a later surplus enqueue hands it work via [`Scheduler::take_handoff`].
    fn enlist_waiter(&mut self, loc: usize) {
        let _ = loc;
    }

    /// After `loc` gained surplus queued work: pop the oldest live
    /// waiter (never `loc` itself, never a locality flagged in `dead`)
    /// and the back of `loc`'s queue for a direct handoff.
    fn take_handoff(&mut self, loc: usize, dead: &[bool]) -> Option<(usize, TaskId)> {
        let _ = (loc, dead);
        None
    }

    /// Steal attempts (victims tried) before a thief parks as a waiter.
    fn max_attempts(&self) -> usize {
        0
    }

    /// Drop all queued tasks, slots, and steal/wait state (recovery
    /// rewinds the phase; the queues' tasks no longer exist).
    fn clear(&mut self) {}
}

// --------------------------------------------------------------- data-aware

/// The direct family: every admitted task executes at its preferred
/// locality immediately — the paper's Algorithm 2, with the variant and
/// fallback-target decisions delegated to the wrapped
/// [`SchedulingPolicy`] exactly as before the scheduler refactor.
pub struct DataAwareScheduler {
    policy: Box<dyn SchedulingPolicy>,
}

impl DataAwareScheduler {
    /// Wrap a policy (usually [`crate::policy::DataAwarePolicy`]).
    pub fn new(policy: Box<dyn SchedulingPolicy>) -> Self {
        DataAwareScheduler { policy }
    }
}

impl Scheduler for DataAwareScheduler {
    fn name(&self) -> &'static str {
        self.policy.name()
    }

    fn pick_variant(
        &mut self,
        depth: u32,
        can_split: bool,
        hint: Option<f64>,
        env: &PolicyEnv<'_>,
    ) -> Variant {
        self.policy.pick_variant(depth, can_split, hint, env)
    }

    fn pick_target(&mut self, hint: Option<f64>, origin: usize, env: &PolicyEnv<'_>) -> usize {
        self.policy.pick_target(hint, origin, env)
    }
}

// ------------------------------------------------------------ work stealing

/// How a thief picks its victim among localities with queued work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VictimPolicy {
    /// Ring scan from a per-thief cursor: fair, stateful, no load info.
    RoundRobin,
    /// The longest queue (most backed-up locality); ties break toward
    /// the lowest index. "LeastLoaded" names the *thief-relative* view:
    /// stealing from the fullest queue leaves the least-loaded cluster.
    LeastLoaded,
    /// Uniformly random among candidates, from a seeded xorshift — the
    /// classic randomized work stealing, deterministic per seed.
    Random,
}

/// Knobs of the work-stealing scheduler family.
#[derive(Debug, Clone, Copy)]
pub struct StealConfig {
    /// Queue length at which admission spills past the preferred
    /// locality to the shortest live queue.
    pub queue_threshold: usize,
    /// Victim selection strategy.
    pub victim: VictimPolicy,
    /// Victims tried per steal round before the thief parks as a waiter.
    pub max_attempts: usize,
    /// Seed of the [`VictimPolicy::Random`] draw stream.
    pub seed: u64,
}

impl Default for StealConfig {
    fn default() -> Self {
        StealConfig {
            queue_threshold: 4,
            victim: VictimPolicy::RoundRobin,
            max_attempts: 3,
            seed: 0x5eed_0bad_cafe,
        }
    }
}

/// What an idle locality of the stealing family is doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Nothing special; a dry pump may start a steal round.
    Idle,
    /// A steal request (or stolen-task handoff) is in flight.
    Stealing,
    /// Steal round exhausted; parked in the waiter list.
    Waiting,
}

struct LocState {
    queue: VecDeque<TaskId>,
    /// Activated (slot-holding) tasks; capped at `slots`.
    active: usize,
    mode: Mode,
}

impl LocState {
    fn new() -> Self {
        LocState {
            queue: VecDeque::new(),
            active: 0,
            mode: Mode::Idle,
        }
    }
}

/// The queue family: per-locality bounded task queues, threshold spill
/// at admission, and work stealing with pluggable victim selection. See
/// the module docs for the protocol; the runtime drives it.
pub struct WorkStealingScheduler {
    policy: Box<dyn SchedulingPolicy>,
    cfg: StealConfig,
    /// Execution slots per locality (= cores: one activated task per
    /// core keeps queued tasks stealable instead of buried in a core
    /// pool's backlog).
    slots: usize,
    locs: Vec<LocState>,
    /// Idle localities whose steal rounds came up dry, oldest first.
    waiters: VecDeque<usize>,
    /// Per-thief ring cursor of the round-robin victim scan.
    cursors: Vec<usize>,
    /// Seeded generator of the random victim draw.
    rng: XorShift64,
}

impl WorkStealingScheduler {
    /// A work-stealing scheduler over `nodes` localities with `cores`
    /// execution slots each, wrapping `policy` for the Algorithm-2
    /// variant/fallback decisions.
    pub fn new(
        policy: Box<dyn SchedulingPolicy>,
        cfg: StealConfig,
        nodes: usize,
        cores: usize,
    ) -> Self {
        WorkStealingScheduler {
            policy,
            cfg,
            slots: cores.max(1),
            locs: (0..nodes).map(|_| LocState::new()).collect(),
            waiters: VecDeque::new(),
            cursors: vec![0; nodes],
            rng: XorShift64::new(cfg.seed),
        }
    }

    fn drop_waiter(&mut self, loc: usize) {
        self.waiters.retain(|&w| w != loc);
    }
}

impl Scheduler for WorkStealingScheduler {
    fn name(&self) -> &'static str {
        match self.cfg.victim {
            VictimPolicy::RoundRobin => "work-stealing(round-robin)",
            VictimPolicy::LeastLoaded => "work-stealing(least-loaded)",
            VictimPolicy::Random => "work-stealing(random)",
        }
    }

    fn pick_variant(
        &mut self,
        depth: u32,
        can_split: bool,
        hint: Option<f64>,
        env: &PolicyEnv<'_>,
    ) -> Variant {
        self.policy.pick_variant(depth, can_split, hint, env)
    }

    fn pick_target(&mut self, hint: Option<f64>, origin: usize, env: &PolicyEnv<'_>) -> usize {
        self.policy.pick_target(hint, origin, env)
    }

    fn admit(&mut self, preferred: usize, dead: &[bool]) -> Placement {
        if self.locs[preferred].queue.len() < self.cfg.queue_threshold {
            return Placement::Enqueue(preferred);
        }
        // Threshold spill: the shortest live queue (ties toward the
        // lowest index), which is usually an idle locality — the
        // admission-side half of load balancing, complementing steals.
        let mut best = preferred;
        let mut best_len = self.locs[preferred].queue.len();
        for (n, l) in self.locs.iter().enumerate() {
            if dead[n] {
                continue;
            }
            if l.queue.len() < best_len {
                best = n;
                best_len = l.queue.len();
            }
        }
        Placement::Enqueue(best)
    }

    fn uses_queues(&self) -> bool {
        true
    }

    fn enqueue(&mut self, loc: usize, task: TaskId) {
        self.locs[loc].queue.push_back(task);
        // Local work ends a wait: the pump activates it right after.
        if self.locs[loc].mode == Mode::Waiting {
            self.locs[loc].mode = Mode::Idle;
            self.drop_waiter(loc);
        }
    }

    fn next_runnable(&mut self, loc: usize) -> Option<TaskId> {
        let l = &mut self.locs[loc];
        if l.active >= self.slots {
            return None;
        }
        let task = l.queue.pop_front()?;
        l.active += 1;
        Some(task)
    }

    fn release_slot(&mut self, loc: usize) {
        self.locs[loc].active = self.locs[loc].active.saturating_sub(1);
    }

    fn queue_len(&self, loc: usize) -> usize {
        self.locs[loc].queue.len()
    }

    fn should_steal(&self, loc: usize) -> bool {
        self.locs.len() > 1
            && self.locs[loc].mode == Mode::Idle
            && self.locs[loc].queue.is_empty()
            && self.locs[loc].active < self.slots
    }

    fn begin_steal(&mut self, loc: usize) {
        self.locs[loc].mode = Mode::Stealing;
    }

    fn end_steal(&mut self, loc: usize) {
        self.locs[loc].mode = Mode::Idle;
        self.drop_waiter(loc);
    }

    fn steal_victim(&mut self, thief: usize, dead: &[bool]) -> Option<usize> {
        let nodes = self.locs.len();
        let eligible =
            |n: usize| n != thief && !dead[n] && !self.locs[n].queue.is_empty();
        match self.cfg.victim {
            VictimPolicy::RoundRobin => {
                let start = self.cursors[thief];
                let victim = (0..nodes).map(|d| (start + d) % nodes).find(|&n| eligible(n))?;
                self.cursors[thief] = (victim + 1) % nodes;
                Some(victim)
            }
            VictimPolicy::LeastLoaded => (0..nodes)
                .filter(|&n| eligible(n))
                .max_by_key(|&n| (self.locs[n].queue.len(), std::cmp::Reverse(n))),
            VictimPolicy::Random => {
                let candidates: Vec<usize> = (0..nodes).filter(|&n| eligible(n)).collect();
                if candidates.is_empty() {
                    return None;
                }
                let i = self.rng.below(candidates.len() as u64) as usize;
                Some(candidates[i])
            }
        }
    }

    fn steal_task(&mut self, victim: usize) -> Option<TaskId> {
        self.locs[victim].queue.pop_back()
    }

    fn enlist_waiter(&mut self, loc: usize) {
        self.locs[loc].mode = Mode::Waiting;
        if !self.waiters.contains(&loc) {
            self.waiters.push_back(loc);
        }
    }

    fn take_handoff(&mut self, loc: usize, dead: &[bool]) -> Option<(usize, TaskId)> {
        if self.locs[loc].queue.is_empty() {
            return None;
        }
        let pos = self
            .waiters
            .iter()
            .position(|&w| w != loc && !dead[w])?;
        let waiter = self.waiters.remove(pos).expect("waiter at found position");
        let task = self.locs[loc].queue.pop_back().expect("queue checked non-empty");
        Some((waiter, task))
    }

    fn max_attempts(&self) -> usize {
        self.cfg.max_attempts.max(1)
    }

    fn clear(&mut self) {
        for l in &mut self.locs {
            l.queue.clear();
            l.active = 0;
            l.mode = Mode::Idle;
        }
        self.waiters.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::DataAwarePolicy;

    fn ws(nodes: usize, cores: usize, victim: VictimPolicy, seed: u64) -> WorkStealingScheduler {
        WorkStealingScheduler::new(
            Box::new(DataAwarePolicy::default()),
            StealConfig {
                victim,
                seed,
                ..StealConfig::default()
            },
            nodes,
            cores,
        )
    }

    fn fill(s: &mut WorkStealingScheduler, loc: usize, n: usize) {
        for i in 0..n {
            s.enqueue(loc, TaskId((loc * 1000 + i) as u64));
        }
    }

    #[test]
    fn slots_cap_activation() {
        let mut s = ws(2, 2, VictimPolicy::RoundRobin, 1);
        fill(&mut s, 0, 3);
        assert!(s.next_runnable(0).is_some());
        assert!(s.next_runnable(0).is_some());
        assert!(s.next_runnable(0).is_none(), "both slots taken");
        assert_eq!(s.queue_len(0), 1);
        s.release_slot(0);
        assert!(s.next_runnable(0).is_some());
    }

    #[test]
    fn admission_spills_past_full_queue_to_shortest_live() {
        let mut s = ws(3, 1, VictimPolicy::RoundRobin, 1);
        let dead = vec![false, false, false];
        fill(&mut s, 0, 4); // at the default threshold
        fill(&mut s, 1, 1);
        assert_eq!(s.admit(0, &dead), Placement::Enqueue(2), "spill to the empty queue");
        assert_eq!(s.admit(1, &dead), Placement::Enqueue(1), "below threshold stays");
        let dead2 = vec![false, true, true];
        assert_eq!(
            s.admit(0, &dead2),
            Placement::Enqueue(0),
            "no live spill target: stay at the preferred locality"
        );
    }

    #[test]
    fn round_robin_victims_cycle_fairly() {
        let mut s = ws(4, 1, VictimPolicy::RoundRobin, 1);
        let dead = vec![false; 4];
        fill(&mut s, 1, 3);
        fill(&mut s, 2, 3);
        fill(&mut s, 3, 3);
        let picks: Vec<usize> = (0..3).map(|_| s.steal_victim(0, &dead).unwrap()).collect();
        assert_eq!(picks, vec![1, 2, 3], "ring order from the cursor");
    }

    #[test]
    fn least_loaded_steals_from_longest_queue() {
        let mut s = ws(4, 1, VictimPolicy::LeastLoaded, 1);
        let dead = vec![false; 4];
        fill(&mut s, 1, 2);
        fill(&mut s, 2, 5);
        fill(&mut s, 3, 5);
        assert_eq!(s.steal_victim(0, &dead), Some(2), "longest queue, lowest index on tie");
    }

    #[test]
    fn victims_exclude_dead_self_and_empty() {
        for victim in [VictimPolicy::RoundRobin, VictimPolicy::LeastLoaded, VictimPolicy::Random] {
            let mut s = ws(4, 1, victim, 7);
            let dead = vec![false, true, false, false];
            fill(&mut s, 0, 5); // the thief: never its own victim
            fill(&mut s, 1, 5); // dead: never a victim
            fill(&mut s, 2, 5);
            fill(&mut s, 3, 5);
            for _ in 0..16 {
                let v = s.steal_victim(0, &dead).expect("an eligible victim exists");
                assert_ne!(v, 1, "{victim:?} picked a dead victim");
                assert_ne!(v, 0, "{victim:?} picked the thief itself");
                assert!(!s.locs[v].queue.is_empty(), "{victim:?} picked an empty queue");
            }
            assert_eq!(s.steal_victim(0, &[true; 4]), None, "all dead: no victim");
        }
    }

    #[test]
    fn random_victims_deterministic_per_seed() {
        let draw = |seed: u64| {
            let mut s = ws(8, 1, VictimPolicy::Random, seed);
            let dead = vec![false; 8];
            for n in 1..8 {
                fill(&mut s, n, 2);
            }
            (0..12)
                .map(|_| s.steal_victim(0, &dead).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }

    #[test]
    fn handoff_skips_dead_and_self_waiters() {
        let mut s = ws(4, 1, VictimPolicy::RoundRobin, 1);
        s.enlist_waiter(1);
        s.enlist_waiter(2);
        fill(&mut s, 0, 2);
        let dead = vec![false, true, false, false];
        let (w, _t) = s.take_handoff(0, &dead).unwrap();
        assert_eq!(w, 2, "dead waiter 1 skipped");
        assert!(s.take_handoff(0, &dead).is_none(), "no live waiter left");
    }

    #[test]
    fn clear_resets_queues_slots_and_waiters() {
        let mut s = ws(2, 1, VictimPolicy::RoundRobin, 1);
        fill(&mut s, 0, 3);
        let _ = s.next_runnable(0);
        s.enlist_waiter(1);
        s.clear();
        assert_eq!(s.queue_len(0), 0);
        assert!(s.next_runnable(0).is_none());
        assert!(s.take_handoff(0, &[false, false]).is_none());
        assert!(s.should_steal(0), "cleared state is idle with free slots");
    }
}

//! Façade types and the `pfor` parallel loop — the user-facing API layer
//! (paper Sections 3.1 and 3.4).
//!
//! "The façade type defines the logical view on the data structure to the
//! end user." [`Grid`] is the N-dimensional grid data item the paper's
//! Fig. 6b uses (`Grid<double,2> A({N,N}); pfor({0,0},{N,N},…)`); the
//! corresponding fragment/region types come from `allscale-region`.
//! [`pfor`] builds a `prec` work item that recursively bisects an index
//! box until the policy stops splitting, with data requirements derived
//! from the sub-box by a user closure — the artifact the AllScale
//! compiler generates from a parallel loop.

use std::sync::Arc;

use allscale_des::SimDuration;
use allscale_region::{
    BoxRegion, BucketRegion, GridBox, GridFragment, ItemType, KeyedFragment, PathRegion, Point,
    ScalarFragment, TreeFragment, TreePath, UnitRegion,
};
use serde::{de::DeserializeOwned, Serialize};

use crate::cost::CostModel;
use crate::runtime::RtCtx;
use crate::task::{ItemId, Prec, PrecOps, Requirement, TaskCtx, WorkItem};

/// Marker type describing an N-dimensional grid data item holding `T`.
pub struct GridItem<T, const D: usize>(std::marker::PhantomData<T>);

impl<T, const D: usize> ItemType for GridItem<T, D>
where
    T: Clone + Default + Serialize + DeserializeOwned + 'static,
{
    type Region = BoxRegion<D>;
    type Fragment = GridFragment<T, D>;
    const BYTES_PER_ELEMENT: usize = std::mem::size_of::<T>();
}

/// A typed handle on a grid data item (the façade). Cheap to copy; the
/// actual storage lives distributed in the localities' data item managers.
pub struct Grid<T, const D: usize> {
    /// The underlying data item id.
    pub id: ItemId,
    /// The logical extent `[0, shape)`.
    pub shape: [i64; D],
    _marker: std::marker::PhantomData<T>,
}

impl<T, const D: usize> Clone for Grid<T, D> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T, const D: usize> Copy for Grid<T, D> {}

impl<T, const D: usize> Grid<T, D>
where
    T: Clone + Default + Serialize + DeserializeOwned + 'static,
{
    /// Create a grid data item of the given shape (paper Fig. 6b, lines
    /// 1-2). Registers the item on every locality; storage appears on
    /// first touch.
    pub fn create(ctx: &mut RtCtx<'_>, name: &'static str, shape: [i64; D]) -> Self {
        let id = ctx.create_item::<GridItem<T, D>>(name);
        Grid {
            id,
            shape,
            _marker: std::marker::PhantomData,
        }
    }

    /// The whole-grid box `[0, shape)`.
    pub fn full_box(&self) -> GridBox<D> {
        GridBox::from_shape(self.shape).expect("grid shapes are non-empty")
    }

    /// The whole-grid region.
    pub fn full_region(&self) -> BoxRegion<D> {
        BoxRegion::from_box(self.full_box())
    }

    /// Read an element from the executing task's local fragment.
    ///
    /// # Panics
    /// Panics when `p` is not covered locally — i.e. the task did not
    /// declare a read requirement covering `p` (requirement violations
    /// surface immediately instead of returning stale data).
    pub fn get(&self, ctx: &TaskCtx<'_>, p: [i64; D]) -> T {
        ctx.fragment::<GridFragment<T, D>>(self.id)
            .get(&Point(p))
            .unwrap_or_else(|| panic!("read of uncovered element {p:?} — missing requirement?"))
            .clone()
    }

    /// Write an element in the executing task's local fragment.
    ///
    /// # Panics
    /// Panics when `p` is not covered locally (missing write requirement).
    pub fn set(&self, ctx: &mut TaskCtx<'_>, p: [i64; D], v: T) {
        let ok = ctx
            .fragment_mut::<GridFragment<T, D>>(self.id)
            .set(&Point(p), v);
        assert!(ok, "write of uncovered element {p:?} — missing requirement?");
    }
}

/// Marker type describing a scalar data item holding `T`.
pub struct ScalarItem<T>(std::marker::PhantomData<T>);

impl<T> ItemType for ScalarItem<T>
where
    T: Clone + Default + Serialize + DeserializeOwned + 'static,
{
    type Region = UnitRegion;
    type Fragment = ScalarFragment<T>;
    const BYTES_PER_ELEMENT: usize = std::mem::size_of::<T>();
}

/// A typed handle on a scalar data item (a single runtime-managed value,
/// e.g. a global simulation parameter or a reduction target).
pub struct Scalar<T> {
    /// The underlying data item id.
    pub id: ItemId,
    _marker: std::marker::PhantomData<T>,
}

impl<T> Clone for Scalar<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Scalar<T> {}

impl<T> Scalar<T>
where
    T: Clone + Default + Serialize + DeserializeOwned + 'static,
{
    /// Create a scalar data item.
    pub fn create(ctx: &mut RtCtx<'_>, name: &'static str) -> Self {
        let id = ctx.create_item::<ScalarItem<T>>(name);
        Scalar {
            id,
            _marker: std::marker::PhantomData,
        }
    }

    /// Read the scalar from the executing task's locality.
    ///
    /// # Panics
    /// Panics when the task lacks a requirement covering the scalar.
    pub fn get(&self, ctx: &TaskCtx<'_>) -> T {
        ctx.fragment::<ScalarFragment<T>>(self.id)
            .get()
            .expect("scalar not present — missing requirement?")
            .clone()
    }

    /// Write the scalar at the executing task's locality.
    ///
    /// # Panics
    /// Panics when the task lacks a write requirement on the scalar.
    pub fn set(&self, ctx: &mut TaskCtx<'_>, v: T) {
        let ok = ctx.fragment_mut::<ScalarFragment<T>>(self.id).set(v);
        assert!(ok, "scalar not allocated here — missing write requirement?");
    }

    /// The full (single-element) region, for building requirements.
    pub fn region(&self) -> UnitRegion {
        UnitRegion::FULL
    }
}

/// Marker type describing a binary-tree data item holding `T` with region
/// scheme `R` (flexible [`allscale_region::TreeRegion`] or blocked
/// [`allscale_region::BitmaskTreeRegion`]).
pub struct TreeItem<T, R>(std::marker::PhantomData<(T, R)>);

impl<T, R> ItemType for TreeItem<T, R>
where
    T: Clone + Serialize + DeserializeOwned + 'static,
    R: PathRegion,
{
    type Region = R;
    type Fragment = TreeFragment<T, R>;
    const BYTES_PER_ELEMENT: usize = std::mem::size_of::<T>() + 16;
}

/// A typed handle on a binary-tree data item (the façade of paper
/// Fig. 4b/4c): nodes addressed by [`TreePath`], subsets by the chosen
/// tree region scheme.
pub struct Tree<T, R: PathRegion> {
    /// The underlying data item id.
    pub id: ItemId,
    _marker: std::marker::PhantomData<(T, R)>,
}

impl<T, R: PathRegion> Clone for Tree<T, R> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T, R: PathRegion> Copy for Tree<T, R> {}

impl<T, R> Tree<T, R>
where
    T: Clone + Serialize + DeserializeOwned + 'static,
    R: PathRegion,
{
    /// Create a tree data item.
    pub fn create(ctx: &mut RtCtx<'_>, name: &'static str) -> Self {
        let id = ctx.create_item::<TreeItem<T, R>>(name);
        Tree {
            id,
            _marker: std::marker::PhantomData,
        }
    }

    /// Read the node at `path` from the local fragment, if present.
    pub fn get(&self, ctx: &TaskCtx<'_>, path: &TreePath) -> Option<T> {
        ctx.fragment::<TreeFragment<T, R>>(self.id)
            .get(path)
            .cloned()
    }

    /// Store a node at `path` in the local fragment.
    ///
    /// # Panics
    /// Panics when `path` lies outside the locally covered region
    /// (missing write requirement).
    pub fn set(&self, ctx: &mut TaskCtx<'_>, path: TreePath, value: T) {
        let ok = ctx
            .fragment_mut::<TreeFragment<T, R>>(self.id)
            .set(path, value);
        assert!(ok, "path not covered here — missing write requirement?");
    }
}

/// Marker type describing a keyed map data item (`K → V`, hash-bucketed).
pub struct MapItem<K, V>(std::marker::PhantomData<(K, V)>);

impl<K, V> ItemType for MapItem<K, V>
where
    K: Ord + Clone + Serialize + DeserializeOwned + 'static,
    V: Clone + Serialize + DeserializeOwned + 'static,
{
    type Region = BucketRegion;
    type Fragment = KeyedFragment<K, V>;
    const BYTES_PER_ELEMENT: usize = std::mem::size_of::<K>() + std::mem::size_of::<V>();
}

/// A typed handle on a distributed map data item: key-value pairs
/// partitioned into hash buckets that the runtime places, migrates, and
/// replicates like any other region (the paper's "sets, maps" claim).
pub struct DistMap<K, V> {
    /// The underlying data item id.
    pub id: ItemId,
    /// Number of hash buckets.
    pub buckets: u32,
    _marker: std::marker::PhantomData<(K, V)>,
}

impl<K, V> Clone for DistMap<K, V> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<K, V> Copy for DistMap<K, V> {}

impl<K, V> DistMap<K, V>
where
    K: Ord + Clone + Serialize + DeserializeOwned + 'static,
    V: Clone + Serialize + DeserializeOwned + 'static,
{
    /// Create a distributed map with `buckets` hash buckets.
    pub fn create(ctx: &mut RtCtx<'_>, name: &'static str, buckets: u32) -> Self {
        let id = ctx.create_item::<MapItem<K, V>>(name);
        DistMap {
            id,
            buckets,
            _marker: std::marker::PhantomData,
        }
    }

    /// The region of one bucket.
    pub fn bucket_region(&self, b: u32) -> BucketRegion {
        BucketRegion::of_bucket(self.buckets, b)
    }

    /// The region of a contiguous bucket range `[lo, hi)`.
    pub fn range_region(&self, lo: u32, hi: u32) -> BucketRegion {
        BucketRegion::of_range(self.buckets, lo, hi)
    }

    /// The full region.
    pub fn full_region(&self) -> BucketRegion {
        BucketRegion::full(self.buckets)
    }

    /// Insert into the local fragment (requires a write requirement on the
    /// key's bucket).
    pub fn insert(&self, ctx: &mut TaskCtx<'_>, key: K, value: V) {
        let ok = ctx
            .fragment_mut::<KeyedFragment<K, V>>(self.id)
            .insert(key, value);
        assert!(ok, "bucket not covered here — missing write requirement?");
    }

    /// Look up in the local fragment.
    pub fn get(&self, ctx: &TaskCtx<'_>, key: &K) -> Option<V> {
        ctx.fragment::<KeyedFragment<K, V>>(self.id).get(key).cloned()
    }

    /// Fold over the locally covered `(key, value)` pairs.
    pub fn fold_local<A>(
        &self,
        ctx: &TaskCtx<'_>,
        init: A,
        mut f: impl FnMut(A, &K, &V) -> A,
    ) -> A {
        let frag = ctx.fragment::<KeyedFragment<K, V>>(self.id);
        let mut acc = init;
        for (k, v) in frag.iter() {
            acc = f(acc, k, v);
        }
        acc
    }
}

/// Requirements builder result for a `pfor` tile: what the body needs.
pub type TileReqs<const D: usize> = Vec<Requirement>;

/// Configuration of a [`pfor`] loop.
pub struct PforSpec<const D: usize> {
    /// Loop name (monitoring).
    pub name: &'static str,
    /// The iteration space.
    pub range: GridBox<D>,
    /// Stop splitting below this many points per tile.
    pub grain: u64,
    /// Virtual cost per point (ns). Typically from [`CostModel`] fields.
    pub ns_per_point: f64,
    /// Split axis 0 with priority until the range is cut into at least
    /// this many axis-0 bands (0 = plain longest-axis bisection). Needed
    /// when another axis is longer but data distribution happens along
    /// axis 0 (the placement hint's axis): without it, first-touch would
    /// place all data on the few distinct axis-0 bands.
    pub axis0_pieces: u64,
}

/// Build a `pfor` work item: a recursive bisection of `range` whose leaf
/// tiles run `body(point)` with requirements `reqs(tile)`.
///
/// - `reqs` maps a tile to the data requirements of processing it (e.g.
///   "read the tile dilated by 1 in grid A, write the tile in grid B") —
///   the requirement function the AllScale compiler derives per variant;
/// - `body` is executed for every point of a leaf tile, with a [`TaskCtx`]
///   giving façade access.
#[allow(clippy::arc_with_non_send_sync)] // the simulation is single-threaded by design
pub fn pfor<const D: usize>(
    spec: PforSpec<D>,
    reqs: impl Fn(&GridBox<D>) -> TileReqs<D> + 'static,
    body: impl Fn(&mut TaskCtx<'_>, Point<D>) + 'static,
) -> Box<dyn WorkItem> {
    let full = spec.range;
    let grain = spec.grain.max(1);
    let ns_per_point = spec.ns_per_point;
    let axis0_pieces = spec.axis0_pieces;
    let full_extent0 = (full.hi()[0] - full.lo()[0]).max(1) as u64;
    let ops: Arc<PrecOps<GridBox<D>>> = Arc::new(PrecOps {
        name: spec.name,
        can_split: Box::new(move |b, _| b.cardinality() > grain),
        split: Box::new(move |b| {
            let extent0 = (b.hi()[0] - b.lo()[0]) as u64;
            if axis0_pieces > 0 && extent0 > 1 && full_extent0 / extent0 < axis0_pieces {
                bisect_axis(b, 0)
            } else {
                bisect(b)
            }
        }),
        combine: Box::new(|_| None),
        process: Box::new(move |ctx, b| {
            for p in b.points() {
                body(ctx, p);
            }
            None
        }),
        hint: Box::new(move |b| Some(position_hint(&full, b))),
        requirements: Box::new(move |b| reqs(b)),
        cost: Box::new(move |b, c: &CostModel, loc| {
            SimDuration::from_nanos_f64(b.cardinality() as f64 * ns_per_point / c.speed(loc))
        }),
        descriptor_bytes: 192,
        result_bytes: 8,
    });
    Prec::root(full, ops)
}

/// Split a box in half along its longest axis.
pub fn bisect<const D: usize>(b: &GridBox<D>) -> Vec<GridBox<D>> {
    let (lo, hi) = (b.lo(), b.hi());
    let mut axis = 0;
    let mut best = 0;
    for d in 0..D {
        let extent = hi[d] - lo[d];
        if extent > best {
            best = extent;
            axis = d;
        }
    }
    bisect_axis(b, axis)
}

/// Split a box in half along a given axis (identity if the axis has
/// extent 1).
pub fn bisect_axis<const D: usize>(b: &GridBox<D>, axis: usize) -> Vec<GridBox<D>> {
    let (lo, hi) = (b.lo(), b.hi());
    let extent = hi[axis] - lo[axis];
    if extent <= 1 {
        return vec![*b];
    }
    let mid = lo[axis] + extent / 2;
    let mut hi_left = hi;
    hi_left[axis] = mid;
    let mut lo_right = lo;
    lo_right[axis] = mid;
    vec![
        GridBox::new(lo, hi_left).expect("left half non-empty"),
        GridBox::new(lo_right, hi).expect("right half non-empty"),
    ]
}

/// Placement hint: the fractional position of `tile`'s center along the
/// *first* axis of the full range — giving contiguous row-block placement,
/// the distribution the paper's evaluation codes use.
pub fn position_hint<const D: usize>(full: &GridBox<D>, tile: &GridBox<D>) -> f64 {
    let lo = full.lo()[0] as f64;
    let hi = full.hi()[0] as f64;
    if hi <= lo {
        return 0.0;
    }
    let center = (tile.lo()[0] + tile.hi()[0]) as f64 / 2.0;
    ((center - lo) / (hi - lo)).clamp(0.0, 0.999_999)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_splits_longest_axis() {
        let b = GridBox::<2>::new(Point([0, 0]), Point([8, 4])).unwrap();
        let parts = bisect(&b);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].hi().0, [4, 4]);
        assert_eq!(parts[1].lo().0, [4, 0]);
        // Halves tile the original exactly.
        assert_eq!(
            parts[0].cardinality() + parts[1].cardinality(),
            b.cardinality()
        );
    }

    #[test]
    fn bisect_of_unit_box_is_identity() {
        let b = GridBox::<1>::new(Point([3]), Point([4])).unwrap();
        assert_eq!(bisect(&b), vec![b]);
    }

    #[test]
    fn position_hints_are_monotone_along_axis0() {
        let full = GridBox::<2>::from_shape([100, 100]).unwrap();
        let t1 = GridBox::new(Point([0, 0]), Point([10, 100])).unwrap();
        let t2 = GridBox::new(Point([50, 0]), Point([60, 100])).unwrap();
        let t3 = GridBox::new(Point([90, 0]), Point([100, 100])).unwrap();
        let (h1, h2, h3) = (
            position_hint(&full, &t1),
            position_hint(&full, &t2),
            position_hint(&full, &t3),
        );
        assert!(h1 < h2 && h2 < h3);
        assert!((0.0..1.0).contains(&h1) && h3 < 1.0);
    }

    #[test]
    fn pfor_work_item_shape() {
        let spec = PforSpec {
            name: "test",
            range: GridBox::<2>::from_shape([16, 16]).unwrap(),
            grain: 16,
            ns_per_point: 2.0,
            axis0_pieces: 0,
        };
        let wi = pfor(spec, |_| Vec::new(), |_, _| {});
        assert!(wi.can_split());
        assert_eq!(wi.name(), "test");
        let cost = wi.cost(&CostModel::default(), 0);
        assert_eq!(cost.as_nanos(), 512); // 256 points × 2 ns
        let out = wi.split();
        assert_eq!(out.children.len(), 2);
        // Split until grain: a 16-point tile must not split further.
        let mut leaf = out.children.into_iter().next().unwrap();
        while leaf.can_split() {
            leaf = leaf.split().children.into_iter().next().unwrap();
        }
        assert!(leaf.cost(&CostModel::default(), 0).as_nanos() <= 32);
    }
}

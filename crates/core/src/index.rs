//! The hierarchical, distributed data storage index
//! (paper Fig. 5 and Algorithm 1).
//!
//! All runtime processes form an implicit binary hierarchy: the level-`l`
//! node (level 1 = leaves) exists at every process `i` with
//! `i ≡ 0 (mod 2^(l-1))` and covers the process block `[i, i + 2^(l-1))`;
//! inner-node roles are played by the left child, and the parent of the
//! level-`l` node at `i` is the level-`l+1` node at `2^l · ⌊i/2^l⌋` —
//! matching the paper's Fig. 5 exactly (`process0: r07 = r03 ∪ r47`, …).
//! Each process therefore stores O(log₂ P) regions per data item.
//!
//! [`DistIndex::resolve`] implements Algorithm 1 (region location
//! resolution): a depth-first traversal starting at the requesting leaf,
//! escalating to the parent only for the still-unresolved remainder. One
//! clarification relative to the paper's listing: the descent into a child
//! passes `r ∩ r_child` rather than `r`, which prevents the child's own
//! escalation clause from bouncing the remainder back and forth (the
//! obvious intent of the greedy heuristic).
//!
//! The traversal is executed synchronously over the (simulation-global)
//! index state, but every inter-process edge it crosses is reported as a
//! *hop* so the caller can bill the corresponding control messages on the
//! simulated network — lookup latency is part of measured behaviour.
//!
//! A [`CentralIndex`] (single directory at process 0) is provided as an
//! ablation baseline (DESIGN.md, experiment A1).

use std::collections::BTreeMap;

use crate::dynamic::DynRegion;
use crate::task::ItemId;

/// A `(from, to)` control-message edge crossed during an index operation.
pub type Hop = (usize, usize);

/// Pieces of a resolved region: which process hosts which part.
pub type Resolution = Vec<(Box<dyn DynRegion>, usize)>;

/// Left/right subtree regions of one inner node.
type NodeEntry = (Box<dyn DynRegion>, Box<dyn DynRegion>);

struct ItemIndex {
    /// Per process: the region covered by its locally present fragments.
    leaf: Vec<Box<dyn DynRegion>>,
    /// Per (level ≥ 2, host): regions covered by the left and right
    /// subtrees of that node.
    nodes: BTreeMap<(u32, usize), NodeEntry>,
}

/// The distributed hierarchical index.
pub struct DistIndex {
    procs: usize,
    root_level: u32,
    items: BTreeMap<ItemId, ItemIndex>,
}

/// `2^l · ⌊i / 2^l⌋` — the host of the level-`l+1` ancestor node.
fn parent_host(i: usize, child_level: u32) -> usize {
    let l = child_level; // parent is at level l+1, hosted at 2^l·⌊i/2^l⌋
    (i >> l) << l
}

impl DistIndex {
    /// An index over `procs` processes.
    pub fn new(procs: usize) -> Self {
        assert!(procs > 0);
        // Smallest L with 2^(L-1) >= procs.
        let mut root_level = 1;
        while (1usize << (root_level - 1)) < procs {
            root_level += 1;
        }
        DistIndex {
            procs,
            root_level: root_level as u32,
            items: BTreeMap::new(),
        }
    }

    /// The root level of the hierarchy (1 for a single process).
    pub fn root_level(&self) -> u32 {
        self.root_level
    }

    /// Register a data item with its region scheme's empty region.
    pub fn register_item(&mut self, item: ItemId, empty: &dyn DynRegion) {
        let leaf = (0..self.procs).map(|_| empty.clone_box()).collect();
        let mut nodes = BTreeMap::new();
        for l in 2..=self.root_level {
            let block = 1usize << (l - 1);
            let mut host = 0;
            while host < self.procs {
                nodes.insert((l, host), (empty.clone_box(), empty.clone_box()));
                host += block;
            }
        }
        self.items.insert(item, ItemIndex { leaf, nodes });
    }

    /// Remove a data item from the index.
    pub fn remove_item(&mut self, item: ItemId) {
        self.items.remove(&item);
    }

    /// The region process `p` currently advertises for `item`.
    pub fn leaf_region(&self, item: ItemId, p: usize) -> &dyn DynRegion {
        self.items[&item].leaf[p].as_ref()
    }

    /// Update process `p`'s advertised region and propagate along the path
    /// to the root. Returns the inter-process hops used (for billing).
    pub fn update_leaf(
        &mut self,
        item: ItemId,
        p: usize,
        region: Box<dyn DynRegion>,
    ) -> Vec<Hop> {
        let idx = self.items.get_mut(&item).expect("unregistered item");
        idx.leaf[p] = region;
        let mut hops = Vec::new();
        let mut child_host = p;
        for l in 2..=self.root_level {
            let host = parent_host(p, l - 1);
            // Recompute the affected side of the parent from the child's
            // subtree total.
            let half = 1usize << (l - 2);
            let child_is_left = child_host == host;
            let subtree_total = Self::subtree_total(idx, l - 1, child_host);
            let node = idx.nodes.get_mut(&(l, host)).expect("node exists");
            if child_is_left {
                node.0 = subtree_total;
            } else {
                debug_assert_eq!(child_host, host + half);
                node.1 = subtree_total;
            }
            if child_host != host {
                hops.push((child_host, host));
            }
            child_host = host;
        }
        hops
    }

    /// Region covered by the subtree rooted at the level-`l` node at `host`.
    fn subtree_total(idx: &ItemIndex, l: u32, host: usize) -> Box<dyn DynRegion> {
        if l == 1 {
            idx.leaf[host].clone_box()
        } else {
            let (left, right) = &idx.nodes[&(l, host)];
            left.union_dyn(right.as_ref())
        }
    }

    /// Algorithm 1: locate the pieces of `region` of `item`, starting from
    /// process `start`. Returns the resolution (sub-region → host pairs)
    /// and the inter-process hops crossed, in traversal order.
    ///
    /// Unresolved remainders (data that exists nowhere) are simply not in
    /// the output — `⋃ m ⊆ r`, as the paper specifies. By the same
    /// semantics, an *unregistered* item (never created, or already
    /// destroyed) resolves to the empty resolution: nothing of it exists
    /// anywhere, and no traversal (hence no hops) is needed to know that,
    /// since item registration is replicated on every process.
    pub fn resolve(
        &self,
        item: ItemId,
        start: usize,
        region: &dyn DynRegion,
    ) -> (Resolution, Vec<Hop>) {
        let Some(idx) = self.items.get(&item) else {
            return (Vec::new(), Vec::new());
        };
        let mut m: Resolution = Vec::new();
        let mut hops: Vec<Hop> = Vec::new();
        let remainder = self.resolve_rec(
            idx,
            start,
            1,
            region.clone_box(),
            true,
            &mut m,
            &mut hops,
        );
        let _ = remainder;
        (m, hops)
    }

    /// Recursive RESOLVE. Returns the still-unresolved remainder of `r`.
    /// `may_escalate` is false when the call came *down* from a parent
    /// (escalation is the caller's job then).
    #[allow(clippy::too_many_arguments)]
    fn resolve_rec(
        &self,
        idx: &ItemIndex,
        i: usize,
        l: u32,
        mut r: Box<dyn DynRegion>,
        may_escalate: bool,
        m: &mut Resolution,
        hops: &mut Vec<Hop>,
    ) -> Box<dyn DynRegion> {
        if l == 1 {
            // Leaf level: contribute the local share.
            let ri = &idx.leaf[i];
            let share = r.intersect_dyn(ri.as_ref());
            if !share.is_empty_dyn() {
                m.push((share.clone_box(), i));
                r = r.difference_dyn(ri.as_ref());
            }
        } else {
            let half = 1usize << (l - 2);
            let (rl, rr) = {
                let (left, right) = &idx.nodes[&(l, i)];
                (left.clone_box(), right.clone_box())
            };
            // Left subtree (hosted here: no hop).
            let left_part = r.intersect_dyn(rl.as_ref());
            if !left_part.is_empty_dyn() {
                self.resolve_rec(idx, i, l - 1, left_part, false, m, hops);
                r = r.difference_dyn(rl.as_ref());
            }
            // Right subtree (hosted at i + 2^(l-2): one hop out, and the
            // reply path is billed by the caller symmetric to request).
            let right_part = r.intersect_dyn(rr.as_ref());
            if !right_part.is_empty_dyn() {
                let right_host = i + half;
                if right_host < self.procs {
                    hops.push((i, right_host));
                    self.resolve_rec(idx, right_host, l - 1, right_part, false, m, hops);
                }
                r = r.difference_dyn(rr.as_ref());
            }
        }
        // Fully resolved → done.
        if r.is_empty_dyn() || !may_escalate {
            return r;
        }
        // Escalate the remainder to the parent.
        if l < self.root_level {
            let host = parent_host(i, l);
            if host != i {
                hops.push((i, host));
            }
            return self.resolve_rec(idx, host, l + 1, r, true, m, hops);
        }
        r
    }

    /// Convenience: the single process owning *all* of `region`, if any —
    /// the coverage test of scheduler Algorithm 2 lines 4/7.
    pub fn sole_owner(&self, item: ItemId, start: usize, region: &dyn DynRegion) -> Option<usize> {
        if region.is_empty_dyn() {
            return None;
        }
        let (pieces, _) = self.resolve(item, start, region);
        sole_owner_from(region, &pieces)
    }
}

/// The single process hosting every piece of a resolution that also fully
/// covers `region`, if any — shared by [`DistIndex::sole_owner`] and the
/// location cache's cached variant.
pub(crate) fn sole_owner_from(region: &dyn DynRegion, pieces: &Resolution) -> Option<usize> {
    let mut owner: Option<usize> = None;
    let mut covered: Option<Box<dyn DynRegion>> = None;
    for (piece, host) in pieces {
        match owner {
            None => owner = Some(*host),
            Some(o) if o != *host => return None,
            _ => {}
        }
        covered = Some(match covered {
            None => piece.clone_box(),
            Some(c) => c.union_dyn(piece.as_ref()),
        });
    }
    match covered {
        Some(c) if region.difference_dyn(c.as_ref()).is_empty_dyn() => owner,
        _ => None,
    }
}

/// Ablation baseline: a central directory at process 0. Every lookup and
/// every update is a round-trip to process 0.
pub struct CentralIndex {
    procs: usize,
    items: BTreeMap<ItemId, Vec<Box<dyn DynRegion>>>,
}

impl CentralIndex {
    /// A central directory over `procs` processes.
    pub fn new(procs: usize) -> Self {
        CentralIndex {
            procs,
            items: BTreeMap::new(),
        }
    }

    /// Register a data item.
    pub fn register_item(&mut self, item: ItemId, empty: &dyn DynRegion) {
        self.items
            .insert(item, (0..self.procs).map(|_| empty.clone_box()).collect());
    }

    /// Update process `p`'s region; one message to the directory.
    pub fn update_leaf(
        &mut self,
        item: ItemId,
        p: usize,
        region: Box<dyn DynRegion>,
    ) -> Vec<Hop> {
        self.items.get_mut(&item).expect("unregistered")[p] = region;
        if p != 0 {
            vec![(p, 0)]
        } else {
            Vec::new()
        }
    }

    /// Resolve by scanning the directory; one round-trip to process 0.
    ///
    /// Unregistered items resolve to the empty resolution (the directory
    /// knows nothing of them), though the round-trip asking it is still
    /// billed — the central directory is the only place that can answer.
    pub fn resolve(
        &self,
        item: ItemId,
        start: usize,
        region: &dyn DynRegion,
    ) -> (Resolution, Vec<Hop>) {
        let hops = if start != 0 {
            vec![(start, 0), (0, start)]
        } else {
            Vec::new()
        };
        let Some(dir) = self.items.get(&item) else {
            return (Vec::new(), hops);
        };
        let mut m = Vec::new();
        let mut r = region.clone_box();
        for (p, owned) in dir.iter().enumerate() {
            let share = r.intersect_dyn(owned.as_ref());
            if !share.is_empty_dyn() {
                m.push((share.clone_box(), p));
                r = r.difference_dyn(share.as_ref());
                if r.is_empty_dyn() {
                    break;
                }
            }
        }
        (m, hops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use allscale_region::{BoxRegion, Region};

    fn r1(lo: i64, hi: i64) -> BoxRegion<1> {
        BoxRegion::cuboid([lo], [hi])
    }

    /// Distribute [0, 8·k) row-blocks over 8 processes.
    fn populated(procs: usize, k: i64) -> (DistIndex, ItemId) {
        let item = ItemId(0);
        let mut idx = DistIndex::new(procs);
        idx.register_item(item, &BoxRegion::<1>::empty());
        for p in 0..procs {
            let lo = p as i64 * k;
            idx.update_leaf(item, p, Box::new(r1(lo, lo + k)));
        }
        (idx, item)
    }

    #[test]
    fn hierarchy_shape_matches_fig5() {
        let idx = DistIndex::new(8);
        assert_eq!(idx.root_level(), 4);
        // Parent of leaf p3 is the level-2 node at p2, etc.
        assert_eq!(parent_host(3, 1), 2);
        assert_eq!(parent_host(2, 2), 0);
        assert_eq!(parent_host(6, 2), 4);
        assert_eq!(parent_host(4, 3), 0);
    }

    #[test]
    fn local_lookup_needs_no_hops() {
        let (idx, item) = populated(8, 10);
        let (m, hops) = idx.resolve(item, 3, &r1(30, 40));
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].1, 3);
        assert!(hops.is_empty(), "local data must resolve locally: {hops:?}");
    }

    #[test]
    fn sibling_lookup_escalates_once() {
        let (idx, item) = populated(8, 10);
        // p2 looks for p3's block: escalate to level-2 node at p2 (self),
        // then descend right to p3.
        let (m, hops) = idx.resolve(item, 2, &r1(30, 40));
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].1, 3);
        assert_eq!(hops, vec![(2, 3)]);
    }

    #[test]
    fn cross_tree_lookup_goes_over_the_root() {
        let (idx, item) = populated(8, 10);
        // p7 looks for p0's block: up to p6 (l2), p4 (l3), p0 (root), then
        // down the left subtree which is hosted at p0 directly.
        let (m, hops) = idx.resolve(item, 7, &r1(0, 10));
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].1, 0);
        assert_eq!(hops, vec![(7, 6), (6, 4), (4, 0)]);
    }

    #[test]
    fn scattered_region_resolves_to_all_owners() {
        let (idx, item) = populated(8, 10);
        let query = r1(5, 75); // spans all 8 blocks partially
        let (m, _) = idx.resolve(item, 0, &query);
        let mut owners: Vec<usize> = m.iter().map(|(_, p)| *p).collect();
        owners.sort_unstable();
        assert_eq!(owners, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        // Pieces must tile the query exactly.
        let mut total = BoxRegion::<1>::empty();
        for (piece, _) in &m {
            let piece = piece
                .as_any()
                .downcast_ref::<BoxRegion<1>>()
                .unwrap()
                .clone();
            assert!(total.is_disjoint(&piece));
            total = total.union(&piece);
        }
        assert_eq!(total, query);
    }

    #[test]
    fn unknown_data_resolves_to_nothing() {
        let (idx, item) = populated(4, 10);
        let (m, _) = idx.resolve(item, 1, &r1(100, 120));
        assert!(m.is_empty());
    }

    #[test]
    fn unregistered_item_resolves_to_nothing() {
        // Regression: resolving an item that was never registered (or was
        // destroyed) must return the empty resolution (⋃ m ⊆ r), not panic.
        let (mut idx, item) = populated(4, 10);
        let ghost = ItemId(99);
        let (m, hops) = idx.resolve(ghost, 1, &r1(0, 10));
        assert!(m.is_empty());
        assert!(hops.is_empty());
        assert_eq!(idx.sole_owner(ghost, 1, &r1(0, 10)), None);
        // The destroy path goes through the same code.
        idx.remove_item(item);
        let (m, _) = idx.resolve(item, 0, &r1(0, 10));
        assert!(m.is_empty());
    }

    #[test]
    fn central_unregistered_item_resolves_to_nothing() {
        let idx = CentralIndex::new(4);
        let (m, hops) = idx.resolve(ItemId(7), 3, &r1(0, 10));
        assert!(m.is_empty());
        // The directory round-trip is still billed: only process 0 can say
        // the item is unknown.
        assert_eq!(hops, vec![(3, 0), (0, 3)]);
    }

    #[test]
    fn update_propagates_to_root() {
        let item = ItemId(0);
        let mut idx = DistIndex::new(8);
        idx.register_item(item, &BoxRegion::<1>::empty());
        let hops = idx.update_leaf(item, 5, Box::new(r1(0, 10)));
        // Path: p5 → l2@p4 → l3@p4 → root@p0; inter-process hops are
        // 5→4 and 4→0 (the l2→l3 step stays on p4).
        assert_eq!(hops, vec![(5, 4), (4, 0)]);
        // Lookup from p0 now finds it.
        let (m, _) = idx.resolve(item, 0, &r1(3, 7));
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].1, 5);
    }

    #[test]
    fn sole_owner_detection() {
        let (idx, item) = populated(8, 10);
        assert_eq!(idx.sole_owner(item, 2, &r1(30, 40)), Some(3));
        assert_eq!(idx.sole_owner(item, 2, &r1(30, 45)), None); // spans 2
        assert_eq!(idx.sole_owner(item, 2, &r1(100, 110)), None); // nowhere
        assert_eq!(idx.sole_owner(item, 2, &BoxRegion::<1>::empty()), None);
    }

    #[test]
    fn migration_updates_are_visible() {
        let (mut idx, item) = populated(4, 10);
        // Move p3's block to p0.
        idx.update_leaf(item, 3, Box::new(BoxRegion::<1>::empty()));
        idx.update_leaf(item, 0, Box::new(r1(0, 10).union(&r1(30, 40))));
        assert_eq!(idx.sole_owner(item, 1, &r1(30, 40)), Some(0));
    }

    #[test]
    fn non_power_of_two_process_counts() {
        let (idx, item) = populated(6, 10);
        for p in 0..6 {
            let lo = p as i64 * 10;
            assert_eq!(
                idx.sole_owner(item, (p + 1) % 6, &r1(lo, lo + 10)),
                Some(p),
                "process {p}"
            );
        }
    }

    #[test]
    fn single_process_index() {
        let (idx, item) = populated(1, 10);
        let (m, hops) = idx.resolve(item, 0, &r1(0, 10));
        assert_eq!(m.len(), 1);
        assert!(hops.is_empty());
    }

    #[test]
    fn central_index_round_trips() {
        let item = ItemId(0);
        let mut idx = CentralIndex::new(4);
        idx.register_item(item, &BoxRegion::<1>::empty());
        assert_eq!(idx.update_leaf(item, 2, Box::new(r1(0, 10))), vec![(2, 0)]);
        let (m, hops) = idx.resolve(item, 3, &r1(2, 8));
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].1, 2);
        assert_eq!(hops, vec![(3, 0), (0, 3)]);
    }

    #[test]
    fn hop_counts_stay_logarithmic() {
        // Worst-case lookup in a 64-process index crosses O(log P) edges.
        let (idx, item) = populated(64, 10);
        let (_, hops) = idx.resolve(item, 63, &r1(0, 10));
        assert!(
            hops.len() <= 2 * 6,
            "expected O(log 64) hops, got {}",
            hops.len()
        );
    }
}

//! Automatic inter-node load balancing by data migration.
//!
//! The paper's scheduler achieves load balance indirectly: "by monitoring
//! the workload distribution among various processes, the scheduling
//! policy may decide to migrate data between nodes, which will implicitly
//! lead to the redirection of future tasks to the newly designated
//! localities" (Section 3.2). This module implements that decision for
//! grid items distributed in axis-0 bands: given observed per-locality
//! busy times and current ownership, it computes a migration plan that
//! equalizes *time* (not cells) — a slow node keeps proportionally fewer
//! cells.
//!
//! Apply a plan between phases with [`crate::RtCtx::migrate_region`]; see
//! `examples/loadbalance.rs`.

use allscale_region::{BoxRegion, GridBox, Region};

/// One suggested ownership migration.
#[derive(Debug, Clone)]
pub struct MoveSuggestion<const D: usize> {
    /// Donating locality.
    pub from: usize,
    /// Receiving locality.
    pub to: usize,
    /// The region to migrate.
    pub region: BoxRegion<D>,
}

/// Split approximately `want` cells off `region`, slicing along axis 0.
/// Returns `(taken, rest)`; `taken` may be smaller than `want` when the
/// region is too small, and the split granularity is whole axis-0 rows.
pub fn split_off_cells<const D: usize>(
    region: &BoxRegion<D>,
    want: u64,
) -> (BoxRegion<D>, BoxRegion<D>) {
    let mut taken = BoxRegion::empty();
    let mut rest = BoxRegion::empty();
    let mut remaining = want;
    for &bx in region.boxes() {
        if remaining == 0 {
            rest = rest.union(&BoxRegion::from_box(bx));
            continue;
        }
        let cells = bx.cardinality();
        if cells <= remaining {
            taken = taken.union(&BoxRegion::from_box(bx));
            remaining -= cells;
            continue;
        }
        // Partial: slice along axis 0 at a whole-row boundary.
        let rows = (bx.hi()[0] - bx.lo()[0]) as u64;
        let row_cells = cells / rows;
        let take_rows = (remaining / row_cells.max(1)).min(rows);
        if take_rows > 0 {
            let mut hi = bx.hi();
            hi[0] = bx.lo()[0] + take_rows as i64;
            let cut = GridBox::new(bx.lo(), hi).expect("non-empty slice");
            taken = taken.union(&BoxRegion::from_box(cut));
            let mut lo = bx.lo();
            lo[0] += take_rows as i64;
            if let Some(keep) = GridBox::new(lo, bx.hi()) {
                rest = rest.union(&BoxRegion::from_box(keep));
            }
            remaining = remaining.saturating_sub(take_rows * row_cells);
        } else {
            rest = rest.union(&BoxRegion::from_box(bx));
        }
    }
    (taken, rest)
}

/// Compute a migration plan for one grid item.
///
/// - `busy_ns[i]`: observed busy time of locality `i` over the last
///   window;
/// - `owned[i]`: the region locality `i` currently owns;
/// - `trigger`: only rebalance when `max(busy) / mean(busy) > trigger`
///   (e.g. 1.25).
///
/// The plan equalizes predicted time: each locality's per-cell cost is
/// estimated as `busy / cells`, and cells are redistributed in proportion
/// to speed. Returns an empty plan when balanced or when observations are
/// insufficient.
pub fn plan_rebalance<const D: usize>(
    busy_ns: &[u64],
    owned: &[BoxRegion<D>],
    trigger: f64,
) -> Vec<MoveSuggestion<D>> {
    let n = busy_ns.len();
    assert_eq!(n, owned.len());
    if n < 2 {
        return Vec::new();
    }
    let cells: Vec<u64> = owned.iter().map(|r| r.cardinality()).collect();
    let total_cells: u64 = cells.iter().sum();
    if total_cells == 0 || busy_ns.contains(&0) {
        return Vec::new();
    }
    let mean = busy_ns.iter().sum::<u64>() as f64 / n as f64;
    let max = *busy_ns.iter().max().unwrap() as f64;
    if max / mean <= trigger {
        return Vec::new();
    }

    // Speed of locality i ∝ cells_i / busy_i; desired share ∝ speed.
    let speeds: Vec<f64> = (0..n)
        .map(|i| {
            if cells[i] == 0 {
                // No data yet: assume nominal speed (mean cells per mean
                // busy) so empty nodes can receive work.
                1.0
            } else {
                cells[i] as f64 / busy_ns[i] as f64
            }
        })
        .collect();
    let speed_sum: f64 = speeds.iter().sum();
    let desired: Vec<u64> = speeds
        .iter()
        .map(|s| ((s / speed_sum) * total_cells as f64).round() as u64)
        .collect();

    // Greedy donor→receiver matching.
    let mut surplus: Vec<(usize, u64)> = (0..n)
        .filter(|&i| cells[i] > desired[i])
        .map(|i| (i, cells[i] - desired[i]))
        .collect();
    let mut deficit: Vec<(usize, u64)> = (0..n)
        .filter(|&i| desired[i] > cells[i])
        .map(|i| (i, desired[i] - cells[i]))
        .collect();
    // Largest first for fewer, bigger transfers.
    surplus.sort_by_key(|&(_, s)| std::cmp::Reverse(s));
    deficit.sort_by_key(|&(_, d)| std::cmp::Reverse(d));

    let mut remaining_region: Vec<BoxRegion<D>> = owned.to_vec();
    let mut plan = Vec::new();
    let mut di = 0;
    for (donor, mut s) in surplus {
        while s > 0 && di < deficit.len() {
            let (receiver, d) = deficit[di];
            let amount = s.min(d);
            // Skip negligible slivers (< 2% of the total): migration has
            // fixed costs.
            if amount * 50 >= total_cells {
                let (taken, rest) = split_off_cells(&remaining_region[donor], amount);
                if !taken.is_empty() {
                    remaining_region[donor] = rest;
                    plan.push(MoveSuggestion {
                        from: donor,
                        to: receiver,
                        region: taken,
                    });
                }
            }
            s -= amount;
            if amount == d {
                di += 1;
            } else {
                deficit[di].1 = d - amount;
            }
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn band(lo: i64, hi: i64) -> BoxRegion<1> {
        BoxRegion::cuboid([lo], [hi])
    }

    #[test]
    fn balanced_load_produces_no_plan() {
        let busy = [100, 100, 100, 100];
        let owned = [band(0, 25), band(25, 50), band(50, 75), band(75, 100)];
        assert!(plan_rebalance(&busy, &owned, 1.25).is_empty());
    }

    #[test]
    fn slow_node_donates_cells() {
        // Locality 1 took 4x the time for the same cells: quarter speed.
        let busy = [100, 400, 100, 100];
        let owned = [band(0, 25), band(25, 50), band(50, 75), band(75, 100)];
        let plan = plan_rebalance(&busy, &owned, 1.25);
        assert!(!plan.is_empty());
        let donated: u64 = plan
            .iter()
            .filter(|m| m.from == 1)
            .map(|m| m.region.cardinality())
            .sum();
        // Quarter speed → should keep roughly 100/(4/1 + 3) ≈ 7-8 cells of
        // its 25, donating ~17.
        assert!(
            (12..=20).contains(&donated),
            "donated {donated} cells: {plan:?}"
        );
        // Nothing moves TO the slow node.
        assert!(plan.iter().all(|m| m.to != 1));
        // Donated regions come out of the donor's ownership.
        for m in &plan {
            assert!(m.region.is_subset_of(&owned[m.from]));
        }
    }

    #[test]
    fn fast_node_receives() {
        // Locality 3 is twice as fast.
        let busy = [200, 200, 200, 100];
        let owned = [band(0, 25), band(25, 50), band(50, 75), band(75, 100)];
        let plan = plan_rebalance(&busy, &owned, 1.1);
        let received: u64 = plan
            .iter()
            .filter(|m| m.to == 3)
            .map(|m| m.region.cardinality())
            .sum();
        assert!(received > 0, "{plan:?}");
    }

    #[test]
    fn moves_are_pairwise_disjoint() {
        let busy = [100, 900, 100, 100];
        let owned = [band(0, 25), band(25, 50), band(50, 75), band(75, 100)];
        let plan = plan_rebalance(&busy, &owned, 1.25);
        for (i, a) in plan.iter().enumerate() {
            for b in plan.iter().skip(i + 1) {
                assert!(a.region.is_disjoint(&b.region), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn split_off_takes_whole_rows() {
        let r = BoxRegion::<2>::cuboid([0, 0], [10, 8]); // 10 rows × 8 cols
        let (taken, rest) = split_off_cells(&r, 20);
        assert_eq!(taken.cardinality(), 16, "2 whole rows of 8");
        assert_eq!(rest.cardinality(), 64);
        assert!(taken.is_disjoint(&rest));
        assert_eq!(taken.union(&rest), r);
    }

    #[test]
    fn split_off_more_than_available_takes_everything() {
        let r = band(0, 10);
        let (taken, rest) = split_off_cells(&r, 100);
        assert_eq!(taken, r);
        assert!(rest.is_empty());
    }

    #[test]
    fn split_off_zero_takes_nothing() {
        let r = band(0, 4).union(&band(10, 20));
        let (taken, rest) = split_off_cells(&r, 0);
        assert!(taken.is_empty());
        assert_eq!(rest, r);
        // The degenerate empty region is also safe.
        let (taken, rest) = split_off_cells(&BoxRegion::<1>::empty(), 0);
        assert!(taken.is_empty() && rest.is_empty());
    }

    #[test]
    fn split_off_exact_total_and_max_take_everything() {
        let r = band(0, 7).union(&band(10, 13));
        for want in [10, 11, u64::MAX] {
            let (taken, rest) = split_off_cells(&r, want);
            assert_eq!(taken, r, "want={want}");
            assert!(rest.is_empty(), "want={want}");
        }
    }

    #[test]
    fn split_off_boundary_in_later_box() {
        // The first box is consumed whole; the cut lands inside the
        // second box, at a row boundary.
        let r = band(0, 4).union(&band(10, 20));
        let (taken, rest) = split_off_cells(&r, 8);
        assert_eq!(taken.cardinality(), 8);
        assert_eq!(rest.cardinality(), 6);
        assert!(taken.is_disjoint(&rest));
        assert_eq!(taken.union(&rest), r);
        assert!(taken.contains(&[13].into()));
        assert!(!taken.contains(&[14].into()));
    }

    #[test]
    fn split_off_subrow_remainder_flows_to_later_box() {
        // Whole-row slicing of the first box (rows of 4 cells) leaves a
        // remainder of 2, which the second box (rows of 1 cell) can
        // deliver exactly.
        let a = BoxRegion::<2>::cuboid([0, 0], [4, 4]);
        let b = BoxRegion::<2>::cuboid([10, 0], [14, 1]);
        let r = a.union(&b);
        let (taken, rest) = split_off_cells(&r, 6);
        assert_eq!(taken.cardinality(), 6, "taken {taken:?}");
        assert!(taken.is_disjoint(&rest));
        assert_eq!(taken.union(&rest), r);
    }

    #[test]
    fn split_off_want_below_row_granularity_skips_to_fitting_box() {
        // No whole row of the first box fits in `want`, but a later box
        // fits entirely; the splitter must not give up at the first box.
        let big = BoxRegion::<2>::cuboid([0, 0], [4, 4]); // rows of 4
        let small = BoxRegion::<2>::cuboid([10, 0], [11, 2]); // 2 cells
        let r = big.union(&small);
        let (taken, rest) = split_off_cells(&r, 2);
        assert_eq!(taken, small);
        assert_eq!(rest, big);
    }

    #[test]
    fn empty_observations_are_safe() {
        let plan = plan_rebalance::<1>(&[], &[], 1.25);
        assert!(plan.is_empty());
        let plan = plan_rebalance(&[5], &[band(0, 10)], 1.25);
        assert!(plan.is_empty());
        // Zero busy times: no information, no plan.
        let plan = plan_rebalance(&[0, 10], &[band(0, 5), band(5, 10)], 1.25);
        assert!(plan.is_empty());
    }
}

//! A per-locality location cache in front of the hierarchical data index.
//!
//! Region location resolution ([`DistIndex::resolve`], paper Algorithm 1)
//! is the hot path of data-aware scheduling: the scheduler consults it for
//! every requirement of every task it places (Algorithm 2 lines 4/7) and
//! the transfer planner consults it again for every migration and
//! replication it stages. Each consultation is a full tree traversal with
//! region-algebra allocations plus O(log P) billed control messages.
//! HPX-family runtimes keep exactly this lookup off the critical path with
//! locality caches in their AGAS / data-item-manager layers; this module
//! is that cache for our runtime.
//!
//! ## Design
//!
//! The cache memoizes full resolutions keyed by `(item, start locality,
//! region fingerprint)`. Keying by the *start* locality makes one shared
//! instance behave exactly like one private cache per locality (entries
//! never leak between starting points, matching what a real distributed
//! deployment could maintain locally), while keeping the simulation state
//! in one place. Candidate hits are confirmed with a real region equality
//! check, so fingerprint collisions degrade to misses rather than wrong
//! answers.
//!
//! ## Epoch invalidation
//!
//! Every mutation of an item's distribution — first-touch allocation,
//! migration, checkpoint restore: anything that calls
//! `DistIndex::update_leaf` — must bump the item's *epoch* via
//! [`LocationCache::bump`]. Entries record the epoch they were filled
//! under and are dropped lazily when looked up under a newer epoch. This
//! preserves the paper's *satisfied requirements* and *exclusive writes*
//! properties: a cached resolution can never report a pre-migration owner,
//! because the migration bumped the epoch before any subsequent lookup.
//!
//! Hits are free of control messages (the whole point); misses fall
//! through to the index and pay the traversal's hops. Hit/miss/
//! invalidation counts and the hops saved by hits are tallied in
//! [`CacheStats`] and surfaced through the runtime [`Monitor`].
//!
//! [`DistIndex::resolve`]: crate::index::DistIndex::resolve
//! [`Monitor`]: crate::monitor::Monitor

use std::collections::HashMap;

use crate::dynamic::DynRegion;
use crate::index::{sole_owner_from, DistIndex, Hop, Resolution};
use crate::task::ItemId;

/// Counters describing the cache's effectiveness over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache (no index traversal, no hops).
    pub hits: u64,
    /// Lookups that fell through to the index.
    pub misses: u64,
    /// Entries dropped because their item's epoch had moved on.
    pub invalidations: u64,
    /// Control-message hops avoided by hits (each hit saves the hop count
    /// the original miss paid).
    pub saved_hops: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    /// The item epoch this resolution was computed under.
    epoch: u64,
    /// The exact region that was resolved (collision guard).
    region: Box<dyn DynRegion>,
    /// The memoized resolution.
    pieces: Resolution,
    /// Hops the uncached resolution cost (saved-hop accounting).
    hops: usize,
}

/// Memoizes [`DistIndex`] resolutions with epoch-based invalidation. See
/// the module docs for the protocol.
pub struct LocationCache {
    /// Per-item generation counter; bumped on every distribution change.
    epochs: HashMap<ItemId, u64>,
    entries: HashMap<(ItemId, usize, u64), Entry>,
    capacity: usize,
    stats: CacheStats,
}

impl LocationCache {
    /// Default entry capacity — plenty for the per-phase working sets the
    /// scheduler produces, small enough to be irrelevant in memory terms.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// A cache with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// A cache bounded to `capacity` entries. When an insert would exceed
    /// the bound, stale-epoch entries are purged first; if that does not
    /// make room the cache is cleared wholesale — it is a performance
    /// device, never a correctness dependency.
    pub fn with_capacity(capacity: usize) -> Self {
        LocationCache {
            epochs: HashMap::new(),
            entries: HashMap::new(),
            capacity: capacity.max(1),
            stats: CacheStats::default(),
        }
    }

    /// The current epoch of `item` (0 until first bumped).
    pub fn epoch(&self, item: ItemId) -> u64 {
        self.epochs.get(&item).copied().unwrap_or(0)
    }

    /// Record a distribution change of `item`: all cached resolutions of
    /// it become stale and will be dropped lazily on their next lookup.
    /// Must be called alongside every `DistIndex::update_leaf`.
    pub fn bump(&mut self, item: ItemId) {
        *self.epochs.entry(item).or_insert(0) += 1;
    }

    /// Forget everything about `item` (its epoch and all entries) — the
    /// `destroy` path. A later item with a recycled id starts fresh.
    pub fn forget(&mut self, item: ItemId) {
        self.epochs.remove(&item);
        self.entries.retain(|&(it, _, _), _| it != item);
    }

    /// Number of live entries (stale ones included until evicted).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Snapshot of the effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drop all entries (epochs and stats survive).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Resolve `region` of `item` from locality `start` through the cache:
    /// a hit returns the memoized resolution with **no hops** (no control
    /// messages are needed); a miss runs [`DistIndex::resolve`], memoizes
    /// the answer, and returns its hops for billing.
    pub fn resolve(
        &mut self,
        index: &DistIndex,
        item: ItemId,
        start: usize,
        region: &dyn DynRegion,
    ) -> (Resolution, Vec<Hop>) {
        let key = (item, start, region.fingerprint_dyn());
        let epoch = self.epoch(item);
        let stale = matches!(self.entries.get(&key), Some(e) if e.epoch != epoch);
        if stale {
            self.entries.remove(&key);
            self.stats.invalidations += 1;
        }
        if let Some(e) = self.entries.get(&key) {
            if e.region.eq_dyn(region) {
                let pieces = e.pieces.clone();
                let saved = e.hops as u64;
                self.stats.hits += 1;
                self.stats.saved_hops += saved;
                return (pieces, Vec::new());
            }
            // Fingerprint collision with a different region: treat as a
            // miss; the fresh entry below overwrites the colliding one.
        }
        self.stats.misses += 1;
        let (pieces, hops) = index.resolve(item, start, region);
        self.make_room();
        self.entries.insert(
            key,
            Entry {
                epoch,
                region: region.clone_box(),
                pieces: pieces.clone(),
                hops: hops.len(),
            },
        );
        (pieces, hops)
    }

    /// Cached counterpart of [`DistIndex::sole_owner`]: the single process
    /// owning *all* of `region`, if any, plus the hops the answer cost
    /// (empty on a hit).
    pub fn sole_owner(
        &mut self,
        index: &DistIndex,
        item: ItemId,
        start: usize,
        region: &dyn DynRegion,
    ) -> (Option<usize>, Vec<Hop>) {
        if region.is_empty_dyn() {
            return (None, Vec::new());
        }
        let (pieces, hops) = self.resolve(index, item, start, region);
        (sole_owner_from(region, &pieces), hops)
    }

    /// Ensure one more entry fits: purge stale-epoch entries first, then
    /// fall back to clearing everything.
    fn make_room(&mut self) {
        if self.entries.len() < self.capacity {
            return;
        }
        let epochs = &self.epochs;
        self.entries
            .retain(|&(it, _, _), e| e.epoch == epochs.get(&it).copied().unwrap_or(0));
        if self.entries.len() >= self.capacity {
            self.entries.clear();
        }
    }
}

impl Default for LocationCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use allscale_region::{BoxRegion, Region};

    fn r1(lo: i64, hi: i64) -> BoxRegion<1> {
        BoxRegion::cuboid([lo], [hi])
    }

    /// [0, 8·k) row-blocks over `procs` processes, one block each.
    fn populated(procs: usize, k: i64) -> (DistIndex, ItemId) {
        let item = ItemId(0);
        let mut idx = DistIndex::new(procs);
        idx.register_item(item, &BoxRegion::<1>::empty());
        for p in 0..procs {
            let lo = p as i64 * k;
            idx.update_leaf(item, p, Box::new(r1(lo, lo + k)));
        }
        (idx, item)
    }

    #[test]
    fn repeat_resolution_hits_and_saves_hops() {
        let (idx, item) = populated(8, 10);
        let mut cache = LocationCache::new();
        let q = r1(0, 10);
        // p7 asks for p0's block: the miss pays the escalation hops …
        let (m1, h1) = cache.resolve(&idx, item, 7, &q);
        assert_eq!(m1.len(), 1);
        assert_eq!(m1[0].1, 0);
        assert_eq!(h1.len(), 3);
        // … the hit pays none and returns the identical pieces.
        let (m2, h2) = cache.resolve(&idx, item, 7, &q);
        assert!(h2.is_empty());
        assert_eq!(m2.len(), 1);
        assert_eq!(m2[0].1, 0);
        assert!(m2[0].0.eq_dyn(m1[0].0.as_ref()));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.saved_hops), (1, 1, 3));
    }

    #[test]
    fn entries_are_per_start_locality() {
        let (idx, item) = populated(8, 10);
        let mut cache = LocationCache::new();
        let q = r1(30, 40);
        cache.resolve(&idx, item, 2, &q);
        // Same query from another locality is a distinct entry (its hop
        // path differs), so this is a miss, not a cross-locality hit.
        cache.resolve(&idx, item, 7, &q);
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn bump_invalidates_lazily() {
        let (mut idx, item) = populated(4, 10);
        let mut cache = LocationCache::new();
        let q = r1(30, 40);
        let (m, _) = cache.resolve(&idx, item, 1, &q);
        assert_eq!(m[0].1, 3);
        // Migrate p3's block to p0; epoch bump makes the entry stale.
        idx.update_leaf(item, 3, Box::new(BoxRegion::<1>::empty()));
        cache.bump(item);
        idx.update_leaf(item, 0, Box::new(r1(0, 10).union(&r1(30, 40))));
        cache.bump(item);
        let (m2, _) = cache.resolve(&idx, item, 1, &q);
        assert_eq!(m2.len(), 1);
        assert_eq!(m2[0].1, 0, "stale owner must not be served");
        let s = cache.stats();
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.hits, 0);
    }

    #[test]
    fn sole_owner_through_cache_matches_index() {
        let (idx, item) = populated(8, 10);
        let mut cache = LocationCache::new();
        let (o1, h1) = cache.sole_owner(&idx, item, 2, &r1(30, 40));
        assert_eq!(o1, Some(3));
        assert!(!h1.is_empty());
        let (o2, h2) = cache.sole_owner(&idx, item, 2, &r1(30, 40));
        assert_eq!(o2, Some(3));
        assert!(h2.is_empty(), "second answer comes from the cache");
        assert_eq!(cache.sole_owner(&idx, item, 2, &r1(30, 45)).0, None);
        assert_eq!(
            cache.sole_owner(&idx, item, 2, &BoxRegion::<1>::empty()).0,
            None
        );
    }

    #[test]
    fn forget_drops_epoch_and_entries() {
        let (idx, item) = populated(4, 10);
        let mut cache = LocationCache::new();
        cache.resolve(&idx, item, 0, &r1(0, 10));
        cache.bump(item);
        assert_eq!(cache.epoch(item), 1);
        cache.forget(item);
        assert_eq!(cache.epoch(item), 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn capacity_bound_is_enforced() {
        let (idx, item) = populated(4, 10);
        let mut cache = LocationCache::with_capacity(8);
        for i in 0..50 {
            cache.resolve(&idx, item, (i % 4) as usize, &r1(i, i + 1));
        }
        assert!(cache.len() <= 8, "capacity exceeded: {}", cache.len());
    }

    #[test]
    fn unregistered_item_resolves_to_nothing_through_cache() {
        let idx = DistIndex::new(4);
        let mut cache = LocationCache::new();
        let (m, hops) = cache.resolve(&idx, ItemId(42), 1, &r1(0, 10));
        assert!(m.is_empty());
        assert!(hops.is_empty());
    }
}

//! # allscale-core — the AllScale runtime system
//!
//! The primary contribution of *The AllScale Runtime Application Model*
//! (CLUSTER 2018) as a Rust library: a parallel runtime with system-wide
//! control over the distribution of **user-defined data structures**,
//! executing on the deterministic cluster simulation of `allscale-des` /
//! `allscale-net`.
//!
//! Components (paper Section 3):
//! - [`DataItemManager`]: per-locality fragment storage, lock tables
//!   (`Lr`/`Lw`), replica/export tracking;
//! - [`DistIndex`]: the hierarchical distributed data index (Fig. 5) with
//!   Algorithm 1's region location resolution;
//! - [`LocationCache`]: a per-locality cache in front of the index that
//!   memoizes resolutions with epoch-based invalidation, keeping the hot
//!   lookup path of data-aware scheduling free of repeated traversals;
//! - the scheduler in [`runtime`]: Algorithm 2's data-requirement-aware
//!   task placement with pluggable [`SchedulingPolicy`];
//! - [`WorkItem`] / [`Prec`]: tasks with process/split variants and data
//!   requirement functions — the artifact the AllScale compiler generates;
//! - [`Grid`] and [`pfor`]: the user-facing API of the paper's Fig. 6b;
//! - [`Monitor`] / checkpointing in [`RtCtx`]: the monitoring and
//!   resilience services the model enables;
//! - [`resilience`]: the active resilience manager — checkpoint cadence,
//!   heartbeat failure detection, and automatic recovery from fail-stop
//!   locality deaths injected via [`FaultPlan`];
//! - [`integrity`]: the data-integrity service — checksum framing of
//!   every runtime payload with verify-on-receive and bounded
//!   re-requests, checksummed checkpoint shards, and a background
//!   replica scrubber with repair and quarantine;
//! - [`slo`]: the request-serving subsystem — open-loop arrival processes
//!   driving sharded request task trees, with an SLO controller that
//!   replicates hot shards, retires cold replica sets and optionally
//!   sheds read load at admission;
//! - structured tracing (`allscale-trace`): setting [`RtConfig::trace`]
//!   records task, data, index, network and resilience events;
//!   [`RunReport::trace`](monitor::RunReport::trace) exports Chrome
//!   trace-event JSON and feeds [`critical_path`] analysis.
//!
//! ## Example: a complete two-phase program
//!
//! ```
//! use allscale_core::{pfor, Grid, PforSpec, Requirement, RtConfig, RtCtx,
//!                     Runtime, TaskValue, WorkItem};
//! use allscale_region::{BoxRegion, GridFragment};
//!
//! let runtime = Runtime::new(RtConfig::test(2, 2)); // 2 nodes × 2 cores
//! let report = runtime.run(
//!     |phase: usize, ctx: &mut RtCtx<'_>, _prev: TaskValue|
//!             -> Option<Box<dyn WorkItem>> {
//!         if phase > 0 {
//!             // Verify distribution between phases.
//!             let total: usize = (0..ctx.nodes())
//!                 .map(|l| ctx
//!                     .fragment_at::<GridFragment<u64, 1>>(l, allscale_core::ItemId(0))
//!                     .len())
//!                 .sum();
//!             assert_eq!(total, 64);
//!             return None;
//!         }
//!         let g = Grid::<u64, 1>::create(ctx, "v", [64]);
//!         Some(pfor(
//!             PforSpec { name: "fill", range: g.full_box(), grain: 8,
//!                        ns_per_point: 5.0, axis0_pieces: 8 },
//!             move |tile| vec![Requirement::write(g.id, BoxRegion::from_box(*tile))],
//!             move |tctx, p| g.set(tctx, p.0, p[0] as u64),
//!         ))
//!     },
//! );
//! assert!(report.monitor.total_tasks() >= 8);
//! ```

#![warn(missing_docs)]

pub mod cost;
pub mod dim;
pub mod dynamic;
pub mod facade;
pub mod index;
pub mod integrity;
pub mod loc_cache;
pub mod monitor;
pub mod policy;
pub mod rebalance;
pub mod resilience;
pub mod runtime;
pub mod scheduler;
pub mod slo;
pub mod task;

pub use cost::CostModel;
pub use dim::{DataItemManager, LockConflict};
pub use dynamic::{DynFragment, DynRegion, ItemDescriptor};
pub use facade::{
    bisect, bisect_axis, pfor, position_hint, DistMap, Grid, GridItem, MapItem, PforSpec,
    Scalar, ScalarItem, Tree, TreeItem,
};
pub use index::{CentralIndex, DistIndex};
pub use integrity::{IntegrityConfig, IntegrityStats};
pub use loc_cache::{CacheStats, LocationCache};
pub use monitor::{LocalityStats, Monitor, RunReport, SchedulerStats, ServeStats};
pub use policy::{
    DataAwarePolicy, PolicyEnv, RandomPolicy, RoundRobinPolicy, SchedulingPolicy, Variant,
};
pub use rebalance::{plan_rebalance, split_off_cells, MoveSuggestion};
pub use resilience::{CheckpointConfig, CkptMode, ResilienceConfig, ResilienceStats};
pub use runtime::{AppDriver, Checkpoint, Locality, RtConfig, RtCtx, Runtime};
pub use scheduler::{
    DataAwareScheduler, Placement, Scheduler, StealConfig, VictimPolicy, WorkStealingScheduler,
};
pub use slo::{Request, RequestFactory, ServeSpec, SloConfig};

// Fault-injection types, re-exported so applications configuring
// `RtConfig::faults` need not depend on `allscale-net` directly.
pub use allscale_net::{
    BatchParams, FaultPlan, RetryPolicy, StorageParams, StorageStats, StorageTier, TrafficStats,
    TransferFault,
};

// Tracing types, re-exported so applications enabling `RtConfig::trace`
// and consuming `RunReport::trace` need not depend on `allscale-trace`
// directly.
pub use allscale_trace::{
    critical_path, CriticalPathReport, EventKind, FlushCause, PathCategory, PathSegment,
    SpawnVariant, Trace, TraceConfig, TraceEvent, TransferPurpose, RUNTIME_TID,
};
pub use task::{
    AccessMode, Done, ItemId, Prec, PrecOps, Requirement, SplitOutcome, TaskCtx, TaskId,
    TaskValue, WorkItem,
};

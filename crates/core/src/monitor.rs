//! Runtime monitoring (paper Section 3.2's "extended monitoring
//! infrastructure", scoped to what the experiments need): per-locality
//! execution counters and cluster-wide aggregates, reported at the end of
//! every run.

use allscale_des::{LogHistogram, SimTime};
use allscale_net::{StorageStats, TrafficStats};
use allscale_trace::{critical_path, CriticalPathReport, Trace};

use crate::integrity::IntegrityStats;
use crate::loc_cache::CacheStats;
use crate::resilience::ResilienceStats;

/// Counters of one locality.
#[derive(Debug, Clone, Default)]
pub struct LocalityStats {
    /// Process-variant executions.
    pub tasks_executed: u64,
    /// Split-variant executions.
    pub tasks_split: u64,
    /// Virtual core-nanoseconds of task compute (incl. overhead).
    pub busy_ns: u64,
    /// Messages sent from this locality.
    pub msgs_sent: u64,
    /// Payload bytes sent from this locality.
    pub bytes_sent: u64,
    /// Read replicas imported.
    pub replicas_in: u64,
    /// Region migrations received (ownership transfers in).
    pub migrations_in: u64,
    /// First-touch allocations performed.
    pub first_touch: u64,
    /// Times a task had to be parked on a lock conflict.
    pub lock_conflicts: u64,
}

/// Counters of the scheduler subsystem. All zeros under the direct
/// data-aware family; the work-stealing family counts queue and
/// steal-protocol activity here (recorded unconditionally, so traced
/// and untraced runs agree).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Enqueue operations into per-locality task queues (admissions
    /// plus stolen-task arrivals).
    pub tasks_queued: u64,
    /// Steal requests sent by idle localities.
    pub steal_requests: u64,
    /// Requests answered with a task (plus direct waiter handoffs).
    pub steal_grants: u64,
    /// Requests answered empty-handed.
    pub steal_denies: u64,
    /// Direct surplus handoffs to parked waiters (subset of grants).
    pub handoffs: u64,
}

/// Counters of the request-serving subsystem (open-loop load generator,
/// sharded request execution, SLO controller). All zeros when the run
/// served no requests. Recorded unconditionally, so traced and untraced
/// runs agree.
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Requests injected by the open-loop arrival process.
    pub offered: u64,
    /// Requests admitted (a root task was spawned).
    pub admitted: u64,
    /// Requests whose root task tree completed.
    pub completed: u64,
    /// Requests shed at admission by the overload controller.
    pub shed: u64,
    /// Read requests offered.
    pub reads: u64,
    /// Write requests offered.
    pub writes: u64,
    /// Shard-periods in which the controller observed p99 above the SLO.
    pub slo_violations: u64,
    /// Hot shards replicated to all localities by the controller.
    pub replications: u64,
    /// Cold shard replica sets retired by the controller.
    pub retirements: u64,
    /// Writes that invalidated replicated regions before executing.
    pub invalidations: u64,
    /// Virtual nanoseconds the serving phase lasted (arrival of the
    /// first request to completion of the last).
    pub serve_ns: u64,
    /// End-to-end request latency (arrival to tree completion, ns).
    pub latency: LogHistogram,
    /// Per-shard end-to-end request latency (ns).
    pub per_shard: Vec<LogHistogram>,
}

impl ServeStats {
    /// Offered load in requests per virtual second (0 when nothing ran).
    pub fn offered_rps(&self) -> f64 {
        if self.serve_ns == 0 {
            return 0.0;
        }
        self.offered as f64 / (self.serve_ns as f64 * 1e-9)
    }

    /// Achieved goodput in completed requests per virtual second.
    pub fn completed_rps(&self) -> f64 {
        if self.serve_ns == 0 {
            return 0.0;
        }
        self.completed as f64 / (self.serve_ns as f64 * 1e-9)
    }
}

/// Cluster-wide monitoring state.
#[derive(Debug, Clone, Default)]
pub struct Monitor {
    /// Per-locality counters.
    pub per_locality: Vec<LocalityStats>,
    /// Scheduler-subsystem counters (queueing and work stealing).
    pub scheduler: SchedulerStats,
    /// Hops crossed by index lookups (Algorithm 1 traffic).
    pub index_lookup_hops: u64,
    /// Hops crossed by index updates.
    pub index_update_hops: u64,
    /// Index lookups performed.
    pub index_lookups: u64,
    /// Location-cache effectiveness (hits/misses/invalidations and the
    /// control-message hops the hits avoided). All zeros when the run used
    /// the central-directory index, which bypasses the cache.
    pub cache: CacheStats,
    /// Resilience-manager counters (checkpoints, detections, recoveries,
    /// re-executed tasks, network retries). All zeros when the run had no
    /// fault injection and no resilience manager.
    pub resilience: ResilienceStats,
    /// Data-integrity counters (wire corruptions and their detection,
    /// checkpoint shard verification, replica scrubbing). All zeros when
    /// the run injected no corruption and had no integrity service.
    pub integrity: IntegrityStats,
    /// Distribution of task compute durations (ns), log2-bucketed for
    /// p50/p90/p99 summaries.
    pub task_durations: LogHistogram,
    /// Distribution of remote transfer latencies (ns), send to arrival,
    /// including retry backoff. Recorded whether or not tracing is on —
    /// a traced and an untraced run report identical monitors.
    pub transfer_latency: LogHistogram,
    /// Request-serving counters and latency distributions. All zeros
    /// when the application never entered a serving phase.
    pub serve: ServeStats,
}

impl Monitor {
    /// A monitor for `nodes` localities.
    pub fn new(nodes: usize) -> Self {
        Monitor {
            per_locality: vec![LocalityStats::default(); nodes],
            ..Default::default()
        }
    }

    /// Total process-variant executions.
    pub fn total_tasks(&self) -> u64 {
        self.per_locality.iter().map(|l| l.tasks_executed).sum()
    }

    /// Total messages sent.
    pub fn total_msgs(&self) -> u64 {
        self.per_locality.iter().map(|l| l.msgs_sent).sum()
    }

    /// Total bytes sent.
    pub fn total_bytes(&self) -> u64 {
        self.per_locality.iter().map(|l| l.bytes_sent).sum()
    }

    /// Coefficient of variation of per-locality busy time — the load
    /// imbalance metric used by the load-balancing example.
    pub fn busy_imbalance(&self) -> f64 {
        let n = self.per_locality.len();
        if n < 2 {
            return 0.0;
        }
        let mean =
            self.per_locality.iter().map(|l| l.busy_ns as f64).sum::<f64>() / n as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let var = self
            .per_locality
            .iter()
            .map(|l| (l.busy_ns as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        var.sqrt() / mean
    }
}

/// Summary of one runtime run, produced by `Runtime::run`.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Virtual time at which the last task completed.
    pub finish_time: SimTime,
    /// Number of application phases executed.
    pub phases: usize,
    /// The monitor with all counters.
    pub monitor: Monitor,
    /// Remote message count on the network.
    pub remote_msgs: u64,
    /// Remote bytes moved on the network.
    pub remote_bytes: u64,
    /// Full network-layer statistics, including the message-batching
    /// counters (`batches`, `batched_msgs`, `batched_bytes`,
    /// `flushes_by_cause`) when transfer coalescing is enabled.
    pub traffic: TrafficStats,
    /// Checkpoint storage-tier traffic (local + remote writes, recovery
    /// reads, fingerprint scans). All zeros when the run never
    /// checkpointed.
    pub storage: StorageStats,
    /// Simulation events executed (diagnostics).
    pub events: u64,
    /// The recorded trace, when `RtConfig::trace` enabled the sink
    /// (`None` on untraced runs). Export with
    /// [`Trace::to_chrome_json`], analyze with [`Self::critical_path`].
    pub trace: Option<Trace>,
}

impl RunReport {
    /// Wall-clock-equivalent seconds of the simulated execution.
    pub fn seconds(&self) -> f64 {
        self.finish_time.as_secs_f64()
    }

    /// Critical-path analysis of the recorded trace (`None` when the run
    /// was untraced).
    pub fn critical_path(&self) -> Option<CriticalPathReport> {
        self.trace.as_ref().map(critical_path)
    }

    /// Render a human-readable multi-line summary (examples, debugging).
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "virtual time {:.3} ms | {} phases | {} tasks ({} splits) | {} remote msgs, {} bytes | {} events",
            self.finish_time.as_secs_f64() * 1e3,
            self.phases,
            self.monitor.total_tasks(),
            self.monitor
                .per_locality
                .iter()
                .map(|l| l.tasks_split)
                .sum::<u64>(),
            self.remote_msgs,
            self.remote_bytes,
            self.events,
        );
        let _ = writeln!(
            out,
            "index: {} lookups ({} hops), {} update hops | busy imbalance {:.2}",
            self.monitor.index_lookups,
            self.monitor.index_lookup_hops,
            self.monitor.index_update_hops,
            self.monitor.busy_imbalance(),
        );
        if self.monitor.task_durations.tally().count() > 0 {
            let _ = writeln!(out, "task durations (ns): {}", self.monitor.task_durations);
        }
        if self.monitor.transfer_latency.tally().count() > 0 {
            let _ = writeln!(out, "transfer latency (ns): {}", self.monitor.transfer_latency);
        }
        let c = &self.monitor.cache;
        let _ = writeln!(
            out,
            "location cache: {} hits / {} misses ({:.0}% hit rate), {} invalidations, {} hops saved",
            c.hits,
            c.misses,
            c.hit_rate() * 100.0,
            c.invalidations,
            c.saved_hops,
        );
        let s = &self.monitor.scheduler;
        if s.tasks_queued > 0 || s.steal_requests > 0 {
            let _ = writeln!(
                out,
                "scheduler: {} tasks queued | steals: {} requests, {} grants, {} denies, {} waiter handoffs",
                s.tasks_queued,
                s.steal_requests,
                s.steal_grants,
                s.steal_denies,
                s.handoffs,
            );
        }
        let t = &self.traffic;
        if t.batches > 0 {
            let _ = writeln!(
                out,
                "batching: {} flushes ({} msgs, {} bytes) | causes: {} window, {} bytes-cap, {} msgs-cap",
                t.batches,
                t.batched_msgs,
                t.batched_bytes,
                t.flushes_by_cause[0],
                t.flushes_by_cause[1],
                t.flushes_by_cause[2],
            );
        }
        let r = &self.monitor.resilience;
        if r.checkpoints > 0 || r.detections > 0 || r.net_dropped > 0 || r.failed_transfers > 0 {
            let _ = writeln!(
                out,
                "resilience: {} checkpoints ({} bytes), {} recoveries ({} restored bytes), {} tasks re-executed, detection latency {} ns, {} heartbeats | net: {} dropped, {} retries, {} failed transfers",
                r.checkpoints,
                r.checkpoint_bytes,
                r.recoveries,
                r.restored_bytes,
                r.tasks_reexecuted,
                r.detection_latency_ns,
                r.heartbeats,
                r.net_dropped,
                r.net_retries,
                r.failed_transfers,
            );
        }
        if r.checkpoints > 0 || r.ckpt_torn > 0 {
            let _ = writeln!(
                out,
                "checkpointing: {} anchors + {} deltas ({} stored / {} logical bytes), {} torn | stall {} ns, fence {} ns, drain {} ns, scan {} ns | {} cow clones, recovery reads {} ns",
                r.ckpt_anchors,
                r.ckpt_deltas,
                r.checkpoint_bytes,
                r.ckpt_logical_bytes,
                r.ckpt_torn,
                r.ckpt_stall_ns,
                r.ckpt_fence_ns,
                r.ckpt_drain_ns,
                r.ckpt_fp_ns,
                r.cow_captures,
                r.recovery_read_ns,
            );
            let st = &self.storage;
            let _ = writeln!(
                out,
                "  storage: local {} B written / {} B read, remote {} B written / {} B read, {} B fingerprinted",
                st.local_bytes_written,
                st.local_bytes_read,
                st.remote_bytes_written,
                st.remote_bytes_read,
                st.fingerprint_bytes,
            );
        }
        if t.undeliverable > 0 {
            let _ = writeln!(
                out,
                "undeliverable: {} messages addressed to (or sent by) dead localities",
                t.undeliverable,
            );
        }
        let g = &self.monitor.integrity;
        if g.wire_corruptions > 0 || g.rot_injected > 0 || g.scrub_passes > 0 {
            let _ = writeln!(
                out,
                "integrity: {} wire corruptions ({} detected, {} undetected, {} re-requests), {} rot events | checkpoints: {} shards rejected, {} fallbacks, {} links verified | scrub: {} passes, {} audits, {} divergent, {} repairs, {} quarantines",
                g.wire_corruptions,
                g.wire_detected,
                g.wire_undetected,
                g.re_requests,
                g.rot_injected,
                g.checkpoint_shards_rejected,
                g.checkpoint_fallbacks,
                g.ckpt_links_verified,
                g.scrub_passes,
                g.replicas_scrubbed,
                g.scrub_divergent,
                g.scrub_repairs,
                g.quarantines,
            );
        }
        let v = &self.monitor.serve;
        if v.offered > 0 {
            let _ = writeln!(
                out,
                "serving: {} offered ({:.0} rps) | {} admitted, {} shed | {} completed ({:.0} rps) | {} reads, {} writes",
                v.offered,
                v.offered_rps(),
                v.admitted,
                v.shed,
                v.completed,
                v.completed_rps(),
                v.reads,
                v.writes,
            );
            let _ = writeln!(
                out,
                "  slo: {} violating shard-periods | {} replications, {} retirements, {} write invalidations",
                v.slo_violations,
                v.replications,
                v.retirements,
                v.invalidations,
            );
            if v.latency.tally().count() > 0 {
                let _ = writeln!(out, "  request latency (ns): {}", v.latency);
            }
            for (s, h) in v.per_shard.iter().enumerate() {
                if h.tally().count() > 0 {
                    let _ = writeln!(out, "    shard {s}: {h}");
                }
            }
        }
        for (i, l) in self.monitor.per_locality.iter().enumerate() {
            let _ = writeln!(
                out,
                "  loc {i:3}: {:6} tasks, {:10} busy ns, {:5} replicas in, {:4} migrations in, {:4} first-touch, {:4} conflicts",
                l.tasks_executed,
                l.busy_ns,
                l.replicas_in,
                l.migrations_in,
                l.first_touch,
                l.lock_conflicts,
            );
        }
        out
    }

    /// Serialize the report as deterministic JSON (machine consumers:
    /// benchmark emitters, conformance fingerprints). The trace is
    /// deliberately excluded so a traced and an untraced run of the same
    /// seed serialize identically; export traces separately via
    /// [`Trace::to_chrome_json`]. Integer-only, fixed key order — two
    /// reports are bit-identical iff their JSON strings are equal.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        fn hist(h: &LogHistogram) -> String {
            let t = h.tally();
            format!(
                "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                t.count(),
                t.sum(),
                t.min().unwrap_or(0),
                t.max().unwrap_or(0),
                h.p50(),
                h.p90(),
                h.p99(),
            )
        }
        let m = &self.monitor;
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"finish_ns\":{},\"phases\":{},\"events\":{},\"remote_msgs\":{},\"remote_bytes\":{}",
            self.finish_time.as_nanos(),
            self.phases,
            self.events,
            self.remote_msgs,
            self.remote_bytes,
        );
        let _ = write!(
            out,
            ",\"tasks\":{},\"splits\":{},\"msgs\":{},\"bytes\":{}",
            m.total_tasks(),
            m.per_locality.iter().map(|l| l.tasks_split).sum::<u64>(),
            m.total_msgs(),
            m.total_bytes(),
        );
        let _ = write!(
            out,
            ",\"index\":{{\"lookups\":{},\"lookup_hops\":{},\"update_hops\":{}}}",
            m.index_lookups, m.index_lookup_hops, m.index_update_hops,
        );
        let _ = write!(out, ",\"localities\":[");
        for (i, l) in m.per_locality.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"tasks\":{},\"splits\":{},\"busy_ns\":{},\"msgs\":{},\"bytes\":{},\"replicas_in\":{},\"migrations_in\":{},\"first_touch\":{},\"lock_conflicts\":{}}}",
                l.tasks_executed,
                l.tasks_split,
                l.busy_ns,
                l.msgs_sent,
                l.bytes_sent,
                l.replicas_in,
                l.migrations_in,
                l.first_touch,
                l.lock_conflicts,
            );
        }
        out.push(']');
        let s = &m.scheduler;
        let _ = write!(
            out,
            ",\"scheduler\":{{\"queued\":{},\"steal_requests\":{},\"steal_grants\":{},\"steal_denies\":{},\"handoffs\":{}}}",
            s.tasks_queued, s.steal_requests, s.steal_grants, s.steal_denies, s.handoffs,
        );
        let c = &m.cache;
        let _ = write!(
            out,
            ",\"cache\":{{\"hits\":{},\"misses\":{},\"invalidations\":{},\"saved_hops\":{}}}",
            c.hits, c.misses, c.invalidations, c.saved_hops,
        );
        let r = &m.resilience;
        let _ = write!(
            out,
            ",\"resilience\":{{\"checkpoints\":{},\"checkpoint_bytes\":{},\"recoveries\":{},\"restored_bytes\":{},\"tasks_reexecuted\":{},\"net_dropped\":{},\"net_retries\":{},\"failed_transfers\":{}}}",
            r.checkpoints,
            r.checkpoint_bytes,
            r.recoveries,
            r.restored_bytes,
            r.tasks_reexecuted,
            r.net_dropped,
            r.net_retries,
            r.failed_transfers,
        );
        let _ = write!(
            out,
            ",\"checkpointing\":{{\"anchors\":{},\"deltas\":{},\"logical_bytes\":{},\"stall_ns\":{},\"fence_ns\":{},\"drain_ns\":{},\"fp_ns\":{},\"torn\":{},\"cow_captures\":{},\"recovery_read_ns\":{}}}",
            r.ckpt_anchors,
            r.ckpt_deltas,
            r.ckpt_logical_bytes,
            r.ckpt_stall_ns,
            r.ckpt_fence_ns,
            r.ckpt_drain_ns,
            r.ckpt_fp_ns,
            r.ckpt_torn,
            r.cow_captures,
            r.recovery_read_ns,
        );
        let st = &self.storage;
        let _ = write!(
            out,
            ",\"storage\":{{\"local_bytes_written\":{},\"remote_bytes_written\":{},\"local_write_ns\":{},\"remote_write_ns\":{},\"local_bytes_read\":{},\"remote_bytes_read\":{},\"read_ns\":{},\"fingerprint_bytes\":{},\"fingerprint_ns\":{}}}",
            st.local_bytes_written,
            st.remote_bytes_written,
            st.local_write_ns,
            st.remote_write_ns,
            st.local_bytes_read,
            st.remote_bytes_read,
            st.read_ns,
            st.fingerprint_bytes,
            st.fingerprint_ns,
        );
        let g = &m.integrity;
        let _ = write!(
            out,
            ",\"integrity\":{{\"wire_corruptions\":{},\"wire_detected\":{},\"wire_undetected\":{},\"re_requests\":{},\"rot_injected\":{},\"ckpt_shards_rejected\":{},\"ckpt_fallbacks\":{},\"ckpt_links_verified\":{},\"scrub_passes\":{},\"scrub_repairs\":{},\"quarantines\":{}}}",
            g.wire_corruptions,
            g.wire_detected,
            g.wire_undetected,
            g.re_requests,
            g.rot_injected,
            g.checkpoint_shards_rejected,
            g.checkpoint_fallbacks,
            g.ckpt_links_verified,
            g.scrub_passes,
            g.scrub_repairs,
            g.quarantines,
        );
        let t = &self.traffic;
        let _ = write!(
            out,
            ",\"traffic\":{{\"dropped\":{},\"delayed\":{},\"retries\":{},\"undeliverable\":{},\"batches\":{},\"batched_msgs\":{},\"batched_bytes\":{}}}",
            t.dropped, t.delayed, t.retries, t.undeliverable, t.batches, t.batched_msgs, t.batched_bytes,
        );
        let _ = write!(
            out,
            ",\"task_durations\":{},\"transfer_latency\":{}",
            hist(&m.task_durations),
            hist(&m.transfer_latency),
        );
        let v = &m.serve;
        let _ = write!(
            out,
            ",\"serve\":{{\"offered\":{},\"admitted\":{},\"completed\":{},\"shed\":{},\"reads\":{},\"writes\":{},\"slo_violations\":{},\"replications\":{},\"retirements\":{},\"invalidations\":{},\"serve_ns\":{},\"latency\":{},\"per_shard\":[",
            v.offered,
            v.admitted,
            v.completed,
            v.shed,
            v.reads,
            v.writes,
            v.slo_violations,
            v.replications,
            v.retirements,
            v.invalidations,
            v.serve_ns,
            hist(&v.latency),
        );
        for (i, h) in v.per_shard.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&hist(h));
        }
        out.push_str("]}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imbalance_of_uniform_load_is_zero() {
        let mut m = Monitor::new(4);
        for l in &mut m.per_locality {
            l.busy_ns = 1000;
        }
        assert!(m.busy_imbalance() < 1e-12);
    }

    #[test]
    fn imbalance_detects_skew() {
        let mut m = Monitor::new(2);
        m.per_locality[0].busy_ns = 1000;
        m.per_locality[1].busy_ns = 3000;
        assert!(m.busy_imbalance() > 0.4);
    }

    #[test]
    fn totals_aggregate() {
        let mut m = Monitor::new(3);
        for (i, l) in m.per_locality.iter_mut().enumerate() {
            l.tasks_executed = i as u64;
            l.msgs_sent = 10;
            l.bytes_sent = 100;
        }
        assert_eq!(m.total_tasks(), 3);
        assert_eq!(m.total_msgs(), 30);
        assert_eq!(m.total_bytes(), 300);
    }
}

//! The resilience manager (paper Section 3.2).
//!
//! "The *resilience manager* is a service enabled by the application
//! model": the data-preservation and single-execution properties of the
//! formal model (Section 2.5) guarantee that a phase either completed
//! before a checkpoint or can be re-run from it without double-applying
//! effects. This module holds the *policy* state of that service:
//!
//! - a **checkpoint cadence** — every `checkpoint_every` phase
//!   boundaries, the runtime snapshots the owned data of every item on
//!   every locality (the passive primitive already exposed through
//!   [`crate::RtCtx::checkpoint`]);
//! - a **heartbeat failure detector** — the host locality pings every
//!   other live locality each `heartbeat_period` on the simulated clock;
//!   a locality missing `suspicion_threshold` consecutive heartbeats is
//!   declared dead (fail-stop);
//! - the **retry policy** the runtime applies to its own messages on a
//!   faulty fabric (bounded attempts, exponential backoff — see
//!   [`allscale_net::RetryPolicy`]).
//!
//! The *mechanism* — taking the snapshots, driving the heartbeats off
//! the DES clock, and the `recover(dead)` orchestration that restores
//! shards onto survivors, re-advertises ownership in the index, bumps
//! location-cache epochs, and replays the in-flight phase — lives in
//! [`crate::runtime`], which owns the world the manager acts on.
//!
//! The detector is hosted by the lowest-indexed locality not yet
//! declared dead; the next live locality probes the host itself, so a
//! host death fails the detection duty over instead of silencing it.
//! Known simplifications (documented in DESIGN.md §5.5b): checkpoints
//! move data out-of-band (counted, not billed on the network), and a
//! checkpoint is only taken at boundaries whose phase value is `None`
//! (task values are not serializable, so a phase fed by a previous
//! phase's value cannot be replayed faithfully).
//!
//! When the integrity service is on ([`crate::IntegrityConfig`]), each
//! checkpoint shard is saved together with its FNV-1a checksum; recovery
//! verifies shards before restoring and falls back to the previous
//! checkpoint (up to [`MAX_KEPT`] are retained) when one fails.

use allscale_des::SimDuration;
use allscale_net::RetryPolicy;

use crate::runtime::Checkpoint;

/// Configuration of the resilience manager.
#[derive(Debug, Clone, Copy)]
pub struct ResilienceConfig {
    /// Take a checkpoint every this many phase boundaries (≥ 1).
    pub checkpoint_every: usize,
    /// Period of the failure detector's heartbeat round.
    pub heartbeat_period: SimDuration,
    /// Consecutive missed heartbeats before a locality is declared dead.
    pub suspicion_threshold: u32,
    /// Retry policy applied to runtime messages on the faulty fabric.
    pub retry: RetryPolicy,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            checkpoint_every: 2,
            heartbeat_period: SimDuration::from_micros(50),
            suspicion_threshold: 3,
            retry: RetryPolicy {
                // A little more persistent than the network default: a
                // lost runtime message strands a task until recovery.
                max_attempts: 6,
                ..RetryPolicy::default()
            },
        }
    }
}

/// Recovery metrics, aggregated into [`crate::Monitor`].
#[derive(Debug, Clone, Default)]
pub struct ResilienceStats {
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Total serialized bytes across all checkpoints.
    pub checkpoint_bytes: u64,
    /// Heartbeat probes sent by the failure detector.
    pub heartbeats: u64,
    /// Localities declared dead by the detector.
    pub detections: u64,
    /// Simulated nanoseconds between each death and its detection.
    pub detection_latency_ns: u64,
    /// Recovery orchestrations performed.
    pub recoveries: u64,
    /// Bytes of dead localities' shards restored onto survivors.
    pub restored_bytes: u64,
    /// Process-task executions discarded and re-run due to recoveries.
    pub tasks_reexecuted: u64,
    /// Runtime messages lost even after retrying (dead endpoint or
    /// exhausted attempts); each strands work until recovery reaps it.
    pub failed_transfers: u64,
    /// Network-level retransmissions (mirrors `TrafficStats::retries`).
    pub net_retries: u64,
    /// Network-level message drops (mirrors `TrafficStats::dropped`).
    pub net_dropped: u64,
}

/// A checkpoint tagged with the phase boundary it was taken at.
///
/// `phase` is the value of the runtime's phase counter at the boundary:
/// recovery rewinds the counter to it and re-requests that phase's root
/// work item from the driver.
#[derive(Clone)]
pub(crate) struct SavedCheckpoint {
    /// Phase counter value at the boundary (the phase about to start).
    pub phase: usize,
    /// Owned data of every item on every locality.
    pub snap: Checkpoint,
    /// FNV-1a checksum of each shard, aligned with
    /// `snap.per_locality[loc][k]`. Computed over the in-memory bytes at
    /// save time, *before* any at-rest rot is injected into the stored
    /// copy — so a rotted shard fails verification at restore.
    pub sums: Vec<Vec<u64>>,
}

/// How many checkpoints the manager retains: the current one plus one
/// fallback for recoveries that find the newest checkpoint corrupt.
pub(crate) const MAX_KEPT: usize = 2;

/// Live state of the resilience manager, owned by the runtime world.
pub(crate) struct ResilienceManager {
    /// The configured policy.
    pub cfg: ResilienceConfig,
    /// Retained checkpoints, oldest first, at most [`MAX_KEPT`] deep.
    pub saved: Vec<SavedCheckpoint>,
    /// Consecutive missed heartbeats per locality.
    pub misses: Vec<u32>,
    /// `Monitor::total_tasks()` at the instant of the last checkpoint —
    /// the baseline for counting re-executed tasks after a recovery.
    pub tasks_at_checkpoint: u64,
}

impl ResilienceManager {
    /// A manager over `nodes` localities.
    pub fn new(cfg: ResilienceConfig, nodes: usize) -> Self {
        ResilienceManager {
            cfg,
            saved: Vec::new(),
            misses: vec![0; nodes],
            tasks_at_checkpoint: 0,
        }
    }

    /// Whether a checkpoint is due at the boundary entering `phase`.
    ///
    /// Phase 0 is skipped (nothing to save: recovery before the first
    /// checkpoint restarts the application from scratch), as is a
    /// boundary already checkpointed — replay re-enters the boundary it
    /// was restored to, which must not re-snapshot.
    pub fn due(&self, phase: usize) -> bool {
        phase > 0
            && phase.is_multiple_of(self.cfg.checkpoint_every.max(1))
            && !matches!(self.saved.last(), Some(s) if s.phase == phase)
    }

    /// Record a checkpoint taken at the boundary entering `phase`,
    /// evicting the oldest retained checkpoint beyond [`MAX_KEPT`].
    pub fn save(&mut self, phase: usize, snap: Checkpoint, sums: Vec<Vec<u64>>, tasks_done: u64) {
        self.saved.push(SavedCheckpoint { phase, snap, sums });
        if self.saved.len() > MAX_KEPT {
            self.saved.remove(0);
        }
        self.tasks_at_checkpoint = tasks_done;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let cfg = ResilienceConfig::default();
        assert!(cfg.checkpoint_every >= 1);
        assert!(cfg.suspicion_threshold >= 1);
        assert!(cfg.heartbeat_period > SimDuration::ZERO);
        assert!(cfg.retry.max_attempts >= 1);
    }

    #[test]
    fn cadence_skips_phase_zero_and_off_beats() {
        let mgr = ResilienceManager::new(
            ResilienceConfig {
                checkpoint_every: 2,
                ..ResilienceConfig::default()
            },
            4,
        );
        assert!(!mgr.due(0));
        assert!(!mgr.due(1));
        assert!(mgr.due(2));
        assert!(!mgr.due(3));
        assert!(mgr.due(4));
    }

    fn empty_snap() -> (Checkpoint, Vec<Vec<u64>>) {
        (
            Checkpoint {
                per_locality: vec![Vec::new(), Vec::new()],
            },
            vec![Vec::new(), Vec::new()],
        )
    }

    #[test]
    fn replayed_boundary_is_not_recheckpointed() {
        let mut mgr = ResilienceManager::new(ResilienceConfig::default(), 2);
        assert!(mgr.due(2));
        let (snap, sums) = empty_snap();
        mgr.save(2, snap, sums, 7);
        assert!(!mgr.due(2), "restored boundary must not re-snapshot");
        assert!(mgr.due(4), "later boundaries still checkpoint");
        assert_eq!(mgr.tasks_at_checkpoint, 7);
    }

    #[test]
    fn retains_at_most_two_checkpoints_newest_last() {
        let mut mgr = ResilienceManager::new(ResilienceConfig::default(), 2);
        for phase in [2, 4, 6] {
            let (snap, sums) = empty_snap();
            mgr.save(phase, snap, sums, 0);
        }
        assert_eq!(mgr.saved.len(), MAX_KEPT);
        let phases: Vec<usize> = mgr.saved.iter().map(|s| s.phase).collect();
        assert_eq!(phases, vec![4, 6], "oldest evicted, newest last");
        assert!(!mgr.due(6), "due() consults the newest retained checkpoint");
    }

    #[test]
    fn cadence_of_one_checkpoints_every_boundary() {
        let mgr = ResilienceManager::new(
            ResilienceConfig {
                checkpoint_every: 1,
                ..ResilienceConfig::default()
            },
            2,
        );
        assert!(!mgr.due(0));
        assert!(mgr.due(1));
        assert!(mgr.due(2));
        assert!(mgr.due(3));
    }
}

//! The resilience manager (paper Section 3.2).
//!
//! "The *resilience manager* is a service enabled by the application
//! model": the data-preservation and single-execution properties of the
//! formal model (Section 2.5) guarantee that a phase either completed
//! before a checkpoint or can be re-run from it without double-applying
//! effects. This module holds the *policy* state of that service:
//!
//! - a **checkpoint cadence** — every `checkpoint_every` phase
//!   boundaries, the runtime snapshots the owned data of every item on
//!   every locality (the passive primitive already exposed through
//!   [`crate::RtCtx::checkpoint`]);
//! - a **heartbeat failure detector** — locality 0 pings every other
//!   locality each `heartbeat_period` on the simulated clock; a locality
//!   missing `suspicion_threshold` consecutive heartbeats is declared
//!   dead (fail-stop);
//! - the **retry policy** the runtime applies to its own messages on a
//!   faulty fabric (bounded attempts, exponential backoff — see
//!   [`allscale_net::RetryPolicy`]).
//!
//! The *mechanism* — taking the snapshots, driving the heartbeats off
//! the DES clock, and the `recover(dead)` orchestration that restores
//! shards onto survivors, re-advertises ownership in the index, bumps
//! location-cache epochs, and replays the in-flight phase — lives in
//! [`crate::runtime`], which owns the world the manager acts on.
//!
//! Known simplifications (documented in DESIGN.md §5.5b): locality 0
//! hosts the detector and is assumed immortal, checkpoints move data
//! out-of-band (counted, not billed on the network), and a checkpoint is
//! only taken at boundaries whose phase value is `None` (task values are
//! not serializable, so a phase fed by a previous phase's value cannot
//! be replayed faithfully).

use allscale_des::SimDuration;
use allscale_net::RetryPolicy;

use crate::runtime::Checkpoint;

/// Configuration of the resilience manager.
#[derive(Debug, Clone, Copy)]
pub struct ResilienceConfig {
    /// Take a checkpoint every this many phase boundaries (≥ 1).
    pub checkpoint_every: usize,
    /// Period of the failure detector's heartbeat round.
    pub heartbeat_period: SimDuration,
    /// Consecutive missed heartbeats before a locality is declared dead.
    pub suspicion_threshold: u32,
    /// Retry policy applied to runtime messages on the faulty fabric.
    pub retry: RetryPolicy,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            checkpoint_every: 2,
            heartbeat_period: SimDuration::from_micros(50),
            suspicion_threshold: 3,
            retry: RetryPolicy {
                // A little more persistent than the network default: a
                // lost runtime message strands a task until recovery.
                max_attempts: 6,
                ..RetryPolicy::default()
            },
        }
    }
}

/// Recovery metrics, aggregated into [`crate::Monitor`].
#[derive(Debug, Clone, Default)]
pub struct ResilienceStats {
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Total serialized bytes across all checkpoints.
    pub checkpoint_bytes: u64,
    /// Heartbeat probes sent by the failure detector.
    pub heartbeats: u64,
    /// Localities declared dead by the detector.
    pub detections: u64,
    /// Simulated nanoseconds between each death and its detection.
    pub detection_latency_ns: u64,
    /// Recovery orchestrations performed.
    pub recoveries: u64,
    /// Bytes of dead localities' shards restored onto survivors.
    pub restored_bytes: u64,
    /// Process-task executions discarded and re-run due to recoveries.
    pub tasks_reexecuted: u64,
    /// Runtime messages lost even after retrying (dead endpoint or
    /// exhausted attempts); each strands work until recovery reaps it.
    pub failed_transfers: u64,
    /// Network-level retransmissions (mirrors `TrafficStats::retries`).
    pub net_retries: u64,
    /// Network-level message drops (mirrors `TrafficStats::dropped`).
    pub net_dropped: u64,
}

/// A checkpoint tagged with the phase boundary it was taken at.
///
/// `phase` is the value of the runtime's phase counter at the boundary:
/// recovery rewinds the counter to it and re-requests that phase's root
/// work item from the driver.
#[derive(Clone)]
pub(crate) struct SavedCheckpoint {
    /// Phase counter value at the boundary (the phase about to start).
    pub phase: usize,
    /// Owned data of every item on every locality.
    pub snap: Checkpoint,
}

/// Live state of the resilience manager, owned by the runtime world.
pub(crate) struct ResilienceManager {
    /// The configured policy.
    pub cfg: ResilienceConfig,
    /// Most recent checkpoint, if any was taken yet.
    pub last: Option<SavedCheckpoint>,
    /// Consecutive missed heartbeats per locality.
    pub misses: Vec<u32>,
    /// `Monitor::total_tasks()` at the instant of the last checkpoint —
    /// the baseline for counting re-executed tasks after a recovery.
    pub tasks_at_checkpoint: u64,
}

impl ResilienceManager {
    /// A manager over `nodes` localities.
    pub fn new(cfg: ResilienceConfig, nodes: usize) -> Self {
        ResilienceManager {
            cfg,
            last: None,
            misses: vec![0; nodes],
            tasks_at_checkpoint: 0,
        }
    }

    /// Whether a checkpoint is due at the boundary entering `phase`.
    ///
    /// Phase 0 is skipped (nothing to save: recovery before the first
    /// checkpoint restarts the application from scratch), as is a
    /// boundary already checkpointed — replay re-enters the boundary it
    /// was restored to, which must not re-snapshot.
    pub fn due(&self, phase: usize) -> bool {
        phase > 0
            && phase.is_multiple_of(self.cfg.checkpoint_every.max(1))
            && !matches!(&self.last, Some(s) if s.phase == phase)
    }

    /// Record a checkpoint taken at the boundary entering `phase`.
    pub fn save(&mut self, phase: usize, snap: Checkpoint, tasks_done: u64) {
        self.last = Some(SavedCheckpoint { phase, snap });
        self.tasks_at_checkpoint = tasks_done;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let cfg = ResilienceConfig::default();
        assert!(cfg.checkpoint_every >= 1);
        assert!(cfg.suspicion_threshold >= 1);
        assert!(cfg.heartbeat_period > SimDuration::ZERO);
        assert!(cfg.retry.max_attempts >= 1);
    }

    #[test]
    fn cadence_skips_phase_zero_and_off_beats() {
        let mgr = ResilienceManager::new(
            ResilienceConfig {
                checkpoint_every: 2,
                ..ResilienceConfig::default()
            },
            4,
        );
        assert!(!mgr.due(0));
        assert!(!mgr.due(1));
        assert!(mgr.due(2));
        assert!(!mgr.due(3));
        assert!(mgr.due(4));
    }

    #[test]
    fn replayed_boundary_is_not_recheckpointed() {
        let mut mgr = ResilienceManager::new(ResilienceConfig::default(), 2);
        assert!(mgr.due(2));
        mgr.save(
            2,
            Checkpoint {
                per_locality: vec![Vec::new(), Vec::new()],
            },
            7,
        );
        assert!(!mgr.due(2), "restored boundary must not re-snapshot");
        assert!(mgr.due(4), "later boundaries still checkpoint");
        assert_eq!(mgr.tasks_at_checkpoint, 7);
    }

    #[test]
    fn cadence_of_one_checkpoints_every_boundary() {
        let mgr = ResilienceManager::new(
            ResilienceConfig {
                checkpoint_every: 1,
                ..ResilienceConfig::default()
            },
            2,
        );
        assert!(!mgr.due(0));
        assert!(mgr.due(1));
        assert!(mgr.due(2));
        assert!(mgr.due(3));
    }
}

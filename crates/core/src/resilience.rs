//! The resilience manager (paper Section 3.2).
//!
//! "The *resilience manager* is a service enabled by the application
//! model": the data-preservation and single-execution properties of the
//! formal model (Section 2.5) guarantee that a phase either completed
//! before a checkpoint or can be re-run from it without double-applying
//! effects. This module holds the *policy* state of that service:
//!
//! - a **checkpoint cadence** — every `checkpoint_every` phase
//!   boundaries, the runtime snapshots the owned data of every item on
//!   every locality (the passive primitive already exposed through
//!   [`crate::RtCtx::checkpoint`]);
//! - a **checkpoint pipeline** ([`CheckpointConfig`]) — checkpoints are
//!   billed on the simulated clock against the two-tier store of
//!   [`allscale_net::StorageModel`] (a fast node-local tier lost with
//!   the locality, a slower off-ring remote tier that survives deaths);
//!   in [`CkptMode::Async`] the capture is copy-on-write at the
//!   boundary and the drain overlaps the next phase's compute, and with
//!   `incremental` only shards whose region fingerprint changed since
//!   the last checkpoint are written (deltas), with periodic full
//!   *anchor* snapshots bounding the reconstruction chain;
//! - a **heartbeat failure detector** — the host locality pings every
//!   other live locality each `heartbeat_period` on the simulated clock;
//!   a locality missing `suspicion_threshold` consecutive heartbeats is
//!   declared dead (fail-stop);
//! - the **retry policy** the runtime applies to its own messages on a
//!   faulty fabric (bounded attempts, exponential backoff — see
//!   [`allscale_net::RetryPolicy`]).
//!
//! The *mechanism* — arming the copy-on-write capture, scheduling the
//! drain-completion events, driving the heartbeats off the DES clock,
//! and the `recover(dead)` orchestration that restores shards onto
//! survivors, re-advertises ownership in the index, bumps
//! location-cache epochs, and replays the in-flight phase — lives in
//! [`crate::runtime`], which owns the world the manager acts on.
//!
//! The detector is hosted by the lowest-indexed locality not yet
//! declared dead; the next live locality probes the host itself, so a
//! host death fails the detection duty over instead of silencing it.
//! One remaining simplification (documented in DESIGN.md §5.5b): a
//! checkpoint is only taken at boundaries whose phase value is `None`
//! (task values are not serializable, so a phase fed by a previous
//! phase's value cannot be replayed faithfully).
//!
//! When the integrity service is on ([`crate::IntegrityConfig`]), each
//! checkpoint shard is saved together with its FNV-1a checksum; recovery
//! verifies every link of the anchor+delta chain before restoring and
//! falls back to the previous restorable checkpoint (the retention
//! depth is [`CheckpointConfig::keep`]) when one fails.

use std::collections::BTreeMap;

use allscale_des::SimDuration;
use allscale_net::{RetryPolicy, StorageModel, StorageParams};
use allscale_region::fnv1a_64;

use crate::runtime::Checkpoint;
use crate::task::ItemId;

/// When checkpoint serialization and storage writes are billed relative
/// to the phase that triggered them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CkptMode {
    /// The boundary stalls until the snapshot is fully persisted to both
    /// storage tiers (classic blocking checkpoint — the baseline arm of
    /// the recovery-time/overhead frontier).
    Sync,
    /// The boundary arms a copy-on-write capture and resumes compute
    /// immediately; the drain completes in the background, and the *next*
    /// checkpointing boundary write-fences only if the drain is still in
    /// flight.
    Async,
}

/// Configuration of the checkpoint pipeline.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointConfig {
    /// Blocking or copy-on-write background drains.
    pub mode: CkptMode,
    /// Write delta checkpoints (only shards whose region fingerprint
    /// changed since the last checkpoint) between full anchors.
    pub incremental: bool,
    /// With `incremental`, force a full anchor snapshot after this many
    /// consecutive deltas (bounds the reconstruction chain; ≥ 1).
    pub anchor_every: usize,
    /// Retention depth: recovery can fall back across this many retained
    /// checkpoints when newer ones are corrupt (≥ 1; deltas additionally
    /// retain their supporting anchor chain).
    pub keep: usize,
    /// Cost envelope of the two-tier checkpoint store.
    pub storage: StorageParams,
    /// Debug/test aid: after every delta commit, reconstruct the chain
    /// and assert it is bit-identical to the full boundary snapshot.
    pub validate_reconstruction: bool,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        CheckpointConfig {
            mode: CkptMode::Async,
            incremental: true,
            anchor_every: 4,
            keep: 2,
            storage: StorageParams::default(),
            validate_reconstruction: false,
        }
    }
}

/// Configuration of the resilience manager.
#[derive(Debug, Clone, Copy)]
pub struct ResilienceConfig {
    /// Take a checkpoint every this many phase boundaries (≥ 1).
    pub checkpoint_every: usize,
    /// The checkpoint pipeline (mode, incrementality, retention, storage
    /// cost envelope).
    pub ckpt: CheckpointConfig,
    /// Period of the failure detector's heartbeat round.
    pub heartbeat_period: SimDuration,
    /// Consecutive missed heartbeats before a locality is declared dead.
    pub suspicion_threshold: u32,
    /// Retry policy applied to runtime messages on the faulty fabric.
    pub retry: RetryPolicy,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            checkpoint_every: 2,
            ckpt: CheckpointConfig::default(),
            heartbeat_period: SimDuration::from_micros(50),
            suspicion_threshold: 3,
            retry: RetryPolicy {
                // A little more persistent than the network default: a
                // lost runtime message strands a task until recovery.
                max_attempts: 6,
                ..RetryPolicy::default()
            },
        }
    }
}

/// Recovery metrics, aggregated into [`crate::Monitor`].
#[derive(Debug, Clone, Default)]
pub struct ResilienceStats {
    /// Checkpoints committed.
    pub checkpoints: u64,
    /// Serialized bytes actually written per checkpoint (delta shards
    /// only, for incremental checkpoints), summed across all commits.
    pub checkpoint_bytes: u64,
    /// Full boundary-state bytes each checkpoint represents (what a
    /// non-incremental checkpoint would have written), summed.
    pub ckpt_logical_bytes: u64,
    /// Committed full anchor snapshots.
    pub ckpt_anchors: u64,
    /// Committed delta checkpoints.
    pub ckpt_deltas: u64,
    /// Simulated ns the application stalled inside `Sync` checkpoints.
    pub ckpt_stall_ns: u64,
    /// Simulated ns boundaries stalled on a write-fence because the
    /// previous asynchronous drain had not finished.
    pub ckpt_fence_ns: u64,
    /// Simulated ns of background drain time (capture to commit), summed
    /// over checkpoints — overlapped with compute in `Async` mode.
    pub ckpt_drain_ns: u64,
    /// Simulated ns spent fingerprinting boundary state for incremental
    /// change detection.
    pub ckpt_fp_ns: u64,
    /// In-flight drains discarded because a failure struck before commit
    /// (recovery never restores from a torn checkpoint).
    pub ckpt_torn: u64,
    /// Pre-image clones taken by first writes under an armed
    /// copy-on-write capture.
    pub cow_captures: u64,
    /// Simulated ns recoveries spent reading checkpoint data back from
    /// the storage tiers.
    pub recovery_read_ns: u64,
    /// Heartbeat probes sent by the failure detector.
    pub heartbeats: u64,
    /// Localities declared dead by the detector.
    pub detections: u64,
    /// Simulated nanoseconds between each death and its detection.
    pub detection_latency_ns: u64,
    /// Recovery orchestrations performed.
    pub recoveries: u64,
    /// Bytes of dead localities' shards restored onto survivors.
    pub restored_bytes: u64,
    /// Process-task executions discarded and re-run due to recoveries.
    pub tasks_reexecuted: u64,
    /// Runtime messages lost even after retrying (dead endpoint or
    /// exhausted attempts); each strands work until recovery reaps it.
    pub failed_transfers: u64,
    /// Network-level retransmissions (mirrors `TrafficStats::retries`).
    pub net_retries: u64,
    /// Network-level message drops (mirrors `TrafficStats::dropped`).
    pub net_dropped: u64,
}

/// Whether a retained checkpoint is a full snapshot or a delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CkptKind {
    /// Full snapshot of every item — self-contained.
    Anchor,
    /// Only the shards whose fingerprint changed since the previous
    /// retained checkpoint; reconstruction replays the chain from the
    /// nearest anchor.
    Delta,
}

/// A retained checkpoint: one link of the anchor+delta chain.
///
/// `phase` is the value of the runtime's phase counter at the boundary:
/// recovery rewinds the counter to it and re-requests that phase's root
/// work item from the driver.
#[derive(Clone)]
pub(crate) struct SavedCkpt {
    /// Phase counter value at the boundary (the phase about to start).
    pub phase: usize,
    /// Anchor (full) or delta (changed shards only).
    pub kind: CkptKind,
    /// Stored shards per locality, ascending `ItemId`. An anchor holds
    /// every item; a delta only the changed ones.
    pub shards: Vec<Vec<(ItemId, Vec<u8>)>>,
    /// FNV-1a checksum of each stored shard, aligned with
    /// `shards[loc][k]`. Computed over the in-memory bytes at save time,
    /// *before* any at-rest rot is injected into the stored copy — so a
    /// rotted shard fails verification at reconstruction.
    pub sums: Vec<Vec<u64>>,
    /// Every item alive at the boundary, per locality (ascending) — lets
    /// reconstruction drop items that a delta does not mention because
    /// they were destroyed, not because they were unchanged.
    pub roster: Vec<Vec<ItemId>>,
}

/// Byte/shard accounting of one chain reconstruction, per locality —
/// the recovery restore path bills these against the storage tiers.
pub(crate) struct ReconstructCost {
    /// Chain links (anchor + deltas) read and applied.
    pub links: u64,
    /// Stored bytes read per locality across all links used.
    pub bytes: Vec<u64>,
    /// Stored shards read per locality across all links used.
    pub shards: Vec<u64>,
}

/// Replay the anchor+delta chain `chain[..=upto]` into the full
/// boundary state of `chain[upto]`.
///
/// Scans back from `upto` to the nearest anchor, then applies each
/// link's shards forward (newer shards overwrite older ones) and prunes
/// the result to `chain[upto]`'s roster. With `verify`, every link's
/// shards are checksummed first and the reconstruction fails with the
/// number of rejected shards if any link is corrupt — a delta chain is
/// only as trustworthy as its weakest link. Fails with 0 rejected
/// shards if no anchor supports `upto` (evicted or never taken).
pub(crate) fn reconstruct(
    chain: &[SavedCkpt],
    upto: usize,
    verify: bool,
) -> Result<(Checkpoint, ReconstructCost), u64> {
    let Some(base) = chain[..=upto]
        .iter()
        .rposition(|s| s.kind == CkptKind::Anchor)
    else {
        return Err(0);
    };
    let links = &chain[base..=upto];
    if verify {
        let bad: u64 = links
            .iter()
            .flat_map(|link| link.shards.iter().zip(&link.sums))
            .flat_map(|(shards, sums)| shards.iter().zip(sums))
            .filter(|((_, bytes), &sum)| fnv1a_64(bytes) != sum)
            .count() as u64;
        if bad > 0 {
            return Err(bad);
        }
    }
    let nloc = links[0].shards.len();
    let mut cost = ReconstructCost {
        links: links.len() as u64,
        bytes: vec![0; nloc],
        shards: vec![0; nloc],
    };
    let mut acc: Vec<BTreeMap<ItemId, Vec<u8>>> = vec![BTreeMap::new(); nloc];
    for link in links {
        for (loc, shards) in link.shards.iter().enumerate() {
            for (id, bytes) in shards {
                cost.bytes[loc] += bytes.len() as u64;
                cost.shards[loc] += 1;
                acc[loc].insert(*id, bytes.clone());
            }
        }
    }
    let top = &chain[upto];
    let per_locality = acc
        .into_iter()
        .enumerate()
        .map(|(loc, mut items)| {
            items.retain(|id, _| top.roster[loc].binary_search(id).is_ok());
            items.into_iter().collect()
        })
        .collect();
    Ok((Checkpoint { per_locality }, cost))
}

/// Live state of the resilience manager, owned by the runtime world.
pub(crate) struct ResilienceManager {
    /// The configured policy.
    pub cfg: ResilienceConfig,
    /// Retained checkpoints, oldest first: the newest
    /// [`CheckpointConfig::keep`] points plus whatever older links their
    /// reconstruction chains need back to an anchor.
    pub saved: Vec<SavedCkpt>,
    /// Consecutive missed heartbeats per locality.
    pub misses: Vec<u32>,
    /// `Monitor::total_tasks()` at the instant of the last checkpoint —
    /// the baseline for counting re-executed tasks after a recovery.
    pub tasks_at_checkpoint: u64,
    /// Per-locality `item -> (fingerprint, len)` of the newest committed
    /// checkpoint — the reference incremental change detection diffs
    /// boundary state against.
    pub last_fps: Vec<BTreeMap<ItemId, (u64, u64)>>,
    /// Deltas committed since the last anchor (drives
    /// [`CheckpointConfig::anchor_every`]).
    pub since_anchor: usize,
    /// The two-tier checkpoint store (cost math + traffic stats).
    pub storage: StorageModel,
}

impl ResilienceManager {
    /// A manager over `nodes` localities.
    pub fn new(cfg: ResilienceConfig, nodes: usize) -> Self {
        ResilienceManager {
            cfg,
            saved: Vec::new(),
            misses: vec![0; nodes],
            tasks_at_checkpoint: 0,
            last_fps: vec![BTreeMap::new(); nodes],
            since_anchor: 0,
            storage: StorageModel::new(cfg.ckpt.storage),
        }
    }

    /// Whether a checkpoint is due at the boundary entering `phase`.
    ///
    /// Phase 0 is skipped (nothing to save: recovery before the first
    /// checkpoint restarts the application from scratch), as is a
    /// boundary already checkpointed — replay re-enters the boundary it
    /// was restored to, which must not re-snapshot.
    pub fn due(&self, phase: usize) -> bool {
        phase > 0
            && phase.is_multiple_of(self.cfg.checkpoint_every.max(1))
            && !matches!(self.saved.last(), Some(s) if s.phase == phase)
    }

    /// Whether the next checkpoint must be a full anchor: the first one
    /// ever, non-incremental configs, or an expired delta budget.
    pub fn next_kind(&self) -> CkptKind {
        if !self.cfg.ckpt.incremental
            || self.saved.is_empty()
            || self.since_anchor + 1 >= self.cfg.ckpt.anchor_every.max(1)
        {
            CkptKind::Anchor
        } else {
            CkptKind::Delta
        }
    }

    /// Record a committed checkpoint, evicting retained points beyond
    /// the configured depth — but never a link a kept point's
    /// reconstruction chain still needs (the prefix back to the newest
    /// anchor at or before the eviction cut survives).
    pub fn save(&mut self, entry: SavedCkpt, tasks_done: u64) {
        match entry.kind {
            CkptKind::Anchor => self.since_anchor = 0,
            CkptKind::Delta => self.since_anchor += 1,
        }
        self.saved.push(entry);
        let keep = self.cfg.ckpt.keep.max(1);
        if self.saved.len() > keep {
            let cut = self.saved.len() - keep;
            if let Some(a) = self.saved[..=cut]
                .iter()
                .rposition(|s| s.kind == CkptKind::Anchor)
            {
                self.saved.drain(0..a);
            }
        }
        self.tasks_at_checkpoint = tasks_done;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let cfg = ResilienceConfig::default();
        assert!(cfg.checkpoint_every >= 1);
        assert!(cfg.suspicion_threshold >= 1);
        assert!(cfg.heartbeat_period > SimDuration::ZERO);
        assert!(cfg.retry.max_attempts >= 1);
        assert_eq!(cfg.ckpt.mode, CkptMode::Async);
        assert!(cfg.ckpt.incremental);
        assert!(cfg.ckpt.anchor_every >= 1);
        assert!(cfg.ckpt.keep >= 1);
    }

    #[test]
    fn cadence_skips_phase_zero_and_off_beats() {
        let mgr = ResilienceManager::new(
            ResilienceConfig {
                checkpoint_every: 2,
                ..ResilienceConfig::default()
            },
            4,
        );
        assert!(!mgr.due(0));
        assert!(!mgr.due(1));
        assert!(mgr.due(2));
        assert!(!mgr.due(3));
        assert!(mgr.due(4));
    }

    fn entry(phase: usize, kind: CkptKind, shards: Vec<Vec<(ItemId, Vec<u8>)>>) -> SavedCkpt {
        let sums = shards
            .iter()
            .map(|loc| loc.iter().map(|(_, b)| fnv1a_64(b)).collect())
            .collect();
        let roster = shards
            .iter()
            .map(|loc| loc.iter().map(|(id, _)| *id).collect())
            .collect();
        SavedCkpt {
            phase,
            kind,
            shards,
            sums,
            roster,
        }
    }

    fn empty(phase: usize, kind: CkptKind) -> SavedCkpt {
        entry(phase, kind, vec![Vec::new(), Vec::new()])
    }

    #[test]
    fn replayed_boundary_is_not_recheckpointed() {
        let mut mgr = ResilienceManager::new(ResilienceConfig::default(), 2);
        assert!(mgr.due(2));
        mgr.save(empty(2, CkptKind::Anchor), 7);
        assert!(!mgr.due(2), "restored boundary must not re-snapshot");
        assert!(mgr.due(4), "later boundaries still checkpoint");
        assert_eq!(mgr.tasks_at_checkpoint, 7);
    }

    #[test]
    fn retention_depth_is_configurable() {
        for keep in [1usize, 2, 4] {
            let mut mgr = ResilienceManager::new(
                ResilienceConfig {
                    ckpt: CheckpointConfig {
                        incremental: false,
                        keep,
                        ..CheckpointConfig::default()
                    },
                    ..ResilienceConfig::default()
                },
                2,
            );
            for phase in [2, 4, 6, 8, 10, 12] {
                mgr.save(empty(phase, CkptKind::Anchor), 0);
            }
            assert_eq!(mgr.saved.len(), keep, "keep={keep}");
            let newest: Vec<usize> = mgr.saved.iter().map(|s| s.phase).collect();
            let expect: Vec<usize> = [2usize, 4, 6, 8, 10, 12][6 - keep..].to_vec();
            assert_eq!(newest, expect, "oldest evicted, newest last");
        }
    }

    #[test]
    fn eviction_preserves_the_supporting_anchor_chain() {
        let mut mgr = ResilienceManager::new(
            ResilienceConfig {
                checkpoint_every: 1,
                ckpt: CheckpointConfig {
                    anchor_every: 4,
                    keep: 2,
                    ..CheckpointConfig::default()
                },
                ..ResilienceConfig::default()
            },
            2,
        );
        // Anchor, then deltas: the kept tail always reconstructs.
        for phase in 1..=6 {
            let kind = mgr.next_kind();
            mgr.save(empty(phase, kind), 0);
        }
        assert!(mgr.saved.len() >= 2, "at least `keep` points retained");
        assert_eq!(
            mgr.saved[0].kind,
            CkptKind::Anchor,
            "retained chain starts at an anchor"
        );
        for upto in 0..mgr.saved.len() {
            assert!(
                reconstruct(&mgr.saved, upto, true).is_ok(),
                "every retained point reconstructs"
            );
        }
    }

    #[test]
    fn anchor_cadence_bounds_delta_runs() {
        let mut mgr = ResilienceManager::new(
            ResilienceConfig {
                checkpoint_every: 1,
                ckpt: CheckpointConfig {
                    anchor_every: 3,
                    keep: 8,
                    ..CheckpointConfig::default()
                },
                ..ResilienceConfig::default()
            },
            2,
        );
        let mut kinds = Vec::new();
        for phase in 1..=7 {
            let kind = mgr.next_kind();
            kinds.push(kind);
            mgr.save(empty(phase, kind), 0);
        }
        use CkptKind::{Anchor, Delta};
        assert_eq!(
            kinds,
            vec![Anchor, Delta, Delta, Anchor, Delta, Delta, Anchor],
            "a full anchor every anchor_every checkpoints"
        );
    }

    #[test]
    fn cadence_of_one_checkpoints_every_boundary() {
        let mgr = ResilienceManager::new(
            ResilienceConfig {
                checkpoint_every: 1,
                ..ResilienceConfig::default()
            },
            2,
        );
        assert!(!mgr.due(0));
        assert!(mgr.due(1));
        assert!(mgr.due(2));
        assert!(mgr.due(3));
    }

    fn sh(pairs: &[(u32, &[u8])]) -> Vec<(ItemId, Vec<u8>)> {
        pairs.iter().map(|&(id, b)| (ItemId(id), b.to_vec())).collect()
    }

    #[test]
    fn reconstruction_replays_anchor_plus_deltas() {
        // Both items stay live across the chain, so every link's roster
        // lists both even when the delta only carries one shard.
        let mut d2 = entry(2, CkptKind::Delta, vec![sh(&[(1, b"B2")])]);
        d2.roster = vec![vec![ItemId(0), ItemId(1)]];
        let mut d3 = entry(3, CkptKind::Delta, vec![sh(&[(0, b"A3")])]);
        d3.roster = vec![vec![ItemId(0), ItemId(1)]];
        let chain = vec![
            entry(1, CkptKind::Anchor, vec![sh(&[(0, b"aa"), (1, b"bb")])]),
            d2,
            d3,
        ];
        let (snap, cost) = reconstruct(&chain, 2, true).unwrap();
        assert_eq!(snap.per_locality[0], sh(&[(0, b"A3"), (1, b"B2")]));
        assert_eq!(cost.links, 3);
        assert_eq!(cost.shards[0], 4);
        // Stopping earlier in the chain replays less.
        let (snap1, _) = reconstruct(&chain, 1, true).unwrap();
        assert_eq!(snap1.per_locality[0], sh(&[(0, b"aa"), (1, b"B2")]));
    }

    #[test]
    fn reconstruction_roster_drops_destroyed_items() {
        let mut delta = entry(2, CkptKind::Delta, vec![sh(&[(0, b"A2")])]);
        // Item 1 was destroyed between the anchor and the delta: the delta
        // does not mention it AND its roster omits it.
        delta.roster = vec![vec![ItemId(0)]];
        let chain = vec![
            entry(1, CkptKind::Anchor, vec![sh(&[(0, b"aa"), (1, b"bb")])]),
            delta,
        ];
        let (snap, _) = reconstruct(&chain, 1, true).unwrap();
        assert_eq!(snap.per_locality[0], sh(&[(0, b"A2")]));
    }

    #[test]
    fn reconstruction_rejects_any_corrupt_link() {
        let mut chain = vec![
            entry(1, CkptKind::Anchor, vec![sh(&[(0, b"aa")])]),
            entry(2, CkptKind::Delta, vec![sh(&[(0, b"A2")])]),
        ];
        // Rot the *anchor* shard: the newest delta is intact, but the
        // chain under it is not.
        chain[0].shards[0][0].1[0] ^= 0xff;
        assert_eq!(reconstruct(&chain, 1, true).map(|_| ()).unwrap_err(), 1);
        // Without verification the corruption sails through.
        assert!(reconstruct(&chain, 1, false).is_ok());
    }

    #[test]
    fn reconstruction_without_anchor_fails_closed() {
        let chain = vec![entry(2, CkptKind::Delta, vec![sh(&[(0, b"A2")])])];
        assert!(reconstruct(&chain, 0, true).is_err());
    }
}

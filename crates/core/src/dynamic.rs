//! Type erasure for user-defined data items.
//!
//! The paper's central claim is that the runtime can manage *user-defined*
//! data structures generically. The statically typed side of that bargain
//! lives in `allscale-region` ([`Region`], [`Fragment`], [`ItemType`]);
//! this module provides the dynamically typed counterpart the runtime's
//! data item manager, index, and scheduler operate on: [`DynRegion`] and
//! [`DynFragment`] trait objects plus a per-item [`ItemDescriptor`] vtable
//! for decoding serialized fragments arriving from other localities.

use std::any::Any;
use std::fmt;
use std::sync::Arc;

use allscale_net::wire;
use allscale_region::{Fragment, ItemType, Region};

/// A type-erased region: the Boolean algebra of [`Region`] behind a trait
/// object. Binary operations panic when the two operands have different
/// concrete types — mixing regions of different data items is a runtime
/// bug, not a recoverable condition.
pub trait DynRegion: fmt::Debug {
    /// Clone into a new box.
    fn clone_box(&self) -> Box<dyn DynRegion>;
    /// Set union with a region of the same concrete type.
    fn union_dyn(&self, other: &dyn DynRegion) -> Box<dyn DynRegion>;
    /// Set intersection with a region of the same concrete type.
    fn intersect_dyn(&self, other: &dyn DynRegion) -> Box<dyn DynRegion>;
    /// Set difference with a region of the same concrete type.
    fn difference_dyn(&self, other: &dyn DynRegion) -> Box<dyn DynRegion>;
    /// Whether the region is empty.
    fn is_empty_dyn(&self) -> bool;
    /// Semantic equality with a region of the same concrete type.
    fn eq_dyn(&self, other: &dyn DynRegion) -> bool;
    /// Serialize for transmission (control-plane sizing is billed off the
    /// encoded length).
    fn encode(&self) -> Vec<u8>;
    /// A cheap, stable 64-bit fingerprint of the region value, used as the
    /// location-cache key. Computed over the canonical wire encoding, so
    /// equal *representations* always agree; semantically equal regions
    /// with different internal structure may fingerprint differently, and
    /// distinct regions may collide — consumers needing exactness (the
    /// cache does) must confirm with [`DynRegion::eq_dyn`]. Either way the
    /// cost is a cache miss, never a wrong answer.
    fn fingerprint_dyn(&self) -> u64;
    /// Downcasting support.
    fn as_any(&self) -> &dyn Any;
}

impl<R: Region> DynRegion for R {
    fn clone_box(&self) -> Box<dyn DynRegion> {
        Box::new(self.clone())
    }
    fn union_dyn(&self, other: &dyn DynRegion) -> Box<dyn DynRegion> {
        Box::new(self.union(downcast::<R>(other)))
    }
    fn intersect_dyn(&self, other: &dyn DynRegion) -> Box<dyn DynRegion> {
        Box::new(self.intersect(downcast::<R>(other)))
    }
    fn difference_dyn(&self, other: &dyn DynRegion) -> Box<dyn DynRegion> {
        Box::new(self.difference(downcast::<R>(other)))
    }
    fn is_empty_dyn(&self) -> bool {
        self.is_empty()
    }
    fn eq_dyn(&self, other: &dyn DynRegion) -> bool {
        self == downcast::<R>(other)
    }
    fn encode(&self) -> Vec<u8> {
        wire::encode(self).expect("region serialization cannot fail")
    }
    fn fingerprint_dyn(&self) -> u64 {
        allscale_region::fnv1a_64(&wire::encode(self).expect("region serialization cannot fail"))
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl Clone for Box<dyn DynRegion> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Downcast a dyn region to its concrete type.
///
/// # Panics
/// Panics when the concrete types differ — regions of different item types
/// must never be combined.
pub fn downcast<R: Region>(r: &dyn DynRegion) -> &R {
    r.as_any()
        .downcast_ref::<R>()
        .expect("mixed region types in a single data item operation")
}

/// A type-erased fragment held by a locality's data item manager.
pub trait DynFragment {
    /// The region currently covered.
    fn region_dyn(&self) -> Box<dyn DynRegion>;
    /// Copy out a sub-fragment (type-erased [`Fragment::extract`]).
    fn extract_dyn(&self, region: &dyn DynRegion) -> Box<dyn DynFragment>;
    /// Merge another fragment of the same concrete type.
    fn insert_dyn(&mut self, other: &dyn DynFragment);
    /// Drop coverage of a region.
    fn remove_dyn(&mut self, region: &dyn DynRegion);
    /// Serialize the fragment for transmission between address spaces.
    fn encode(&self) -> Vec<u8>;
    /// Approximate serialized size (transfer-cost estimation).
    fn approx_bytes(&self) -> usize;
    /// Downcasting support.
    fn as_any(&self) -> &dyn Any;
    /// Mutable downcasting support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<F: Fragment> DynFragment for F {
    fn region_dyn(&self) -> Box<dyn DynRegion> {
        Box::new(self.region())
    }
    fn extract_dyn(&self, region: &dyn DynRegion) -> Box<dyn DynFragment> {
        Box::new(self.extract(downcast::<F::Region>(region)))
    }
    fn insert_dyn(&mut self, other: &dyn DynFragment) {
        let other = other
            .as_any()
            .downcast_ref::<F>()
            .expect("mixed fragment types in a single data item operation");
        self.insert(other);
    }
    fn remove_dyn(&mut self, region: &dyn DynRegion) {
        self.remove(downcast::<F::Region>(region));
    }
    fn encode(&self) -> Vec<u8> {
        wire::encode(self).expect("fragment serialization cannot fail")
    }
    fn approx_bytes(&self) -> usize {
        Fragment::approx_bytes(self)
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The per-item vtable: everything the runtime needs to handle a data item
/// whose concrete types it does not know.
#[derive(Clone)]
#[allow(clippy::type_complexity)] // the vtable IS the type; aliases would obscure it
pub struct ItemDescriptor {
    /// Human-readable name for reports.
    pub name: &'static str,
    /// Estimated serialized bytes per element.
    pub bytes_per_element: usize,
    /// Construct an empty fragment.
    pub empty_fragment: Arc<dyn Fn() -> Box<dyn DynFragment>>,
    /// Allocate a default-initialized fragment over a region (first-touch
    /// allocation, the paper's (init) rule).
    pub alloc_fragment: Arc<dyn Fn(&dyn DynRegion) -> Box<dyn DynFragment>>,
    /// The empty region of this item's region scheme.
    pub empty_region: Arc<dyn Fn() -> Box<dyn DynRegion>>,
    /// Decode a fragment received from another locality.
    pub decode_fragment: Arc<dyn Fn(&[u8]) -> Box<dyn DynFragment>>,
    /// Decode a region received from another locality.
    pub decode_region: Arc<dyn Fn(&[u8]) -> Box<dyn DynRegion>>,
}

impl ItemDescriptor {
    /// Build the descriptor for a statically known [`ItemType`].
    pub fn of<I: ItemType>(name: &'static str) -> Self {
        ItemDescriptor {
            name,
            bytes_per_element: I::BYTES_PER_ELEMENT,
            empty_fragment: Arc::new(|| Box::new(I::Fragment::empty())),
            alloc_fragment: Arc::new(|region| {
                Box::new(I::Fragment::alloc(downcast::<I::Region>(region)))
            }),
            empty_region: Arc::new(|| Box::new(I::Region::empty())),
            decode_fragment: Arc::new(|bytes| {
                Box::new(
                    wire::decode::<I::Fragment>(bytes)
                        .expect("fragment decode failed: corrupted transfer"),
                )
            }),
            decode_region: Arc::new(|bytes| {
                Box::new(
                    wire::decode::<I::Region>(bytes)
                        .expect("region decode failed: corrupted transfer"),
                )
            }),
        }
    }
}

impl fmt::Debug for ItemDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ItemDescriptor({})", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use allscale_region::{BoxRegion, GridFragment};

    struct Grid2;
    impl ItemType for Grid2 {
        type Region = BoxRegion<2>;
        type Fragment = GridFragment<f64, 2>;
        const BYTES_PER_ELEMENT: usize = 8;
    }

    fn r2(lo: [i64; 2], hi: [i64; 2]) -> BoxRegion<2> {
        BoxRegion::cuboid(lo, hi)
    }

    #[test]
    fn dyn_region_algebra_matches_static() {
        let a: Box<dyn DynRegion> = Box::new(r2([0, 0], [4, 4]));
        let b: Box<dyn DynRegion> = Box::new(r2([2, 2], [6, 6]));
        let u = a.union_dyn(b.as_ref());
        let i = a.intersect_dyn(b.as_ref());
        let d = a.difference_dyn(b.as_ref());
        assert!(u.eq_dyn(&r2([0, 0], [4, 4]).union(&r2([2, 2], [6, 6]))));
        assert!(i.eq_dyn(&r2([2, 2], [4, 4])));
        assert!(d.eq_dyn(&r2([0, 0], [4, 4]).difference(&r2([2, 2], [4, 4]))));
        assert!(!u.is_empty_dyn());
    }

    #[test]
    fn descriptor_round_trips_fragments() {
        let desc = ItemDescriptor::of::<Grid2>("grid");
        let mut f = GridFragment::<f64, 2>::new(&r2([0, 0], [3, 3]));
        f.set(&allscale_region::Point([1, 2]), 7.5);
        let bytes = DynFragment::encode(&f);
        let back = (desc.decode_fragment)(&bytes);
        let typed = back.as_any().downcast_ref::<GridFragment<f64, 2>>().unwrap();
        assert_eq!(typed.get(&allscale_region::Point([1, 2])), Some(&7.5));
    }

    #[test]
    fn descriptor_round_trips_regions() {
        let desc = ItemDescriptor::of::<Grid2>("grid");
        let r = r2([0, 0], [5, 5]).difference(&r2([1, 1], [2, 2]));
        let bytes = DynRegion::encode(&r);
        let back = (desc.decode_region)(&bytes);
        assert!(back.eq_dyn(&r));
    }

    #[test]
    fn dyn_fragment_extract_insert() {
        let mut f: Box<dyn DynFragment> = Box::new(GridFragment::<f64, 2>::new(&r2([0, 0], [4, 4])));
        {
            let typed = f
                .as_any_mut()
                .downcast_mut::<GridFragment<f64, 2>>()
                .unwrap();
            typed.set(&allscale_region::Point([3, 3]), 9.0);
        }
        let sub = f.extract_dyn(&r2([3, 3], [4, 4]));
        let mut g: Box<dyn DynFragment> = (ItemDescriptor::of::<Grid2>("grid").empty_fragment)();
        g.insert_dyn(sub.as_ref());
        let typed = g.as_any().downcast_ref::<GridFragment<f64, 2>>().unwrap();
        assert_eq!(typed.get(&allscale_region::Point([3, 3])), Some(&9.0));
        assert!(g.region_dyn().eq_dyn(&r2([3, 3], [4, 4])));
    }

    #[test]
    fn fingerprints_are_stable_and_discriminating() {
        let a: Box<dyn DynRegion> = Box::new(r2([0, 0], [4, 4]));
        let b: Box<dyn DynRegion> = Box::new(r2([0, 0], [4, 5]));
        // Equal values fingerprint identically, across clones.
        assert_eq!(a.fingerprint_dyn(), a.clone_box().fingerprint_dyn());
        // Different values (almost surely) fingerprint differently.
        assert_ne!(a.fingerprint_dyn(), b.fingerprint_dyn());
    }

    #[test]
    #[should_panic(expected = "mixed region types")]
    fn mixing_region_types_panics() {
        let a: Box<dyn DynRegion> = Box::new(r2([0, 0], [1, 1]));
        let b: Box<dyn DynRegion> = Box::new(allscale_region::IntervalRegion::span(0, 5));
        let _ = a.union_dyn(b.as_ref());
    }
}

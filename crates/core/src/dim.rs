//! The per-locality data item manager (paper Section 3.2).
//!
//! "A data item manager instance in each AllScale process maintains
//! fragments of data items and actively manages contained data by
//! performing resizing, import, and export operations. Furthermore, the
//! data item manager keeps track of the lock states Lr and Lw of locally
//! maintained data item regions."
//!
//! Each locality owns one [`DataItemManager`]. It distinguishes:
//!
//! - the **owned** region of each item — the primary copy, registered in
//!   the distributed index;
//! - **replica** coverage — read-only copies imported for the duration of
//!   a task (released at task end, per the model's lock discipline);
//! - **exports** — records of *our* owned data currently replicated at
//!   other localities; a write lock cannot be granted while an export of
//!   the region is outstanding (the model's exclusive-writes property).

use std::collections::{BTreeMap, BTreeSet};

use crate::dynamic::{DynFragment, DynRegion, ItemDescriptor};
use crate::task::{AccessMode, ItemId, Requirement, TaskId};

/// Why a lock could not be granted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockConflict {
    /// The region overlaps a write lock held by another task.
    WriteLocked(ItemId),
    /// A write was requested on a region overlapping a read lock.
    ReadLocked(ItemId),
    /// A write was requested while replicas of the region are outstanding
    /// at other localities.
    Exported(ItemId),
}

struct ItemSlot {
    desc: ItemDescriptor,
    frag: Box<dyn DynFragment>,
    /// Primary-ownership region (what the index advertises for us).
    owned: Box<dyn DynRegion>,
    /// Granted read locks.
    rlocks: Vec<(TaskId, Box<dyn DynRegion>)>,
    /// Granted write locks.
    wlocks: Vec<(TaskId, Box<dyn DynRegion>)>,
    /// Replicas of our owned data held elsewhere: (holder, reading task,
    /// region).
    exports: Vec<(usize, TaskId, Box<dyn DynRegion>)>,
    /// Transient replica coverage imported here, per holding task.
    holds: Vec<(TaskId, Box<dyn DynRegion>)>,
    /// Persistent replica coverage (broadcast read-mostly data).
    persistent: Box<dyn DynRegion>,
    /// Regions whose ownership migration *to* this locality is still in
    /// flight, per receiving task. The index already advertises us as
    /// the owner (so concurrent planners cannot first-touch a second
    /// primary into existence), but the data has not landed: any task
    /// needing the region must park until the arrival lifts the fence.
    inbound: Vec<(TaskId, Box<dyn DynRegion>)>,
}

/// The data item manager of one locality.
pub struct DataItemManager {
    locality: usize,
    items: BTreeMap<ItemId, ItemSlot>,
    /// Copy-on-write snapshot capture (asynchronous checkpointing).
    /// While a snapshot is armed, every item whose owned data is about
    /// to mutate has its boundary-time pre-image serialized first —
    /// the clone-on-first-write half of the hold machinery; untouched
    /// items are serialized lazily when the drain finishes.
    snap_armed: BTreeSet<ItemId>,
    /// Pre-images captured by first writes since the snapshot was armed.
    snap_captured: BTreeMap<ItemId, Vec<u8>>,
    /// Whether a snapshot capture is currently armed.
    snap_active: bool,
    /// Pre-image clones taken by first writes (drained by the runtime's
    /// resilience accounting).
    cow_captures: u64,
}

impl DataItemManager {
    /// The manager for `locality`.
    pub fn new(locality: usize) -> Self {
        DataItemManager {
            locality,
            items: BTreeMap::new(),
            snap_armed: BTreeSet::new(),
            snap_captured: BTreeMap::new(),
            snap_active: false,
            cow_captures: 0,
        }
    }

    /// The locality this manager belongs to.
    pub fn locality(&self) -> usize {
        self.locality
    }

    /// Register a data item (the paper's `create` action, executed on every
    /// locality — creation allocates nothing).
    pub fn register(&mut self, item: ItemId, desc: ItemDescriptor) {
        let frag = (desc.empty_fragment)();
        let owned = (desc.empty_region)();
        let persistent = (desc.empty_region)();
        self.items.insert(
            item,
            ItemSlot {
                desc,
                frag,
                owned,
                rlocks: Vec::new(),
                wlocks: Vec::new(),
                exports: Vec::new(),
                holds: Vec::new(),
                persistent,
                inbound: Vec::new(),
            },
        );
    }

    /// Remove a data item entirely (the paper's `destroy` action).
    pub fn destroy(&mut self, item: ItemId) {
        self.cow_capture(item);
        self.items.remove(&item);
    }

    // ---- copy-on-write snapshot capture ---------------------------------

    /// Arm a copy-on-write snapshot of the current boundary state: every
    /// registered item is marked, and its pre-image is serialized on the
    /// first subsequent mutation (or lazily at
    /// [`DataItemManager::finish_snapshot`] if it is never touched).
    /// Arming is O(items) — no data is copied up front.
    pub fn arm_snapshot(&mut self) {
        self.snap_armed = self.items.keys().copied().collect();
        self.snap_captured.clear();
        self.snap_active = true;
    }

    /// Whether a copy-on-write snapshot capture is currently armed.
    pub fn snapshot_active(&self) -> bool {
        self.snap_active
    }

    /// Capture `item`'s boundary-time pre-image if a snapshot is armed and
    /// the item has not been captured yet (clone-on-first-write).
    fn cow_capture(&mut self, item: ItemId) {
        if !self.snap_active || !self.snap_armed.remove(&item) {
            return;
        }
        if let Some(slot) = self.items.get(&item) {
            let bytes = slot.frag.extract_dyn(slot.owned.as_ref()).encode();
            self.snap_captured.insert(item, bytes);
            self.cow_captures += 1;
        }
    }

    /// Complete the armed snapshot: lazily serialize every item that was
    /// never mutated since arming and return the full boundary state —
    /// bit-identical to what [`DataItemManager::checkpoint`] would have
    /// produced at arm time (ascending [`ItemId`] order). Items created
    /// after arming are excluded; items destroyed after arming appear
    /// with their pre-destruction data.
    pub fn finish_snapshot(&mut self) -> Vec<(ItemId, Vec<u8>)> {
        let armed = std::mem::take(&mut self.snap_armed);
        for id in armed {
            if let Some(slot) = self.items.get(&id) {
                let bytes = slot.frag.extract_dyn(slot.owned.as_ref()).encode();
                self.snap_captured.insert(id, bytes);
            }
        }
        self.snap_active = false;
        std::mem::take(&mut self.snap_captured).into_iter().collect()
    }

    /// Abandon the armed snapshot without producing it (the drain it was
    /// feeding was torn by a failure).
    pub fn abort_snapshot(&mut self) {
        self.snap_armed.clear();
        self.snap_captured.clear();
        self.snap_active = false;
    }

    /// Drain the count of pre-image clones taken by first writes since the
    /// last call (resilience accounting).
    pub fn take_cow_captures(&mut self) -> u64 {
        std::mem::take(&mut self.cow_captures)
    }

    /// Per-item fingerprint of the owned data: `(item, fnv1a-64 of the
    /// serialized owned region, serialized length)`, ascending [`ItemId`]
    /// order — the change-detection input of incremental checkpointing.
    pub fn owned_fingerprints(&self) -> Vec<(ItemId, u64, u64)> {
        self.items
            .iter()
            .map(|(&id, slot)| {
                let bytes = slot.frag.extract_dyn(slot.owned.as_ref()).encode();
                (id, allscale_region::fnv1a_64(&bytes), bytes.len() as u64)
            })
            .collect()
    }

    /// Whether the item is registered here.
    pub fn knows(&self, item: ItemId) -> bool {
        self.items.contains_key(&item)
    }

    /// The descriptor of an item.
    pub fn descriptor(&self, item: ItemId) -> &ItemDescriptor {
        &self.slot(item).desc
    }

    /// The region this locality owns (primary copies).
    pub fn owned_region(&self, item: ItemId) -> Box<dyn DynRegion> {
        self.slot(item).owned.clone_box()
    }

    /// The full coverage of the local fragment (owned + replicas).
    pub fn covered_region(&self, item: ItemId) -> Box<dyn DynRegion> {
        self.slot(item).frag.region_dyn()
    }

    /// Whether `region` is fully covered by local data.
    pub fn covers(&self, item: ItemId, region: &dyn DynRegion) -> bool {
        region
            .difference_dyn(self.slot(item).frag.region_dyn().as_ref())
            .is_empty_dyn()
    }

    /// The region a *new* task may rely on for reads without fetching:
    /// owned data plus persistent replicas. Transient replicas held by
    /// other tasks are excluded — they may be dropped at any completion.
    pub fn read_base(&self, item: ItemId) -> Box<dyn DynRegion> {
        let slot = self.slot(item);
        slot.owned.union_dyn(slot.persistent.as_ref())
    }

    /// Whether `region` is covered by the stable read base.
    pub fn covers_stable(&self, item: ItemId, region: &dyn DynRegion) -> bool {
        region
            .difference_dyn(self.read_base(item).as_ref())
            .is_empty_dyn()
    }

    /// First-touch allocation (the model's (init) rule): extend ownership
    /// and allocate default-initialized storage for `region`.
    pub fn init_owned(&mut self, item: ItemId, region: &dyn DynRegion) {
        self.cow_capture(item);
        let slot = self.slot_mut(item);
        let fresh = (slot.desc.alloc_fragment)(region);
        // Do not clobber data we already hold: only insert the truly new
        // part, then union ownership.
        let missing = region.difference_dyn(slot.frag.region_dyn().as_ref());
        if !missing.is_empty_dyn() {
            let fresh_missing = fresh.extract_dyn(missing.as_ref());
            slot.frag.insert_dyn(fresh_missing.as_ref());
        }
        slot.owned = slot.owned.union_dyn(region);
    }

    /// Export (copy out) `region` of our data as serialized bytes for a
    /// transfer; the export is recorded against `task` at `holder` when the
    /// transfer is a replica (read), so writes can be fenced.
    pub fn export_replica(
        &mut self,
        item: ItemId,
        region: &dyn DynRegion,
        holder: usize,
        task: TaskId,
    ) -> Vec<u8> {
        let slot = self.slot_mut(item);
        let sub = slot.frag.extract_dyn(region);
        let bytes = sub.encode();
        slot.exports.push((holder, task, region.clone_box()));
        bytes
    }

    /// Extract `region` for a migration: data and ownership leave this
    /// locality.
    pub fn export_migration(&mut self, item: ItemId, region: &dyn DynRegion) -> Vec<u8> {
        self.cow_capture(item);
        let slot = self.slot_mut(item);
        let sub = slot.frag.extract_dyn(region);
        let bytes = sub.encode();
        slot.frag.remove_dyn(region);
        slot.owned = slot.owned.difference_dyn(region);
        bytes
    }

    /// Import serialized fragment data as a read replica held by `task`
    /// for the duration of its execution.
    pub fn import_replica(&mut self, item: ItemId, bytes: &[u8], task: TaskId) {
        self.cow_capture(item);
        let slot = self.slot_mut(item);
        let frag = (slot.desc.decode_fragment)(bytes);
        let region = frag.region_dyn();
        slot.frag.insert_dyn(frag.as_ref());
        slot.holds.push((task, region));
    }

    /// Import serialized fragment data as a persistent replica (broadcast
    /// read-mostly data, e.g. the top levels of a static tree).
    pub fn import_persistent(&mut self, item: ItemId, bytes: &[u8]) {
        self.cow_capture(item);
        let slot = self.slot_mut(item);
        let frag = (slot.desc.decode_fragment)(bytes);
        let region = frag.region_dyn();
        slot.frag.insert_dyn(frag.as_ref());
        slot.persistent = slot.persistent.union_dyn(region.as_ref());
    }

    /// Fence `region` as an in-flight inbound migration for `task`: the
    /// index already names this locality as the region's owner, but the
    /// data is still on the wire. Planners must treat the region as
    /// unavailable until [`DataItemManager::release_inbound`] lifts the
    /// fence at arrival.
    pub fn fence_inbound(&mut self, item: ItemId, task: TaskId, region: &dyn DynRegion) {
        self.slot_mut(item).inbound.push((task, region.clone_box()));
    }

    /// Lift one inbound-migration fence of `task` matching `region`
    /// exactly (its transfer arrived). Other in-flight pieces of the
    /// same task stay fenced.
    pub fn release_inbound(&mut self, item: ItemId, task: TaskId, region: &dyn DynRegion) {
        let slot = self.slot_mut(item);
        if let Some(i) = slot.inbound.iter().position(|(t, r)| {
            *t == task
                && r.difference_dyn(region).is_empty_dyn()
                && region.difference_dyn(r.as_ref()).is_empty_dyn()
        }) {
            slot.inbound.remove(i);
        }
    }

    /// Whether any part of `region` is behind an inbound-migration fence.
    pub fn inbound_fenced(&self, item: ItemId, region: &dyn DynRegion) -> bool {
        self.slot(item)
            .inbound
            .iter()
            .any(|(_, r)| !r.intersect_dyn(region).is_empty_dyn())
    }

    /// Import serialized fragment data as owned (migration arrival).
    pub fn import_owned(&mut self, item: ItemId, bytes: &[u8]) {
        self.cow_capture(item);
        let slot = self.slot_mut(item);
        let frag = (slot.desc.decode_fragment)(bytes);
        let region = frag.region_dyn();
        slot.frag.insert_dyn(frag.as_ref());
        slot.owned = slot.owned.union_dyn(region.as_ref());
    }

    /// Release the export records of `task` (its replicas elsewhere were
    /// dropped). Returns whether anything was released.
    pub fn release_exports_of(&mut self, item: ItemId, task: TaskId) -> bool {
        let slot = self.slot_mut(item);
        let before = slot.exports.len();
        slot.exports.retain(|(_, t, _)| *t != task);
        slot.exports.len() != before
    }

    /// Release `task`'s transient replica holds of `item`; physical data is
    /// dropped only where no other task (and no persistent replica or
    /// owned region) still covers it — the model's "runtime can remove
    /// replicated data" with reference counting.
    pub fn drop_replica_holds(&mut self, item: ItemId, task: TaskId) {
        let slot = self.slot_mut(item);
        let mut released: Option<Box<dyn DynRegion>> = None;
        slot.holds.retain(|(t, r)| {
            if *t == task {
                released = Some(match released.take() {
                    None => r.clone_box(),
                    Some(acc) => acc.union_dyn(r.as_ref()),
                });
                false
            } else {
                true
            }
        });
        let Some(mut drop) = released else { return };
        drop = drop.difference_dyn(slot.owned.as_ref());
        drop = drop.difference_dyn(slot.persistent.as_ref());
        for (_, r) in &slot.holds {
            if drop.is_empty_dyn() {
                break;
            }
            drop = drop.difference_dyn(r.as_ref());
        }
        if !drop.is_empty_dyn() {
            slot.frag.remove_dyn(drop.as_ref());
        }
    }

    /// Try to acquire the locks for all `reqs` on behalf of `task`
    /// (atomically: either all granted or none).
    pub fn try_lock(&mut self, task: TaskId, reqs: &[Requirement]) -> Result<(), LockConflict> {
        // Validation pass.
        for req in reqs {
            let slot = self.slot(req.item);
            let region = req.region.as_ref();
            match req.mode {
                AccessMode::Read => {
                    for (t, w) in &slot.wlocks {
                        if *t != task && !w.intersect_dyn(region).is_empty_dyn() {
                            return Err(LockConflict::WriteLocked(req.item));
                        }
                    }
                }
                AccessMode::Write => {
                    for (t, w) in &slot.wlocks {
                        if *t != task && !w.intersect_dyn(region).is_empty_dyn() {
                            return Err(LockConflict::WriteLocked(req.item));
                        }
                    }
                    for (t, r) in &slot.rlocks {
                        if *t != task && !r.intersect_dyn(region).is_empty_dyn() {
                            return Err(LockConflict::ReadLocked(req.item));
                        }
                    }
                    for (_, _, e) in &slot.exports {
                        if !e.intersect_dyn(region).is_empty_dyn() {
                            return Err(LockConflict::Exported(req.item));
                        }
                    }
                }
            }
        }
        // Grant pass.
        for req in reqs {
            let slot = self.slot_mut(req.item);
            match req.mode {
                AccessMode::Read => slot.rlocks.push((task, req.region.clone_box())),
                AccessMode::Write => slot.wlocks.push((task, req.region.clone_box())),
            }
        }
        Ok(())
    }

    /// Whether any lock at all is currently held on `item`.
    pub fn has_locks(&self, item: ItemId) -> bool {
        let slot = self.slot(item);
        !slot.rlocks.is_empty() || !slot.wlocks.is_empty()
    }

    /// Whether any lock (read or write) intersects `region`.
    pub fn locked_any(&self, item: ItemId, region: &dyn DynRegion) -> bool {
        let slot = self.slot(item);
        slot.wlocks
            .iter()
            .chain(slot.rlocks.iter())
            .any(|(_, r)| !r.intersect_dyn(region).is_empty_dyn())
    }

    /// Whether a write lock intersects `region`.
    pub fn write_locked(&self, item: ItemId, region: &dyn DynRegion) -> bool {
        let slot = self.slot(item);
        slot.wlocks
            .iter()
            .any(|(_, r)| !r.intersect_dyn(region).is_empty_dyn())
    }

    /// The persistent-replica coverage of `item` held here (broadcast
    /// read-mostly data imported via [`DataItemManager::import_persistent`]).
    pub fn persistent_region(&self, item: ItemId) -> Box<dyn DynRegion> {
        self.slot(item).persistent.clone_box()
    }

    /// The union of *persistent* export records of `item` — regions of our
    /// owned data replicated elsewhere for the rest of the run (sentinel
    /// task id), which must stay write-fenced and owned here as long as
    /// those replicas exist. Input to the fenced-writes consistency check.
    pub fn persistent_export_region(&self, item: ItemId) -> Box<dyn DynRegion> {
        let slot = self.slot(item);
        let mut acc = (slot.desc.empty_region)();
        for (_, task, region) in &slot.exports {
            if *task == TaskId(u64::MAX) {
                acc = acc.union_dyn(region.as_ref());
            }
        }
        acc
    }

    /// Serialize `region` of the local fragment without recording an
    /// export or touching any bookkeeping — the read-only audit primitive
    /// of the integrity scrubber (fingerprint comparison and repair
    /// payloads).
    pub fn peek_bytes(&self, item: ItemId, region: &dyn DynRegion) -> Vec<u8> {
        self.slot(item).frag.extract_dyn(region).encode()
    }

    /// Evict the persistent-replica coverage of `item` (the integrity
    /// scrubber's quarantine of a repeatedly divergent replica). Physical
    /// data is dropped only where nothing else — owned region or a
    /// transient hold — still covers it; the owner's export fence is
    /// unaffected.
    pub fn drop_persistent(&mut self, item: ItemId) {
        self.cow_capture(item);
        let slot = self.slot_mut(item);
        let mut drop = std::mem::replace(&mut slot.persistent, (slot.desc.empty_region)());
        drop = drop.difference_dyn(slot.owned.as_ref());
        for (_, r) in &slot.holds {
            if drop.is_empty_dyn() {
                break;
            }
            drop = drop.difference_dyn(r.as_ref());
        }
        if !drop.is_empty_dyn() {
            slot.frag.remove_dyn(drop.as_ref());
        }
    }

    /// Shrink the persistent-replica coverage of `item` by `region` — the
    /// serving subsystem's *write invalidation* (and the SLO controller's
    /// region-precise replica retirement) at a holder. Physical data is
    /// dropped only where nothing else — owned region or a transient hold
    /// — still covers it, mirroring [`DataItemManager::drop_persistent`].
    pub fn drop_persistent_region(&mut self, item: ItemId, region: &dyn DynRegion) {
        self.cow_capture(item);
        let slot = self.slot_mut(item);
        let mut drop = slot.persistent.intersect_dyn(region);
        slot.persistent = slot.persistent.difference_dyn(region);
        drop = drop.difference_dyn(slot.owned.as_ref());
        for (_, r) in &slot.holds {
            if drop.is_empty_dyn() {
                break;
            }
            drop = drop.difference_dyn(r.as_ref());
        }
        if !drop.is_empty_dyn() {
            slot.frag.remove_dyn(drop.as_ref());
        }
    }

    /// Shrink the *persistent* (sentinel-task) export records of `item` by
    /// `region` at the owner — lifts the broadcast write fence for exactly
    /// the invalidated part, leaving other persistent fences and all
    /// transient (per-task) exports intact. The counterpart of
    /// [`DataItemManager::drop_persistent_region`] on the owner side; the
    /// two must be applied together or the fenced-writes invariant breaks.
    pub fn release_persistent_exports(&mut self, item: ItemId, region: &dyn DynRegion) {
        let slot = self.slot_mut(item);
        let mut kept = Vec::with_capacity(slot.exports.len());
        for (holder, task, r) in slot.exports.drain(..) {
            if task == TaskId(u64::MAX) {
                let rest = r.difference_dyn(region);
                if !rest.is_empty_dyn() {
                    kept.push((holder, task, rest));
                }
            } else {
                kept.push((holder, task, r));
            }
        }
        slot.exports = kept;
    }

    /// Whether an outstanding export intersects `region`.
    pub fn exported(&self, item: ItemId, region: &dyn DynRegion) -> bool {
        let slot = self.slot(item);
        slot.exports
            .iter()
            .any(|(_, _, r)| !r.intersect_dyn(region).is_empty_dyn())
    }

    /// Release every lock held by `task` (the model's (end) rule).
    pub fn unlock_all(&mut self, task: TaskId) {
        for slot in self.items.values_mut() {
            slot.rlocks.retain(|(t, _)| *t != task);
            slot.wlocks.retain(|(t, _)| *t != task);
        }
    }

    /// Type-erased fragment access for [`crate::task::TaskCtx`].
    pub(crate) fn fragment_any(&self, item: ItemId) -> &dyn std::any::Any {
        self.slot(item).frag.as_any()
    }

    /// Type-erased mutable fragment access.
    pub(crate) fn fragment_any_mut(&mut self, item: ItemId) -> &mut dyn std::any::Any {
        self.cow_capture(item);
        self.slot_mut(item).frag.as_any_mut()
    }

    /// Split-borrow two distinct items.
    pub(crate) fn fragment_pair_any(
        &mut self,
        a: ItemId,
        b: ItemId,
    ) -> (&dyn std::any::Any, &mut dyn std::any::Any) {
        assert_ne!(a, b, "fragment_pair_mut requires distinct items");
        self.cow_capture(b);
        // Obtain two mutable references via a double lookup on the map.
        // BTreeMap has no get_many_mut; use pointer juggling through
        // iter_mut, which yields disjoint &mut.
        let mut fa: Option<*const dyn std::any::Any> = None;
        let mut fb: Option<&mut Box<dyn DynFragment>> = None;
        for (k, slot) in self.items.iter_mut() {
            if *k == a {
                fa = Some(slot.frag.as_any() as *const _);
            } else if *k == b {
                fb = Some(&mut slot.frag);
            }
        }
        let fa = fa.expect("unknown item in fragment_pair");
        let fb = fb.expect("unknown item in fragment_pair");
        // SAFETY: `a != b`, so the two references point into different map
        // slots; the shared ref for `a` cannot alias the unique ref for `b`.
        (unsafe { &*fa }, fb.as_any_mut())
    }

    /// All registered items.
    pub fn item_ids(&self) -> Vec<ItemId> {
        self.items.keys().copied().collect()
    }

    /// Serialize the *owned* portion of every item — the checkpointing
    /// payload of the resilience manager.
    pub fn checkpoint(&self) -> Vec<(ItemId, Vec<u8>)> {
        self.items
            .iter()
            .map(|(&id, slot)| {
                let owned_data = slot.frag.extract_dyn(slot.owned.as_ref());
                (id, owned_data.encode())
            })
            .collect()
    }

    /// Restore owned data from a checkpoint produced by
    /// [`DataItemManager::checkpoint`]. Items must be registered already.
    ///
    /// The fragment is replaced wholesale by the snapshot's owned data, so
    /// every piece of transient state layered on top — locks, exports,
    /// replica holds, persistent-replica coverage — is reset: the bytes
    /// backing those claims are gone.
    pub fn restore(&mut self, snapshot: &[(ItemId, Vec<u8>)]) {
        for (id, bytes) in snapshot {
            self.cow_capture(*id);
            let slot = self.slot_mut(*id);
            let frag = (slot.desc.decode_fragment)(bytes);
            let region = frag.region_dyn();
            slot.frag = frag;
            slot.owned = region;
            slot.rlocks.clear();
            slot.wlocks.clear();
            slot.exports.clear();
            slot.holds.clear();
            slot.persistent = (slot.desc.empty_region)();
            slot.inbound.clear();
        }
    }

    /// Drop all data and transient state of every item, keeping the
    /// registrations — the state of a replacement process joining after a
    /// fail-stop crash: it knows the item types, but holds nothing.
    pub fn wipe_all(&mut self) {
        let descs: Vec<(ItemId, ItemDescriptor)> = self
            .items
            .iter()
            .map(|(&id, slot)| (id, slot.desc.clone()))
            .collect();
        for (id, desc) in descs {
            self.cow_capture(id);
            self.register(id, desc);
        }
    }

    fn slot(&self, item: ItemId) -> &ItemSlot {
        self.items
            .get(&item)
            .unwrap_or_else(|| panic!("unknown data item {item:?}"))
    }

    fn slot_mut(&mut self, item: ItemId) -> &mut ItemSlot {
        self.items
            .get_mut(&item)
            .unwrap_or_else(|| panic!("unknown data item {item:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::ItemDescriptor;
    use allscale_region::{BoxRegion, GridFragment, ItemType, Point};

    struct G2;
    impl ItemType for G2 {
        type Region = BoxRegion<2>;
        type Fragment = GridFragment<f64, 2>;
        const BYTES_PER_ELEMENT: usize = 8;
    }

    fn mk() -> DataItemManager {
        let mut dim = DataItemManager::new(0);
        dim.register(ItemId(0), ItemDescriptor::of::<G2>("grid"));
        dim
    }

    fn r2(lo: [i64; 2], hi: [i64; 2]) -> BoxRegion<2> {
        BoxRegion::cuboid(lo, hi)
    }

    #[test]
    fn init_allocates_defaults() {
        let mut dim = mk();
        dim.init_owned(ItemId(0), &r2([0, 0], [4, 4]));
        assert!(dim.covers(ItemId(0), &r2([1, 1], [3, 3])));
        assert!(!dim.covers(ItemId(0), &r2([0, 0], [5, 5])));
        let frag = dim
            .fragment_any(ItemId(0))
            .downcast_ref::<GridFragment<f64, 2>>()
            .unwrap();
        assert_eq!(frag.get(&Point([2, 2])), Some(&0.0));
    }

    #[test]
    fn init_does_not_clobber_existing_values() {
        let mut dim = mk();
        dim.init_owned(ItemId(0), &r2([0, 0], [2, 2]));
        dim.fragment_any_mut(ItemId(0))
            .downcast_mut::<GridFragment<f64, 2>>()
            .unwrap()
            .set(&Point([1, 1]), 5.0);
        // Re-init an overlapping region: existing value must survive.
        dim.init_owned(ItemId(0), &r2([0, 0], [4, 4]));
        let frag = dim
            .fragment_any(ItemId(0))
            .downcast_ref::<GridFragment<f64, 2>>()
            .unwrap();
        assert_eq!(frag.get(&Point([1, 1])), Some(&5.0));
        assert_eq!(frag.get(&Point([3, 3])), Some(&0.0));
    }

    #[test]
    fn migration_moves_ownership_and_data() {
        let mut a = mk();
        let mut b = {
            let mut dim = DataItemManager::new(1);
            dim.register(ItemId(0), ItemDescriptor::of::<G2>("grid"));
            dim
        };
        a.init_owned(ItemId(0), &r2([0, 0], [4, 4]));
        a.fragment_any_mut(ItemId(0))
            .downcast_mut::<GridFragment<f64, 2>>()
            .unwrap()
            .set(&Point([3, 0]), 7.0);
        let moved = a.export_migration(ItemId(0), &r2([2, 0], [4, 4]));
        b.import_owned(ItemId(0), &moved);
        assert!(a.owned_region(ItemId(0)).eq_dyn(&r2([0, 0], [2, 4])));
        assert!(b.owned_region(ItemId(0)).eq_dyn(&r2([2, 0], [4, 4])));
        let frag = b
            .fragment_any(ItemId(0))
            .downcast_ref::<GridFragment<f64, 2>>()
            .unwrap();
        assert_eq!(frag.get(&Point([3, 0])), Some(&7.0));
    }

    #[test]
    fn read_locks_share_write_locks_exclude() {
        let mut dim = mk();
        dim.init_owned(ItemId(0), &r2([0, 0], [8, 8]));
        let t1 = TaskId(1);
        let t2 = TaskId(2);
        // Two overlapping readers: fine.
        dim.try_lock(t1, &[Requirement::read(ItemId(0), r2([0, 0], [4, 4]))])
            .unwrap();
        dim.try_lock(t2, &[Requirement::read(ItemId(0), r2([2, 2], [6, 6]))])
            .unwrap();
        // Writer overlapping a read lock: rejected.
        let w = dim.try_lock(TaskId(3), &[Requirement::write(ItemId(0), r2([3, 3], [5, 5]))]);
        assert_eq!(w, Err(LockConflict::ReadLocked(ItemId(0))));
        // Disjoint writer: granted.
        dim.try_lock(TaskId(3), &[Requirement::write(ItemId(0), r2([6, 6], [8, 8]))])
            .unwrap();
        // Reader overlapping the write: rejected.
        let r = dim.try_lock(TaskId(4), &[Requirement::read(ItemId(0), r2([7, 7], [8, 8]))]);
        assert_eq!(r, Err(LockConflict::WriteLocked(ItemId(0))));
        // Unlock the readers; now the writer over their region succeeds.
        dim.unlock_all(t1);
        dim.unlock_all(t2);
        dim.try_lock(TaskId(5), &[Requirement::write(ItemId(0), r2([3, 3], [5, 5]))])
            .unwrap();
    }

    #[test]
    fn lock_acquisition_is_atomic() {
        let mut dim = mk();
        dim.register(ItemId(1), ItemDescriptor::of::<G2>("grid2"));
        dim.init_owned(ItemId(0), &r2([0, 0], [4, 4]));
        dim.init_owned(ItemId(1), &r2([0, 0], [4, 4]));
        dim.try_lock(TaskId(1), &[Requirement::write(ItemId(1), r2([0, 0], [4, 4]))])
            .unwrap();
        // Request locks on item0 (free) and item1 (conflicting): must fail
        // without granting the item0 lock.
        let res = dim.try_lock(
            TaskId(2),
            &[
                Requirement::write(ItemId(0), r2([0, 0], [2, 2])),
                Requirement::write(ItemId(1), r2([0, 0], [1, 1])),
            ],
        );
        assert!(res.is_err());
        // Item0 must still be lockable by someone else in full.
        dim.try_lock(TaskId(3), &[Requirement::write(ItemId(0), r2([0, 0], [4, 4]))])
            .unwrap();
    }

    #[test]
    fn exports_fence_writers() {
        let mut dim = mk();
        dim.init_owned(ItemId(0), &r2([0, 0], [4, 4]));
        let bytes = dim.export_replica(ItemId(0), &r2([0, 0], [2, 2]), 1, TaskId(9));
        assert!(!bytes.is_empty());
        // Writing the exported region is fenced.
        let res = dim.try_lock(TaskId(1), &[Requirement::write(ItemId(0), r2([1, 1], [3, 3]))]);
        assert_eq!(res, Err(LockConflict::Exported(ItemId(0))));
        // Reads are fine.
        dim.try_lock(TaskId(2), &[Requirement::read(ItemId(0), r2([1, 1], [3, 3]))])
            .unwrap();
        // After release (and the reader finishing), the writer proceeds.
        assert!(dim.release_exports_of(ItemId(0), TaskId(9)));
        dim.unlock_all(TaskId(2));
        dim.try_lock(TaskId(1), &[Requirement::write(ItemId(0), r2([1, 1], [3, 3]))])
            .unwrap();
    }

    #[test]
    fn replica_import_and_drop() {
        let mut owner = mk();
        let mut reader = {
            let mut dim = DataItemManager::new(1);
            dim.register(ItemId(0), ItemDescriptor::of::<G2>("grid"));
            dim
        };
        owner.init_owned(ItemId(0), &r2([0, 0], [4, 4]));
        owner
            .fragment_any_mut(ItemId(0))
            .downcast_mut::<GridFragment<f64, 2>>()
            .unwrap()
            .set(&Point([1, 1]), 3.5);
        reader.init_owned(ItemId(0), &r2([4, 0], [8, 4]));
        let bytes = owner.export_replica(ItemId(0), &r2([0, 0], [2, 4]), 1, TaskId(1));
        reader.import_replica(ItemId(0), &bytes, TaskId(1));
        assert!(reader.covers(ItemId(0), &r2([1, 1], [2, 2])));
        // Replica values visible.
        let frag = reader
            .fragment_any(ItemId(0))
            .downcast_ref::<GridFragment<f64, 2>>()
            .unwrap();
        assert_eq!(frag.get(&Point([1, 1])), Some(&3.5));
        // Dropping the replica must not touch owned data.
        reader.drop_replica_holds(ItemId(0), TaskId(1));
        assert!(!reader.covers(ItemId(0), &r2([1, 1], [2, 2])));
        assert!(reader.covers(ItemId(0), &r2([4, 0], [8, 4])));

        // Refcounting: overlapping holds of two tasks survive one drop.
        let bytes2 = owner.export_replica(ItemId(0), &r2([0, 0], [2, 4]), 1, TaskId(2));
        reader.import_replica(ItemId(0), &bytes2, TaskId(2));
        let bytes3 = owner.export_replica(ItemId(0), &r2([0, 0], [1, 4]), 1, TaskId(3));
        reader.import_replica(ItemId(0), &bytes3, TaskId(3));
        reader.drop_replica_holds(ItemId(0), TaskId(2));
        assert!(reader.covers(ItemId(0), &r2([0, 0], [1, 4])), "task 3 hold survives");
        assert!(!reader.covers(ItemId(0), &r2([1, 0], [2, 4])), "task 2 part dropped");
    }

    #[test]
    fn checkpoint_restore_round_trip() {
        let mut dim = mk();
        dim.init_owned(ItemId(0), &r2([0, 0], [3, 3]));
        dim.fragment_any_mut(ItemId(0))
            .downcast_mut::<GridFragment<f64, 2>>()
            .unwrap()
            .set(&Point([2, 2]), 11.0);
        let snap = dim.checkpoint();

        // Corrupt the state, then restore.
        dim.fragment_any_mut(ItemId(0))
            .downcast_mut::<GridFragment<f64, 2>>()
            .unwrap()
            .set(&Point([2, 2]), -1.0);
        dim.restore(&snap);
        let frag = dim
            .fragment_any(ItemId(0))
            .downcast_ref::<GridFragment<f64, 2>>()
            .unwrap();
        assert_eq!(frag.get(&Point([2, 2])), Some(&11.0));
        assert!(dim.owned_region(ItemId(0)).eq_dyn(&r2([0, 0], [3, 3])));
    }

    #[test]
    fn restore_resets_replica_and_persistent_state() {
        let mut dim = mk();
        dim.init_owned(ItemId(0), &r2([0, 0], [2, 2]));
        let snap = dim.checkpoint();
        // Layer transient state on top: a persistent import and an export.
        let bytes = dim.export_replica(ItemId(0), &r2([0, 0], [1, 1]), 1, TaskId(u64::MAX));
        dim.import_persistent(ItemId(0), &bytes);
        assert!(!dim.persistent_region(ItemId(0)).is_empty_dyn());
        assert!(!dim.persistent_export_region(ItemId(0)).is_empty_dyn());
        dim.restore(&snap);
        assert!(dim.persistent_region(ItemId(0)).is_empty_dyn());
        assert!(dim.persistent_export_region(ItemId(0)).is_empty_dyn());
        assert!(dim.owned_region(ItemId(0)).eq_dyn(&r2([0, 0], [2, 2])));
    }

    #[test]
    fn wipe_all_keeps_registrations_drops_data() {
        let mut dim = mk();
        dim.init_owned(ItemId(0), &r2([0, 0], [4, 4]));
        dim.try_lock(TaskId(1), &[Requirement::write(ItemId(0), r2([0, 0], [2, 2]))])
            .unwrap();
        dim.wipe_all();
        assert!(dim.knows(ItemId(0)));
        assert!(dim.owned_region(ItemId(0)).is_empty_dyn());
        assert!(!dim.has_locks(ItemId(0)));
        // The wiped item is still usable.
        dim.init_owned(ItemId(0), &r2([1, 1], [3, 3]));
        assert!(dim.covers(ItemId(0), &r2([1, 1], [3, 3])));
    }

    #[test]
    fn peek_bytes_is_side_effect_free() {
        let mut owner = mk();
        owner.init_owned(ItemId(0), &r2([0, 0], [4, 4]));
        owner
            .fragment_any_mut(ItemId(0))
            .downcast_mut::<GridFragment<f64, 2>>()
            .unwrap()
            .set(&Point([1, 1]), 9.0);
        let peeked = owner.peek_bytes(ItemId(0), &r2([0, 0], [2, 2]));
        // Same bytes an export would produce, but no fence recorded.
        assert!(!peeked.is_empty());
        assert!(!owner.exported(ItemId(0), &r2([0, 0], [2, 2])));
        let exported = owner.export_replica(ItemId(0), &r2([0, 0], [2, 2]), 1, TaskId(1));
        assert_eq!(peeked, exported);
    }

    #[test]
    fn drop_persistent_evicts_replica_but_not_owned_data() {
        let mut owner = mk();
        let mut holder = {
            let mut dim = DataItemManager::new(1);
            dim.register(ItemId(0), ItemDescriptor::of::<G2>("grid"));
            dim
        };
        owner.init_owned(ItemId(0), &r2([0, 0], [2, 2]));
        holder.init_owned(ItemId(0), &r2([4, 0], [6, 2]));
        let bytes = owner.export_replica(ItemId(0), &r2([0, 0], [2, 2]), 1, TaskId(u64::MAX));
        holder.import_persistent(ItemId(0), &bytes);
        assert!(holder.covers_stable(ItemId(0), &r2([0, 0], [2, 2])));
        holder.drop_persistent(ItemId(0));
        assert!(holder.persistent_region(ItemId(0)).is_empty_dyn());
        assert!(!holder.covers(ItemId(0), &r2([0, 0], [2, 2])));
        assert!(holder.covers(ItemId(0), &r2([4, 0], [6, 2])), "owned data survives");
    }

    #[test]
    fn region_precise_invalidation_lifts_fence_and_keeps_rest() {
        let mut owner = mk();
        let mut holder = {
            let mut dim = DataItemManager::new(1);
            dim.register(ItemId(0), ItemDescriptor::of::<G2>("grid"));
            dim
        };
        owner.init_owned(ItemId(0), &r2([0, 0], [4, 4]));
        let bytes = owner.export_replica(ItemId(0), &r2([0, 0], [4, 4]), 1, TaskId(u64::MAX));
        holder.import_persistent(ItemId(0), &bytes);
        // A writer to any part is fenced while the broadcast stands.
        let res = owner.try_lock(TaskId(1), &[Requirement::write(ItemId(0), r2([0, 0], [2, 4]))]);
        assert_eq!(res, Err(LockConflict::Exported(ItemId(0))));
        // Invalidate just the written half, on both sides.
        owner.release_persistent_exports(ItemId(0), &r2([0, 0], [2, 4]));
        holder.drop_persistent_region(ItemId(0), &r2([0, 0], [2, 4]));
        // The writer now proceeds; the untouched half stays fenced and
        // stays readable locally at the holder.
        owner
            .try_lock(TaskId(1), &[Requirement::write(ItemId(0), r2([0, 0], [2, 4]))])
            .unwrap();
        let res = owner.try_lock(TaskId(2), &[Requirement::write(ItemId(0), r2([2, 0], [4, 4]))]);
        assert_eq!(res, Err(LockConflict::Exported(ItemId(0))));
        assert!(holder.covers_stable(ItemId(0), &r2([2, 0], [4, 4])));
        assert!(!holder.covers(ItemId(0), &r2([0, 0], [2, 4])));
        // Fenced-writes invariant shape: holder persistent == owner fences.
        assert!(holder
            .persistent_region(ItemId(0))
            .eq_dyn(owner.persistent_export_region(ItemId(0)).as_ref()));
    }

    #[test]
    fn release_persistent_exports_spares_transient_exports() {
        let mut owner = mk();
        owner.init_owned(ItemId(0), &r2([0, 0], [4, 4]));
        let _ = owner.export_replica(ItemId(0), &r2([0, 0], [2, 2]), 1, TaskId(7));
        let _ = owner.export_replica(ItemId(0), &r2([0, 0], [4, 4]), 2, TaskId(u64::MAX));
        owner.release_persistent_exports(ItemId(0), &r2([0, 0], [4, 4]));
        assert!(owner.persistent_export_region(ItemId(0)).is_empty_dyn());
        // Task 7's transient export still fences its region.
        assert!(owner.exported(ItemId(0), &r2([1, 1], [2, 2])));
        assert!(!owner.exported(ItemId(0), &r2([2, 2], [4, 4])));
    }

    #[test]
    fn destroy_removes_item() {
        let mut dim = mk();
        dim.init_owned(ItemId(0), &r2([0, 0], [2, 2]));
        assert!(dim.knows(ItemId(0)));
        dim.destroy(ItemId(0));
        assert!(!dim.knows(ItemId(0)));
    }

    #[test]
    fn armed_snapshot_equals_eager_checkpoint_despite_mutations() {
        let mut dim = mk();
        dim.register(ItemId(1), ItemDescriptor::of::<G2>("grid2"));
        dim.init_owned(ItemId(0), &r2([0, 0], [4, 4]));
        dim.init_owned(ItemId(1), &r2([0, 0], [2, 2]));
        dim.fragment_any_mut(ItemId(0))
            .downcast_mut::<GridFragment<f64, 2>>()
            .unwrap()
            .set(&Point([1, 1]), 4.0);
        let eager = dim.checkpoint();
        dim.arm_snapshot();
        // Mutate item 0 after arming; item 1 stays untouched.
        dim.fragment_any_mut(ItemId(0))
            .downcast_mut::<GridFragment<f64, 2>>()
            .unwrap()
            .set(&Point([1, 1]), -9.0);
        dim.init_owned(ItemId(0), &r2([0, 0], [6, 6]));
        let lazy = dim.finish_snapshot();
        assert_eq!(lazy, eager, "COW snapshot must be bit-identical to arm-time state");
        assert_eq!(dim.take_cow_captures(), 1, "one first-write clone for item 0");
        assert!(!dim.snapshot_active());
    }

    #[test]
    fn abort_snapshot_clears_capture_state() {
        let mut dim = mk();
        dim.init_owned(ItemId(0), &r2([0, 0], [2, 2]));
        dim.arm_snapshot();
        dim.fragment_any_mut(ItemId(0))
            .downcast_mut::<GridFragment<f64, 2>>()
            .unwrap()
            .set(&Point([0, 0]), 1.0);
        dim.abort_snapshot();
        assert!(!dim.snapshot_active());
        // A later finish returns the post-mutation state (nothing armed,
        // nothing pre-captured carried over).
        dim.arm_snapshot();
        let snap = dim.finish_snapshot();
        assert_eq!(snap, dim.checkpoint());
    }

    #[test]
    fn snapshot_excludes_items_created_after_arming() {
        let mut dim = mk();
        dim.init_owned(ItemId(0), &r2([0, 0], [2, 2]));
        dim.arm_snapshot();
        dim.register(ItemId(7), ItemDescriptor::of::<G2>("late"));
        dim.init_owned(ItemId(7), &r2([0, 0], [1, 1]));
        let snap = dim.finish_snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].0, ItemId(0));
    }

    #[test]
    fn snapshot_keeps_items_destroyed_after_arming() {
        let mut dim = mk();
        dim.init_owned(ItemId(0), &r2([0, 0], [3, 3]));
        let eager = dim.checkpoint();
        dim.arm_snapshot();
        dim.destroy(ItemId(0));
        let snap = dim.finish_snapshot();
        assert_eq!(snap, eager, "pre-destruction data belongs to the boundary");
    }

    #[test]
    fn owned_fingerprints_track_owned_changes_only() {
        let mut dim = mk();
        dim.init_owned(ItemId(0), &r2([0, 0], [3, 3]));
        let before = dim.owned_fingerprints();
        // A replica import of remote data leaves the owned bytes alone.
        let mut owner = DataItemManager::new(1);
        owner.register(ItemId(0), ItemDescriptor::of::<G2>("grid"));
        owner.init_owned(ItemId(0), &r2([4, 0], [6, 2]));
        let bytes = owner.export_replica(ItemId(0), &r2([4, 0], [6, 2]), 0, TaskId(1));
        dim.import_replica(ItemId(0), &bytes, TaskId(1));
        assert_eq!(dim.owned_fingerprints(), before);
        // An owned-data write changes the fingerprint but not the length.
        dim.fragment_any_mut(ItemId(0))
            .downcast_mut::<GridFragment<f64, 2>>()
            .unwrap()
            .set(&Point([2, 2]), 13.0);
        let after = dim.owned_fingerprints();
        assert_ne!(after[0].1, before[0].1);
        assert_eq!(after[0].2, before[0].2);
    }
}

//! The virtual-time cost model.
//!
//! Real computation runs inside simulation events; its *duration* on the
//! simulated machine is charged via these constants. Values approximate a
//! single Xeon E5-2630 v4 core (the paper's testbed) and were sanity-tuned
//! so the harness's absolute throughputs land in the ranges of the paper's
//! Fig. 7 (see `EXPERIMENTS.md` for the calibration notes). The *shape* of
//! the scaling curves — the reproduction target — is insensitive to modest
//! changes in these constants.

use allscale_des::SimDuration;

/// Per-operation virtual-time costs.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Cost of one floating-point operation stream element, ns. A memory-
    /// bound stencil sustains far below peak FLOPS; ~0.35 ns/flop matches
    /// ~2.8 GFLOPS/core on the 5-flop PRK stencil kernel.
    pub ns_per_flop: f64,
    /// Cost of one particle push+deposit in the PIC mover, ns.
    pub ns_per_particle_update: f64,
    /// Cost of visiting one kd-tree node during traversal, ns.
    pub ns_per_tree_node: f64,
    /// Fixed per-task runtime overhead (descriptor handling, lock table,
    /// queue operations), ns.
    pub task_overhead_ns: u64,
    /// CPU cost of sending or receiving one message (marshalling), ns.
    pub msg_cpu_ns: u64,
    /// Size of a control-plane message (task descriptor, index query), B.
    pub control_msg_bytes: usize,
    /// Relative speed factor per locality (1.0 = nominal). Values below
    /// 1.0 slow a node down — used by the load-balancing example to model
    /// heterogeneous or degraded nodes.
    pub speed_factors: Vec<f64>,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            ns_per_flop: 0.35,
            ns_per_particle_update: 18.0,
            ns_per_tree_node: 4.0,
            task_overhead_ns: 1_500,
            msg_cpu_ns: 300,
            control_msg_bytes: 256,
            speed_factors: Vec::new(),
        }
    }
}

impl CostModel {
    /// Speed factor of a locality (default 1.0).
    pub fn speed(&self, locality: usize) -> f64 {
        self.speed_factors.get(locality).copied().unwrap_or(1.0)
    }

    /// Duration of `flops` floating-point operations on `locality`.
    pub fn flops(&self, locality: usize, flops: u64) -> SimDuration {
        SimDuration::from_nanos_f64(flops as f64 * self.ns_per_flop / self.speed(locality))
    }

    /// Duration of `n` particle updates on `locality`.
    pub fn particle_updates(&self, locality: usize, n: u64) -> SimDuration {
        SimDuration::from_nanos_f64(n as f64 * self.ns_per_particle_update / self.speed(locality))
    }

    /// Duration of visiting `n` tree nodes on `locality`.
    pub fn tree_nodes(&self, locality: usize, n: u64) -> SimDuration {
        SimDuration::from_nanos_f64(n as f64 * self.ns_per_tree_node / self.speed(locality))
    }

    /// Fixed per-task overhead on `locality`.
    pub fn task_overhead(&self, locality: usize) -> SimDuration {
        SimDuration::from_nanos_f64(self.task_overhead_ns as f64 / self.speed(locality))
    }

    /// CPU-side cost of handling one message.
    pub fn msg_cpu(&self) -> SimDuration {
        SimDuration::from_nanos(self.msg_cpu_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flop_cost_scales() {
        let c = CostModel::default();
        let d1 = c.flops(0, 1_000);
        let d2 = c.flops(0, 2_000);
        assert_eq!(d2.as_nanos(), 2 * d1.as_nanos());
    }

    #[test]
    fn speed_factor_slows_a_node() {
        let c = CostModel {
            speed_factors: vec![1.0, 0.5],
            ..Default::default()
        };
        assert_eq!(
            c.flops(1, 1_000).as_nanos(),
            2 * c.flops(0, 1_000).as_nanos()
        );
        // Localities beyond the vector default to nominal speed.
        assert_eq!(c.flops(7, 1_000), c.flops(0, 1_000));
    }

    #[test]
    fn nonzero_work_has_nonzero_cost() {
        let c = CostModel::default();
        assert!(c.flops(0, 1).as_nanos() >= 1);
        assert!(c.tree_nodes(0, 1).as_nanos() >= 1);
    }
}

//! Steal-protocol safety, property-tested directly against the
//! [`WorkStealingScheduler`] decision layer:
//!
//! 1. **Exactly-once** — across random interleavings of admissions,
//!    activations, steal rounds, handoffs, and fail-stop kills (which
//!    rewind the queues, like recovery does), every task the scheduler
//!    hands out is handed out exactly once, and a full drain executes
//!    everything still outstanding.
//! 2. **Liveness discipline** — steals and spills never target dead
//!    localities (the queue-family analogue of the PR 5 `live_target`
//!    remap regression), never the thief itself, and never an empty
//!    queue; handoffs never wake a dead waiter.
//! 3. **Determinism** — victim selection is a pure function of the
//!    config seed and the call history: the same seed replays the same
//!    victims, for all three victim policies.
//!
//! The runtime-level variants of these properties (billed messages,
//! lost grants, checkpoint/recovery) live in `tests/scheduler_conformance.rs`;
//! here the protocol state machine itself is cornered.

use std::collections::HashSet;

use allscale_core::{
    DataAwarePolicy, Placement, Scheduler, StealConfig, TaskId, VictimPolicy,
    WorkStealingScheduler,
};
use proptest::prelude::*;

/// Deterministic xorshift64 driving the op sequence (so a failure
/// replays from the proptest seed alone) — the shared kernel,
/// stream-compatible with the copy this harness historically inlined.
use allscale_des::rng::XorShift64 as XorShift;

fn victim_policy(code: u64) -> VictimPolicy {
    match code % 3 {
        0 => VictimPolicy::RoundRobin,
        1 => VictimPolicy::LeastLoaded,
        _ => VictimPolicy::Random,
    }
}

/// Mirror of the driver-visible protocol state.
struct Harness {
    sched: WorkStealingScheduler,
    nodes: usize,
    dead: Vec<bool>,
    /// Tasks admitted and not yet popped (or reaped by a kill-rewind).
    outstanding: HashSet<TaskId>,
    /// Every task ever popped for execution; ids are never reused, so a
    /// second insert is a double execution.
    executed: HashSet<TaskId>,
    /// Slot mirror, to drive release_slot sensibly.
    active: Vec<usize>,
    next_id: u64,
    /// (thief, victim) log, for the determinism property.
    victims: Vec<(usize, usize)>,
}

impl Harness {
    fn new(seed: u64, nodes: usize, cores: usize, victim: VictimPolicy) -> Self {
        let cfg = StealConfig {
            victim,
            seed,
            ..StealConfig::default()
        };
        Harness {
            sched: WorkStealingScheduler::new(
                Box::new(DataAwarePolicy::default()),
                cfg,
                nodes,
                cores,
            ),
            nodes,
            dead: vec![false; nodes],
            outstanding: HashSet::new(),
            executed: HashSet::new(),
            active: vec![0; nodes],
            next_id: 0,
            victims: Vec::new(),
        }
    }

    fn live(&self) -> Vec<usize> {
        (0..self.nodes).filter(|&n| !self.dead[n]).collect()
    }

    fn random_live(&self, rng: &mut XorShift) -> usize {
        let live = self.live();
        live[rng.below(live.len() as u64) as usize]
    }

    /// Record a pop: the task must be outstanding and never seen before.
    fn popped(&mut self, tid: TaskId, how: &str) {
        assert!(
            self.outstanding.remove(&tid),
            "{how} handed out {tid:?}, which was not outstanding"
        );
        assert!(
            self.executed.insert(tid),
            "{how} handed out {tid:?} a second time"
        );
    }

    fn admit(&mut self, rng: &mut XorShift) {
        let preferred = self.random_live(rng);
        let placement = self.sched.admit(preferred, &self.dead);
        let loc = match placement {
            Placement::Execute(_) => panic!("queue family must enqueue, got {placement:?}"),
            Placement::Enqueue(l) => l,
        };
        assert!(!self.dead[loc], "admission spilled to dead locality {loc}");
        let tid = TaskId(self.next_id);
        self.next_id += 1;
        self.sched.enqueue(loc, tid);
        self.outstanding.insert(tid);
    }

    fn activate(&mut self, rng: &mut XorShift) {
        let loc = self.random_live(rng);
        if let Some(tid) = self.sched.next_runnable(loc) {
            self.popped(tid, "next_runnable");
            self.active[loc] += 1;
        }
    }

    fn release(&mut self, rng: &mut XorShift) {
        let loc = self.random_live(rng);
        if self.active[loc] > 0 {
            self.sched.release_slot(loc);
            self.active[loc] -= 1;
        }
    }

    /// One full steal round from a random thief, with the liveness
    /// assertions of property 2 at every decision.
    fn steal_round(&mut self, rng: &mut XorShift) {
        let thief = self.random_live(rng);
        if !self.sched.should_steal(thief) {
            return;
        }
        self.sched.begin_steal(thief);
        match self.sched.steal_victim(thief, &self.dead) {
            None => self.sched.enlist_waiter(thief),
            Some(victim) => {
                assert_ne!(victim, thief, "thief chosen as its own victim");
                assert!(!self.dead[victim], "steal targeted dead locality {victim}");
                assert!(
                    self.sched.queue_len(victim) > 0,
                    "steal targeted empty queue at {victim}"
                );
                self.victims.push((thief, victim));
                let tid = self
                    .sched
                    .steal_task(victim)
                    .expect("non-empty victim queue must yield a task");
                // The descriptor travels to the thief and is re-enqueued
                // there; it is *not* an execution yet.
                assert!(
                    self.outstanding.contains(&tid),
                    "stole {tid:?}, which was not outstanding"
                );
                self.sched.end_steal(thief);
                self.sched.enqueue(thief, tid);
            }
        }
    }

    fn handoff(&mut self, rng: &mut XorShift) {
        let loc = self.random_live(rng);
        if let Some((waiter, tid)) = self.sched.take_handoff(loc, &self.dead) {
            assert_ne!(waiter, loc, "handoff to the surplus locality itself");
            assert!(!self.dead[waiter], "handoff woke dead waiter {waiter}");
            assert!(
                self.outstanding.contains(&tid),
                "handoff moved {tid:?}, which was not outstanding"
            );
            self.sched.enqueue(waiter, tid);
        }
    }

    /// Fail-stop a locality. Recovery rewinds the phase and rebuilds the
    /// queues, which the scheduler models as `clear()` — every task not
    /// yet executed is reaped (it will be re-admitted under a *new* id
    /// by the replay, so the executed-once ledger stays valid).
    fn kill(&mut self, rng: &mut XorShift) {
        let live = self.live();
        if live.len() <= 2 {
            return; // keep stealing meaningful
        }
        let victim = live[1 + rng.below(live.len() as u64 - 1) as usize];
        self.dead[victim] = true;
        self.sched.clear();
        self.outstanding.clear();
        self.active = vec![0; self.nodes];
    }

    /// Drain every live queue to execution and assert nothing is left.
    fn drain(&mut self) {
        // Tasks activated during the op phase finish now, freeing their
        // slots for the backlog.
        for loc in 0..self.nodes {
            while self.active[loc] > 0 {
                self.sched.release_slot(loc);
                self.active[loc] -= 1;
            }
        }
        loop {
            let mut progressed = false;
            for loc in self.live() {
                while let Some(tid) = self.sched.next_runnable(loc) {
                    self.popped(tid, "drain");
                    self.sched.release_slot(loc);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        assert!(
            self.outstanding.is_empty(),
            "drain left tasks stranded: {:?} (queues: {:?})",
            self.outstanding,
            (0..self.nodes).map(|n| self.sched.queue_len(n)).collect::<Vec<_>>()
        );
    }
}

/// Drive one randomized interleaving; returns the victim log.
fn drive(seed: u64, with_kills: bool) -> Vec<(usize, usize)> {
    let mut rng = XorShift::new(seed);
    let nodes = 2 + rng.below(6) as usize; // 2..=7
    let cores = 1 + rng.below(3) as usize; // 1..=3
    let policy = victim_policy(rng.next());
    let mut h = Harness::new(seed ^ 0xabcd_ef01, nodes, cores, policy);
    let steps = 200 + rng.below(200);
    for _ in 0..steps {
        match rng.below(if with_kills { 12 } else { 11 }) {
            0..=3 => h.admit(&mut rng),
            4..=6 => h.activate(&mut rng),
            7..=8 => h.release(&mut rng),
            9 => h.steal_round(&mut rng),
            10 => h.handoff(&mut rng),
            _ => h.kill(&mut rng),
        }
    }
    h.drain();
    h.victims
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        .. ProptestConfig::default()
    })]

    /// Property 1: exactly-once, under random interleavings without
    /// failures — and the drain leaves nothing behind.
    #[test]
    fn every_task_is_executed_exactly_once(seed in proptest::prelude::any::<u64>()) {
        drive(seed, false);
    }

    /// Properties 1+2 under fail-stop kills: the rewind keeps the
    /// executed-once ledger intact and no decision ever touches a dead
    /// locality.
    #[test]
    fn kills_never_break_exactly_once_or_target_the_dead(seed in proptest::prelude::any::<u64>()) {
        drive(seed, true);
    }

    /// Property 3: the victim sequence is a pure function of the seed
    /// and the op history — an identical replay picks identical victims.
    #[test]
    fn victim_selection_is_deterministic_per_seed(seed in proptest::prelude::any::<u64>()) {
        let a = drive(seed, true);
        let b = drive(seed, true);
        prop_assert_eq!(a, b, "same seed, same ops, different victims");
    }
}

/// The three victim policies are genuinely different selectors: on a
/// fixture with two backed-up queues they disagree somewhere (pinning
/// that the knob is not cosmetic).
#[test]
fn victim_policies_are_distinguishable() {
    let mut logs: Vec<Vec<usize>> = Vec::new();
    for policy in [
        VictimPolicy::RoundRobin,
        VictimPolicy::LeastLoaded,
        VictimPolicy::Random,
    ] {
        let mut h = Harness::new(7, 4, 1, policy);
        // Back up queues 1 (deep) and 2 (shallow); locality 0 starves.
        for i in 0..6 {
            h.sched.enqueue(1, TaskId(1000 + i));
            h.outstanding.insert(TaskId(1000 + i));
        }
        for i in 0..2 {
            h.sched.enqueue(2, TaskId(2000 + i));
            h.outstanding.insert(TaskId(2000 + i));
        }
        let mut log = Vec::new();
        for _ in 0..4 {
            if let Some(v) = h.sched.steal_victim(0, &[false; 4]) {
                log.push(v);
                // Take a task so LeastLoaded sees evolving lengths.
                let tid = h.sched.steal_task(v).unwrap();
                h.sched.enqueue(0, tid);
            }
        }
        logs.push(log);
    }
    assert!(
        logs[0] != logs[1] || logs[1] != logs[2],
        "all victim policies picked identical sequences: {logs:?}"
    );
}

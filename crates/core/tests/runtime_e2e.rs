//! End-to-end tests of the runtime: full applications (phases of pfor task
//! trees) running over the simulated cluster, with results verified
//! against sequential oracles.

use allscale_core::{
    pfor, CostModel, DataAwarePolicy, FaultPlan, Grid, IntegrityConfig, PforSpec, Requirement,
    ResilienceConfig, RtConfig, RtCtx, Runtime, TaskValue, WorkItem,
};
use allscale_des::{SimDuration, SimTime};
use allscale_region::{BoxRegion, GridBox, GridFragment, Point, Region};

fn config(nodes: usize, cores: usize) -> RtConfig {
    RtConfig::test(nodes, cores)
}

/// One pfor phase initializing a grid, one verifying phase is impossible
/// (driver-side verification instead via ctx.fragment_at).
#[test]
fn first_touch_initialization_distributes_data() {
    struct State {
        grid: Option<Grid<f64, 2>>,
    }
    let state = std::cell::RefCell::new(State { grid: None });
    let state_ref = std::rc::Rc::new(state);
    let state2 = state_ref.clone();

    let rt = Runtime::new(config(4, 2));
    let report = rt.run(
        move |phase: usize, ctx: &mut RtCtx<'_>, _prev: TaskValue| -> Option<Box<dyn WorkItem>> {
            match phase {
                0 => {
                    let grid = Grid::<f64, 2>::create(ctx, "A", [32, 32]);
                    state2.borrow_mut().grid = Some(grid);
                    let g = grid;
                    Some(pfor(
                        PforSpec {
                            name: "init",
                            range: grid.full_box(),
                            grain: 64,
                            ns_per_point: 2.0,
                            axis0_pieces: 0,
                        },
                        move |tile| vec![Requirement::write(g.id, BoxRegion::from_box(*tile))],
                        move |ctx, p| {
                            g.set(ctx, p.0, (p[0] * 100 + p[1]) as f64);
                        },
                    ))
                }
                1 => {
                    // Verify: every locality owns a disjoint part; union
                    // covers the grid; values correct.
                    let grid = state2.borrow().grid.unwrap();
                    let mut total: u64 = 0;
                    let mut owners_with_data = 0;
                    for loc in 0..ctx.nodes() {
                        let frag = ctx.fragment_at::<GridFragment<f64, 2>>(loc, grid.id);
                        if !frag.is_empty() {
                            owners_with_data += 1;
                        }
                        total += frag.len() as u64;
                        frag.for_each(|p, v| {
                            assert_eq!(*v, (p[0] * 100 + p[1]) as f64, "value at {p:?}");
                        });
                    }
                    assert_eq!(total, 32 * 32, "grid fully covered, no replicas");
                    assert!(
                        owners_with_data == 4,
                        "data must spread over all 4 nodes, got {owners_with_data}"
                    );
                    None
                }
                _ => unreachable!(),
            }
        },
    );
    assert_eq!(report.phases, 1);
    assert!(report.monitor.total_tasks() > 4, "leaf tasks ran");
    assert!(report.finish_time.as_nanos() > 0);
}

/// Two grids, double buffered: init A, then B[p] = A[p]+1 with halo reads.
/// Exercises read replication across localities.
#[test]
fn halo_reads_replicate_and_release() {
    #[derive(Clone, Copy)]
    struct Grids {
        a: Grid<f64, 2>,
        b: Grid<f64, 2>,
    }
    let cell: std::rc::Rc<std::cell::RefCell<Option<Grids>>> =
        std::rc::Rc::new(std::cell::RefCell::new(None));
    let cell2 = cell.clone();

    const N: i64 = 24;
    let rt = Runtime::new(config(4, 2));
    let report = rt.run(
        move |phase: usize, ctx: &mut RtCtx<'_>, _prev: TaskValue| -> Option<Box<dyn WorkItem>> {
            match phase {
                0 => {
                    let a = Grid::<f64, 2>::create(ctx, "A", [N, N]);
                    let b = Grid::<f64, 2>::create(ctx, "B", [N, N]);
                    *cell2.borrow_mut() = Some(Grids { a, b });
                    Some(pfor(
                        PforSpec {
                            name: "init",
                            range: a.full_box(),
                            grain: 32,
                            ns_per_point: 2.0,
                            axis0_pieces: 0,
                        },
                        move |tile| vec![Requirement::write(a.id, BoxRegion::from_box(*tile))],
                        move |ctx, p| a.set(ctx, p.0, (p[0] * N + p[1]) as f64),
                    ))
                }
                1 => {
                    let Grids { a, b } = cell2.borrow().unwrap();
                    let universe = a.full_box();
                    Some(pfor(
                        PforSpec {
                            name: "step",
                            range: GridBox::new(Point([1, 1]), Point([N - 1, N - 1])).unwrap(),
                            grain: 32,
                            ns_per_point: 4.0,
                            axis0_pieces: 0,
                        },
                        move |tile| {
                            let read = BoxRegion::from_box(*tile).dilate_within(1, &universe);
                            vec![
                                Requirement::read(a.id, read),
                                Requirement::write(b.id, BoxRegion::from_box(*tile)),
                            ]
                        },
                        move |ctx, p| {
                            let v = a.get(ctx, [p[0] - 1, p[1]])
                                + a.get(ctx, [p[0] + 1, p[1]])
                                + a.get(ctx, [p[0], p[1] - 1])
                                + a.get(ctx, [p[0], p[1] + 1]);
                            b.set(ctx, p.0, v);
                        },
                    ))
                }
                2 => {
                    // Verify against the sequential oracle.
                    let Grids { a: _, b } = cell2.borrow().unwrap();
                    let mut checked = 0u64;
                    for loc in 0..ctx.nodes() {
                        let frag = ctx.fragment_at::<GridFragment<f64, 2>>(loc, b.id);
                        // Only owned data counts; replicas were dropped.
                        let owned = ctx.owned_region_at(loc, b.id);
                        frag.for_each(|p, v| {
                            let expect = ((p[0] - 1) * N + p[1]) as f64
                                + ((p[0] + 1) * N + p[1]) as f64
                                + (p[0] * N + p[1] - 1) as f64
                                + (p[0] * N + p[1] + 1) as f64;
                            assert_eq!(*v, expect, "stencil value at {p:?}");
                            checked += 1;
                        });
                        let _ = owned;
                    }
                    assert_eq!(checked, ((N - 2) * (N - 2)) as u64);
                    None
                }
                _ => unreachable!(),
            }
        },
    );
    assert_eq!(report.phases, 2);
    // Halo reads across node boundaries must have produced replicas…
    let replicas: u64 = report
        .monitor
        .per_locality
        .iter()
        .map(|l| l.replicas_in)
        .sum();
    assert!(replicas > 0, "expected cross-node halo replication");
    // …and remote traffic.
    assert!(report.remote_msgs > 0);
}

/// The same program must produce bit-identical reports across runs
/// (simulation determinism end to end).
#[test]
fn runs_are_deterministic() {
    fn run_once() -> (u64, u64, u64) {
        let rt = Runtime::new(config(3, 2));
        let report = rt.run(
            move |phase: usize,
                  ctx: &mut RtCtx<'_>,
                  _prev: TaskValue|
                  -> Option<Box<dyn WorkItem>> {
                if phase > 0 {
                    return None;
                }
                let g = Grid::<u64, 1>::create(ctx, "v", [128]);
                Some(pfor(
                    PforSpec {
                        name: "fill",
                        range: g.full_box(),
                        grain: 8,
                        ns_per_point: 3.0,
                            axis0_pieces: 0,
                    },
                    move |tile| vec![Requirement::write(g.id, BoxRegion::from_box(*tile))],
                    move |ctx, p| g.set(ctx, p.0, p[0] as u64 * 3),
                ))
            },
        );
        (
            report.finish_time.as_nanos(),
            report.monitor.total_msgs(),
            report.events,
        )
    }
    assert_eq!(run_once(), run_once());
}

/// Tasks whose write requirements are owned by one node must be scheduled
/// there (Algorithm 2 line 7-9): the second phase sends no migrations.
#[test]
fn tasks_follow_their_data() {
    let cell: std::rc::Rc<std::cell::RefCell<Option<Grid<f64, 1>>>> =
        std::rc::Rc::new(std::cell::RefCell::new(None));
    let cell2 = cell.clone();
    let rt = Runtime::new(config(4, 2));
    let report = rt.run(
        move |phase: usize, ctx: &mut RtCtx<'_>, _prev: TaskValue| -> Option<Box<dyn WorkItem>> {
            let mk_pfor = |g: Grid<f64, 1>, name: &'static str| {
                pfor(
                    PforSpec {
                        name,
                        range: g.full_box(),
                        grain: 16,
                        ns_per_point: 2.0,
                            axis0_pieces: 0,
                    },
                    move |tile| vec![Requirement::write(g.id, BoxRegion::from_box(*tile))],
                    move |ctx, p| {
                        let old = g.get(ctx, p.0);
                        g.set(ctx, p.0, old + 1.0)
                    },
                )
            };
            match phase {
                0 => {
                    let g = Grid::<f64, 1>::create(ctx, "v", [256]);
                    *cell2.borrow_mut() = Some(g);
                    Some(mk_pfor(g, "touch"))
                }
                1..=3 => Some(mk_pfor(cell2.borrow().unwrap(), "update")),
                4 => {
                    // All values were incremented 4 times.
                    let g = cell2.borrow().unwrap();
                    let mut seen = 0;
                    for loc in 0..ctx.nodes() {
                        let frag = ctx.fragment_at::<GridFragment<f64, 1>>(loc, g.id);
                        frag.for_each(|_, v| {
                            assert_eq!(*v, 4.0);
                            seen += 1;
                        });
                    }
                    assert_eq!(seen, 256);
                    None
                }
                _ => unreachable!(),
            }
        },
    );
    // After first touch, no ownership should ever move again.
    let migrations: u64 = report
        .monitor
        .per_locality
        .iter()
        .map(|l| l.migrations_in)
        .sum();
    assert_eq!(migrations, 0, "steady-state phases must not migrate data");
}

/// Checkpoint/restore: wind the data back between phases.
#[test]
fn checkpoint_restores_data() {
    let cell: std::rc::Rc<std::cell::RefCell<Option<Grid<f64, 1>>>> =
        std::rc::Rc::new(std::cell::RefCell::new(None));
    let cp: std::rc::Rc<std::cell::RefCell<Option<allscale_core::Checkpoint>>> =
        std::rc::Rc::new(std::cell::RefCell::new(None));
    let (cell2, cp2) = (cell.clone(), cp.clone());
    let rt = Runtime::new(config(2, 2));
    rt.run(
        move |phase: usize, ctx: &mut RtCtx<'_>, _prev: TaskValue| -> Option<Box<dyn WorkItem>> {
            match phase {
                0 => {
                    let g = Grid::<f64, 1>::create(ctx, "v", [64]);
                    *cell2.borrow_mut() = Some(g);
                    Some(pfor(
                        PforSpec {
                            name: "init",
                            range: g.full_box(),
                            grain: 8,
                            ns_per_point: 2.0,
                            axis0_pieces: 0,
                        },
                        move |tile| vec![Requirement::write(g.id, BoxRegion::from_box(*tile))],
                        move |ctx, p| g.set(ctx, p.0, 1.0),
                    ))
                }
                1 => {
                    // Snapshot, then clobber.
                    *cp2.borrow_mut() = Some(ctx.checkpoint());
                    let g = cell2.borrow().unwrap();
                    Some(pfor(
                        PforSpec {
                            name: "clobber",
                            range: g.full_box(),
                            grain: 8,
                            ns_per_point: 2.0,
                            axis0_pieces: 0,
                        },
                        move |tile| vec![Requirement::write(g.id, BoxRegion::from_box(*tile))],
                        move |ctx, p| g.set(ctx, p.0, -99.0),
                    ))
                }
                2 => {
                    // Restore and verify.
                    ctx.restore(cp2.borrow().as_ref().unwrap());
                    let g = cell2.borrow().unwrap();
                    let mut seen = 0;
                    for loc in 0..ctx.nodes() {
                        let frag = ctx.fragment_at::<GridFragment<f64, 1>>(loc, g.id);
                        frag.for_each(|_, v| {
                            assert_eq!(*v, 1.0, "restored value");
                            seen += 1;
                        });
                    }
                    assert_eq!(seen, 64);
                    None
                }
                _ => unreachable!(),
            }
        },
    );
}

/// Single-node runs work and use no network.
#[test]
fn single_node_runs_entirely_local() {
    let rt = Runtime::new(config(1, 4));
    let report = rt.run(
        move |phase: usize, ctx: &mut RtCtx<'_>, _prev: TaskValue| -> Option<Box<dyn WorkItem>> {
            if phase > 0 {
                return None;
            }
            let g = Grid::<f64, 2>::create(ctx, "A", [16, 16]);
            Some(pfor(
                PforSpec {
                    name: "init",
                    range: g.full_box(),
                    grain: 16,
                    ns_per_point: 2.0,
                            axis0_pieces: 0,
                },
                move |tile| vec![Requirement::write(g.id, BoxRegion::from_box(*tile))],
                move |ctx, p| g.set(ctx, p.0, 1.0),
            ))
        },
    );
    assert_eq!(report.remote_msgs, 0);
    assert!(report.monitor.total_tasks() >= 4);
}

/// Cost-model speed factors slow down the affected locality's work.
#[test]
fn speed_factors_shift_completion_time() {
    fn run(slow: bool) -> u64 {
        let mut cfg = config(2, 1);
        if slow {
            cfg.cost.speed_factors = vec![1.0, 0.25];
        }
        cfg.policy = Box::new(DataAwarePolicy::default());
        let rt = Runtime::new(cfg);
        let report = rt.run(
            move |phase: usize,
                  ctx: &mut RtCtx<'_>,
                  _prev: TaskValue|
                  -> Option<Box<dyn WorkItem>> {
                if phase > 0 {
                    return None;
                }
                let g = Grid::<f64, 1>::create(ctx, "v", [1 << 14]);
                let c = CostModel::default();
                let per_point = c.ns_per_flop * 100.0;
                Some(pfor(
                    PforSpec {
                        name: "work",
                        range: g.full_box(),
                        grain: 1 << 10,
                        ns_per_point: per_point,
                            axis0_pieces: 0,
                    },
                    move |tile| vec![Requirement::write(g.id, BoxRegion::from_box(*tile))],
                    move |ctx, p| g.set(ctx, p.0, 1.0),
                ))
            },
        );
        report.finish_time.as_nanos()
    }
    let fast = run(false);
    let slow = run(true);
    assert!(
        slow > fast + fast / 2,
        "slow node must delay completion: fast={fast} slow={slow}"
    );
}

/// Destroying an item removes it everywhere; a new item can reuse storage.
#[test]
fn destroy_item_clears_all_localities() {
    let rt = Runtime::new(config(3, 2));
    rt.run(
        move |phase: usize, ctx: &mut RtCtx<'_>, _prev: TaskValue| -> Option<Box<dyn WorkItem>> {
            match phase {
                0 => {
                    let g = Grid::<f64, 1>::create(ctx, "temp", [96]);
                    Some(pfor(
                        PforSpec {
                            name: "touch",
                            range: g.full_box(),
                            grain: 8,
                            ns_per_point: 2.0,
                            axis0_pieces: 12,
                        },
                        move |tile| vec![Requirement::write(g.id, BoxRegion::from_box(*tile))],
                        move |tctx, p| g.set(tctx, p.0, 1.0),
                    ))
                }
                1 => {
                    // The paper's destroy action: all placements and locks
                    // of the item are deleted.
                    ctx.destroy_item(allscale_core::ItemId(0));
                    let violations = ctx.verify_consistency();
                    assert!(violations.is_empty(), "{violations:?}");
                    // A fresh item starts clean.
                    let g2 = Grid::<f64, 1>::create(ctx, "fresh", [32]);
                    Some(pfor(
                        PforSpec {
                            name: "touch2",
                            range: g2.full_box(),
                            grain: 8,
                            ns_per_point: 2.0,
                            axis0_pieces: 4,
                        },
                        move |tile| vec![Requirement::write(g2.id, BoxRegion::from_box(*tile))],
                        move |tctx, p| g2.set(tctx, p.0, 2.0),
                    ))
                }
                _ => None,
            }
        },
    );
}

/// Persistent replicas (broadcast) serve reads everywhere without new
/// transfers: a read-only phase after the broadcast moves no more data.
#[test]
fn broadcast_replicas_serve_reads_without_traffic() {
    use std::cell::RefCell;
    use std::rc::Rc;
    let state: Rc<RefCell<(Option<Grid<f64, 1>>, u64)>> = Rc::new(RefCell::new((None, 0)));
    let st = state.clone();
    let rt = Runtime::new(config(4, 2));
    let report = rt.run(
        move |phase: usize, ctx: &mut RtCtx<'_>, _prev: TaskValue| -> Option<Box<dyn WorkItem>> {
            match phase {
                0 => {
                    let g = Grid::<f64, 1>::create(ctx, "shared", [64]);
                    st.borrow_mut().0 = Some(g);
                    // Keep the data on one node (no axis-0 spreading).
                    Some(pfor(
                        PforSpec {
                            name: "init",
                            range: g.full_box(),
                            grain: 64,
                            ns_per_point: 2.0,
                            axis0_pieces: 0,
                        },
                        move |tile| vec![Requirement::write(g.id, BoxRegion::from_box(*tile))],
                        move |tctx, p| g.set(tctx, p.0, p[0] as f64),
                    ))
                }
                1 => {
                    let g = st.borrow().0.unwrap();
                    let owner = (0..ctx.nodes())
                        .find(|&l| !ctx.owned_region_at(l, g.id).is_empty_dyn())
                        .unwrap();
                    ctx.broadcast_replicate(g.id, owner, &g.full_region());
                    // Remember replica count right after the broadcast.
                    st.borrow_mut().1 = (0..ctx.nodes())
                        .map(|_| 0u64)
                        .sum::<u64>();
                    // Read-only phase: every node sums the whole grid.
                    Some(pfor(
                        PforSpec {
                            name: "read-everywhere",
                            range: g.full_box(),
                            grain: 4,
                            ns_per_point: 2.0,
                            axis0_pieces: 16,
                        },
                        move |tile| vec![Requirement::read(g.id, BoxRegion::from_box(*tile))],
                        move |tctx, p| {
                            let v = g.get(tctx, p.0);
                            assert_eq!(v, p[0] as f64);
                        },
                    ))
                }
                _ => None,
            }
        },
    );
    // Replica imports: exactly the broadcast's nodes-1 (no per-task
    // re-replication of persistently replicated data).
    let replicas: u64 = report
        .monitor
        .per_locality
        .iter()
        .map(|l| l.replicas_in)
        .sum();
    assert_eq!(replicas, 3, "only the broadcast itself replicates");
}

/// Scalar data items: a runtime-managed global parameter, first-touched
/// by a setup task, broadcast, then read by every compute task.
#[test]
fn scalar_items_flow_through_the_runtime() {
    use allscale_core::Scalar;
    use allscale_region::UnitRegion;
    use std::cell::RefCell;
    use std::rc::Rc;

    type St = Rc<RefCell<Option<(Scalar<f64>, Grid<f64, 1>)>>>;
    let st: St = Rc::new(RefCell::new(None));
    let s2 = st.clone();
    let rt = Runtime::new(config(4, 2));
    rt.run(
        move |phase: usize, ctx: &mut RtCtx<'_>, _prev: TaskValue| -> Option<Box<dyn WorkItem>> {
            match phase {
                0 => {
                    let c = Scalar::<f64>::create(ctx, "coefficient");
                    let g = Grid::<f64, 1>::create(ctx, "out", [64]);
                    *s2.borrow_mut() = Some((c, g));
                    // A single task sets the scalar (first touch).
                    Some(pfor(
                        PforSpec {
                            name: "set-coeff",
                            range: allscale_region::GridBox::<1>::from_shape([1]).unwrap(),
                            grain: 1,
                            ns_per_point: 5.0,
                            axis0_pieces: 0,
                        },
                        move |_| vec![Requirement::write(c.id, UnitRegion::FULL)],
                        move |tctx, _| c.set(tctx, 2.5),
                    ))
                }
                1 => {
                    let (c, g) = s2.borrow().unwrap();
                    let owner = (0..ctx.nodes())
                        .find(|&l| !ctx.owned_region_at(l, c.id).is_empty_dyn())
                        .expect("scalar owned somewhere");
                    ctx.broadcast_replicate(c.id, owner, &UnitRegion::FULL);
                    Some(pfor(
                        PforSpec {
                            name: "scale",
                            range: g.full_box(),
                            grain: 4,
                            ns_per_point: 2.0,
                            axis0_pieces: 16,
                        },
                        move |tile| {
                            vec![
                                Requirement::read(c.id, UnitRegion::FULL),
                                Requirement::write(g.id, BoxRegion::from_box(*tile)),
                            ]
                        },
                        move |tctx, p| {
                            let k = c.get(tctx);
                            g.set(tctx, p.0, k * p[0] as f64);
                        },
                    ))
                }
                _ => {
                    let (_, g) = s2.borrow().unwrap();
                    let mut seen = 0;
                    for loc in 0..ctx.nodes() {
                        let frag = ctx.fragment_at::<GridFragment<f64, 1>>(loc, g.id);
                        frag.for_each(|p, v| {
                            assert_eq!(*v, 2.5 * p[0] as f64);
                            seen += 1;
                        });
                    }
                    assert_eq!(seen, 64);
                    None
                }
            }
        },
    );
}

/// Tree data items through the facade: distribute blocks by first touch,
/// then run read tasks pinned to the block owners.
#[test]
fn tree_facade_distributes_and_reads() {
    use allscale_core::Tree;
    use allscale_region::{BitmaskTreeRegion, TreePath};
    use std::cell::RefCell;
    use std::rc::Rc;

    const H: u8 = 2; // 4 subtree blocks
    const LEVELS: u8 = 5;
    type T = Tree<u64, BitmaskTreeRegion>;
    let st: Rc<RefCell<Option<T>>> = Rc::new(RefCell::new(None));
    let s2 = st.clone();
    let total: Rc<RefCell<u64>> = Rc::new(RefCell::new(0));
    let t2 = total.clone();

    let rt = Runtime::new(config(4, 2));
    rt.run(
        move |phase: usize, ctx: &mut RtCtx<'_>, prev: TaskValue| -> Option<Box<dyn WorkItem>> {
            match phase {
                0 => {
                    let tree = T::create(ctx, "tree");
                    *s2.borrow_mut() = Some(tree);
                    // Distribute: one pfor index per block (0 = root
                    // block, 1..=4 subtrees), writing node values = their
                    // BFS index.
                    Some(pfor(
                        PforSpec {
                            name: "tree-dist",
                            range: allscale_region::GridBox::<1>::from_shape([5]).unwrap(),
                            grain: 1,
                            ns_per_point: 100.0,
                            axis0_pieces: 4,
                        },
                        move |tile| {
                            let mut region = BitmaskTreeRegion::new(H);
                            for idx in tile.points() {
                                if idx[0] == 0 {
                                    region.set_root_block(true);
                                } else {
                                    region.set_subtree(idx[0] as usize - 1, true);
                                }
                            }
                            vec![Requirement::write(tree.id, region)]
                        },
                        move |tctx, p| {
                            let write_all = |tctx: &mut allscale_core::TaskCtx<'_>,
                                             root: TreePath,
                                             max_depth: u8| {
                                let mut stack = vec![root];
                                while let Some(path) = stack.pop() {
                                    tree.set(tctx, path, path.bfs_index());
                                    if path.depth() + 1 < max_depth {
                                        stack.push(path.left());
                                        stack.push(path.right());
                                    }
                                }
                            };
                            if p[0] == 0 {
                                // Root block: depths 0..H.
                                let mut stack = vec![TreePath::ROOT];
                                while let Some(path) = stack.pop() {
                                    tree.set(tctx, path, path.bfs_index());
                                    if path.depth() + 1 < H {
                                        stack.push(path.left());
                                        stack.push(path.right());
                                    }
                                }
                            } else {
                                let region = BitmaskTreeRegion::new(H);
                                write_all(tctx, region.subtree_root(p[0] as usize - 1), LEVELS);
                            }
                        },
                    ))
                }
                1 => {
                    // Sum every node via read tasks per block (forwarded to
                    // the block owners by the scheduler).
                    let tree = s2.borrow().unwrap();
                    Some(pfor(
                        PforSpec {
                            name: "tree-sum",
                            range: allscale_region::GridBox::<1>::from_shape([5]).unwrap(),
                            grain: 1,
                            ns_per_point: 100.0,
                            axis0_pieces: 4,
                        },
                        move |tile| {
                            let mut region = BitmaskTreeRegion::new(H);
                            for idx in tile.points() {
                                if idx[0] == 0 {
                                    region.set_root_block(true);
                                } else {
                                    region.set_subtree(idx[0] as usize - 1, true);
                                }
                            }
                            vec![Requirement::read(tree.id, region)]
                        },
                        move |tctx, p| {
                            // Sum whatever this task's block holds.
                            let frag = tctx
                                .fragment::<allscale_region::TreeFragment<
                                    u64,
                                    BitmaskTreeRegion,
                                >>(tree.id);
                            let mut s = 0u64;
                            let region = BitmaskTreeRegion::new(H);
                            for (path, v) in frag.iter() {
                                let in_block = match BitmaskTreeRegion::block_of(H, path) {
                                    None => p[0] == 0,
                                    Some(b) => p[0] as usize == b + 1,
                                };
                                if in_block {
                                    s += v;
                                }
                            }
                            let _ = region;
                            let _ = s; // effect-only pfor; checked below
                        },
                    ))
                }
                _ => {
                    // Driver-side: total of all node values equals the sum
                    // of BFS indices 0..2^LEVELS-1.
                    let tree = s2.borrow().unwrap();
                    let mut sum = 0u64;
                    let mut count = 0u64;
                    for loc in 0..ctx.nodes() {
                        let frag = ctx.fragment_at::<allscale_region::TreeFragment<
                            u64,
                            BitmaskTreeRegion,
                        >>(loc, tree.id);
                        for (_, v) in frag.iter() {
                            sum += v;
                            count += 1;
                        }
                    }
                    let n = (1u64 << LEVELS) - 1;
                    assert_eq!(count, n, "complete tree stored");
                    assert_eq!(sum, n * (n - 1) / 2, "sum of BFS indices");
                    *t2.borrow_mut() = sum;
                    let _ = prev;
                    None
                }
            }
        },
    );
    assert!(*total.borrow() > 0);
}

/// The run report's summary renders and contains the headline counters.
#[test]
fn run_report_summary_renders()  {
    let rt = Runtime::new(config(2, 2));
    let report = rt.run(
        move |phase: usize, ctx: &mut RtCtx<'_>, _prev: TaskValue| -> Option<Box<dyn WorkItem>> {
            if phase > 0 {
                return None;
            }
            let g = Grid::<f64, 1>::create(ctx, "v", [32]);
            Some(pfor(
                PforSpec {
                    name: "t",
                    range: g.full_box(),
                    grain: 8,
                    ns_per_point: 2.0,
                    axis0_pieces: 4,
                },
                move |tile| vec![Requirement::write(g.id, BoxRegion::from_box(*tile))],
                move |ctx2, p| g.set(ctx2, p.0, 0.0),
            ))
        },
    );
    let s = report.summary();
    assert!(s.contains("virtual time"));
    assert!(s.contains("loc   0"));
    assert!(s.contains("first-touch"));
}

/// Restoring a checkpoint into a runtime with a different locality count
/// must fail loudly instead of silently truncating the restore.
#[test]
#[should_panic(expected = "checkpoint shape mismatch")]
fn restore_rejects_mismatched_cluster_shape() {
    use std::cell::RefCell;
    use std::rc::Rc;

    // Take a checkpoint on a 2-node cluster…
    let cp: Rc<RefCell<Option<allscale_core::Checkpoint>>> = Rc::new(RefCell::new(None));
    let cp2 = cp.clone();
    let rt = Runtime::new(config(2, 2));
    rt.run(
        move |phase: usize, ctx: &mut RtCtx<'_>, _prev: TaskValue| -> Option<Box<dyn WorkItem>> {
            if phase > 0 {
                *cp2.borrow_mut() = Some(ctx.checkpoint());
                return None;
            }
            let g = Grid::<f64, 1>::create(ctx, "v", [32]);
            Some(pfor(
                PforSpec {
                    name: "init",
                    range: g.full_box(),
                    grain: 8,
                    ns_per_point: 2.0,
                    axis0_pieces: 0,
                },
                move |tile| vec![Requirement::write(g.id, BoxRegion::from_box(*tile))],
                move |ctx2, p| g.set(ctx2, p.0, 1.0),
            ))
        },
    );
    let snap = cp.borrow_mut().take().expect("checkpoint taken");

    // …and feed it to a 3-node cluster: two shards cannot describe three
    // localities, so restore must panic rather than truncate.
    let rt = Runtime::new(config(3, 2));
    rt.run(
        move |_phase: usize, ctx: &mut RtCtx<'_>, _prev: TaskValue| -> Option<Box<dyn WorkItem>> {
            ctx.restore(&snap);
            None
        },
    );
}

/// The fenced-writes invariant (consistency check 4): a persistent
/// replica's backing export fence must stay within its recorder's owned
/// region. Migrating fenced data away from the recorder without dropping
/// the broadcast is exactly the corruption the check exists to catch.
#[test]
fn verify_consistency_flags_migrated_fenced_region() {
    use std::cell::RefCell;
    use std::rc::Rc;

    let cell: Rc<RefCell<Option<Grid<f64, 1>>>> = Rc::new(RefCell::new(None));
    let cell2 = cell.clone();
    let rt = Runtime::new(config(3, 2));
    rt.run(
        move |phase: usize, ctx: &mut RtCtx<'_>, _prev: TaskValue| -> Option<Box<dyn WorkItem>> {
            match phase {
                0 => {
                    let g = Grid::<f64, 1>::create(ctx, "shared", [64]);
                    *cell2.borrow_mut() = Some(g);
                    // Keep all data on one owner (no axis-0 spreading).
                    Some(pfor(
                        PforSpec {
                            name: "init",
                            range: g.full_box(),
                            grain: 64,
                            ns_per_point: 2.0,
                            axis0_pieces: 0,
                        },
                        move |tile| vec![Requirement::write(g.id, BoxRegion::from_box(*tile))],
                        move |ctx2, p| g.set(ctx2, p.0, p[0] as f64),
                    ))
                }
                1 => {
                    let g = cell2.borrow().unwrap();
                    let owner = (0..ctx.nodes())
                        .find(|&l| !ctx.owned_region_at(l, g.id).is_empty_dyn())
                        .expect("grid owned somewhere");
                    ctx.broadcast_replicate(g.id, owner, &g.full_region());
                    // A clean broadcast satisfies all four checks.
                    let violations = ctx.verify_consistency();
                    assert!(violations.is_empty(), "after broadcast: {violations:?}");

                    // Now migrate part of the fenced region away from its
                    // recorder: the fence no longer lies in the recorder's
                    // owned region, and check 4 must say so.
                    let dst = (owner + 1) % ctx.nodes();
                    let slice = BoxRegion::<1>::cuboid([0], [16]);
                    ctx.migrate_region(g.id, &slice, owner, dst);
                    let violations = ctx.verify_consistency();
                    assert!(
                        violations.iter().any(|v| v.contains("no longer owns")),
                        "check 4 must flag the migrated fence, got: {violations:?}"
                    );
                    None
                }
                _ => unreachable!(),
            }
        },
    );
}

/// A small phased program for the fault/integrity tests: fill
/// `g[i] = i`, bump every cell once per step phase, then read back the
/// exact expected values. Returns the number of cells verified (driver
/// side, after the last phase) plus the report.
fn bump_roundtrip(cfg: RtConfig, steps: usize) -> (u64, allscale_core::RunReport) {
    use std::cell::RefCell;
    use std::rc::Rc;
    const N: i64 = 96;
    let st: Rc<RefCell<(Option<Grid<f64, 1>>, u64)>> = Rc::new(RefCell::new((None, 0)));
    let s2 = st.clone();
    let rt = Runtime::new(cfg);
    let report = rt.run(
        move |phase: usize, ctx: &mut RtCtx<'_>, _prev: TaskValue| -> Option<Box<dyn WorkItem>> {
            if phase == 0 {
                let g = Grid::<f64, 1>::create(ctx, "v", [N]);
                s2.borrow_mut().0 = Some(g);
                return Some(pfor(
                    PforSpec {
                        name: "fill",
                        range: g.full_box(),
                        grain: 12,
                        ns_per_point: 4.0,
                        axis0_pieces: 8,
                    },
                    move |tile| vec![Requirement::write(g.id, BoxRegion::from_box(*tile))],
                    move |tctx, p| g.set(tctx, p.0, p[0] as f64),
                ));
            }
            let g = s2.borrow().0.unwrap();
            if phase <= steps {
                return Some(pfor(
                    PforSpec {
                        name: "bump",
                        range: g.full_box(),
                        grain: 12,
                        ns_per_point: 4.0,
                        axis0_pieces: 8,
                    },
                    move |tile| vec![Requirement::write(g.id, BoxRegion::from_box(*tile))],
                    move |tctx, p| {
                        let v = g.get(tctx, p.0);
                        g.set(tctx, p.0, v + 1.0);
                    },
                ));
            }
            // Driver-side readback: data preservation + single execution.
            let mut seen = 0u64;
            for loc in 0..ctx.nodes() {
                let frag = ctx.fragment_at::<GridFragment<f64, 1>>(loc, g.id);
                frag.for_each(|p, v| {
                    assert_eq!(*v, p[0] as f64 + steps as f64, "cell {p:?}");
                    seen += 1;
                });
            }
            assert_eq!(seen, N as u64, "grid fully covered after faults");
            s2.borrow_mut().1 = seen;
            None
        },
    );
    let seen = st.borrow().1;
    (seen, report)
}

/// Regression for the detector single point of failure: killing locality
/// 0 — the failure-detector host — must fail the detection duty over to
/// the next live locality instead of silencing it. The death is still
/// detected, recovery still runs, and the application completes with
/// exact results.
#[test]
fn detector_host_death_fails_over_and_recovers() {
    // Size the kill against a clean run of the same program.
    let (_, clean) = bump_roundtrip(config(4, 2), 2);
    let total = clean.finish_time.as_nanos();

    let mut plan = FaultPlan::new(0xdead0);
    plan.kill_at(0, SimTime::from_nanos(total * 6 / 10));
    let mut cfg = config(4, 2);
    cfg.faults = Some(plan);
    cfg.resilience = Some(ResilienceConfig {
        checkpoint_every: 1,
        heartbeat_period: SimDuration::from_nanos((total / 50).max(500)),
        ..ResilienceConfig::default()
    });
    let (seen, report) = bump_roundtrip(cfg, 2);
    assert_eq!(seen, 96, "readback ran after recovery");
    let r = &report.monitor.resilience;
    assert!(
        r.detections >= 1 && r.recoveries >= 1,
        "locality 0's death must be detected by the backup probe ({r:?})"
    );
    assert!(
        r.detection_latency_ns > 0,
        "detection after the death, driven by heartbeats ({r:?})"
    );
}

/// Regression for a post-recovery livelock: a driver-initiated
/// `migrate_region` whose destination the detector has declared dead
/// must be remapped to a live locality (the `live_target` rule task
/// placement already follows). Without the remap the dead locality is
/// re-advertised as the region's owner, every later task's transfer
/// request to it is lost, and the phase stalls forever — with no
/// further death for the detector to recover from.
#[test]
fn driver_migration_to_dead_locality_is_remapped() {
    use std::cell::RefCell;
    use std::rc::Rc;
    const N: i64 = 96;
    const STEPS: usize = 3;
    const VICTIM: usize = 1;

    fn run(cfg: RtConfig, victim_dies: bool) -> (u64, allscale_core::RunReport) {
        let st: Rc<RefCell<(Option<Grid<f64, 1>>, u64)>> = Rc::new(RefCell::new((None, 0)));
        let s2 = st.clone();
        let report = Runtime::new(cfg).run(
            move |phase: usize, ctx: &mut RtCtx<'_>, _prev: TaskValue| -> Option<Box<dyn WorkItem>> {
                if phase == 0 {
                    let g = Grid::<f64, 1>::create(ctx, "v", [N]);
                    s2.borrow_mut().0 = Some(g);
                    return Some(pfor(
                        PforSpec {
                            name: "fill",
                            range: g.full_box(),
                            grain: 12,
                            ns_per_point: 4.0,
                            axis0_pieces: 8,
                        },
                        move |tile| vec![Requirement::write(g.id, BoxRegion::from_box(*tile))],
                        move |tctx, p| g.set(tctx, p.0, p[0] as f64),
                    ));
                }
                let g = s2.borrow().0.unwrap();
                if phase <= STEPS {
                    // Stubbornly migrate a slice into the victim at every
                    // boundary — exactly what a dead-host-oblivious
                    // balancing policy does. Post-recovery boundaries
                    // must be remapped off the corpse.
                    let slice = BoxRegion::<1>::cuboid([0], [24]);
                    for src in 0..ctx.nodes() {
                        if src == VICTIM {
                            continue;
                        }
                        let owned = ctx.owned_region_at(src, g.id);
                        let owned = owned
                            .as_any()
                            .downcast_ref::<BoxRegion<1>>()
                            .expect("1-D grid region")
                            .clone();
                        let moved = owned.intersect(&slice);
                        if !moved.is_empty() {
                            ctx.migrate_region(g.id, &moved, src, VICTIM);
                            break;
                        }
                    }
                    return Some(pfor(
                        PforSpec {
                            name: "bump",
                            range: g.full_box(),
                            grain: 12,
                            ns_per_point: 4.0,
                            axis0_pieces: 8,
                        },
                        move |tile| vec![Requirement::write(g.id, BoxRegion::from_box(*tile))],
                        move |tctx, p| {
                            let v = g.get(tctx, p.0);
                            g.set(tctx, p.0, v + 1.0);
                        },
                    ));
                }
                let mut seen = 0u64;
                for loc in 0..ctx.nodes() {
                    let frag = ctx.fragment_at::<GridFragment<f64, 1>>(loc, g.id);
                    frag.for_each(|p, v| {
                        assert_eq!(*v, p[0] as f64 + STEPS as f64, "cell {p:?}");
                        seen += 1;
                    });
                }
                assert_eq!(seen, N as u64, "grid fully covered after faults");
                // The detector knows the victim is dead: no post-recovery
                // migration may have handed it ownership back. (In the
                // clean sizing run the victim is a legitimate target.)
                if victim_dies {
                    assert!(
                        ctx.owned_region_at(VICTIM, g.id).is_empty_dyn(),
                        "dead locality must not own data after recovery"
                    );
                }
                s2.borrow_mut().1 = seen;
                None
            },
        );
        let seen = st.borrow().1;
        (seen, report)
    }

    // Size the kill early against a clean run: the death lands before
    // most migration boundaries, so several of them target the corpse.
    let (_, clean) = run(config(4, 2), false);
    let total = clean.finish_time.as_nanos();

    let mut plan = FaultPlan::new(0xdead2);
    plan.kill_at(VICTIM, SimTime::from_nanos(total * 3 / 10));
    let mut cfg = config(4, 2);
    cfg.faults = Some(plan);
    cfg.resilience = Some(ResilienceConfig {
        checkpoint_every: 1,
        heartbeat_period: SimDuration::from_nanos((total / 50).max(500)),
        ..ResilienceConfig::default()
    });
    let (seen, report) = run(cfg, true);
    assert_eq!(seen, 96, "run must complete — a stalled phase here is the livelock");
    let r = &report.monitor.resilience;
    assert!(
        r.detections >= 1 && r.recoveries >= 1,
        "the victim's death must have been detected ({r:?})"
    );
}

/// Checksummed transfers under silent wire corruption: with the
/// integrity service on, every corrupt delivery is detected and
/// re-requested, and the final data is bit-identical to a fault-free
/// run — zero undetected corruptions reach application state.
#[test]
fn checksummed_transfers_mask_wire_corruption() {
    let (clean_seen, _) = bump_roundtrip(config(4, 2), 2);

    let mut cfg = config(4, 2);
    cfg.faults = Some(FaultPlan::new(0xc0ffee).with_corruption(0.1));
    cfg = cfg.with_integrity(IntegrityConfig {
        scrub_period: None, // isolate the wire-verification path
        ..IntegrityConfig::default()
    });
    // bump_roundtrip asserts exact values internally, so completing at
    // all proves the corrupted run computed the same data.
    let (seen, report) = bump_roundtrip(cfg, 2);
    assert_eq!(seen, clean_seen);
    let g = &report.monitor.integrity;
    assert!(
        g.wire_corruptions > 0 && g.wire_detected > 0,
        "the 2% corruption arm must have struck and been caught ({g:?})"
    );
    assert_eq!(g.wire_undetected, 0, "verification must catch every hit ({g:?})");
    assert!(
        g.re_requests > 0,
        "detected corruptions are re-requested, not consumed ({g:?})"
    );
}

/// Replica rot, scrubbed: broadcast replicas rot at rest (rot arm at
/// 100%), the background scrubber detects the divergence against the
/// owner, repairs it, and — when the holder's storage keeps striking —
/// quarantines the replica after `quarantine_after` divergences. The
/// owner's authoritative copy stays pristine throughout.
#[test]
fn scrubber_repairs_and_quarantines_rotting_replicas() {
    use std::cell::RefCell;
    use std::rc::Rc;
    const N: i64 = 64;
    type GridPair = Rc<RefCell<Option<(Grid<f64, 1>, Grid<f64, 1>)>>>;
    let st: GridPair = Rc::new(RefCell::new(None));
    let s2 = st.clone();

    let mut cfg = config(2, 2);
    cfg.faults = Some(FaultPlan::new(7).with_rot(1.0));
    cfg = cfg.with_integrity(IntegrityConfig {
        scrub_period: Some(SimDuration::from_micros(3)),
        ..IntegrityConfig::default()
    });
    let rt = Runtime::new(cfg);
    let report = rt.run(
        move |phase: usize, ctx: &mut RtCtx<'_>, _prev: TaskValue| -> Option<Box<dyn WorkItem>> {
            match phase {
                0 => {
                    // The broadcast item, kept whole on one owner, and a
                    // separate work grid to keep virtual time advancing
                    // while the scrubber runs.
                    let g = Grid::<f64, 1>::create(ctx, "shared", [N]);
                    let w = Grid::<f64, 1>::create(ctx, "work", [256]);
                    *s2.borrow_mut() = Some((g, w));
                    Some(pfor(
                        PforSpec {
                            name: "init",
                            range: g.full_box(),
                            grain: 64,
                            ns_per_point: 4.0,
                            axis0_pieces: 0,
                        },
                        move |tile| vec![Requirement::write(g.id, BoxRegion::from_box(*tile))],
                        move |tctx, p| g.set(tctx, p.0, p[0] as f64),
                    ))
                }
                1 => {
                    let (g, w) = s2.borrow().unwrap();
                    let owner = (0..ctx.nodes())
                        .find(|&l| !ctx.owned_region_at(l, g.id).is_empty_dyn())
                        .expect("grid owned somewhere");
                    // The import rots on arrival (rot arm at 100%), so the
                    // replica diverges from the owner immediately.
                    ctx.broadcast_replicate(g.id, owner, &g.full_region());
                    Some(work_phase(w))
                }
                2..=6 => Some(work_phase(s2.borrow().unwrap().1)),
                _ => {
                    // The owner's copy must be pristine: rot strikes
                    // replicas at rest, never the authoritative data.
                    let (g, _) = s2.borrow().unwrap();
                    let owner = (0..ctx.nodes())
                        .find(|&l| !ctx.owned_region_at(l, g.id).is_empty_dyn())
                        .unwrap();
                    let frag = ctx.fragment_at::<GridFragment<f64, 1>>(owner, g.id);
                    let mut seen = 0;
                    frag.for_each(|p, v| {
                        assert_eq!(*v, p[0] as f64, "owner copy at {p:?}");
                        seen += 1;
                    });
                    assert_eq!(seen, N);
                    None
                }
            }
        },
    );
    fn work_phase(w: Grid<f64, 1>) -> Box<dyn WorkItem> {
        pfor(
            PforSpec {
                name: "work",
                range: w.full_box(),
                grain: 32,
                ns_per_point: 60.0,
                axis0_pieces: 4,
            },
            move |tile| vec![Requirement::write(w.id, BoxRegion::from_box(*tile))],
            move |tctx, p| w.set(tctx, p.0, 1.0),
        )
    }
    let g = &report.monitor.integrity;
    assert!(g.rot_injected >= 1, "the rot arm must have struck ({g:?})");
    assert!(
        g.scrub_passes >= 3 && g.replicas_scrubbed >= 1,
        "the scrubber must have audited the replica ({g:?})"
    );
    assert!(
        g.scrub_divergent >= 1 && g.scrub_repairs >= 1,
        "divergence detected and repaired ({g:?})"
    );
    assert!(
        g.quarantines >= 1,
        "a holder that keeps rotting is quarantined ({g:?})"
    );
}

/// Checkpoint verification: with the rot arm striking every stored
/// shard, recovery must reject the corrupt checkpoints and fall back to
/// a full restart rather than restore rotted state — and the restarted
/// run still produces exact results.
#[test]
fn recovery_rejects_rotted_checkpoints_and_restarts() {
    let (_, clean) = bump_roundtrip(config(4, 2), 2);
    let total = clean.finish_time.as_nanos();

    let mut plan = FaultPlan::new(0xbad_cafe).with_rot(1.0);
    plan.kill_at(2, SimTime::from_nanos(total * 7 / 10));
    let mut cfg = config(4, 2);
    cfg.faults = Some(plan);
    cfg.resilience = Some(ResilienceConfig {
        checkpoint_every: 1,
        heartbeat_period: SimDuration::from_nanos((total / 50).max(500)),
        ..ResilienceConfig::default()
    });
    cfg = cfg.with_integrity(IntegrityConfig {
        scrub_period: None,
        ..IntegrityConfig::default()
    });
    let (seen, report) = bump_roundtrip(cfg, 2);
    assert_eq!(seen, 96, "restart still yields exact results");
    let g = &report.monitor.integrity;
    assert!(
        g.checkpoint_shards_rejected > 0 && g.checkpoint_fallbacks >= 1,
        "rotted checkpoints must be refused at restore ({g:?})"
    );
    assert!(g.rot_injected >= 1, "{g:?}");
    assert!(report.monitor.resilience.recoveries >= 1);
}

/// Torus-topology clusters run the full stack too (ablation A4 plumbing).
#[test]
fn torus_cluster_end_to_end() {
    let mut cfg = config(4, 2);
    cfg.spec.topology = allscale_net::TopologyKind::Torus;
    let rt = Runtime::new(cfg);
    let report = rt.run(
        move |phase: usize, ctx: &mut RtCtx<'_>, _prev: TaskValue| -> Option<Box<dyn WorkItem>> {
            if phase > 0 {
                return None;
            }
            let g = Grid::<f64, 1>::create(ctx, "v", [64]);
            Some(pfor(
                PforSpec {
                    name: "t",
                    range: g.full_box(),
                    grain: 4,
                    ns_per_point: 2.0,
                    axis0_pieces: 16,
                },
                move |tile| vec![Requirement::write(g.id, BoxRegion::from_box(*tile))],
                move |ctx2, p| g.set(ctx2, p.0, 1.0),
            ))
        },
    );
    assert!(report.remote_msgs > 0);
}

/// Retention-depth regression (`CheckpointConfig::keep`): with the two
/// newest retained checkpoints corrupted at rest, recovery must fall
/// back past both rejected links. A depth of 4 lands on the
/// third-newest checkpoint; the old fixed depth of 2 has nothing left
/// and restarts from scratch. Both runs still produce exact results.
#[test]
fn recovery_falls_back_the_configured_retention_depth() {
    use allscale_core::{CheckpointConfig, CkptMode};
    use std::cell::RefCell;
    use std::rc::Rc;
    const N: i64 = 96;
    const STEPS: usize = 4;

    // Like `bump_roundtrip`, but the driver flips a byte in the two
    // newest retained checkpoints at the last bump boundary — targeted
    // at-rest corruption via the test hook, no random rot arm.
    fn run(cfg: RtConfig, corrupt: bool) -> (u64, usize, allscale_core::RunReport) {
        type DriverState = (Option<Grid<f64, 1>>, u64, usize);
        let st: Rc<RefCell<DriverState>> = Rc::new(RefCell::new((None, 0, 0)));
        let s2 = st.clone();
        let rt = Runtime::new(cfg);
        let report = rt.run(
            move |phase: usize,
                  ctx: &mut RtCtx<'_>,
                  _prev: TaskValue|
                  -> Option<Box<dyn WorkItem>> {
                if phase == 0 {
                    let g = Grid::<f64, 1>::create(ctx, "v", [N]);
                    s2.borrow_mut().0 = Some(g);
                    return Some(pfor(
                        PforSpec {
                            name: "fill",
                            range: g.full_box(),
                            grain: 12,
                            ns_per_point: 4.0,
                            axis0_pieces: 8,
                        },
                        move |tile| vec![Requirement::write(g.id, BoxRegion::from_box(*tile))],
                        move |tctx, p| g.set(tctx, p.0, p[0] as f64),
                    ));
                }
                let g = s2.borrow().0.unwrap();
                if phase <= STEPS {
                    if corrupt && phase == STEPS {
                        s2.borrow_mut().2 = ctx.retained_checkpoints();
                        ctx.corrupt_newest_checkpoints(2);
                    }
                    return Some(pfor(
                        PforSpec {
                            name: "bump",
                            range: g.full_box(),
                            grain: 12,
                            ns_per_point: 4.0,
                            axis0_pieces: 8,
                        },
                        move |tile| vec![Requirement::write(g.id, BoxRegion::from_box(*tile))],
                        move |tctx, p| {
                            let v = g.get(tctx, p.0);
                            g.set(tctx, p.0, v + 1.0);
                        },
                    ));
                }
                let mut seen = 0u64;
                for loc in 0..ctx.nodes() {
                    let frag = ctx.fragment_at::<GridFragment<f64, 1>>(loc, g.id);
                    frag.for_each(|p, v| {
                        assert_eq!(*v, p[0] as f64 + STEPS as f64, "cell {p:?}");
                        seen += 1;
                    });
                }
                assert_eq!(seen, N as u64, "grid fully covered after faults");
                s2.borrow_mut().1 = seen;
                None
            },
        );
        let (seen, retained) = (st.borrow().1, st.borrow().2);
        (seen, retained, report)
    }

    // Blocking full snapshots keep the commit/corruption ordering at the
    // boundary trivial; cadence 1 fills the retention window quickly.
    let res = |keep: usize, heartbeat: SimDuration| ResilienceConfig {
        checkpoint_every: 1,
        ckpt: CheckpointConfig {
            mode: CkptMode::Sync,
            incremental: false,
            keep,
            ..CheckpointConfig::default()
        },
        heartbeat_period: heartbeat,
        ..ResilienceConfig::default()
    };
    // Size the kill against the identically billed clean run: right
    // after the last bump boundary's corruption, early enough that
    // detection and recovery land before the wrap-up boundary.
    let mut cfg = config(4, 2);
    cfg.resilience = Some(res(4, SimDuration::from_micros(50)));
    cfg = cfg.with_integrity(IntegrityConfig {
        scrub_period: None,
        ..IntegrityConfig::default()
    });
    let (_, _, clean) = run(cfg, false);
    let total = clean.finish_time.as_nanos();
    let hb = SimDuration::from_nanos((total / 200).max(100));

    // Depth 4: fall back across the two rejected checkpoints onto the
    // third-newest and restore from it.
    let mut plan = FaultPlan::new(0x4ee9);
    plan.kill_at(2, SimTime::from_nanos(total * 85 / 100));
    let mut cfg4 = config(4, 2);
    cfg4.faults = Some(plan.clone());
    cfg4.resilience = Some(res(4, hb));
    cfg4 = cfg4.with_integrity(IntegrityConfig {
        scrub_period: None,
        ..IntegrityConfig::default()
    });
    let (seen, retained, report) = run(cfg4, true);
    assert_eq!(seen, 96, "exact results after the deep fallback");
    assert_eq!(retained, 4, "keep=4 retains four checkpoints");
    let g = &report.monitor.integrity;
    assert!(
        g.checkpoint_fallbacks >= 2 && g.checkpoint_shards_rejected >= 2,
        "both corrupted checkpoints must be rejected ({g:?})"
    );
    let r = &report.monitor.resilience;
    assert!(r.recoveries >= 1, "{r:?}");
    assert!(
        r.restored_bytes > 0,
        "depth 4 restores a surviving checkpoint instead of restarting ({r:?})"
    );

    // Depth 2 (the old fixed limit): every retained checkpoint is
    // corrupt, so the same fault forces a full restart.
    let mut cfg2 = config(4, 2);
    cfg2.faults = Some(plan);
    cfg2.resilience = Some(res(2, hb));
    cfg2 = cfg2.with_integrity(IntegrityConfig {
        scrub_period: None,
        ..IntegrityConfig::default()
    });
    let (seen, retained, report) = run(cfg2, true);
    assert_eq!(seen, 96, "the restarted run still produces exact results");
    assert_eq!(retained, 2, "keep=2 retains two checkpoints");
    let r = &report.monitor.resilience;
    assert_eq!(
        r.restored_bytes, 0,
        "with the whole window rejected, recovery restarts from scratch ({r:?})"
    );
    assert!(report.monitor.integrity.checkpoint_fallbacks >= 2);
}

/// A failure that strikes while an asynchronous drain is still in
/// flight must tear the pending capture (never restore a partially
/// drained snapshot) and recover from the last *committed* checkpoint —
/// and the replay still produces exact results.
#[test]
fn mid_drain_kill_recovers_from_last_committed_checkpoint() {
    use allscale_core::{CheckpointConfig, StorageParams};

    // Slow the remote tier far below the phase rate so a drain is in
    // flight essentially all the time (every boundary write-fences).
    let res = |heartbeat: SimDuration| {
        let ck = CheckpointConfig {
            storage: StorageParams {
                remote_write_bps: 10e6,
                ..StorageParams::default()
            },
            ..CheckpointConfig::default()
        };
        ResilienceConfig {
            checkpoint_every: 1,
            ckpt: ck,
            heartbeat_period: heartbeat,
            ..ResilienceConfig::default()
        }
    };
    let mut cfg = config(4, 2);
    cfg.resilience = Some(res(SimDuration::from_micros(50)));
    let (_, clean) = bump_roundtrip(cfg, 2);
    let total = clean.finish_time.as_nanos();

    let mut plan = FaultPlan::new(0x70c4);
    plan.kill_at(2, SimTime::from_nanos(total / 2));
    let mut cfg = config(4, 2);
    cfg.faults = Some(plan);
    cfg.resilience = Some(res(SimDuration::from_nanos((total / 100).max(100))));
    let (seen, report) = bump_roundtrip(cfg, 2);
    assert_eq!(seen, 96, "exact results after the torn drain");
    let r = &report.monitor.resilience;
    assert!(
        r.ckpt_torn >= 1,
        "the kill must land mid-drain and tear the capture ({r:?})"
    );
    assert!(r.recoveries >= 1, "{r:?}");
    assert!(
        r.ckpt_fence_ns > 0,
        "boundaries must have write-fenced on the slow drains ({r:?})"
    );
}

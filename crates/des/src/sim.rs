//! The discrete-event simulation core.
//!
//! [`Sim`] owns a user-provided *world* (the entire simulated cluster state)
//! and a time-ordered event queue. Events are boxed closures receiving
//! `&mut Sim<W>`, so a handler can freely inspect and mutate the world and
//! schedule follow-up events. Ties in firing time are broken by a
//! monotonically increasing sequence number, which makes every run fully
//! deterministic — a property the test suite and the experiment harness
//! rely on.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// An event handler. It runs exactly once, at its scheduled virtual time.
pub type Event<W> = Box<dyn FnOnce(&mut Sim<W>)>;

struct Scheduled<W> {
    at: SimTime,
    seq: u64,
    event: Event<W>,
}

// Ordering is on (time, sequence) only; the closure itself is opaque.
impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic discrete-event simulator over a world of type `W`.
pub struct Sim<W> {
    now: SimTime,
    seq: u64,
    events_run: u64,
    queue: BinaryHeap<Reverse<Scheduled<W>>>,
    /// The simulated world. Public so event handlers can reach into it
    /// without accessor boilerplate; the simulator itself never touches it.
    pub world: W,
}

impl<W> Sim<W> {
    /// Create a simulator at virtual time zero around the given world.
    pub fn new(world: W) -> Self {
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            events_run: 0,
            queue: BinaryHeap::new(),
            world,
        }
    }

    /// The current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events executed so far.
    #[inline]
    pub fn events_run(&self) -> u64 {
        self.events_run
    }

    /// Number of events still pending.
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `event` to fire `delay` after the current time.
    pub fn schedule<F>(&mut self, delay: SimDuration, event: F)
    where
        F: FnOnce(&mut Sim<W>) + 'static,
    {
        self.schedule_at(self.now + delay, event);
    }

    /// Schedule `event` to fire at the absolute virtual time `at`.
    ///
    /// `at` must not lie in the past; scheduling at the current instant is
    /// allowed and fires after all previously scheduled events for that
    /// instant (FIFO among ties).
    pub fn schedule_at<F>(&mut self, at: SimTime, event: F)
    where
        F: FnOnce(&mut Sim<W>) + 'static,
    {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={} at={}",
            self.now,
            at
        );
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Scheduled {
            at,
            seq,
            event: Box::new(event),
        }));
    }

    /// Execute the single next event, advancing virtual time to it.
    ///
    /// Returns `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some(Reverse(s)) => {
                debug_assert!(s.at >= self.now);
                self.now = s.at;
                self.events_run += 1;
                (s.event)(self);
                true
            }
            None => false,
        }
    }

    /// Run until the event queue drains. Returns the final virtual time.
    pub fn run(&mut self) -> SimTime {
        while self.step() {}
        self.now
    }

    /// Run until the event queue drains or `limit` events have executed.
    ///
    /// Returns `true` if the queue drained. The limit is a safety net
    /// against accidental livelock in tests.
    pub fn run_bounded(&mut self, limit: u64) -> bool {
        let start = self.events_run;
        while self.events_run - start < limit {
            if !self.step() {
                return true;
            }
        }
        self.queue.is_empty()
    }

    /// Run until the predicate over the world becomes true (checked after
    /// each event) or the queue drains. Returns `true` if the predicate held.
    pub fn run_until<P>(&mut self, mut pred: P) -> bool
    where
        P: FnMut(&W) -> bool,
    {
        loop {
            if pred(&self.world) {
                return true;
            }
            if !self.step() {
                return false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_fire_in_time_order() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new(());
        for &(t, label) in &[(30u64, 'c'), (10, 'a'), (20, 'b')] {
            let log = log.clone();
            sim.schedule(SimDuration::from_nanos(t), move |_| {
                log.borrow_mut().push(label)
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_fire_fifo() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new(());
        for label in ['x', 'y', 'z'] {
            let log = log.clone();
            sim.schedule(SimDuration::from_nanos(5), move |_| {
                log.borrow_mut().push(label)
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec!['x', 'y', 'z']);
    }

    #[test]
    fn handlers_can_schedule_followups() {
        let mut sim = Sim::new(0u64);
        sim.schedule(SimDuration::from_nanos(1), |sim| {
            sim.world += 1;
            sim.schedule(SimDuration::from_nanos(1), |sim| {
                sim.world += 10;
            });
        });
        let end = sim.run();
        assert_eq!(sim.world, 11);
        assert_eq!(end, SimTime::from_nanos(2));
    }

    #[test]
    fn time_advances_to_event_times() {
        let mut sim = Sim::new(Vec::<SimTime>::new());
        sim.schedule(SimDuration::from_millis(3), |sim| {
            let t = sim.now();
            sim.world.push(t);
        });
        sim.run();
        assert_eq!(sim.world, vec![SimTime::from_nanos(3_000_000)]);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut sim = Sim::new(());
        sim.schedule(SimDuration::from_nanos(10), |sim| {
            sim.schedule_at(SimTime::from_nanos(5), |_| {});
        });
        sim.run();
    }

    #[test]
    fn run_bounded_stops_infinite_chains() {
        fn rearm(sim: &mut Sim<u64>) {
            sim.world += 1;
            sim.schedule(SimDuration::from_nanos(1), rearm);
        }
        let mut sim = Sim::new(0u64);
        sim.schedule(SimDuration::ZERO, rearm);
        let drained = sim.run_bounded(100);
        assert!(!drained);
        assert_eq!(sim.world, 100);
    }

    #[test]
    fn run_until_predicate() {
        fn tick(sim: &mut Sim<u64>) {
            sim.world += 1;
            sim.schedule(SimDuration::from_nanos(1), tick);
        }
        let mut sim = Sim::new(0u64);
        sim.schedule(SimDuration::ZERO, tick);
        assert!(sim.run_until(|w| *w == 42));
        assert_eq!(sim.world, 42);
    }

    #[test]
    fn determinism_across_runs() {
        fn trace() -> Vec<(u64, u32)> {
            let log = Rc::new(RefCell::new(Vec::new()));
            let mut sim = Sim::new(());
            // A diamond of events with equal times exercises tie-breaking.
            for i in 0..16u32 {
                let log = log.clone();
                sim.schedule(SimDuration::from_nanos((i % 4) as u64), move |sim| {
                    let now = sim.now().as_nanos();
                    log.borrow_mut().push((now, i));
                    if i < 4 {
                        let log2 = log.clone();
                        sim.schedule(SimDuration::from_nanos(2), move |sim| {
                            let now = sim.now().as_nanos();
                            log2.borrow_mut().push((now, 100 + i));
                        });
                    }
                });
            }
            sim.run();
            let out = log.borrow().clone();
            out
        }
        assert_eq!(trace(), trace());
    }
}

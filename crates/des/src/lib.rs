//! # allscale-des — deterministic discrete-event simulation kernel
//!
//! The substrate on which this repository reproduces the distributed-memory
//! environment of *The AllScale Runtime Application Model* (CLUSTER 2018).
//! The paper's evaluation ran on a 64-node Intel OmniPath cluster under the
//! HPX runtime; neither is available here, so the cluster is replaced by a
//! virtual-time simulation (see `DESIGN.md`, Section 2 for the substitution
//! argument). Everything the runtime does — scheduling tasks, resolving data
//! locations, migrating fragments — executes as real Rust code inside
//! simulation events; only *time* is virtual.
//!
//! Components:
//! - [`SimTime`] / [`SimDuration`]: virtual clock types (nanoseconds);
//! - [`Sim`]: the event queue and dispatch loop, deterministic by
//!   construction (stable FIFO tie-breaking);
//! - [`CorePool`]: per-node k-core FCFS accounting for intra-node
//!   parallelism and saturation;
//! - [`ThreadActor`]: a strict-hand-off bridge that lets blocking SPMD code
//!   (the MPI baseline) participate in the sequential simulation;
//! - [`Tally`] / [`LogHistogram`]: measurement plumbing;
//! - [`rng`]: the shared seeded generators (xorshift64 family, Zipf) every
//!   randomized subsystem draws from;
//! - [`ArrivalGen`]: open-loop request arrival processes (Poisson and
//!   trace-driven) for the serving subsystem.
//!
//! ## Example
//!
//! ```
//! use allscale_des::{Sim, SimDuration};
//!
//! let mut sim = Sim::new(0u64); // the "world" is a counter
//! sim.schedule(SimDuration::from_micros(5), |sim| {
//!     sim.world += 1;
//!     sim.schedule(SimDuration::from_micros(5), |sim| sim.world += 1);
//! });
//! let end = sim.run();
//! assert_eq!(sim.world, 2);
//! assert_eq!(end.as_nanos(), 10_000);
//! ```

#![warn(missing_docs)]

pub mod arrivals;
mod cores;
pub mod rng;
mod sim;
mod stats;
mod thread_actor;
mod time;

pub use arrivals::{ArrivalGen, ArrivalProcess};
pub use cores::CorePool;
pub use sim::{Event, Sim};
pub use stats::{LogHistogram, Tally};
pub use thread_actor::{Suspended, ThreadActor, ThreadCtx};
pub use time::{SimDuration, SimTime};

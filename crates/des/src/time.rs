//! Virtual time for the discrete-event simulation.
//!
//! All simulated durations are expressed in nanoseconds of *virtual* time.
//! Virtual time is completely decoupled from wall-clock time: a 64-node run
//! simulating minutes of cluster activity executes in milliseconds of host
//! time, and — crucially — produces bit-identical results on every run.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from a nanosecond count.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// The raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Convert to seconds as a float (for reporting throughput).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from a fractional nanosecond count, rounding up so that
    /// nonzero costs never collapse to zero.
    #[inline]
    pub fn from_nanos_f64(ns: f64) -> Self {
        debug_assert!(ns >= 0.0, "durations must be non-negative");
        SimDuration(ns.ceil() as u64)
    }

    /// The raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Convert to seconds as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating scalar multiplication.
    #[inline]
    pub fn saturating_mul(self, k: u64) -> Self {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "time went backwards");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.2}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.2}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_nanos(100);
        let d = SimDuration::from_nanos(50);
        assert_eq!(t + d, SimTime::from_nanos(150));
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_secs(3).as_nanos(), 3_000_000_000);
    }

    #[test]
    fn fractional_costs_round_up() {
        assert_eq!(SimDuration::from_nanos_f64(0.2).as_nanos(), 1);
        assert_eq!(SimDuration::from_nanos_f64(2.0).as_nanos(), 2);
        assert_eq!(SimDuration::from_nanos_f64(0.0).as_nanos(), 0);
    }

    #[test]
    fn saturating_behaviour() {
        let t = SimTime(u64::MAX - 1);
        let d = SimDuration::from_secs(1);
        assert_eq!((t + d).as_nanos(), u64::MAX);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.00us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.00ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }
}

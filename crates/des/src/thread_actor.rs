//! Blocking-style actors for the deterministic simulator.
//!
//! SPMD code (the MPI baseline) is far more natural to write in blocking
//! style (`recv()` suspends the rank) than as explicit continuations. This
//! module bridges blocking code into the sequential DES: each actor runs on
//! its own OS thread, but *exactly one* thread — either the simulator or a
//! single actor — is runnable at any instant. Control passes via rendezvous
//! channels:
//!
//! - the simulator resumes an actor by handing it an answer value `A`;
//! - the actor runs until it issues its next request `Q` (or finishes),
//!   which suspends it and returns control to the simulator.
//!
//! Strict hand-off means the interleaving is a deterministic function of the
//! event schedule, so simulations involving dozens of rank threads remain
//! bit-reproducible.

use crossbeam::channel::{bounded, Receiver, Sender};
use std::thread::JoinHandle;

/// What an actor thread reports when it suspends.
pub enum Suspended<Q, T> {
    /// The actor issued a request and is blocked awaiting its answer.
    Request(Q),
    /// The actor's body returned with this value; the thread has exited.
    Finished(T),
}

/// Handle given to the blocking actor body for talking to the simulator.
pub struct ThreadCtx<Q, A, T> {
    req_tx: Sender<Suspended<Q, T>>,
    ans_rx: Receiver<A>,
}

impl<Q, A, T> ThreadCtx<Q, A, T> {
    /// Issue a request to the simulator and block until it answers.
    ///
    /// # Panics
    /// Panics if the simulator side has been dropped (the simulation was
    /// abandoned while this actor was still live).
    pub fn call(&self, request: Q) -> A {
        self.req_tx
            .send(Suspended::Request(request))
            .expect("simulator dropped while actor still running");
        self.ans_rx
            .recv()
            .expect("simulator dropped while actor awaiting answer")
    }
}

/// The simulator-side handle of a blocking actor.
pub struct ThreadActor<Q, A, T> {
    ans_tx: Sender<A>,
    req_rx: Receiver<Suspended<Q, T>>,
    handle: Option<JoinHandle<()>>,
    finished: bool,
}

impl<Q, A, T> ThreadActor<Q, A, T>
where
    Q: Send + 'static,
    A: Send + 'static,
    T: Send + 'static,
{
    /// Spawn the actor. The body does not begin executing until the first
    /// [`ThreadActor::resume`] call, whose answer value acts purely as a
    /// start token the body never sees.
    pub fn spawn<F>(name: String, body: F) -> Self
    where
        F: FnOnce(&ThreadCtx<Q, A, T>) -> T + Send + 'static,
    {
        // Capacity-1 channels: with strict hand-off there is at most one
        // in-flight message per direction, so sends never block.
        let (ans_tx, ans_rx) = bounded::<A>(1);
        let (req_tx, req_rx) = bounded::<Suspended<Q, T>>(1);
        let handle = std::thread::Builder::new()
            .name(name)
            .spawn(move || {
                let ctx = ThreadCtx { req_tx, ans_rx };
                // Wait for the start token before running user code.
                let _start: A = ctx
                    .ans_rx
                    .recv()
                    .expect("simulator dropped before starting actor");
                let result = body(&ctx);
                let _ = ctx.req_tx.send(Suspended::Finished(result));
            })
            .expect("failed to spawn actor thread");
        ThreadActor {
            ans_tx,
            req_rx,
            handle: Some(handle),
            finished: false,
        }
    }

    /// Hand `answer` to the actor and run it until its next suspension.
    ///
    /// The first `resume` after `spawn` starts the body; its answer value is
    /// discarded by the actor.
    pub fn resume(&mut self, answer: A) -> Suspended<Q, T> {
        assert!(!self.finished, "resumed an already-finished actor");
        self.ans_tx
            .send(answer)
            .expect("actor thread died unexpectedly");
        let s = self
            .req_rx
            .recv()
            .expect("actor thread died unexpectedly (panicked?)");
        if matches!(s, Suspended::Finished(_)) {
            self.finished = true;
        }
        s
    }

    /// Whether the actor body has returned.
    pub fn is_finished(&self) -> bool {
        self.finished
    }
}

impl<Q, A, T> Drop for ThreadActor<Q, A, T> {
    fn drop(&mut self) {
        // Dropping ans_tx makes a blocked actor's recv fail; it then panics
        // in its own thread, which we swallow on join. This only happens
        // when a simulation is abandoned mid-flight (e.g. a failing test).
        if let Some(h) = self.handle.take() {
            drop(std::mem::replace(&mut self.ans_tx, bounded(1).0));
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actor_round_trip() {
        // Actor doubles each answer it receives and asks for more.
        let mut actor: ThreadActor<u32, u32, u32> =
            ThreadActor::spawn("doubler".into(), |ctx| {
                let mut acc = 0;
                for _ in 0..3 {
                    acc = ctx.call(acc * 2 + 1);
                }
                acc
            });
        // First resume delivers the start token.
        let mut next = match actor.resume(0) {
            Suspended::Request(q) => q,
            Suspended::Finished(_) => panic!("finished too early"),
        };
        assert_eq!(next, 1); // 0*2+1
        next = match actor.resume(next + 10) {
            Suspended::Request(q) => q,
            _ => panic!(),
        };
        assert_eq!(next, 23); // 11*2+1
        next = match actor.resume(next) {
            Suspended::Request(q) => q,
            _ => panic!(),
        };
        assert_eq!(next, 47); // 23*2+1
        match actor.resume(100) {
            Suspended::Finished(v) => assert_eq!(v, 100),
            _ => panic!("expected finish"),
        }
        assert!(actor.is_finished());
    }

    #[test]
    fn actor_with_no_requests_finishes_immediately() {
        let mut actor: ThreadActor<(), (), &'static str> =
            ThreadActor::spawn("noop".into(), |_| "done");
        match actor.resume(()) {
            Suspended::Finished(v) => assert_eq!(v, "done"),
            _ => panic!("expected immediate finish"),
        }
    }

    #[test]
    fn dropping_simulator_side_reaps_blocked_actor() {
        let mut actor: ThreadActor<u32, u32, ()> =
            ThreadActor::spawn("orphan".into(), |ctx| {
                let _ = ctx.call(7);
            });
        match actor.resume(0) {
            Suspended::Request(q) => assert_eq!(q, 7),
            _ => panic!(),
        }
        drop(actor); // must not hang
    }

    #[test]
    fn many_actors_interleave_deterministically() {
        let run = || {
            let mut order = Vec::new();
            let mut actors: Vec<ThreadActor<usize, usize, usize>> = (0..8)
                .map(|i| {
                    ThreadActor::spawn(format!("a{i}"), move |ctx| {
                        let mut x = i;
                        for _ in 0..4 {
                            x = ctx.call(x);
                        }
                        x
                    })
                })
                .collect();
            let mut live = actors.len();
            // Kick off with start tokens; collect first requests.
            let mut pending: Vec<Option<usize>> = actors
                .iter_mut()
                .map(|a| match a.resume(0) {
                    Suspended::Request(q) => Some(q),
                    Suspended::Finished(_) => None,
                })
                .collect();
            while live > 0 {
                for (i, a) in actors.iter_mut().enumerate() {
                    if a.is_finished() {
                        continue;
                    }
                    if let Some(q) = pending[i].take() {
                        order.push((i, q));
                        match a.resume(q + 1) {
                            Suspended::Request(q2) => pending[i] = Some(q2),
                            Suspended::Finished(v) => {
                                order.push((i, 1000 + v));
                                live -= 1;
                            }
                        }
                    }
                }
            }
            order
        };
        assert_eq!(run(), run());
    }
}

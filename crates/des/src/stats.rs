//! Lightweight measurement helpers shared by the runtime's monitoring
//! component and the experiment harness.

use std::fmt;

/// A streaming counter with min/max/mean over `u64` samples.
#[derive(Debug, Clone, Default)]
pub struct Tally {
    count: u64,
    sum: u64,
    min: Option<u64>,
    max: Option<u64>,
}

impl Tally {
    /// An empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = Some(self.min.map_or(v, |m| m.min(v)));
        self.max = Some(self.max.map_or(v, |m| m.max(v)));
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<u64> {
        self.min
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<u64> {
        self.max
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Merge another tally into this one.
    pub fn merge(&mut self, other: &Tally) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if let Some(m) = other.min {
            self.min = Some(self.min.map_or(m, |x| x.min(m)));
        }
        if let Some(m) = other.max {
            self.max = Some(self.max.map_or(m, |x| x.max(m)));
        }
    }
}

impl fmt::Display for Tally {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} sum={} mean={:.1} min={} max={}",
            self.count,
            self.sum,
            self.mean(),
            self.min.unwrap_or(0),
            self.max.unwrap_or(0)
        )
    }
}

/// A log2-bucketed histogram of `u64` samples (bucket *i* holds values whose
/// highest set bit is *i*; value 0 goes in bucket 0).
#[derive(Debug, Clone)]
pub struct LogHistogram {
    buckets: [u64; 64],
    tally: Tally,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: [0; 64],
            tally: Tally::new(),
        }
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        let b = 63 - v.max(1).leading_zeros() as usize;
        self.buckets[b] += 1;
        self.tally.record(v);
    }

    /// Underlying tally (count/sum/min/max/mean).
    pub fn tally(&self) -> &Tally {
        &self.tally
    }

    /// Approximate p-th percentile (0 < p <= 100) from bucket boundaries.
    /// Returns the upper bound of the bucket containing the percentile.
    pub fn percentile(&self, p: f64) -> u64 {
        let n = self.tally.count();
        if n == 0 {
            return 0;
        }
        let target = ((p / 100.0) * n as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i >= 63 { u64::MAX } else { (2u64 << i) - 1 };
            }
        }
        u64::MAX
    }

    /// Median (upper bucket bound), 0 when empty.
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 90th percentile (upper bucket bound), 0 when empty.
    pub fn p90(&self) -> u64 {
        self.percentile(90.0)
    }

    /// 99th percentile (upper bucket bound), 0 when empty.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// Merge another histogram into this one (bucket-wise sum plus tally
    /// merge), e.g. to aggregate per-locality distributions cluster-wide.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.tally.merge(&other.tally);
    }
}

impl fmt::Display for LogHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} p50≤{} p90≤{} p99≤{} max={}",
            self.tally.count(),
            self.tally.mean(),
            self.p50(),
            self.p90(),
            self.p99(),
            self.tally.max().unwrap_or(0)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_basics() {
        let mut t = Tally::new();
        assert_eq!(t.mean(), 0.0);
        for v in [5, 1, 9] {
            t.record(v);
        }
        assert_eq!(t.count(), 3);
        assert_eq!(t.sum(), 15);
        assert_eq!(t.min(), Some(1));
        assert_eq!(t.max(), Some(9));
        assert!((t.mean() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn tally_merge() {
        let mut a = Tally::new();
        a.record(10);
        let mut b = Tally::new();
        b.record(2);
        b.record(30);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Some(2));
        assert_eq!(a.max(), Some(30));
    }

    #[test]
    fn histogram_buckets() {
        let mut h = LogHistogram::new();
        for v in [0, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        assert_eq!(h.tally().count(), 6);
        // p100 lands in the bucket containing 1000 (bucket 9: 512..1023).
        assert_eq!(h.percentile(100.0), 1023);
        // Median is within the small buckets.
        assert!(h.percentile(50.0) <= 3);
    }

    #[test]
    fn percentile_of_empty_is_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p90(), 0);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // A value with highest set bit i lands in bucket i, whose reported
        // upper bound is 2^(i+1) - 1. Probe each boundary pair.
        for i in 0..20u32 {
            let lo = 1u64 << i; // first value of bucket i
            let hi = (2u64 << i) - 1; // last value of bucket i
            for v in [lo, hi] {
                let mut h = LogHistogram::new();
                h.record(v);
                assert_eq!(h.percentile(100.0), hi, "value {v} should report bucket {i}'s bound");
            }
        }
        // Zero shares bucket 0 with value 1.
        let mut h = LogHistogram::new();
        h.record(0);
        assert_eq!(h.percentile(100.0), 1);
    }

    #[test]
    fn percentiles_split_a_bimodal_distribution() {
        let mut h = LogHistogram::new();
        for _ in 0..90 {
            h.record(100); // bucket 6 (64..127)
        }
        for _ in 0..10 {
            h.record(100_000); // bucket 16 (65536..131071)
        }
        assert_eq!(h.p50(), 127);
        assert_eq!(h.p90(), 127);
        assert_eq!(h.p99(), 131_071);
    }

    #[test]
    fn histogram_merge_sums_buckets() {
        let mut a = LogHistogram::new();
        a.record(10);
        a.record(10);
        let mut b = LogHistogram::new();
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.tally().count(), 3);
        assert_eq!(a.tally().max(), Some(1_000_000));
        assert_eq!(a.p50(), 15); // bucket of 10
        assert_eq!(a.p99(), a.percentile(100.0));
        let shown = format!("{a}");
        assert!(shown.contains("n=3"), "display carries the count: {shown}");
    }

    #[test]
    fn merge_preserves_count_and_sum_identities() {
        // Record one global stream and the same stream sharded four ways;
        // merging the shards must reproduce the global histogram exactly
        // (same buckets => same quantiles, and tally count/sum/min/max
        // are the arithmetic identities).
        let mut x = 0x00ff_ee00_u64;
        let mut step = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x % 1_000_000
        };
        let mut global = LogHistogram::new();
        let mut shards = vec![LogHistogram::new(); 4];
        let values: Vec<u64> = (0..4096).map(|_| step()).collect();
        for (i, &v) in values.iter().enumerate() {
            global.record(v);
            shards[i % 4].record(v);
        }
        let mut merged = LogHistogram::new();
        for s in &shards {
            merged.merge(s);
        }
        let part_count: u64 = shards.iter().map(|s| s.tally().count()).sum();
        let part_sum: u64 = shards.iter().map(|s| s.tally().sum()).sum();
        assert_eq!(merged.tally().count(), part_count);
        assert_eq!(merged.tally().count(), values.len() as u64);
        assert_eq!(merged.tally().sum(), part_sum);
        assert_eq!(merged.tally().sum(), values.iter().sum::<u64>());
        assert_eq!(merged.tally().min(), values.iter().min().copied());
        assert_eq!(merged.tally().max(), values.iter().max().copied());
        for p in [1.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            assert_eq!(
                merged.percentile(p),
                global.percentile(p),
                "merged shards must reproduce the global p{p}"
            );
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = LogHistogram::new();
        a.record(17);
        a.record(90_000);
        let before = (a.tally().count(), a.tally().sum(), a.p50(), a.p99());
        a.merge(&LogHistogram::new());
        assert_eq!(before, (a.tally().count(), a.tally().sum(), a.p50(), a.p99()));
        let mut empty = LogHistogram::new();
        empty.merge(&a);
        assert_eq!(empty.p99(), a.p99());
        assert_eq!(empty.tally().count(), a.tally().count());
    }
}

//! Shared seeded pseudo-random generators.
//!
//! Several subsystems need small, dependency-free, *deterministic*
//! randomness: the network fault arms, the work-stealing victim draw,
//! the serving workload's key sampler, and the randomized conformance
//! harnesses. Historically each site carried its own copy of the same
//! xorshift64 kernel; this module is the single home for all of them.
//!
//! Stream compatibility is a hard contract: every constructor and step
//! function here reproduces, bit for bit, the sequences the inlined
//! copies produced, so existing seeds (in tests, experiment configs and
//! recorded baselines) keep reproducing identical runs. The pinning
//! tests at the bottom freeze the exact draw sequences.

/// The golden-ratio mixing constant used to spread small seeds over the
/// state space (Weyl/Fibonacci hashing constant).
pub const MIX_GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;
/// Mixing constant of the wire-corruption fault arm (splitmix64's first
/// round constant) — distinct from [`MIX_GOLDEN`] so enabling the arm
/// never reshuffles the drop/delay stream.
pub const MIX_CORRUPT: u64 = 0xbf58_476d_1ce4_e5b9;
/// Mixing constant of the at-rest rot fault arm.
pub const MIX_ROT: u64 = 0x94d0_49bb_1331_11eb;
/// The xorshift64\* output multiplier (Vigna's `M32` constant).
pub const STAR_MUL: u64 = 0x2545_f491_4f6c_dd1d;

/// Plain xorshift64: the raw 13/7/17 shift kernel with a golden-mixed,
/// never-zero seed. This is the generator of the work-stealing `Random`
/// victim policy and of the randomized conformance harnesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seeded generator; the state is `seed * MIX_GOLDEN | 1` (never
    /// zero, which would be a fixed point of the kernel).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: seed.wrapping_mul(MIX_GOLDEN) | 1,
        }
    }

    /// Seeded with a caller-chosen mixing constant (`seed * mix | 1`) —
    /// how the fault plan keeps its three arms statistically independent
    /// at the same user seed.
    pub fn with_mix(seed: u64, mix: u64) -> Self {
        XorShift64 {
            state: seed.wrapping_mul(mix) | 1,
        }
    }

    /// One raw kernel step: `x ^= x<<13; x ^= x>>7; x ^= x<<17`.
    ///
    /// Named `next` on purpose — the universal name of a PRNG step,
    /// kept from the inlined copies this module replaced — and the
    /// generator is deliberately not an `Iterator` (it never ends and
    /// `Option<u64>` at every draw would be noise).
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// A draw in `[0, n)` (`n` clamped up to 1) — the conformance
    /// harnesses' `below`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    /// The current state (diagnostics, stream-pinning tests).
    pub fn state(&self) -> u64 {
        self.state
    }
}

/// xorshift64\*: the raw kernel followed by a multiply by [`STAR_MUL`],
/// which decorrelates the low bits. This is the generator family of the
/// network fault arms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XorShift64Star {
    inner: XorShift64,
}

impl XorShift64Star {
    /// Golden-mixed seeded generator.
    pub fn new(seed: u64) -> Self {
        XorShift64Star {
            inner: XorShift64::new(seed),
        }
    }

    /// Seeded with a caller-chosen mixing constant (`seed * mix | 1`).
    pub fn with_mix(seed: u64, mix: u64) -> Self {
        XorShift64Star {
            inner: XorShift64::with_mix(seed, mix),
        }
    }

    /// One xorshift64\* output.
    ///
    /// Named `next` on purpose, like [`XorShift64::next`].
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.inner.next().wrapping_mul(STAR_MUL)
    }

    /// One output reduced to parts-per-million, `[0, 1e6)` — the fault
    /// arms' probability draw.
    #[inline]
    pub fn next_ppm(&mut self) -> u32 {
        (self.next() % 1_000_000) as u32
    }

    /// One output mapped to a uniform `f64` in `[0, 1)` using the top 53
    /// bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        u01(self.next())
    }

    /// The current raw state (diagnostics, stream-pinning tests).
    pub fn state(&self) -> u64 {
        self.inner.state()
    }
}

/// Map a full-entropy `u64` to a uniform `f64` in `[0, 1)` (top 53 bits).
#[inline]
pub fn u01(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A Zipf(s) sampler over ranks `0..n`: rank `k` has probability
/// proportional to `1 / (k+1)^s`. Built once (O(n) table), sampled by
/// binary search over the cumulative distribution — deterministic given
/// the caller's uniform draws. The serving workload's skewed key
/// popularity (`s ≈ 1` models the classic hot-shard regime).
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// A sampler over `n ≥ 1` ranks with exponent `s ≥ 0` (`s = 0` is
    /// uniform).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "Zipf needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.cdf.len()
    }

    /// The rank of a uniform draw `u ∈ [0, 1)`.
    pub fn rank_of(&self, u: f64) -> usize {
        // First index whose cdf strictly exceeds u.
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Draw one rank using `rng`.
    pub fn sample(&self, rng: &mut XorShift64Star) -> usize {
        self.rank_of(rng.next_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact kernel every pre-consolidation call site inlined.
    fn legacy_step(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    #[test]
    fn pin_xorshift64_stream_to_legacy_harness_kernel() {
        // tests/*.rs harness shape: state = seed * GOLDEN | 1, raw steps.
        for seed in [0u64, 1, 2, 7, 42, 0x5eed_0bad_cafe, u64::MAX] {
            let mut legacy = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
            let mut rng = XorShift64::new(seed);
            for _ in 0..64 {
                assert_eq!(rng.next(), legacy_step(&mut legacy), "seed {seed}");
            }
        }
    }

    #[test]
    fn pin_fault_arm_draw_streams() {
        // FaultPlan's historical arms: three mixes, output multiplied by
        // STAR_MUL, probability draws reduced mod 1e6.
        for (mix, name) in [
            (MIX_GOLDEN, "drop/delay"),
            (MIX_CORRUPT, "corrupt"),
            (MIX_ROT, "rot"),
        ] {
            let seed = 77u64;
            let mut legacy = seed.wrapping_mul(mix) | 1;
            let mut rng = XorShift64Star::with_mix(seed, mix);
            let mut ppm_rng = XorShift64Star::with_mix(seed, mix);
            for _ in 0..64 {
                let want = legacy_step(&mut legacy).wrapping_mul(0x2545_f491_4f6c_dd1d);
                assert_eq!(rng.next(), want, "{name} arm diverged");
                assert_eq!(ppm_rng.next_ppm(), (want % 1_000_000) as u32, "{name} ppm");
            }
        }
    }

    #[test]
    fn pin_first_draws_of_known_seeds() {
        // Absolute values, frozen: a refactor that changes any constant
        // or the step order fails here even if it stays self-consistent.
        let mut a = XorShift64::new(1);
        assert_eq!(a.next(), 0xdc1b_77ae_0bf3_4dad);
        let mut b = XorShift64Star::new(0x5eed_0bad_cafe);
        let first = b.next();
        let mut legacy = 0x5eed_0bad_cafeu64.wrapping_mul(MIX_GOLDEN) | 1;
        assert_eq!(first, legacy_step(&mut legacy).wrapping_mul(STAR_MUL));
    }

    #[test]
    fn below_matches_modulo_reduction() {
        let mut a = XorShift64::new(9);
        let mut b = XorShift64::new(9);
        for n in [1u64, 2, 3, 10, 1000] {
            assert_eq!(a.below(n), b.next() % n);
        }
        // n = 0 is clamped to 1, not a division by zero.
        assert_eq!(XorShift64::new(3).below(0), 0);
    }

    #[test]
    fn u01_is_in_unit_interval() {
        let mut rng = XorShift64Star::new(5);
        for _ in 0..1000 {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u));
        }
        assert_eq!(u01(0), 0.0);
        assert!(u01(u64::MAX) < 1.0);
    }

    #[test]
    fn zipf_is_skewed_and_deterministic() {
        let z = ZipfSampler::new(8, 1.2);
        let draw = |seed| {
            let mut rng = XorShift64Star::new(seed);
            (0..4096).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(11), draw(11));
        let counts = draw(11).iter().fold(vec![0usize; 8], |mut c, &r| {
            c[r] += 1;
            c
        });
        // Rank 0 dominates and the tail is monotone-ish.
        assert!(counts[0] > counts[1] && counts[1] > counts[3]);
        assert!(counts[0] > 4096 / 4, "rank 0 should carry >25%: {counts:?}");
        // Uniform exponent flattens it.
        let u = ZipfSampler::new(8, 0.0);
        let mut rng = XorShift64Star::new(11);
        let counts = (0..4096).fold(vec![0usize; 8], |mut c, _| {
            c[u.sample(&mut rng)] += 1;
            c
        });
        assert!(counts.iter().all(|&c| c > 4096 / 16));
    }

    #[test]
    fn zipf_rank_of_edges() {
        let z = ZipfSampler::new(4, 1.0);
        assert_eq!(z.rank_of(0.0), 0);
        assert_eq!(z.rank_of(0.999_999_999), 3);
        assert_eq!(z.ranks(), 4);
    }
}

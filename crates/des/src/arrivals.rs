//! Open-loop arrival processes for request-serving simulations.
//!
//! A closed-loop workload (the batch apps) only issues new work when old
//! work completes, so queues can never grow without bound. Serving real
//! traffic is *open loop*: clients fire requests on their own clock,
//! oblivious to whether the cluster keeps up — which is exactly what
//! makes saturation knees and tail-latency blowups observable. An
//! [`ArrivalGen`] produces the deterministic sequence of inter-arrival
//! gaps that the runtime turns into injection events on the simulated
//! clock, independent of completions.

use crate::rng::XorShift64Star;
use crate::time::SimDuration;

/// The statistical shape of an arrival stream.
#[derive(Debug, Clone)]
pub enum ArrivalProcess {
    /// Memoryless Poisson arrivals at `rate_rps` requests per (simulated)
    /// second: inter-arrival gaps are exponential with mean `1/rate_rps`,
    /// drawn from a seeded generator — the same seed replays the same
    /// stream to the nanosecond.
    Poisson {
        /// Offered load in requests per simulated second (must be > 0).
        rate_rps: f64,
        /// Seed of the gap stream.
        seed: u64,
    },
    /// Trace-driven arrivals: an explicit list of inter-arrival gaps,
    /// replayed verbatim and cyclically (request `k` uses
    /// `gaps[k % gaps.len()]`). Lets experiments replay recorded traffic
    /// or construct adversarial bursts.
    Trace {
        /// Inter-arrival gaps, replayed cyclically (must be non-empty).
        gaps: Vec<SimDuration>,
    },
}

impl ArrivalProcess {
    /// The long-run offered load of the process, requests per second.
    pub fn offered_rps(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate_rps, .. } => *rate_rps,
            ArrivalProcess::Trace { gaps } => {
                let total: u64 = gaps.iter().map(|g| g.as_nanos()).sum();
                if total == 0 {
                    0.0
                } else {
                    gaps.len() as f64 * 1e9 / total as f64
                }
            }
        }
    }
}

/// Iterator state of one arrival stream.
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    process: ArrivalProcess,
    rng: XorShift64Star,
    emitted: u64,
}

impl ArrivalGen {
    /// Instantiate a generator for `process`.
    ///
    /// # Panics
    /// Panics on a non-positive Poisson rate or an empty trace.
    pub fn new(process: ArrivalProcess) -> Self {
        let seed = match &process {
            ArrivalProcess::Poisson { rate_rps, seed } => {
                assert!(*rate_rps > 0.0, "Poisson rate must be positive");
                *seed
            }
            ArrivalProcess::Trace { gaps } => {
                assert!(!gaps.is_empty(), "trace must contain at least one gap");
                0
            }
        };
        ArrivalGen {
            process,
            rng: XorShift64Star::new(seed),
            emitted: 0,
        }
    }

    /// The gap between the previous arrival (or the stream start) and the
    /// next one. Gaps are at least 1 ns so distinct requests occupy
    /// distinct simulated instants (FIFO tie-breaking stays trivial).
    pub fn next_gap(&mut self) -> SimDuration {
        let gap = match &self.process {
            ArrivalProcess::Poisson { rate_rps, .. } => {
                // Inverse-CDF exponential; 1-u keeps ln's argument in
                // (0, 1] so the draw is always finite.
                let u = self.rng.next_f64();
                let secs = -(1.0 - u).ln() / rate_rps;
                SimDuration::from_nanos_f64(secs * 1e9)
            }
            ArrivalProcess::Trace { gaps } => gaps[(self.emitted as usize) % gaps.len()],
        };
        self.emitted += 1;
        gap.max(SimDuration::from_nanos(1))
    }

    /// Arrivals emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// The long-run offered load, requests per second.
    pub fn offered_rps(&self) -> f64 {
        self.process.offered_rps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let run = |seed| {
            let mut g = ArrivalGen::new(ArrivalProcess::Poisson {
                rate_rps: 100_000.0,
                seed,
            });
            (0..256).map(|_| g.next_gap().as_nanos()).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn poisson_mean_gap_matches_rate() {
        let rate = 1_000_000.0; // 1M rps => mean gap 1000 ns
        let mut g = ArrivalGen::new(ArrivalProcess::Poisson { rate_rps: rate, seed: 3 });
        let n = 20_000;
        let total: u64 = (0..n).map(|_| g.next_gap().as_nanos()).sum();
        let mean = total as f64 / n as f64;
        assert!(
            (900.0..1100.0).contains(&mean),
            "mean inter-arrival {mean} ns, expected ~1000"
        );
        assert_eq!(g.emitted(), n);
    }

    #[test]
    fn trace_replays_cyclically_and_reports_rate() {
        let gaps = vec![
            SimDuration::from_nanos(100),
            SimDuration::from_nanos(300),
        ];
        let mut g = ArrivalGen::new(ArrivalProcess::Trace { gaps: gaps.clone() });
        assert_eq!(g.next_gap().as_nanos(), 100);
        assert_eq!(g.next_gap().as_nanos(), 300);
        assert_eq!(g.next_gap().as_nanos(), 100);
        // 2 requests per 400 ns = 5M rps.
        assert!((g.offered_rps() - 5e6).abs() < 1.0);
    }

    #[test]
    fn gaps_are_never_zero() {
        let mut g = ArrivalGen::new(ArrivalProcess::Trace {
            gaps: vec![SimDuration::ZERO],
        });
        assert_eq!(g.next_gap().as_nanos(), 1);
        let mut p = ArrivalGen::new(ArrivalProcess::Poisson {
            rate_rps: 1e12, // absurd rate: raw draws round to 0 ns often
            seed: 1,
        });
        assert!((0..1000).all(|_| p.next_gap().as_nanos() >= 1));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        let _ = ArrivalGen::new(ArrivalProcess::Poisson { rate_rps: 0.0, seed: 1 });
    }

    #[test]
    #[should_panic(expected = "at least one gap")]
    fn empty_trace_rejected() {
        let _ = ArrivalGen::new(ArrivalProcess::Trace { gaps: vec![] });
    }
}

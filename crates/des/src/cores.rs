//! Per-node compute-core accounting.
//!
//! Each simulated cluster node owns a [`CorePool`] modelling its `k` CPU
//! cores as a first-come-first-served `k`-server queue: a task asking for
//! `d` nanoseconds of core time starts on the earliest-free core (or
//! immediately, if one is idle) and occupies it for `d`. This reproduces
//! intra-node saturation — once more than `k` tasks are in flight, extra
//! parallelism only queues — which is what makes weak-scaling curves bend
//! realistically without simulating instruction streams.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// A FCFS pool of `k` identical cores.
#[derive(Debug, Clone)]
pub struct CorePool {
    /// Min-heap of `(free_at, core_index)`: when each core becomes free.
    /// The index is the tie-breaker (lowest-numbered idle core wins), which
    /// keeps core assignment deterministic for trace attribution.
    busy_until: BinaryHeap<Reverse<(SimTime, usize)>>,
    cores: usize,
    /// Total core-nanoseconds of work accepted (for utilization reports).
    busy_ns: u64,
}

impl CorePool {
    /// Create a pool of `cores` idle cores. `cores` must be nonzero.
    pub fn new(cores: usize) -> Self {
        assert!(cores > 0, "a node needs at least one core");
        let mut busy_until = BinaryHeap::with_capacity(cores);
        for i in 0..cores {
            busy_until.push(Reverse((SimTime::ZERO, i)));
        }
        CorePool {
            busy_until,
            cores,
            busy_ns: 0,
        }
    }

    /// Number of cores in the pool.
    #[inline]
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Reserve `work` of core time starting no earlier than `now`.
    ///
    /// Returns `(start, end)`: the interval during which the work occupies
    /// a core. `start >= now`, `end = start + work`.
    pub fn acquire(&mut self, now: SimTime, work: SimDuration) -> (SimTime, SimTime) {
        let (_, start, end) = self.acquire_indexed(now, work);
        (start, end)
    }

    /// Like [`CorePool::acquire`], but also reports *which* core the work
    /// landed on — used by the tracing subsystem to draw one timeline track
    /// per core. Scheduling behavior is identical to `acquire`.
    pub fn acquire_indexed(
        &mut self,
        now: SimTime,
        work: SimDuration,
    ) -> (usize, SimTime, SimTime) {
        let Reverse((free_at, core)) = self.busy_until.pop().expect("pool is never empty");
        let start = free_at.max(now);
        let end = start + work;
        self.busy_until.push(Reverse((end, core)));
        self.busy_ns += work.as_nanos();
        (core, start, end)
    }

    /// The earliest time at which some core is (or becomes) free.
    pub fn earliest_free(&self) -> SimTime {
        self.busy_until.peek().expect("pool is never empty").0 .0
    }

    /// Number of cores idle at time `now`.
    pub fn idle_at(&self, now: SimTime) -> usize {
        self.busy_until
            .iter()
            .filter(|Reverse((t, _))| *t <= now)
            .count()
    }

    /// Total accepted work in core-nanoseconds.
    #[inline]
    pub fn total_busy_ns(&self) -> u64 {
        self.busy_ns
    }

    /// Core utilization over the window `[0, now]` (may exceed 1.0 only if
    /// work was accepted that ends beyond `now`).
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now.as_nanos() == 0 {
            return 0.0;
        }
        self.busy_ns as f64 / (now.as_nanos() as f64 * self.cores as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(x: u64) -> SimDuration {
        SimDuration::from_nanos(x)
    }
    fn at(x: u64) -> SimTime {
        SimTime::from_nanos(x)
    }

    #[test]
    fn single_core_serializes() {
        let mut p = CorePool::new(1);
        assert_eq!(p.acquire(at(0), ns(10)), (at(0), at(10)));
        assert_eq!(p.acquire(at(0), ns(10)), (at(10), at(20)));
        assert_eq!(p.acquire(at(5), ns(10)), (at(20), at(30)));
    }

    #[test]
    fn multiple_cores_run_in_parallel() {
        let mut p = CorePool::new(4);
        for _ in 0..4 {
            assert_eq!(p.acquire(at(0), ns(100)), (at(0), at(100)));
        }
        // Fifth task queues behind the earliest-finishing core.
        assert_eq!(p.acquire(at(0), ns(100)), (at(100), at(200)));
    }

    #[test]
    fn idle_cores_start_immediately_later() {
        let mut p = CorePool::new(2);
        p.acquire(at(0), ns(1000));
        // At t=500 the second core is still idle.
        assert_eq!(p.acquire(at(500), ns(10)), (at(500), at(510)));
        assert_eq!(p.idle_at(at(505)), 0);
        assert_eq!(p.idle_at(at(511)), 1);
        assert_eq!(p.idle_at(at(1001)), 2);
    }

    #[test]
    fn utilization_accounting() {
        let mut p = CorePool::new(2);
        p.acquire(at(0), ns(100));
        p.acquire(at(0), ns(100));
        assert!((p.utilization(at(100)) - 1.0).abs() < 1e-12);
        assert!((p.utilization(at(200)) - 0.5).abs() < 1e-12);
        assert_eq!(p.total_busy_ns(), 200);
    }

    #[test]
    fn earliest_free_tracks_min() {
        let mut p = CorePool::new(2);
        assert_eq!(p.earliest_free(), at(0));
        p.acquire(at(0), ns(50));
        assert_eq!(p.earliest_free(), at(0));
        p.acquire(at(0), ns(80));
        assert_eq!(p.earliest_free(), at(50));
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let _ = CorePool::new(0);
    }

    #[test]
    fn indexed_acquire_picks_lowest_idle_core_and_matches_acquire() {
        let mut p = CorePool::new(3);
        // All idle: cores hand out in index order.
        assert_eq!(p.acquire_indexed(at(0), ns(100)), (0, at(0), at(100)));
        assert_eq!(p.acquire_indexed(at(0), ns(50)), (1, at(0), at(50)));
        assert_eq!(p.acquire_indexed(at(0), ns(80)), (2, at(0), at(80)));
        // Next work goes to the earliest-free core (core 1 at t=50).
        assert_eq!(p.acquire_indexed(at(0), ns(10)), (1, at(50), at(60)));
        // Tie at t=60 vs t=80: among frees, earliest time still wins; a
        // plain acquire sees the same (start, end) schedule.
        let mut q = CorePool::new(3);
        for (now, work) in [(0, 100), (0, 50), (0, 80), (0, 10)] {
            q.acquire(at(now), ns(work));
        }
        assert_eq!(q.earliest_free(), p.earliest_free());
        assert_eq!(q.total_busy_ns(), p.total_busy_ns());
    }

    #[test]
    fn makespan_matches_k_server_bound() {
        // 10 unit jobs on 3 cores => makespan ceil(10/3)*unit = 4 units.
        let mut p = CorePool::new(3);
        let mut last = SimTime::ZERO;
        for _ in 0..10 {
            let (_, end) = p.acquire(SimTime::ZERO, ns(7));
            last = last.max(end);
        }
        assert_eq!(last, at(28));
    }
}

//! Property-based testing of the formal model: randomly generated
//! well-formed programs, architectures, and driver schedules must satisfy
//! all five properties of paper Section 2.5 on every produced trace.

use proptest::prelude::*;
use std::collections::BTreeMap;

use allscale_model::{
    program::req, properties, Action, Architecture, Driver, ItemId, Outcome, Program,
    ProgramBuilder, TaskId, VariantSpec,
};

/// A generated leaf-task description: which elements it reads and writes
/// of the single shared item.
#[derive(Debug, Clone)]
struct LeafSpec {
    reads: Vec<u32>,
    writes: Vec<u32>,
}

const UNIVERSE: u32 = 16;

fn arb_leaf() -> impl Strategy<Value = LeafSpec> {
    (
        prop::collection::vec(0..UNIVERSE, 0..4),
        prop::collection::vec(0..UNIVERSE, 0..4),
    )
        .prop_map(|(reads, writes)| LeafSpec { reads, writes })
}

/// A random fork-join program: the entry creates the item, spawns all
/// leaves, syncs on all of them. Leaves may have overlapping requirements
/// (forcing the driver to serialize via data placement).
fn build_program(leaves: &[LeafSpec]) -> Program {
    let mut b = ProgramBuilder::new();
    let item = ItemId(0);
    b.item(item, UNIVERSE);
    for (i, leaf) in leaves.iter().enumerate() {
        let mut spec = VariantSpec {
            reads: req(&[(item, &leaf.reads)]),
            writes: req(&[(item, &leaf.writes)]),
            ..Default::default()
        };
        if leaf.reads.is_empty() {
            spec.reads = BTreeMap::new();
        }
        if leaf.writes.is_empty() {
            spec.writes = BTreeMap::new();
        }
        b.variant(TaskId(i as u32 + 1), spec);
    }
    let mut actions = vec![Action::Create(ItemId(0))];
    for i in 0..leaves.len() {
        actions.push(Action::Spawn(TaskId(i as u32 + 1)));
    }
    for i in 0..leaves.len() {
        actions.push(Action::Sync(TaskId(i as u32 + 1)));
    }
    b.variant(
        TaskId(0),
        VariantSpec {
            actions,
            ..Default::default()
        },
    );
    b.build(TaskId(0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random programs × random schedules × random architectures: every
    /// terminated trace satisfies all five model properties.
    #[test]
    fn random_programs_satisfy_all_properties(
        leaves in prop::collection::vec(arb_leaf(), 1..6),
        seed in 0u64..1_000,
        nodes in 1u32..5,
        cores in 1u32..3,
    ) {
        let program = build_program(&leaves);
        let arch = Architecture::cluster(nodes, cores);
        let mut driver = Driver::new(seed);
        driver.max_steps = 50_000;
        let (trace, outcome) = driver.run(&program, arch);
        // With overlapping write sets the greedy driver may legitimately
        // need many staging steps, but it must not *violate* anything.
        if outcome == Outcome::Terminated {
            properties::check_all(&program, &trace)
                .map_err(|v| TestCaseError::fail(format!("{v:?}")))?;
        } else {
            // Even unfinished traces must satisfy the safety properties
            // (termination is the only liveness property).
            properties::check_single_execution(&trace)
                .map_err(|v| TestCaseError::fail(format!("{v:?}")))?;
            properties::check_satisfied_requirements(&program, &trace)
                .map_err(|v| TestCaseError::fail(format!("{v:?}")))?;
            properties::check_exclusive_writes(&trace)
                .map_err(|v| TestCaseError::fail(format!("{v:?}")))?;
            properties::check_data_preservation(&program, &trace)
                .map_err(|v| TestCaseError::fail(format!("{v:?}")))?;
        }
    }

    /// Disjoint-write programs (the pfor shape) always terminate.
    #[test]
    fn disjoint_write_programs_terminate(
        k in 1u32..6,
        seed in 0u64..500,
        nodes in 1u32..5,
    ) {
        let elems = UNIVERSE / 6; // per-task partition, k*elems <= UNIVERSE
        let leaves: Vec<LeafSpec> = (0..k)
            .map(|t| LeafSpec {
                reads: vec![],
                writes: (t * elems..(t + 1) * elems).collect(),
            })
            .collect();
        let program = build_program(&leaves);
        let mut driver = Driver::new(seed);
        driver.max_steps = 50_000;
        let (trace, outcome) = driver.run(&program, Architecture::cluster(nodes, 2));
        prop_assert_eq!(outcome, Outcome::Terminated);
        properties::check_all(&program, &trace)
            .map_err(|v| TestCaseError::fail(format!("{v:?}")))?;
    }

    /// The rule checker rejects any attempt to start a task twice.
    #[test]
    fn double_start_always_rejected(seed in 0u64..200) {
        use allscale_model::{apply, Transition, SystemState};
        let program = build_program(&[LeafSpec { reads: vec![], writes: vec![] }]);
        let arch = Architecture::cluster(2, 1);
        let mut driver = Driver::new(seed);
        let (trace, outcome) = driver.run(&program, arch);
        prop_assume!(outcome == Outcome::Terminated);
        // Find the Start of task 1 and the state right after it.
        let pos = trace
            .steps
            .iter()
            .position(|t| matches!(t, Transition::Start { task: TaskId(1), .. }));
        prop_assume!(pos.is_some());
        let pos = pos.unwrap();
        let start = trace.steps[pos].clone();
        let after: &SystemState = &trace.states[pos + 1];
        prop_assert!(apply(&program, after, &start).is_err());
    }
}

/// NUMA-like architectures (one compute unit linked to several address
/// spaces) are handled by the driver and satisfy the properties.
#[test]
fn numa_architectures_satisfy_properties() {
    use allscale_model::{Architecture, CoreId, MemId};
    // 2 cores, each seeing a private and a shared address space.
    let mut arch = Architecture::new();
    arch.add_link(CoreId(0), MemId(0));
    arch.add_link(CoreId(0), MemId(2));
    arch.add_link(CoreId(1), MemId(1));
    arch.add_link(CoreId(1), MemId(2));

    let leaves: Vec<LeafSpec> = (0..3)
        .map(|t| LeafSpec {
            reads: vec![t],
            writes: vec![t + 4],
        })
        .collect();
    let program = build_program(&leaves);
    for seed in 0..20 {
        let mut driver = Driver::new(seed);
        driver.max_steps = 50_000;
        let (trace, outcome) = driver.run(&program, arch.clone());
        assert_eq!(outcome, Outcome::Terminated, "seed {seed}");
        properties::check_all(&program, &trace).unwrap_or_else(|v| panic!("seed {seed}: {v:?}"));
    }
}

//! Scripted programs: the task model of paper Section 2.2 made concrete.
//!
//! A *variant* is modelled as a straight-line script of [`Action`]s (its
//! `step` function is "emit the action at the program counter") together
//! with its read/write data requirements (Definition 2.7). A *task* owns
//! one or more variants (Definition 2.3); a *program* is an entry task
//! (Definition 2.4). The restriction that every non-entry task has a unique
//! spawn point (end of Section 2.2) is enforced by the builder.

use std::collections::{BTreeMap, BTreeSet};

use crate::ids::{Elem, ItemId, TaskId, VariantId};

/// A runtime service request (paper Definition 2.5). The terminating `End`
/// action is implicit: every script ends with it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Request scheduling of a new task.
    Spawn(TaskId),
    /// Suspend until the given task completes.
    Sync(TaskId),
    /// Introduce a new data item.
    Create(ItemId),
    /// Destroy a data item.
    Destroy(ItemId),
}

/// One implementation alternative of a task (Definition 2.3) with its
/// script and data requirements.
#[derive(Debug, Clone, Default)]
pub struct VariantSpec {
    /// Script of actions; execution ends with an implicit `end` after the
    /// last entry (Definition 2.6: `a_n = end`).
    pub actions: Vec<Action>,
    /// `read(v, d)` per accessed item (Definition 2.7).
    pub reads: BTreeMap<ItemId, BTreeSet<Elem>>,
    /// `write(v, d)` per accessed item (Definition 2.7).
    pub writes: BTreeMap<ItemId, BTreeSet<Elem>>,
}

impl VariantSpec {
    /// Items with at least one required element.
    pub fn required_items(&self) -> BTreeSet<ItemId> {
        self.reads.keys().chain(self.writes.keys()).copied().collect()
    }

    /// `read(v, d) ∪ write(v, d)`.
    pub fn required_elems(&self, d: ItemId) -> BTreeSet<Elem> {
        let mut s = self.reads.get(&d).cloned().unwrap_or_default();
        if let Some(w) = self.writes.get(&d) {
            s.extend(w.iter().copied());
        }
        s
    }

    /// `write(v, d)`.
    pub fn write_elems(&self, d: ItemId) -> BTreeSet<Elem> {
        self.writes.get(&d).cloned().unwrap_or_default()
    }

    /// `read(v, d)`.
    pub fn read_elems(&self, d: ItemId) -> BTreeSet<Elem> {
        self.reads.get(&d).cloned().unwrap_or_default()
    }

    /// Number of script steps including the terminating `end`.
    pub fn steps(&self) -> usize {
        self.actions.len() + 1
    }
}

/// A complete scripted program: tasks, their variants, and the data items
/// the scripts reference (with their element universes, Definition 2.1).
#[derive(Debug, Clone)]
pub struct Program {
    entry: TaskId,
    tasks: BTreeMap<TaskId, Vec<VariantId>>,
    variants: BTreeMap<VariantId, VariantSpec>,
    items: BTreeMap<ItemId, BTreeSet<Elem>>,
}

impl Program {
    /// The entry-point task `t0 ∈ P` (Definition 2.4).
    pub fn entry(&self) -> TaskId {
        self.entry
    }

    /// `var(t)` — the variants of a task (Definition 2.3).
    pub fn variants_of(&self, t: TaskId) -> &[VariantId] {
        self.tasks.get(&t).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The task owning a variant (well-defined because variant sets are
    /// disjoint across tasks).
    pub fn task_of(&self, v: VariantId) -> Option<TaskId> {
        self.tasks
            .iter()
            .find(|(_, vs)| vs.contains(&v))
            .map(|(&t, _)| t)
    }

    /// The script and requirements of a variant.
    pub fn variant(&self, v: VariantId) -> &VariantSpec {
        &self.variants[&v]
    }

    /// `step(v, s)`: the action issued by variant `v` at program counter
    /// `pc`, or `None` for the terminating `end`.
    pub fn step(&self, v: VariantId, pc: usize) -> Option<Action> {
        self.variants[&v].actions.get(pc).copied()
    }

    /// `elems(d)` — the element universe of a data item (Definition 2.1).
    pub fn elems(&self, d: ItemId) -> &BTreeSet<Elem> {
        &self.items[&d]
    }

    /// All data items the program references.
    pub fn items(&self) -> impl Iterator<Item = ItemId> + '_ {
        self.items.keys().copied()
    }

    /// All tasks.
    pub fn tasks(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.tasks.keys().copied()
    }

    /// All variants.
    pub fn all_variants(&self) -> impl Iterator<Item = VariantId> + '_ {
        self.variants.keys().copied()
    }
}

/// Builder enforcing the model's well-formedness restrictions.
pub struct ProgramBuilder {
    tasks: BTreeMap<TaskId, Vec<VariantId>>,
    variants: BTreeMap<VariantId, VariantSpec>,
    items: BTreeMap<ItemId, BTreeSet<Elem>>,
    next_variant: u32,
    spawned: BTreeSet<TaskId>,
}

impl ProgramBuilder {
    /// Start building a program.
    pub fn new() -> Self {
        ProgramBuilder {
            tasks: BTreeMap::new(),
            variants: BTreeMap::new(),
            items: BTreeMap::new(),
            next_variant: 0,
            spawned: BTreeSet::new(),
        }
    }

    /// Declare a data item with elements `0..n_elems`.
    pub fn item(&mut self, d: ItemId, n_elems: u32) -> &mut Self {
        self.items
            .insert(d, (0..n_elems).map(Elem).collect());
        self
    }

    /// Add a variant to task `t`; returns the fresh variant id.
    ///
    /// # Panics
    /// Panics if a `Spawn` target already has a spawn point elsewhere
    /// (violating the unique-spawn-point restriction).
    pub fn variant(&mut self, t: TaskId, spec: VariantSpec) -> VariantId {
        for a in &spec.actions {
            if let Action::Spawn(child) = a {
                assert!(
                    self.spawned.insert(*child),
                    "task {child:?} would have two spawn points"
                );
            }
        }
        let v = VariantId(self.next_variant);
        self.next_variant += 1;
        self.tasks.entry(t).or_default().push(v);
        self.variants.insert(v, spec);
        v
    }

    /// Finish, declaring `entry` as the program's entry point.
    ///
    /// # Panics
    /// Panics if the entry task is itself spawned, a task has no variants,
    /// or a referenced task/item is undeclared.
    pub fn build(self, entry: TaskId) -> Program {
        assert!(
            !self.spawned.contains(&entry),
            "entry task must not be spawned (P ∩ spawned = ∅)"
        );
        assert!(
            self.tasks.contains_key(&entry),
            "entry task has no variants"
        );
        for (t, vs) in &self.tasks {
            assert!(!vs.is_empty(), "task {t:?} has no variants");
            if *t != entry {
                assert!(
                    self.spawned.contains(t),
                    "non-entry task {t:?} is never spawned"
                );
            }
        }
        for spec in self.variants.values() {
            for a in &spec.actions {
                match a {
                    Action::Spawn(t) | Action::Sync(t) => {
                        assert!(self.tasks.contains_key(t), "undeclared task {t:?}")
                    }
                    Action::Create(d) | Action::Destroy(d) => {
                        assert!(self.items.contains_key(d), "undeclared item {d:?}")
                    }
                }
            }
            for d in spec.required_items() {
                assert!(self.items.contains_key(&d), "undeclared item {d:?}");
                let universe = &self.items[&d];
                for e in spec.required_elems(d) {
                    assert!(
                        universe.contains(&e),
                        "element {e:?} outside elems({d:?})"
                    );
                }
            }
        }
        Program {
            entry,
            tasks: self.tasks,
            variants: self.variants,
            items: self.items,
        }
    }
}

impl Default for ProgramBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Convenience constructor for requirement maps.
pub fn req(pairs: &[(ItemId, &[u32])]) -> BTreeMap<ItemId, BTreeSet<Elem>> {
    pairs
        .iter()
        .map(|(d, es)| (*d, es.iter().map(|&e| Elem(e)).collect()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Example 2.3: a sum task with a sequential variant and a
    /// parallel variant spawning two sub-tasks.
    fn example_2_3() -> Program {
        let mut b = ProgramBuilder::new();
        b.item(ItemId(0), 20);
        // Sub-tasks with single sequential variants.
        b.variant(
            TaskId(1),
            VariantSpec {
                actions: vec![],
                reads: req(&[(ItemId(0), &[0, 1, 2, 3, 4])]),
                writes: BTreeMap::new(),
            },
        );
        b.variant(
            TaskId(2),
            VariantSpec {
                actions: vec![],
                reads: req(&[(ItemId(0), &[5, 6, 7, 8, 9])]),
                writes: BTreeMap::new(),
            },
        );
        // Entry task: sequential variant vs parallel variant.
        b.variant(
            TaskId(0),
            VariantSpec {
                actions: vec![],
                reads: req(&[(ItemId(0), &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9])]),
                writes: BTreeMap::new(),
            },
        );
        b.variant(
            TaskId(0),
            VariantSpec {
                actions: vec![
                    Action::Spawn(TaskId(1)),
                    Action::Spawn(TaskId(2)),
                    Action::Sync(TaskId(1)),
                    Action::Sync(TaskId(2)),
                ],
                reads: BTreeMap::new(),
                writes: BTreeMap::new(),
            },
        );
        b.build(TaskId(0))
    }

    #[test]
    fn variants_are_disjoint_across_tasks() {
        let p = example_2_3();
        let mut seen = BTreeSet::new();
        for t in p.tasks() {
            for v in p.variants_of(t) {
                assert!(seen.insert(*v), "variant {v:?} shared between tasks");
            }
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn step_function_emits_script_then_end() {
        let p = example_2_3();
        let par = p.variants_of(TaskId(0))[1];
        assert_eq!(p.step(par, 0), Some(Action::Spawn(TaskId(1))));
        assert_eq!(p.step(par, 3), Some(Action::Sync(TaskId(2))));
        assert_eq!(p.step(par, 4), None); // end
    }

    #[test]
    fn task_of_inverts_variants_of() {
        let p = example_2_3();
        for t in p.tasks().collect::<Vec<_>>() {
            for &v in p.variants_of(t) {
                assert_eq!(p.task_of(v), Some(t));
            }
        }
    }

    #[test]
    fn requirements_accessors() {
        let p = example_2_3();
        let seq = p.variants_of(TaskId(1))[0];
        let spec = p.variant(seq);
        assert_eq!(spec.required_items().len(), 1);
        assert_eq!(spec.required_elems(ItemId(0)).len(), 5);
        assert!(spec.write_elems(ItemId(0)).is_empty());
    }

    #[test]
    #[should_panic(expected = "two spawn points")]
    fn duplicate_spawn_points_rejected() {
        let mut b = ProgramBuilder::new();
        b.variant(
            TaskId(1),
            VariantSpec::default(),
        );
        b.variant(
            TaskId(0),
            VariantSpec {
                actions: vec![Action::Spawn(TaskId(1)), Action::Spawn(TaskId(1))],
                ..Default::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "never spawned")]
    fn orphan_tasks_rejected() {
        let mut b = ProgramBuilder::new();
        b.variant(TaskId(0), VariantSpec::default());
        b.variant(TaskId(7), VariantSpec::default());
        let _ = b.build(TaskId(0));
    }

    #[test]
    #[should_panic(expected = "outside elems")]
    fn requirements_must_lie_in_universe() {
        let mut b = ProgramBuilder::new();
        b.item(ItemId(0), 3);
        b.variant(
            TaskId(0),
            VariantSpec {
                reads: req(&[(ItemId(0), &[5])]),
                ..Default::default()
            },
        );
        let _ = b.build(TaskId(0));
    }
}

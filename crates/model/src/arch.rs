//! The architecture model (paper Definition 2.8): a bipartite graph
//! `(C ⊎ M, L)` of compute units and memory address spaces.

use std::collections::BTreeSet;

use crate::ids::{CoreId, MemId};

/// A bipartite graph of compute units and address spaces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Architecture {
    cores: BTreeSet<CoreId>,
    mems: BTreeSet<MemId>,
    links: BTreeSet<(CoreId, MemId)>,
}

impl Architecture {
    /// An empty architecture; populate with [`Architecture::add_link`].
    pub fn new() -> Self {
        Architecture {
            cores: BTreeSet::new(),
            mems: BTreeSet::new(),
            links: BTreeSet::new(),
        }
    }

    /// The paper's Example 2.4: a distributed-memory system of `nodes`
    /// nodes, each with its own address space and `cores_per_node` cores
    /// linked only to the local address space.
    pub fn cluster(nodes: u32, cores_per_node: u32) -> Self {
        let mut a = Architecture::new();
        for n in 0..nodes {
            let mem = MemId(n);
            for c in 0..cores_per_node {
                a.add_link(CoreId(n * cores_per_node + c), mem);
            }
        }
        a
    }

    /// A single shared-memory node: all cores see one address space.
    pub fn shared(cores: u32) -> Self {
        Self::cluster(1, cores)
    }

    /// Register the link `(c, m) ∈ L` (implicitly registering `c` and `m`).
    pub fn add_link(&mut self, c: CoreId, m: MemId) {
        self.cores.insert(c);
        self.mems.insert(m);
        self.links.insert((c, m));
    }

    /// All compute units.
    pub fn cores(&self) -> impl Iterator<Item = CoreId> + '_ {
        self.cores.iter().copied()
    }

    /// All address spaces.
    pub fn mems(&self) -> impl Iterator<Item = MemId> + '_ {
        self.mems.iter().copied()
    }

    /// Whether compute unit `c` can access address space `m`.
    pub fn linked(&self, c: CoreId, m: MemId) -> bool {
        self.links.contains(&(c, m))
    }

    /// Address spaces accessible from `c`.
    pub fn mems_of(&self, c: CoreId) -> impl Iterator<Item = MemId> + '_ {
        self.links
            .range((c, MemId(0))..=(c, MemId(u32::MAX)))
            .map(|&(_, m)| m)
    }

    /// Number of compute units.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Number of address spaces.
    pub fn mem_count(&self) -> usize {
        self.mems.len()
    }
}

impl Default for Architecture {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_2_4() {
        // 2 nodes × 4 cores: cores of node A link only to mA.
        let a = Architecture::cluster(2, 4);
        assert_eq!(a.core_count(), 8);
        assert_eq!(a.mem_count(), 2);
        assert!(a.linked(CoreId(0), MemId(0)));
        assert!(a.linked(CoreId(3), MemId(0)));
        assert!(!a.linked(CoreId(3), MemId(1)));
        assert!(a.linked(CoreId(4), MemId(1)));
        assert_eq!(a.mems_of(CoreId(5)).collect::<Vec<_>>(), vec![MemId(1)]);
    }

    #[test]
    fn shared_memory_node() {
        let a = Architecture::shared(4);
        assert_eq!(a.mem_count(), 1);
        for c in a.cores().collect::<Vec<_>>() {
            assert!(a.linked(c, MemId(0)));
        }
    }

    #[test]
    fn numa_like_architecture() {
        // A core linked to two address spaces (e.g. CPU + GPU memory).
        let mut a = Architecture::new();
        a.add_link(CoreId(0), MemId(0));
        a.add_link(CoreId(0), MemId(1));
        a.add_link(CoreId(1), MemId(1));
        assert_eq!(a.mems_of(CoreId(0)).count(), 2);
        assert_eq!(a.mems_of(CoreId(1)).count(), 1);
    }
}

//! # allscale-model — executable formal semantics of the AllScale
//! application model
//!
//! A machine-checked rendition of Section 2 of *The AllScale Runtime
//! Application Model* (CLUSTER 2018):
//!
//! - [`ids`]: the universes T, V, D, E, C, M;
//! - [`Architecture`]: the bipartite graph `(C ⊎ M, L)` (Def. 2.8);
//! - [`Program`] / [`VariantSpec`] / [`Action`]: scripted tasks with
//!   variants and data requirements (Defs. 2.3-2.7);
//! - [`SystemState`]: the tuple `(Q, R, B, D, Lr, Lw, arch)` (Def. 2.9);
//! - [`rules`]: the ten inference rules of Figs. 2-3 with literal premise
//!   checking ([`apply`] rejects invalid transitions);
//! - [`Driver`]: a reference scheduler producing random rule-conforming
//!   traces (Def. 2.11);
//! - [`properties`]: the five model properties of Section 2.5 as
//!   assertions over traces.
//!
//! The runtime implementation in `allscale-core` maintains the same state
//! components in distributed form; integration tests replay its decisions
//! against these rules.

#![warn(missing_docs)]

pub mod arch;
pub mod driver;
pub mod ids;
pub mod program;
pub mod properties;
pub mod rules;
pub mod state;

pub use arch::Architecture;
pub use driver::{Driver, Outcome, Trace};
pub use ids::{CoreId, Elem, ItemId, MemId, TaskId, VariantId};
pub use program::{Action, Program, ProgramBuilder, VariantSpec};
pub use rules::{apply, enabled_progress, Transition, Violation};
pub use state::SystemState;

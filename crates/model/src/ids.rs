//! Identifier newtypes for the formal model's universes: tasks `T`,
//! variants `V`, data items `D`, element addresses `E`, compute units `C`,
//! and memory address spaces `M` (paper Definitions 2.1-2.8).

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A task `t ∈ T` (Definition 2.3).
    TaskId,
    "t"
);
id_type!(
    /// A task variant `v ∈ V` (Definition 2.3).
    VariantId,
    "v"
);
id_type!(
    /// A data item `d ∈ D` (Definition 2.1).
    ItemId,
    "d"
);
id_type!(
    /// A logical element address `e ∈ E` (Definition 2.1).
    Elem,
    "e"
);
id_type!(
    /// A compute unit `c ∈ C` (Definition 2.8).
    CoreId,
    "c"
);
id_type!(
    /// A memory address space `m ∈ M` (Definition 2.8).
    MemId,
    "m"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", TaskId(3)), "t3");
        assert_eq!(format!("{:?}", MemId(0)), "m0");
        assert_eq!(format!("{}", Elem(17)), "e17");
    }

    #[test]
    fn ordering_follows_numeric() {
        assert!(TaskId(1) < TaskId(2));
        assert_eq!(VariantId(5), VariantId(5));
    }
}

//! The five model properties of paper Section 2.5, as checkable predicates
//! over traces (their proof sketches are in the paper's Appendix A; here
//! they are *asserted* on concrete traces).

use std::collections::BTreeSet;

use crate::ids::{ItemId, TaskId, VariantId};
use crate::program::{Action, Program};
use crate::rules::Transition;
use crate::state::SystemState;
use crate::Trace;

/// A property violation with human-readable context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertyViolation {
    /// Which property failed.
    pub property: &'static str,
    /// Trace index of the offending state or step.
    pub at_step: usize,
    /// Explanation.
    pub detail: String,
}

type Check = Result<(), PropertyViolation>;

fn fail(property: &'static str, at_step: usize, detail: String) -> Check {
    Err(PropertyViolation {
        property,
        at_step,
        detail,
    })
}

/// **Single-execution** (Theorems A.1/A.2): no task is started twice and no
/// variant is processed twice in a terminating trace.
pub fn check_single_execution(trace: &Trace) -> Check {
    let mut started_tasks: BTreeSet<TaskId> = BTreeSet::new();
    let mut started_variants: BTreeSet<VariantId> = BTreeSet::new();
    for (i, step) in trace.steps.iter().enumerate() {
        if let Transition::Start { task, variant, .. } = step {
            if !started_tasks.insert(*task) {
                return fail(
                    "single-execution",
                    i,
                    format!("task {task:?} started twice"),
                );
            }
            if !started_variants.insert(*variant) {
                return fail(
                    "single-execution",
                    i,
                    format!("variant {variant:?} started twice"),
                );
            }
        }
    }
    Ok(())
}

/// **Satisfied requirements**: whenever a variant is running or blocked,
/// every element it reads or writes is present in a memory reachable from
/// its compute unit and covered by the matching lock.
pub fn check_satisfied_requirements(program: &Program, trace: &Trace) -> Check {
    for (i, s) in trace.states.iter().enumerate() {
        let occupied: Vec<(crate::ids::CoreId, VariantId)> = s
            .r
            .iter()
            .map(|&(c, v, _)| (c, v))
            .chain(s.b.iter().map(|&(c, v, _, _)| (c, v)))
            .collect();
        for (core, v) in occupied {
            let spec = program.variant(v);
            for d in spec.required_items() {
                for e in spec.read_elems(d) {
                    let ok = s.lr.iter().any(|&(lv, m, ld, le)| {
                        lv == v
                            && ld == d
                            && le == e
                            && s.arch.linked(core, m)
                            && s.present(m, d, e)
                    });
                    if !ok {
                        return fail(
                            "satisfied-requirements",
                            i,
                            format!("read {d:?}/{e:?} of {v:?} on {core:?} unsatisfied"),
                        );
                    }
                }
                for e in spec.write_elems(d) {
                    let ok = s.lw.iter().any(|&(lv, m, ld, le)| {
                        lv == v
                            && ld == d
                            && le == e
                            && s.arch.linked(core, m)
                            && s.present(m, d, e)
                    });
                    if !ok {
                        return fail(
                            "satisfied-requirements",
                            i,
                            format!("write {d:?}/{e:?} of {v:?} on {core:?} unsatisfied"),
                        );
                    }
                }
            }
        }
    }
    Ok(())
}

/// **Exclusive writes**: a write-locked element exists in exactly one
/// address space — no replicas elsewhere.
pub fn check_exclusive_writes(trace: &Trace) -> Check {
    for (i, s) in trace.states.iter().enumerate() {
        for &(v, m, d, e) in &s.lw {
            let placements = s.placements(d, e);
            if placements.iter().any(|&pm| pm != m) {
                return fail(
                    "exclusive-writes",
                    i,
                    format!(
                        "element {d:?}/{e:?} write-locked by {v:?} at {m:?} \
                         but present at {placements:?}"
                    ),
                );
            }
        }
    }
    Ok(())
}

/// **Data preservation**: the set of items' elements present *somewhere*
/// never shrinks except through an application-issued `destroy` (the
/// runtime may only drop replicas).
pub fn check_data_preservation(program: &Program, trace: &Trace) -> Check {
    let coverage = |s: &SystemState| -> BTreeSet<(ItemId, crate::ids::Elem)> {
        s.d.iter().map(|&(_, d, e)| (d, e)).collect()
    };
    for (i, w) in trace.states.windows(2).enumerate() {
        let before = coverage(&w[0]);
        let after = coverage(&w[1]);
        let lost: Vec<_> = before.difference(&after).collect();
        if lost.is_empty() {
            continue;
        }
        // Every loss must be covered by a destroy executed at this step.
        let destroyed: Option<ItemId> = match &trace.steps[i] {
            Transition::Step { variant, pc, .. } => match program.step(*variant, *pc) {
                Some(Action::Destroy(d)) => Some(d),
                _ => None,
            },
            _ => None,
        };
        for (d, e) in lost {
            if Some(*d) != destroyed {
                return fail(
                    "data-preservation",
                    i,
                    format!("element {d:?}/{e:?} vanished without destroy"),
                );
            }
        }
    }
    Ok(())
}

/// **Termination** (Theorem A.3, in its checkable form): the trace reached
/// a terminal state within its budget — used with drivers whose schedules
/// avoid infinite init/migrate/replicate sequences.
pub fn check_termination(trace: &Trace) -> Check {
    if trace.terminated() {
        Ok(())
    } else {
        fail(
            "termination",
            trace.states.len().saturating_sub(1),
            "trace did not reach a terminal state".into(),
        )
    }
}

/// Run all five property checks on a trace.
pub fn check_all(program: &Program, trace: &Trace) -> Check {
    check_single_execution(trace)?;
    check_satisfied_requirements(program, trace)?;
    check_exclusive_writes(trace)?;
    check_data_preservation(program, trace)?;
    check_termination(trace)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Architecture;
    use crate::driver::{Driver, Outcome};
    use crate::ids::MemId;
    use crate::program::{req, ProgramBuilder, VariantSpec};

    fn fork_join() -> Program {
        // Mirror of the driver test program.
        let mut b = ProgramBuilder::new();
        b.item(ItemId(0), 8);
        b.variant(
            TaskId(1),
            VariantSpec {
                writes: req(&[(ItemId(0), &[0, 1, 2, 3])]),
                ..Default::default()
            },
        );
        b.variant(
            TaskId(2),
            VariantSpec {
                writes: req(&[(ItemId(0), &[4, 5, 6, 7])]),
                ..Default::default()
            },
        );
        b.variant(
            TaskId(3),
            VariantSpec {
                reads: req(&[(ItemId(0), &[0, 1, 2, 3, 4, 5, 6, 7])]),
                ..Default::default()
            },
        );
        b.variant(
            TaskId(0),
            VariantSpec {
                actions: vec![
                    Action::Create(ItemId(0)),
                    Action::Spawn(TaskId(1)),
                    Action::Spawn(TaskId(2)),
                    Action::Sync(TaskId(1)),
                    Action::Sync(TaskId(2)),
                    Action::Spawn(TaskId(3)),
                    Action::Sync(TaskId(3)),
                ],
                ..Default::default()
            },
        );
        b.build(TaskId(0))
    }

    #[test]
    fn all_properties_hold_on_random_traces() {
        let p = fork_join();
        for seed in 0..50 {
            let mut d = Driver::new(seed);
            let (trace, outcome) = d.run(&p, Architecture::cluster(4, 2));
            assert_eq!(outcome, Outcome::Terminated, "seed {seed}");
            check_all(&p, &trace).unwrap_or_else(|v| panic!("seed {seed}: {v:?}"));
        }
    }

    #[test]
    fn exclusive_writes_detects_forged_replica() {
        let p = fork_join();
        let mut d = Driver::new(3);
        let (mut trace, _) = d.run(&p, Architecture::cluster(2, 2));
        // Forge a replica of a write-locked element in some mid state.
        let idx = trace
            .states
            .iter()
            .position(|s| !s.lw.is_empty())
            .expect("some state holds a write lock");
        let &(_, m, di, e) = trace.states[idx].lw.iter().next().unwrap();
        let other = MemId(if m == MemId(0) { 1 } else { 0 });
        trace.states[idx].d.insert((other, di, e));
        let err = check_exclusive_writes(&trace).unwrap_err();
        assert_eq!(err.property, "exclusive-writes");
    }

    #[test]
    fn single_execution_detects_duplicate_start() {
        let p = fork_join();
        let mut d = Driver::new(3);
        let (mut trace, _) = d.run(&p, Architecture::cluster(2, 2));
        // Duplicate the first Start step.
        let start = trace
            .steps
            .iter()
            .find(|t| matches!(t, Transition::Start { .. }))
            .unwrap()
            .clone();
        trace.steps.push(start);
        let err = check_single_execution(&trace).unwrap_err();
        assert_eq!(err.property, "single-execution");
    }

    #[test]
    fn data_preservation_detects_silent_loss() {
        let p = fork_join();
        let mut d = Driver::new(9);
        let (mut trace, _) = d.run(&p, Architecture::cluster(2, 2));
        // Silently drop an element (all of its replicas) from the final
        // state — a loss no destroy explains.
        let idx = trace.states.len() - 1;
        let &(_, di, e) = trace.states[idx]
            .d
            .iter()
            .next()
            .expect("final state holds data");
        trace.states[idx]
            .d
            .retain(|&(_, d2, e2)| (d2, e2) != (di, e));
        let err = check_data_preservation(&p, &trace).unwrap_err();
        assert_eq!(err.property, "data-preservation");
    }

    #[test]
    fn satisfied_requirements_detects_missing_lock() {
        let p = fork_join();
        let mut d = Driver::new(5);
        let (mut trace, _) = d.run(&p, Architecture::cluster(2, 2));
        // Strip a write lock from a state where task 1 or 2 runs.
        let idx = trace
            .states
            .iter()
            .position(|s| !s.lw.is_empty())
            .expect("writer runs at some point");
        let fact = *trace.states[idx].lw.iter().next().unwrap();
        trace.states[idx].lw.remove(&fact);
        let err = check_satisfied_requirements(&p, &trace).unwrap_err();
        assert_eq!(err.property, "satisfied-requirements");
    }

    #[test]
    fn termination_check_rejects_unfinished_trace() {
        let p = fork_join();
        let mut d = Driver::new(1);
        let (mut trace, _) = d.run(&p, Architecture::cluster(2, 2));
        trace.states.last_mut().unwrap().q.insert(TaskId(9));
        let err = check_termination(&trace).unwrap_err();
        assert_eq!(err.property, "termination");
    }

    #[test]
    fn requirements_hold_even_while_blocked() {
        // A parent that holds requirements across a sync must keep its data
        // pinned while blocked (B entries are checked too).
        let mut b = ProgramBuilder::new();
        b.item(ItemId(0), 2);
        b.variant(TaskId(1), VariantSpec::default());
        b.variant(
            TaskId(0),
            VariantSpec {
                actions: vec![
                    Action::Create(ItemId(0)),
                    Action::Spawn(TaskId(1)),
                    Action::Sync(TaskId(1)),
                ],
                writes: req(&[(ItemId(0), &[0])]),
                ..Default::default()
            },
        );
        let p = b.build(TaskId(0));
        // The entry's write requirement must be satisfiable *before* start,
        // so pre-stage via a driver (which inits before starting).
        // NOTE: requirement elements must exist before (start); the driver
        // stages them, but the item must be live first. Since only the task
        // itself creates the item, the driver cannot start it — expect a
        // stuck run, demonstrating why real programs initialize data from
        // ancestor tasks.
        let mut d = Driver::new(0);
        let (_, outcome) = d.run(&p, Architecture::cluster(2, 1));
        assert_eq!(outcome, Outcome::Stuck);
    }
}

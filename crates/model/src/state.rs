//! The system state of the execution model (paper Definition 2.9):
//! the tuple `(Q, R, B, D, Lr, Lw, (C ⊎ M, L))`.

use std::collections::BTreeSet;

use crate::arch::Architecture;
use crate::ids::{CoreId, Elem, ItemId, MemId, TaskId, VariantId};

/// A running variant: `(c, v, s) ∈ R` with the task-local state `s`
/// represented by a script program counter.
pub type Running = (CoreId, VariantId, usize);

/// A suspended variant: `(c, v, s, t) ∈ B` waiting for task `t`.
pub type Blocked = (CoreId, VariantId, usize, TaskId);

/// A data placement fact: `(m, d, e) ∈ D`.
pub type Placed = (MemId, ItemId, Elem);

/// A lock fact: `(v, m, d, e) ∈ Lr` or `Lw`.
pub type Lock = (VariantId, MemId, ItemId, Elem);

/// One snapshot of the runtime's management information
/// (paper Definition 2.9). All components are ordered sets, so states are
/// canonical and comparable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemState {
    /// Enqueued, not yet started tasks (`Q`).
    pub q: BTreeSet<TaskId>,
    /// Running variant executions (`R`).
    pub r: BTreeSet<Running>,
    /// Suspended variants waiting on tasks (`B`).
    pub b: BTreeSet<Blocked>,
    /// Data distribution (`D`): element `e` of item `d` present in `m`.
    pub d: BTreeSet<Placed>,
    /// Read locks (`Lr`).
    pub lr: BTreeSet<Lock>,
    /// Write locks (`Lw`).
    pub lw: BTreeSet<Lock>,
    /// The architecture `(C ⊎ M, L)` — static for a given trace.
    pub arch: Architecture,
    /// Items created and not yet destroyed. An explicit bookkeeping
    /// extension of the paper's model: the formal rules quantify over the
    /// ambient universe `D`, while the executable model tracks liveness so
    /// that `init`/`migrate`/`replicate` cannot resurrect destroyed items.
    pub live_items: BTreeSet<ItemId>,
}

impl SystemState {
    /// The initial state of Definition 2.11:
    /// `({t0}, ∅, ∅, ∅, ∅, ∅, (C ⊎ M, L))`.
    pub fn initial(entry: TaskId, arch: Architecture) -> Self {
        SystemState {
            q: [entry].into_iter().collect(),
            r: BTreeSet::new(),
            b: BTreeSet::new(),
            d: BTreeSet::new(),
            lr: BTreeSet::new(),
            lw: BTreeSet::new(),
            arch,
            live_items: BTreeSet::new(),
        }
    }

    /// A trace terminates in a state `(∅, ∅, ∅, Dt, ∅, ∅, …)`
    /// (Definition 2.11).
    pub fn is_terminal(&self) -> bool {
        self.q.is_empty()
            && self.r.is_empty()
            && self.b.is_empty()
            && self.lr.is_empty()
            && self.lw.is_empty()
    }

    /// Whether any variant of `t` is currently running or blocked —
    /// the negated side-condition of the (continue) rule.
    pub fn task_active(&self, variants: &[VariantId]) -> bool {
        self.r.iter().any(|(_, v, _)| variants.contains(v))
            || self.b.iter().any(|(_, v, _, _)| variants.contains(v))
    }

    /// Memories where element `(d, e)` is present.
    pub fn placements(&self, d: ItemId, e: Elem) -> Vec<MemId> {
        self.d
            .iter()
            .filter(|&&(_, di, ei)| di == d && ei == e)
            .map(|&(m, _, _)| m)
            .collect()
    }

    /// Whether `(m, d, e) ∈ D`.
    pub fn present(&self, m: MemId, d: ItemId, e: Elem) -> bool {
        self.d.contains(&(m, d, e))
    }

    /// Whether any lock (read or write) covers `(m, d, e)`.
    pub fn any_lock(&self, m: MemId, d: ItemId, e: Elem) -> bool {
        self.lr.iter().any(|&(_, lm, ld, le)| (lm, ld, le) == (m, d, e))
            || self.any_write_lock(m, d, e)
    }

    /// Whether a write lock covers `(m, d, e)`.
    pub fn any_write_lock(&self, m: MemId, d: ItemId, e: Elem) -> bool {
        self.lw.iter().any(|&(_, lm, ld, le)| (lm, ld, le) == (m, d, e))
    }

    /// The `v(s)` accessor of Definition A.1: variants currently running
    /// or blocked.
    pub fn active_variants(&self) -> BTreeSet<VariantId> {
        self.r
            .iter()
            .map(|&(_, v, _)| v)
            .chain(self.b.iter().map(|&(_, v, _, _)| v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_shape() {
        let s = SystemState::initial(TaskId(0), Architecture::cluster(2, 2));
        assert_eq!(s.q.len(), 1);
        assert!(s.r.is_empty() && s.b.is_empty() && s.d.is_empty());
        assert!(!s.is_terminal()); // entry still enqueued
    }

    #[test]
    fn terminal_allows_residual_data() {
        let mut s = SystemState::initial(TaskId(0), Architecture::shared(1));
        s.q.clear();
        s.d.insert((MemId(0), ItemId(0), Elem(3)));
        assert!(s.is_terminal(), "Dt may be non-empty at termination");
    }

    #[test]
    fn placement_queries() {
        let mut s = SystemState::initial(TaskId(0), Architecture::cluster(2, 1));
        s.d.insert((MemId(0), ItemId(1), Elem(5)));
        s.d.insert((MemId(1), ItemId(1), Elem(5)));
        s.d.insert((MemId(0), ItemId(1), Elem(6)));
        assert_eq!(s.placements(ItemId(1), Elem(5)), vec![MemId(0), MemId(1)]);
        assert!(s.present(MemId(0), ItemId(1), Elem(6)));
        assert!(!s.present(MemId(1), ItemId(1), Elem(6)));
    }

    #[test]
    fn lock_queries() {
        let mut s = SystemState::initial(TaskId(0), Architecture::shared(1));
        s.lr.insert((VariantId(0), MemId(0), ItemId(0), Elem(1)));
        s.lw.insert((VariantId(1), MemId(0), ItemId(0), Elem(2)));
        assert!(s.any_lock(MemId(0), ItemId(0), Elem(1)));
        assert!(!s.any_write_lock(MemId(0), ItemId(0), Elem(1)));
        assert!(s.any_write_lock(MemId(0), ItemId(0), Elem(2)));
        assert!(!s.any_lock(MemId(0), ItemId(0), Elem(3)));
    }
}

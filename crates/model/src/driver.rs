//! A reference "runtime" for the formal model: drives a program from its
//! initial state to termination by choosing transitions, mixing mandatory
//! progress moves with random (but rule-respecting) data-management moves.
//!
//! This is the component that turns the model into a *testable* artifact:
//! random schedules over random programs produce traces on which the five
//! properties of paper Section 2.5 are asserted (see
//! [`crate::properties`]).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

use crate::ids::{CoreId, Elem, ItemId, MemId, TaskId, VariantId};
use crate::program::Program;
use crate::rules::{apply, enabled_progress, Transition};
use crate::state::SystemState;

/// A recorded trace: the visited states and the transition taken between
/// each consecutive pair (`trace.states.len() == trace.steps.len() + 1`).
#[derive(Debug, Clone)]
pub struct Trace {
    /// `s_0, s_1, …` (Definition 2.11).
    pub states: Vec<SystemState>,
    /// The rule instance connecting `states[i]` to `states[i + 1]`.
    pub steps: Vec<Transition>,
}

impl Trace {
    /// Whether the trace reached a terminal state.
    pub fn terminated(&self) -> bool {
        self.states
            .last()
            .map(SystemState::is_terminal)
            .unwrap_or(false)
    }
}

/// Outcome of a driver run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The program ran to a terminal state.
    Terminated,
    /// The step budget was exhausted first.
    BudgetExhausted,
    /// No transition could make progress (deadlock or unsatisfiable
    /// requirements).
    Stuck,
}

/// Drives programs to completion with a seeded RNG.
pub struct Driver {
    rng: StdRng,
    /// Probability (percent) of injecting a gratuitous migrate/replicate
    /// between progress steps — chaos for the property tests.
    pub chaos_percent: u32,
    /// Upper bound on transitions per run.
    pub max_steps: usize,
}

impl Driver {
    /// A driver with the given seed and default chaos (20%).
    pub fn new(seed: u64) -> Self {
        Driver {
            rng: StdRng::seed_from_u64(seed),
            chaos_percent: 20,
            max_steps: 10_000,
        }
    }

    /// Run `program` on `arch`, returning the trace and its outcome.
    pub fn run(&mut self, program: &Program, arch: crate::arch::Architecture) -> (Trace, Outcome) {
        let mut state = SystemState::initial(program.entry(), arch);
        let mut trace = Trace {
            states: vec![state.clone()],
            steps: Vec::new(),
        };
        for _ in 0..self.max_steps {
            if state.is_terminal() {
                return (trace, Outcome::Terminated);
            }
            let Some(t) = self.choose(program, &state) else {
                return (trace, Outcome::Stuck);
            };
            state = apply(program, &state, &t).unwrap_or_else(|v| {
                panic!("driver chose an invalid transition {t:?}: {v}")
            });
            trace.steps.push(t);
            trace.states.push(state.clone());
        }
        if state.is_terminal() {
            (trace, Outcome::Terminated)
        } else {
            (trace, Outcome::BudgetExhausted)
        }
    }

    /// Pick the next transition: chaos moves sometimes, otherwise progress
    /// (step/continue), otherwise starting a queued task (staging data as
    /// needed), otherwise a staging move toward a future start.
    fn choose(&mut self, program: &Program, state: &SystemState) -> Option<Transition> {
        if self.rng.gen_range(0u32..100) < self.chaos_percent {
            if let Some(t) = self.random_data_move(program, state) {
                return Some(t);
            }
        }
        let mut progress = enabled_progress(program, state);
        if !progress.is_empty() {
            progress.shuffle(&mut self.rng);
            return progress.pop();
        }
        // Try to start a queued task (with data staging).
        let mut queued: Vec<TaskId> = state.q.iter().copied().collect();
        queued.shuffle(&mut self.rng);
        for t in queued {
            if let Some(tr) = self.try_start(program, state, t) {
                return Some(tr);
            }
        }
        None
    }

    /// Attempt to construct a `Start` for `task`; if data is missing or
    /// misplaced, return the data-management move that gets it closer.
    fn try_start(
        &mut self,
        program: &Program,
        state: &SystemState,
        task: TaskId,
    ) -> Option<Transition> {
        let mut variants: Vec<VariantId> = program.variants_of(task).to_vec();
        variants.shuffle(&mut self.rng);
        // Stable per-task core preference: staging must aim at a fixed
        // target across retries, or data ping-pongs between memories and
        // the run never converges.
        let mut cores: Vec<CoreId> = state.arch.cores().collect();
        let rot = (task.0 as usize * 7 + 3) % cores.len().max(1);
        cores.rotate_left(rot);
        for v in variants {
            let spec = program.variant(v);
            for &core in &cores {
                let mems: Vec<MemId> = state.arch.mems_of(core).collect();
                if mems.is_empty() {
                    continue;
                }
                let target = mems[0];
                let mut assign: BTreeMap<ItemId, MemId> = BTreeMap::new();
                let mut staging: Option<Transition> = None;
                'items: for d in spec.required_items() {
                    // Prefer a reachable memory that already has everything.
                    for &m in &mems {
                        let all_there = spec
                            .required_elems(d)
                            .iter()
                            .all(|&e| state.present(m, d, e));
                        let writes_exclusive = spec.write_elems(d).iter().all(|&e| {
                            state.placements(d, e).iter().all(|&pm| pm == m)
                        });
                        if all_there && writes_exclusive {
                            assign.insert(d, m);
                            continue 'items;
                        }
                    }
                    // Otherwise produce one staging move toward `target`.
                    staging = self.stage_toward(program, state, d, &spec.required_elems(d), &spec.write_elems(d), target);
                    break;
                }
                if let Some(mv) = staging {
                    return Some(mv);
                }
                if assign.len() == spec.required_items().len() {
                    return Some(Transition::Start {
                        task,
                        variant: v,
                        core,
                        mem_assign: assign,
                    });
                }
            }
        }
        None
    }

    /// One data-management move bringing the elements of `d` toward `m`:
    /// init absent elements, migrate misplaced writes, replicate reads.
    fn stage_toward(
        &mut self,
        _program: &Program,
        state: &SystemState,
        d: ItemId,
        required: &BTreeSet<Elem>,
        writes: &BTreeSet<Elem>,
        m: MemId,
    ) -> Option<Transition> {
        if !state.live_items.contains(&d) {
            return None; // cannot stage before the program creates the item
        }
        // Absent anywhere → init at m.
        let absent: BTreeSet<Elem> = required
            .iter()
            .copied()
            .filter(|&e| state.placements(d, e).is_empty())
            .collect();
        if !absent.is_empty() {
            return Some(Transition::Init {
                mem: m,
                item: d,
                elems: absent,
            });
        }
        // Present elsewhere → move/copy one source group at a time.
        for &e in required {
            if state.present(m, d, e) && (!writes.contains(&e) || state.placements(d, e).len() == 1)
            {
                continue;
            }
            let srcs = state.placements(d, e);
            let &src = srcs.iter().find(|&&s| s != m).or(srcs.first())?;
            let elems: BTreeSet<Elem> = [e].into_iter().collect();
            if writes.contains(&e) {
                // Writes need exclusivity: migrate (removes the source copy).
                if state.any_lock(src, d, e) || state.any_lock(m, d, e) {
                    return None;
                }
                if state.present(m, d, e) {
                    // A replica already at m; remove the foreign one by
                    // migrating it onto m (coalesce).
                    return Some(Transition::Migrate {
                        src,
                        dst: m,
                        item: d,
                        elems,
                    });
                }
                return Some(Transition::Migrate {
                    src,
                    dst: m,
                    item: d,
                    elems,
                });
            }
            if state.any_write_lock(src, d, e) || state.any_lock(m, d, e) {
                return None;
            }
            return Some(Transition::Replicate {
                src,
                dst: m,
                item: d,
                elems,
            });
        }
        None
    }

    /// A gratuitous but legal migrate/replicate of some unlocked element.
    fn random_data_move(&mut self, program: &Program, state: &SystemState) -> Option<Transition> {
        if state.d.is_empty() {
            return None;
        }
        let placed: Vec<_> = state.d.iter().copied().collect();
        let &(src, item, e) = placed.get(self.rng.gen_range(0..placed.len()))?;
        if !state.live_items.contains(&item) {
            return None;
        }
        let mems: Vec<MemId> = state.arch.mems().collect();
        let dst = mems[self.rng.gen_range(0..mems.len())];
        if dst == src {
            return None;
        }
        let elems: BTreeSet<Elem> = [e].into_iter().collect();
        let _ = program;
        if self.rng.gen_bool(0.5) {
            if state.any_lock(src, item, e) || state.any_lock(dst, item, e) {
                return None;
            }
            Some(Transition::Migrate {
                src,
                dst,
                item,
                elems,
            })
        } else {
            if state.any_write_lock(src, item, e) || state.any_lock(dst, item, e) {
                return None;
            }
            Some(Transition::Replicate {
                src,
                dst,
                item,
                elems,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Architecture;
    use crate::program::{req, Action, ProgramBuilder, VariantSpec};

    /// Fork-join over an item: entry creates the item, spawns two writers
    /// on disjoint halves, syncs, reads everything.
    pub(crate) fn fork_join_program() -> Program {
        let mut b = ProgramBuilder::new();
        b.item(ItemId(0), 8);
        b.variant(
            TaskId(1),
            VariantSpec {
                writes: req(&[(ItemId(0), &[0, 1, 2, 3])]),
                ..Default::default()
            },
        );
        b.variant(
            TaskId(2),
            VariantSpec {
                writes: req(&[(ItemId(0), &[4, 5, 6, 7])]),
                ..Default::default()
            },
        );
        b.variant(
            TaskId(3),
            VariantSpec {
                reads: req(&[(ItemId(0), &[0, 1, 2, 3, 4, 5, 6, 7])]),
                ..Default::default()
            },
        );
        b.variant(
            TaskId(0),
            VariantSpec {
                actions: vec![
                    Action::Create(ItemId(0)),
                    Action::Spawn(TaskId(1)),
                    Action::Spawn(TaskId(2)),
                    Action::Sync(TaskId(1)),
                    Action::Sync(TaskId(2)),
                    Action::Spawn(TaskId(3)),
                    Action::Sync(TaskId(3)),
                ],
                ..Default::default()
            },
        );
        b.build(TaskId(0))
    }

    #[test]
    fn fork_join_terminates() {
        for seed in 0..20 {
            let mut d = Driver::new(seed);
            let (trace, outcome) = d.run(&fork_join_program(), Architecture::cluster(2, 2));
            assert_eq!(outcome, Outcome::Terminated, "seed {seed}");
            assert!(trace.terminated());
            assert!(trace.states.len() > 5);
        }
    }

    #[test]
    fn traces_are_deterministic_per_seed() {
        let run = |seed| {
            let mut d = Driver::new(seed);
            let (trace, _) = d.run(&fork_join_program(), Architecture::cluster(2, 2));
            trace.steps
        };
        assert_eq!(run(7), run(7));
        // Different seeds typically differ (sanity that chaos is live).
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn single_task_no_data_terminates_quickly() {
        let mut b = ProgramBuilder::new();
        b.variant(TaskId(0), VariantSpec::default());
        let p = b.build(TaskId(0));
        let mut d = Driver::new(0);
        let (trace, outcome) = d.run(&p, Architecture::shared(1));
        assert_eq!(outcome, Outcome::Terminated);
        // start + end.
        assert_eq!(trace.steps.len(), 2);
    }
}

//! The state transition relation `→` (paper Definition 2.10, Figs. 2-3).
//!
//! Each rule's premises are checked literally; a transition whose premises
//! fail is rejected with a [`Violation`] naming the broken premise. Two
//! clarifications relative to the paper's figures are adopted from its
//! Appendix A (both are needed for the *data preservation* proof sketch to
//! go through):
//!
//! - `migrate` additionally requires the moved elements to be present at
//!   the source address space ("(migrate) transitions move **existing**
//!   data");
//! - `replicate` additionally requires the copied elements to be present
//!   at the source address space.
//!
//! The executable model also tracks item liveness (created and not yet
//! destroyed) so that data-management rules cannot operate on items the
//! application never created — see `SystemState::live_items`.

use std::collections::{BTreeMap, BTreeSet};

use crate::ids::{CoreId, Elem, ItemId, MemId, TaskId, VariantId};
use crate::program::{Action, Program};
use crate::state::SystemState;

/// One instance of a transition rule with all its choice parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transition {
    /// (start): take task `task` from Q, pick `variant`, run on `core`,
    /// with requirement items mapped to memories by `mem_assign`.
    Start {
        /// The task taken from `Q`.
        task: TaskId,
        /// The chosen variant `v ∈ var(t)`.
        variant: VariantId,
        /// The compute unit `c`.
        core: CoreId,
        /// The mapping `m : D → M` restricted to required items.
        mem_assign: BTreeMap<ItemId, MemId>,
    },
    /// (spawn)/(sync)/(end)/(create)/(destroy): advance the running variant
    /// `(core, variant, pc)` by executing its next scripted action.
    Step {
        /// The compute unit the variant runs on.
        core: CoreId,
        /// The running variant.
        variant: VariantId,
        /// Its current program counter (task-local state `s`).
        pc: usize,
    },
    /// (continue): resume the blocked entry `(core, variant, pc, waited)`.
    Continue {
        /// The compute unit of the blocked variant.
        core: CoreId,
        /// The blocked variant.
        variant: VariantId,
        /// Its program counter at suspension.
        pc: usize,
        /// The task it waited on.
        waited: TaskId,
    },
    /// (init): allocate `elems` of `item` in `mem` (nowhere else present).
    Init {
        /// Target address space.
        mem: MemId,
        /// The data item.
        item: ItemId,
        /// The elements to allocate (must be non-empty).
        elems: BTreeSet<Elem>,
    },
    /// (migrate): move `elems` of `item` from `src` to `dst`.
    Migrate {
        /// Source address space.
        src: MemId,
        /// Destination address space.
        dst: MemId,
        /// The data item.
        item: ItemId,
        /// The elements to move (must be non-empty).
        elems: BTreeSet<Elem>,
    },
    /// (replicate): copy `elems` of `item` from `src` to `dst`.
    Replicate {
        /// Source address space.
        src: MemId,
        /// Destination address space.
        dst: MemId,
        /// The data item.
        item: ItemId,
        /// The elements to copy (must be non-empty).
        elems: BTreeSet<Elem>,
    },
}

/// A rejected transition: which premise failed and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The referenced task is not in `Q`.
    TaskNotEnqueued(TaskId),
    /// The chosen variant does not belong to the task.
    VariantNotOfTask(VariantId, TaskId),
    /// `(c, m(d))` is not a link of the architecture.
    CoreCannotReach(CoreId, MemId),
    /// A required element is not present in the assigned memory.
    RequirementUnsatisfied(ItemId, Elem, MemId),
    /// A write-required element has a copy outside the assigned memory
    /// (the `D ∩ Dw = ∅` premise of (start)).
    ForeignWriteCopy(ItemId, Elem, MemId),
    /// The requirement mapping misses an item the variant accesses.
    MissingAssignment(ItemId),
    /// No such running variant entry exists in `R`.
    NotRunning(CoreId, VariantId, usize),
    /// No such blocked entry exists in `B`.
    NotBlocked(CoreId, VariantId, usize, TaskId),
    /// (continue) requires the awaited task to be finished; it is not.
    AwaitedTaskNotFinished(TaskId),
    /// Element sets of data rules must be non-empty (`E ≠ ∅`).
    EmptyElementSet,
    /// An element in the set lies outside `elems(d)`.
    ElementOutsideItem(ItemId, Elem),
    /// (init) requires the elements to be absent everywhere.
    AlreadyPresent(ItemId, Elem, MemId),
    /// (migrate)/(replicate) source does not hold the elements.
    SourceMissing(ItemId, Elem, MemId),
    /// A lock forbids the data movement.
    LockHeld(MemId, ItemId, Elem),
    /// The item was never created or already destroyed.
    ItemNotLive(ItemId),
    /// (create) of an item that is already live.
    ItemAlreadyLive(ItemId),
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for Violation {}

/// Apply `transition` to `state` under `program`, returning the successor
/// state or the violated premise. This is the relation `→` of
/// Definition 2.10 as a checked function.
pub fn apply(
    program: &Program,
    state: &SystemState,
    transition: &Transition,
) -> Result<SystemState, Violation> {
    match transition {
        Transition::Start {
            task,
            variant,
            core,
            mem_assign,
        } => apply_start(program, state, *task, *variant, *core, mem_assign),
        Transition::Step { core, variant, pc } => {
            apply_step(program, state, *core, *variant, *pc)
        }
        Transition::Continue {
            core,
            variant,
            pc,
            waited,
        } => apply_continue(program, state, *core, *variant, *pc, *waited),
        Transition::Init { mem, item, elems } => apply_init(program, state, *mem, *item, elems),
        Transition::Migrate {
            src,
            dst,
            item,
            elems,
        } => apply_move(program, state, *src, *dst, *item, elems, true),
        Transition::Replicate {
            src,
            dst,
            item,
            elems,
        } => apply_move(program, state, *src, *dst, *item, elems, false),
    }
}

fn apply_start(
    program: &Program,
    state: &SystemState,
    task: TaskId,
    variant: VariantId,
    core: CoreId,
    mem_assign: &BTreeMap<ItemId, MemId>,
) -> Result<SystemState, Violation> {
    // t ∈ Q
    if !state.q.contains(&task) {
        return Err(Violation::TaskNotEnqueued(task));
    }
    // v ∈ var(t)
    if !program.variants_of(task).contains(&variant) {
        return Err(Violation::VariantNotOfTask(variant, task));
    }
    let spec = program.variant(variant);
    // ∀d: (c, m(d)) ∈ L ∧ ∀e ∈ read ∪ write: (m(d), d, e) ∈ D
    for d in spec.required_items() {
        let Some(&m) = mem_assign.get(&d) else {
            return Err(Violation::MissingAssignment(d));
        };
        if !state.arch.linked(core, m) {
            return Err(Violation::CoreCannotReach(core, m));
        }
        for e in spec.required_elems(d) {
            if !state.present(m, d, e) {
                return Err(Violation::RequirementUnsatisfied(d, e, m));
            }
        }
    }
    // D ∩ Dw = ∅: no copy of a write element outside its assigned memory.
    for d in spec.required_items() {
        let m = mem_assign[&d];
        for e in spec.write_elems(d) {
            for other in state.placements(d, e) {
                if other != m {
                    return Err(Violation::ForeignWriteCopy(d, e, other));
                }
            }
        }
    }
    // Effect: move task out of Q, start variant at init state, take locks.
    let mut next = state.clone();
    next.q.remove(&task);
    next.r.insert((core, variant, 0));
    for d in spec.required_items() {
        let m = mem_assign[&d];
        for e in spec.read_elems(d) {
            next.lr.insert((variant, m, d, e));
        }
        for e in spec.write_elems(d) {
            next.lw.insert((variant, m, d, e));
        }
    }
    Ok(next)
}

fn apply_step(
    program: &Program,
    state: &SystemState,
    core: CoreId,
    variant: VariantId,
    pc: usize,
) -> Result<SystemState, Violation> {
    if !state.r.contains(&(core, variant, pc)) {
        return Err(Violation::NotRunning(core, variant, pc));
    }
    let mut next = state.clone();
    next.r.remove(&(core, variant, pc));
    match program.step(variant, pc) {
        // (spawn): enqueue the child, advance.
        Some(Action::Spawn(t)) => {
            next.q.insert(t);
            next.r.insert((core, variant, pc + 1));
        }
        // (sync): move to B, remembering the awaited task.
        Some(Action::Sync(t)) => {
            next.b.insert((core, variant, pc + 1, t));
        }
        // (create): item becomes live; no allocation, no locks.
        Some(Action::Create(d)) => {
            if state.live_items.contains(&d) {
                return Err(Violation::ItemAlreadyLive(d));
            }
            next.live_items.insert(d);
            next.r.insert((core, variant, pc + 1));
        }
        // (destroy): drop all placements and locks of the item.
        Some(Action::Destroy(d)) => {
            if !state.live_items.contains(&d) {
                return Err(Violation::ItemNotLive(d));
            }
            next.live_items.remove(&d);
            next.d.retain(|&(_, di, _)| di != d);
            next.lr.retain(|&(_, _, di, _)| di != d);
            next.lw.retain(|&(_, _, di, _)| di != d);
            next.r.insert((core, variant, pc + 1));
        }
        // (end): discard state, release all locks held by the variant.
        None => {
            next.lr.retain(|&(v, _, _, _)| v != variant);
            next.lw.retain(|&(v, _, _, _)| v != variant);
        }
    }
    Ok(next)
}

fn apply_continue(
    program: &Program,
    state: &SystemState,
    core: CoreId,
    variant: VariantId,
    pc: usize,
    waited: TaskId,
) -> Result<SystemState, Violation> {
    if !state.b.contains(&(core, variant, pc, waited)) {
        return Err(Violation::NotBlocked(core, variant, pc, waited));
    }
    // t ∉ Q and no variant of t running or blocked.
    if state.q.contains(&waited) || state.task_active(program.variants_of(waited)) {
        return Err(Violation::AwaitedTaskNotFinished(waited));
    }
    let mut next = state.clone();
    next.b.remove(&(core, variant, pc, waited));
    next.r.insert((core, variant, pc));
    Ok(next)
}

fn apply_init(
    program: &Program,
    state: &SystemState,
    mem: MemId,
    item: ItemId,
    elems: &BTreeSet<Elem>,
) -> Result<SystemState, Violation> {
    if elems.is_empty() {
        return Err(Violation::EmptyElementSet);
    }
    if !state.live_items.contains(&item) {
        return Err(Violation::ItemNotLive(item));
    }
    let universe = program.elems(item);
    for &e in elems {
        if !universe.contains(&e) {
            return Err(Violation::ElementOutsideItem(item, e));
        }
        // D ∩ (M × {d} × E) = ∅: absent everywhere.
        if let Some(&m) = state.placements(item, e).first() {
            return Err(Violation::AlreadyPresent(item, e, m));
        }
    }
    let mut next = state.clone();
    for &e in elems {
        next.d.insert((mem, item, e));
    }
    Ok(next)
}

fn apply_move(
    program: &Program,
    state: &SystemState,
    src: MemId,
    dst: MemId,
    item: ItemId,
    elems: &BTreeSet<Elem>,
    is_migrate: bool,
) -> Result<SystemState, Violation> {
    if elems.is_empty() {
        return Err(Violation::EmptyElementSet);
    }
    if !state.live_items.contains(&item) {
        return Err(Violation::ItemNotLive(item));
    }
    let universe = program.elems(item);
    for &e in elems {
        if !universe.contains(&e) {
            return Err(Violation::ElementOutsideItem(item, e));
        }
        // Appendix-A clarification: sources must hold the data.
        if !state.present(src, item, e) {
            return Err(Violation::SourceMissing(item, e, src));
        }
        if is_migrate {
            // (Lr ∪ Lw) ∩ (V × {ms, md} × {d} × E) = ∅.
            if state.any_lock(src, item, e) {
                return Err(Violation::LockHeld(src, item, e));
            }
            if state.any_lock(dst, item, e) {
                return Err(Violation::LockHeld(dst, item, e));
            }
        } else {
            // Lw ∩ (V × {ms} × {d} × E) = ∅ (reads at the source are fine)
            if state.any_write_lock(src, item, e) {
                return Err(Violation::LockHeld(src, item, e));
            }
            // (Lr ∪ Lw) ∩ (V × {md} × {d} × E) = ∅.
            if state.any_lock(dst, item, e) {
                return Err(Violation::LockHeld(dst, item, e));
            }
        }
    }
    let mut next = state.clone();
    for &e in elems {
        if is_migrate {
            next.d.remove(&(src, item, e));
        }
        next.d.insert((dst, item, e));
    }
    Ok(next)
}

/// Enumerate all `Step` and `Continue` transitions enabled in `state`
/// (the application-progress moves). `Start` and the data-management moves
/// have large parameter spaces and are enumerated by the driver instead.
pub fn enabled_progress(program: &Program, state: &SystemState) -> Vec<Transition> {
    let mut out = Vec::new();
    for &(core, variant, pc) in &state.r {
        out.push(Transition::Step { core, variant, pc });
    }
    for &(core, variant, pc, waited) in &state.b {
        if !state.q.contains(&waited) && !state.task_active(program.variants_of(waited)) {
            out.push(Transition::Continue {
                core,
                variant,
                pc,
                waited,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Architecture;
    use crate::program::{req, ProgramBuilder, VariantSpec};

    /// Entry task writes elems {0,1} of item 0, reads {2}.
    fn tiny_program() -> Program {
        let mut b = ProgramBuilder::new();
        b.item(ItemId(0), 4);
        b.variant(
            TaskId(0),
            VariantSpec {
                actions: vec![Action::Create(ItemId(0))],
                reads: req(&[(ItemId(0), &[2])]),
                writes: req(&[(ItemId(0), &[0, 1])]),
            },
        );
        b.build(TaskId(0))
    }

    fn two_node_arch() -> Architecture {
        Architecture::cluster(2, 1)
    }

    #[test]
    fn start_requires_data_present() {
        let p = tiny_program();
        let s = SystemState::initial(TaskId(0), two_node_arch());
        let t = Transition::Start {
            task: TaskId(0),
            variant: VariantId(0),
            core: CoreId(0),
            mem_assign: [(ItemId(0), MemId(0))].into_iter().collect(),
        };
        assert_eq!(
            apply(&p, &s, &t),
            Err(Violation::RequirementUnsatisfied(
                ItemId(0),
                Elem(0),
                MemId(0)
            ))
        );
    }

    /// Drive the tiny program to a startable state by hand.
    fn prepared_state(_p: &Program) -> SystemState {
        let mut s = SystemState::initial(TaskId(0), two_node_arch());
        s.live_items.insert(ItemId(0));
        for e in [0, 1, 2] {
            s.d.insert((MemId(0), ItemId(0), Elem(e)));
        }
        s
    }

    #[test]
    fn start_takes_locks_and_dequeues() {
        let p = tiny_program();
        let s = prepared_state(&p);
        let t = Transition::Start {
            task: TaskId(0),
            variant: VariantId(0),
            core: CoreId(0),
            mem_assign: [(ItemId(0), MemId(0))].into_iter().collect(),
        };
        let s2 = apply(&p, &s, &t).unwrap();
        assert!(s2.q.is_empty());
        assert!(s2.r.contains(&(CoreId(0), VariantId(0), 0)));
        assert_eq!(s2.lr.len(), 1);
        assert_eq!(s2.lw.len(), 2);
    }

    #[test]
    fn start_rejects_core_without_link() {
        let p = tiny_program();
        let s = prepared_state(&p);
        let t = Transition::Start {
            task: TaskId(0),
            variant: VariantId(0),
            core: CoreId(1), // node B's core cannot reach m0
            mem_assign: [(ItemId(0), MemId(0))].into_iter().collect(),
        };
        assert_eq!(
            apply(&p, &s, &t),
            Err(Violation::CoreCannotReach(CoreId(1), MemId(0)))
        );
    }

    #[test]
    fn start_rejects_foreign_write_copies() {
        let p = tiny_program();
        let mut s = prepared_state(&p);
        // Element 0 (write-required) also replicated on m1.
        s.d.insert((MemId(1), ItemId(0), Elem(0)));
        let t = Transition::Start {
            task: TaskId(0),
            variant: VariantId(0),
            core: CoreId(0),
            mem_assign: [(ItemId(0), MemId(0))].into_iter().collect(),
        };
        assert_eq!(
            apply(&p, &s, &t),
            Err(Violation::ForeignWriteCopy(ItemId(0), Elem(0), MemId(1)))
        );
    }

    #[test]
    fn end_releases_locks() {
        let p = tiny_program();
        let s0 = prepared_state(&p);
        let start = Transition::Start {
            task: TaskId(0),
            variant: VariantId(0),
            core: CoreId(0),
            mem_assign: [(ItemId(0), MemId(0))].into_iter().collect(),
        };
        let s1 = apply(&p, &s0, &start).unwrap();
        // pc 0: create — but item already live here, so build a fresh state
        // where the item is created by the task itself instead.
        let mut s1b = s1.clone();
        s1b.live_items.clear();
        let s2 = apply(
            &p,
            &s1b,
            &Transition::Step {
                core: CoreId(0),
                variant: VariantId(0),
                pc: 0,
            },
        )
        .unwrap();
        assert!(s2.live_items.contains(&ItemId(0)));
        // pc 1: end.
        let s3 = apply(
            &p,
            &s2,
            &Transition::Step {
                core: CoreId(0),
                variant: VariantId(0),
                pc: 1,
            },
        )
        .unwrap();
        assert!(s3.is_terminal());
        assert!(s3.lr.is_empty() && s3.lw.is_empty());
        // Data survives termination (Dt).
        assert_eq!(s3.d.len(), 3);
    }

    #[test]
    fn init_rejects_duplicates_and_foreign_elements() {
        let p = tiny_program();
        let mut s = SystemState::initial(TaskId(0), two_node_arch());
        s.live_items.insert(ItemId(0));
        let init = Transition::Init {
            mem: MemId(0),
            item: ItemId(0),
            elems: [Elem(0)].into_iter().collect(),
        };
        let s1 = apply(&p, &s, &init).unwrap();
        assert!(s1.present(MemId(0), ItemId(0), Elem(0)));
        // Re-init anywhere is rejected: element already present.
        let init2 = Transition::Init {
            mem: MemId(1),
            item: ItemId(0),
            elems: [Elem(0)].into_iter().collect(),
        };
        assert_eq!(
            apply(&p, &s1, &init2),
            Err(Violation::AlreadyPresent(ItemId(0), Elem(0), MemId(0)))
        );
        // Elements outside elems(d) are rejected.
        let bad = Transition::Init {
            mem: MemId(0),
            item: ItemId(0),
            elems: [Elem(99)].into_iter().collect(),
        };
        assert_eq!(
            apply(&p, &s1, &bad),
            Err(Violation::ElementOutsideItem(ItemId(0), Elem(99)))
        );
    }

    #[test]
    fn migrate_moves_and_respects_locks() {
        let p = tiny_program();
        let mut s = SystemState::initial(TaskId(0), two_node_arch());
        s.live_items.insert(ItemId(0));
        s.d.insert((MemId(0), ItemId(0), Elem(0)));
        let mig = Transition::Migrate {
            src: MemId(0),
            dst: MemId(1),
            item: ItemId(0),
            elems: [Elem(0)].into_iter().collect(),
        };
        let s1 = apply(&p, &s, &mig).unwrap();
        assert!(!s1.present(MemId(0), ItemId(0), Elem(0)));
        assert!(s1.present(MemId(1), ItemId(0), Elem(0)));

        // With a read lock at the source, migration is forbidden.
        let mut locked = s.clone();
        locked
            .lr
            .insert((VariantId(0), MemId(0), ItemId(0), Elem(0)));
        assert_eq!(
            apply(&p, &locked, &mig),
            Err(Violation::LockHeld(MemId(0), ItemId(0), Elem(0)))
        );
    }

    #[test]
    fn replicate_copies_and_respects_write_locks() {
        let p = tiny_program();
        let mut s = SystemState::initial(TaskId(0), two_node_arch());
        s.live_items.insert(ItemId(0));
        s.d.insert((MemId(0), ItemId(0), Elem(0)));
        let rep = Transition::Replicate {
            src: MemId(0),
            dst: MemId(1),
            item: ItemId(0),
            elems: [Elem(0)].into_iter().collect(),
        };
        let s1 = apply(&p, &s, &rep).unwrap();
        assert!(s1.present(MemId(0), ItemId(0), Elem(0)));
        assert!(s1.present(MemId(1), ItemId(0), Elem(0)));

        // A read lock at the source does NOT forbid replication…
        let mut read_locked = s.clone();
        read_locked
            .lr
            .insert((VariantId(0), MemId(0), ItemId(0), Elem(0)));
        assert!(apply(&p, &read_locked, &rep).is_ok());

        // …but a write lock does.
        let mut write_locked = s.clone();
        write_locked
            .lw
            .insert((VariantId(0), MemId(0), ItemId(0), Elem(0)));
        assert_eq!(
            apply(&p, &write_locked, &rep),
            Err(Violation::LockHeld(MemId(0), ItemId(0), Elem(0)))
        );
    }

    #[test]
    fn migrate_of_absent_data_rejected() {
        let p = tiny_program();
        let mut s = SystemState::initial(TaskId(0), two_node_arch());
        s.live_items.insert(ItemId(0));
        let mig = Transition::Migrate {
            src: MemId(0),
            dst: MemId(1),
            item: ItemId(0),
            elems: [Elem(0)].into_iter().collect(),
        };
        assert_eq!(
            apply(&p, &s, &mig),
            Err(Violation::SourceMissing(ItemId(0), Elem(0), MemId(0)))
        );
    }

    #[test]
    fn empty_element_sets_rejected() {
        let p = tiny_program();
        let mut s = SystemState::initial(TaskId(0), two_node_arch());
        s.live_items.insert(ItemId(0));
        let init = Transition::Init {
            mem: MemId(0),
            item: ItemId(0),
            elems: BTreeSet::new(),
        };
        assert_eq!(apply(&p, &s, &init), Err(Violation::EmptyElementSet));
    }

    #[test]
    fn destroy_erases_data_and_locks() {
        let mut b = ProgramBuilder::new();
        b.item(ItemId(0), 2);
        b.variant(
            TaskId(0),
            VariantSpec {
                actions: vec![Action::Create(ItemId(0)), Action::Destroy(ItemId(0))],
                ..Default::default()
            },
        );
        let p = b.build(TaskId(0));
        let s0 = SystemState::initial(TaskId(0), two_node_arch());
        let start = Transition::Start {
            task: TaskId(0),
            variant: VariantId(0),
            core: CoreId(0),
            mem_assign: BTreeMap::new(),
        };
        let s1 = apply(&p, &s0, &start).unwrap();
        let s2 = apply(
            &p,
            &s1,
            &Transition::Step {
                core: CoreId(0),
                variant: VariantId(0),
                pc: 0,
            },
        )
        .unwrap();
        // Allocate some data, then destroy.
        let s3 = apply(
            &p,
            &s2,
            &Transition::Init {
                mem: MemId(1),
                item: ItemId(0),
                elems: [Elem(0), Elem(1)].into_iter().collect(),
            },
        )
        .unwrap();
        let s4 = apply(
            &p,
            &s3,
            &Transition::Step {
                core: CoreId(0),
                variant: VariantId(0),
                pc: 1,
            },
        )
        .unwrap();
        assert!(s4.d.is_empty());
        assert!(!s4.live_items.contains(&ItemId(0)));
    }

    #[test]
    fn spawn_sync_continue_round_trip() {
        let mut b = ProgramBuilder::new();
        b.variant(TaskId(1), VariantSpec::default());
        b.variant(
            TaskId(0),
            VariantSpec {
                actions: vec![Action::Spawn(TaskId(1)), Action::Sync(TaskId(1))],
                ..Default::default()
            },
        );
        let p = b.build(TaskId(0));
        let s0 = SystemState::initial(TaskId(0), two_node_arch());
        let s1 = apply(
            &p,
            &s0,
            &Transition::Start {
                task: TaskId(0),
                variant: VariantId(1),
                core: CoreId(0),
                mem_assign: BTreeMap::new(),
            },
        )
        .unwrap();
        // spawn
        let s2 = apply(
            &p,
            &s1,
            &Transition::Step {
                core: CoreId(0),
                variant: VariantId(1),
                pc: 0,
            },
        )
        .unwrap();
        assert!(s2.q.contains(&TaskId(1)));
        // sync — blocks the parent.
        let s3 = apply(
            &p,
            &s2,
            &Transition::Step {
                core: CoreId(0),
                variant: VariantId(1),
                pc: 1,
            },
        )
        .unwrap();
        assert_eq!(s3.b.len(), 1);
        // continue is NOT enabled: child still in Q.
        let cont = Transition::Continue {
            core: CoreId(0),
            variant: VariantId(1),
            pc: 2,
            waited: TaskId(1),
        };
        assert_eq!(
            apply(&p, &s3, &cont),
            Err(Violation::AwaitedTaskNotFinished(TaskId(1)))
        );
        // Run the child on node B.
        let s4 = apply(
            &p,
            &s3,
            &Transition::Start {
                task: TaskId(1),
                variant: VariantId(0),
                core: CoreId(1),
                mem_assign: BTreeMap::new(),
            },
        )
        .unwrap();
        let s5 = apply(
            &p,
            &s4,
            &Transition::Step {
                core: CoreId(1),
                variant: VariantId(0),
                pc: 0,
            },
        )
        .unwrap();
        // Now the parent may continue and finish.
        let s6 = apply(&p, &s5, &cont).unwrap();
        let s7 = apply(
            &p,
            &s6,
            &Transition::Step {
                core: CoreId(0),
                variant: VariantId(1),
                pc: 2,
            },
        )
        .unwrap();
        assert!(s7.is_terminal());
    }

    #[test]
    fn enabled_progress_enumerates_runnable_moves() {
        let mut b = ProgramBuilder::new();
        b.variant(TaskId(1), VariantSpec::default());
        b.variant(
            TaskId(0),
            VariantSpec {
                actions: vec![Action::Spawn(TaskId(1)), Action::Sync(TaskId(1))],
                ..Default::default()
            },
        );
        let p = b.build(TaskId(0));
        let s0 = SystemState::initial(TaskId(0), two_node_arch());
        assert!(enabled_progress(&p, &s0).is_empty()); // nothing running yet
    }
}

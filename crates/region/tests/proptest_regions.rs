//! Property-based tests: every region scheme's algebra is checked against
//! a brute-force element-set oracle on randomized inputs, and the
//! fragment laws are checked against randomized edit scripts.

use proptest::prelude::*;
use std::collections::BTreeSet;

use allscale_region::{
    check_laws, BitmaskTreeRegion, BoxRegion, Fragment, GridBox, GridFragment, IntervalRegion,
    Point, Region, TreePath, TreeRegion,
};

// ------------------------------------------------------------- box regions

fn arb_box2() -> impl Strategy<Value = GridBox<2>> {
    (0i64..12, 0i64..12, 1i64..6, 1i64..6).prop_map(|(x, y, w, h)| {
        GridBox::new(Point([x, y]), Point([x + w, y + h])).expect("non-empty")
    })
}

fn arb_box_region() -> impl Strategy<Value = BoxRegion<2>> {
    prop::collection::vec(arb_box2(), 0..5).prop_map(BoxRegion::from_boxes)
}

fn box_oracle(r: &BoxRegion<2>) -> BTreeSet<[i64; 2]> {
    r.points().map(|p| p.0).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn box_region_laws(a in arb_box_region(), b in arb_box_region()) {
        check_laws(&a, &b, box_oracle);
    }

    #[test]
    fn box_region_boxes_stay_disjoint(a in arb_box_region(), b in arb_box_region()) {
        for r in [a.union(&b), a.intersect(&b), a.difference(&b)] {
            let boxes = r.boxes();
            for i in 0..boxes.len() {
                for j in i + 1..boxes.len() {
                    prop_assert!(boxes[i].intersect(&boxes[j]).is_none());
                }
            }
        }
    }

    #[test]
    fn box_region_cardinality_is_inclusion_exclusion(
        a in arb_box_region(),
        b in arb_box_region()
    ) {
        let u = a.union(&b).cardinality();
        let i = a.intersect(&b).cardinality();
        prop_assert_eq!(u + i, a.cardinality() + b.cardinality());
    }

    #[test]
    fn box_region_dilate_contains_original(a in arb_box_region()) {
        let universe = GridBox::<2>::from_shape([64, 64]).unwrap();
        let clipped = a.intersect(&BoxRegion::from_box(universe));
        let d = clipped.dilate_within(1, &universe);
        prop_assert!(clipped.is_subset_of(&d));
    }
}

// -------------------------------------------------------- interval regions

fn arb_interval_region() -> impl Strategy<Value = IntervalRegion> {
    prop::collection::vec((0u64..40, 1u64..10), 0..6)
        .prop_map(|ivs| IntervalRegion::from_intervals(ivs.into_iter().map(|(l, w)| (l, l + w))))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn interval_region_laws(a in arb_interval_region(), b in arb_interval_region()) {
        check_laws(&a, &b, |r| r.indices().collect::<BTreeSet<u64>>());
    }

    #[test]
    fn interval_normalization_is_canonical(a in arb_interval_region()) {
        // No empty, touching, or out-of-order intervals survive.
        for w in a.intervals().windows(2) {
            prop_assert!(w[0].1 < w[1].0, "{:?}", a);
        }
        for &(l, h) in a.intervals() {
            prop_assert!(l < h);
        }
    }
}

// ------------------------------------------------------------ tree regions

fn arb_path(max_depth: u8) -> impl Strategy<Value = TreePath> {
    prop::collection::vec(any::<bool>(), 0..=max_depth as usize)
        .prop_map(|steps| TreePath::from_steps(&steps))
}

fn arb_tree_region() -> impl Strategy<Value = TreeRegion> {
    (
        prop::collection::vec(arb_path(3), 0..3),
        prop::collection::vec(arb_path(4), 0..3),
    )
        .prop_map(|(inc, exc)| TreeRegion::from_include_exclude(&inc, &exc))
}

const ORACLE_HEIGHT: u8 = 5;

fn tree_oracle(r: &TreeRegion) -> BTreeSet<TreePath> {
    r.paths(ORACLE_HEIGHT).into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn tree_region_laws(a in arb_tree_region(), b in arb_tree_region()) {
        check_laws(&a, &b, tree_oracle);
    }

    #[test]
    fn tree_region_cardinality_matches_enumeration(a in arb_tree_region()) {
        prop_assert_eq!(a.cardinality(ORACLE_HEIGHT) as usize, tree_oracle(&a).len());
    }
}

// --------------------------------------------------------- bitmask regions

fn arb_bitmask(h: u8) -> impl Strategy<Value = BitmaskTreeRegion> {
    let bits = (1usize << h) + 1;
    prop::collection::vec(any::<bool>(), bits).prop_map(move |bs| {
        let mut r = BitmaskTreeRegion::new(h);
        r.set_root_block(bs[0]);
        for (i, &b) in bs[1..].iter().enumerate() {
            r.set_subtree(i, b);
        }
        r
    })
}

fn bitmask_oracle(r: &BitmaskTreeRegion) -> BTreeSet<TreePath> {
    let mut out = BTreeSet::new();
    let mut stack = vec![TreePath::ROOT];
    while let Some(p) = stack.pop() {
        if r.contains(&p) {
            out.insert(p);
        }
        if p.depth() + 1 < ORACLE_HEIGHT {
            stack.push(p.left());
            stack.push(p.right());
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn bitmask_region_laws(a in arb_bitmask(3), b in arb_bitmask(3)) {
        check_laws(&a, &b, bitmask_oracle);
    }

    #[test]
    fn bitmask_agrees_with_tree_region(a in arb_bitmask(2)) {
        let t = a.to_tree_region(ORACLE_HEIGHT);
        let mut stack = vec![TreePath::ROOT];
        while let Some(p) = stack.pop() {
            prop_assert_eq!(a.contains(&p), t.contains(&p), "path {:?}", p);
            if p.depth() + 1 < ORACLE_HEIGHT {
                stack.push(p.left());
                stack.push(p.right());
            }
        }
    }
}

// ---------------------------------------------------------- fragment laws

#[derive(Debug, Clone)]
enum Edit {
    Insert(GridBox<2>, i64),
    Remove(GridBox<2>),
}

fn arb_edit() -> impl Strategy<Value = Edit> {
    prop_oneof![
        (arb_box2(), -100i64..100).prop_map(|(b, v)| Edit::Insert(b, v)),
        arb_box2().prop_map(Edit::Remove),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Apply a random edit script to both a fragment and a plain map
    /// oracle; they must agree on coverage and values throughout.
    #[test]
    fn fragment_tracks_map_oracle(edits in prop::collection::vec(arb_edit(), 1..10)) {
        let mut frag = GridFragment::<i64, 2>::empty();
        let mut oracle: std::collections::BTreeMap<[i64; 2], i64> = Default::default();
        for e in &edits {
            match e {
                Edit::Insert(bx, v) => {
                    let mut piece = GridFragment::new(&BoxRegion::from_box(*bx));
                    piece.for_each_mut(|_, slot| *slot = *v);
                    frag.insert(&piece);
                    for p in bx.points() {
                        oracle.insert(p.0, *v);
                    }
                }
                Edit::Remove(bx) => {
                    frag.remove(&BoxRegion::from_box(*bx));
                    for p in bx.points() {
                        oracle.remove(&p.0);
                    }
                }
            }
        }
        // Same coverage and values.
        prop_assert_eq!(frag.len(), oracle.len());
        frag.for_each(|p, v| {
            assert_eq!(oracle.get(&p.0), Some(v), "at {p:?}");
        });
    }

    /// `extract` then `insert` into an empty fragment reproduces exactly
    /// the intersected data.
    #[test]
    fn fragment_extract_insert_round_trip(b1 in arb_box2(), b2 in arb_box2()) {
        let mut src = GridFragment::<i64, 2>::new(&BoxRegion::from_box(b1));
        src.for_each_mut(|p, v| *v = p[0] * 1000 + p[1]);
        let piece = src.extract(&BoxRegion::from_box(b2));
        prop_assert_eq!(piece.region(), BoxRegion::from_box(b1).intersect(&BoxRegion::from_box(b2)));
        let mut dst = GridFragment::<i64, 2>::empty();
        dst.insert(&piece);
        dst.for_each(|p, v| assert_eq!(*v, p[0] * 1000 + p[1]));
    }
}

//! # allscale-region — regions and data item fragments
//!
//! Implements the data model of *The AllScale Runtime Application Model*
//! (CLUSTER 2018): data items are assemblies of addressable elements
//! (Def. 2.1) whose subsets are described by *regions* (Def. 2.2) closed
//! under union, intersection, and set-difference (Section 3.1).
//!
//! Three region schemes mirror the paper's Fig. 4:
//! - [`BoxRegion`]: sets of axis-aligned boxes over N-dimensional grids;
//! - [`TreeRegion`]: include/exclude subtree sets over binary trees;
//! - [`BitmaskTreeRegion`]: coarse blocked tree regions (root block +
//!   `2^h` subtrees addressed by a bitmask);
//!
//! plus [`IntervalRegion`] for linearly addressed items.
//!
//! Element storage is provided by fragments ([`GridFragment`],
//! [`TreeFragment`]) implementing the [`Fragment`] contract used by the
//! runtime's data item manager.

#![warn(missing_docs)]

mod bitmask;
mod boxes;
mod fingerprint;
mod fragment;
mod grid_fragment;
mod interval;
mod keyed;
mod point;
mod region;
mod scalar;
mod tree;
mod tree_fragment;
mod treepath;

pub use bitmask::BitmaskTreeRegion;
pub use boxes::BoxRegion;
pub use fingerprint::{fnv1a_64, Fnv64};
pub use fragment::{Fragment, ItemType};
pub use grid_fragment::GridFragment;
pub use interval::IntervalRegion;
pub use keyed::{BucketRegion, KeyedFragment};
pub use point::{BoxPoints, GridBox, Point};
pub use region::{check_laws, Region};
pub use scalar::{ScalarFragment, UnitRegion};
pub use tree::TreeRegion;
pub use tree_fragment::{PathRegion, TreeFragment};
pub use treepath::TreePath;

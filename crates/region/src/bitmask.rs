//! Blocked tree regions (paper Fig. 4c): "the overall tree is divided into
//! one root tree of height h and 2^h sub-trees. Thus, a simple bit-mask of
//! length 2^h + 1 is sufficient to model regions, providing a much more
//! efficient scheme, yet less flexible distribution options."
//!
//! Bit 0 selects the root block (the top `h` levels as a whole); bit
//! `1 + i` selects the complete subtree hanging below the `i`-th node of
//! level `h` (left to right). All set operations are plain bitwise logic —
//! this is the scheme the TPC evaluation code uses to distribute its
//! kd-tree.

use serde::{Deserialize, Serialize};

use crate::region::Region;
use crate::tree::TreeRegion;
use crate::treepath::TreePath;

/// A coarse, bitmask-backed region over a binary tree split at depth `h`.
///
/// Two regions are only compatible (for set operations) if they share the
/// same split depth `h`; mixing depths is a programming error and panics.
#[derive(Clone, Serialize, Deserialize)]
pub struct BitmaskTreeRegion {
    h: u8,
    /// Bit 0: root block; bits 1..=2^h: subtrees, packed into u64 words.
    words: Vec<u64>,
}

impl PartialEq for BitmaskTreeRegion {
    fn eq(&self, other: &Self) -> bool {
        // Semantic equality: all empty regions are equal regardless of
        // split depth (the canonical `Region::empty()` uses depth 0).
        if self.h == other.h {
            self.words == other.words
        } else {
            self.is_empty() && other.is_empty()
        }
    }
}

impl Eq for BitmaskTreeRegion {}

impl BitmaskTreeRegion {
    /// An empty region for a tree split at depth `h` (`h <= 24`).
    pub fn new(h: u8) -> Self {
        assert!(h <= 24, "split depth {h} too large for a bitmask region");
        let bits = (1usize << h) + 1;
        BitmaskTreeRegion {
            h,
            words: vec![0; bits.div_ceil(64)],
        }
    }

    /// The split depth.
    #[inline]
    pub fn split_depth(&self) -> u8 {
        self.h
    }

    /// Number of subtree blocks (`2^h`).
    #[inline]
    pub fn subtree_count(&self) -> usize {
        1 << self.h
    }

    /// The whole tree: root block plus every subtree.
    pub fn full(h: u8) -> Self {
        let mut r = Self::new(h);
        r.set_root_block(true);
        for i in 0..r.subtree_count() {
            r.set_subtree(i, true);
        }
        r
    }

    /// Select or deselect the root block (top `h` levels).
    pub fn set_root_block(&mut self, on: bool) {
        self.set_bit(0, on);
    }

    /// Whether the root block is selected.
    pub fn has_root_block(&self) -> bool {
        self.get_bit(0)
    }

    /// Select or deselect subtree `i` (0-based, left to right at depth `h`).
    pub fn set_subtree(&mut self, i: usize, on: bool) {
        assert!(i < self.subtree_count(), "subtree index out of range");
        self.set_bit(1 + i, on);
    }

    /// Whether subtree `i` is selected.
    pub fn has_subtree(&self, i: usize) -> bool {
        assert!(i < self.subtree_count(), "subtree index out of range");
        self.get_bit(1 + i)
    }

    /// Indices of all selected subtrees.
    pub fn subtrees(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.subtree_count()).filter(|&i| self.has_subtree(i))
    }

    /// A region containing exactly subtree `i`.
    pub fn of_subtree(h: u8, i: usize) -> Self {
        let mut r = Self::new(h);
        r.set_subtree(i, true);
        r
    }

    /// A region containing exactly the root block.
    pub fn of_root_block(h: u8) -> Self {
        let mut r = Self::new(h);
        r.set_root_block(true);
        r
    }

    /// The path of the node at depth `h` that roots subtree `i`: the `h`
    /// bits of `i`, most-significant step first (left-to-right ordering of
    /// level `h`).
    pub fn subtree_root(&self, i: usize) -> TreePath {
        assert!(i < self.subtree_count());
        let steps: Vec<bool> = (0..self.h)
            .rev()
            .map(|b| (i >> b) & 1 == 1)
            .collect();
        TreePath::from_steps(&steps)
    }

    /// Which block a node path belongs to: `None` = root block, `Some(i)` =
    /// subtree `i`.
    pub fn block_of(h: u8, path: &TreePath) -> Option<usize> {
        if path.depth() < h {
            return None;
        }
        let mut i = 0usize;
        for d in 0..h {
            i = (i << 1) | (path.step(d) as usize);
        }
        Some(i)
    }

    /// Whether the node at `path` is in the region.
    pub fn contains(&self, path: &TreePath) -> bool {
        match Self::block_of(self.h, path) {
            None => self.has_root_block(),
            Some(i) => self.has_subtree(i),
        }
    }

    /// Number of member nodes in a complete tree of `height` levels.
    pub fn cardinality(&self, height: u8) -> u64 {
        let mut n = 0;
        if self.has_root_block() {
            n += (1u64 << self.h.min(height)) - 1;
        }
        if height > self.h {
            let per_subtree = (1u64 << (height - self.h)) - 1;
            n += self.subtrees().count() as u64 * per_subtree;
        }
        n
    }

    /// Convert to the flexible [`TreeRegion`] scheme (exact).
    pub fn to_tree_region(&self, height: u8) -> TreeRegion {
        let mut r = TreeRegion::empty();
        if self.has_root_block() {
            // Root block = whole tree minus all depth-h subtrees, bounded
            // implicitly by the item height when enumerated.
            let mut block = TreeRegion::subtree(TreePath::ROOT);
            for i in 0..self.subtree_count() {
                block = block.difference(&TreeRegion::subtree(self.subtree_root(i)));
            }
            r = r.union(&block);
        }
        for i in self.subtrees() {
            r = r.union(&TreeRegion::subtree(self.subtree_root(i)));
        }
        let _ = height; // height only matters for enumeration, not structure
        r
    }

    fn set_bit(&mut self, i: usize, on: bool) {
        let (w, b) = (i / 64, i % 64);
        if on {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    fn get_bit(&self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        (self.words[w] >> b) & 1 == 1
    }

    fn zip(&self, other: &Self, op: fn(u64, u64) -> u64) -> Self {
        assert_eq!(
            self.h, other.h,
            "bitmask regions with different split depths are incompatible"
        );
        BitmaskTreeRegion {
            h: self.h,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(&a, &b)| op(a, b))
                .collect(),
        }
    }
}

impl std::fmt::Debug for BitmaskTreeRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BitmaskTreeRegion(h={}, root={}, subtrees={:?})",
            self.h,
            self.has_root_block(),
            self.subtrees().collect::<Vec<_>>()
        )
    }
}

impl Region for BitmaskTreeRegion {
    fn empty() -> Self {
        // The canonical empty region uses split depth 0 (1 subtree). All
        // operations require matching depths, so `empty()` is mostly useful
        // through `R::new(h)`; is_empty/union handle the general case.
        BitmaskTreeRegion::new(0)
    }

    fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    fn union(&self, other: &Self) -> Self {
        // Allow the canonical empty value to combine with any depth.
        if self.is_empty() && self.h != other.h {
            return other.clone();
        }
        if other.is_empty() && self.h != other.h {
            return self.clone();
        }
        self.zip(other, |a, b| a | b)
    }

    fn intersect(&self, other: &Self) -> Self {
        if (self.is_empty() || other.is_empty()) && self.h != other.h {
            return Self::new(self.h.max(other.h));
        }
        self.zip(other, |a, b| a & b)
    }

    fn difference(&self, other: &Self) -> Self {
        if other.is_empty() && self.h != other.h {
            return self.clone();
        }
        if self.is_empty() && self.h != other.h {
            return Self::new(self.h);
        }
        self.zip(other, |a, b| a & !b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::check_laws;
    use std::collections::BTreeSet;

    const H_SPLIT: u8 = 2;
    const HEIGHT: u8 = 5;

    fn oracle(r: &BitmaskTreeRegion) -> BTreeSet<TreePath> {
        // Enumerate all paths in a HEIGHT-level tree, keep members.
        let mut out = BTreeSet::new();
        let mut stack = vec![TreePath::ROOT];
        while let Some(p) = stack.pop() {
            if r.contains(&p) {
                out.insert(p);
            }
            if p.depth() + 1 < HEIGHT {
                stack.push(p.left());
                stack.push(p.right());
            }
        }
        out
    }

    #[test]
    fn block_membership() {
        let mut r = BitmaskTreeRegion::new(H_SPLIT);
        r.set_subtree(2, true); // subtree rooted at path RL
        let root = TreePath::ROOT;
        assert!(!r.contains(&root));
        let rl = TreePath::from_steps(&[true, false]);
        assert!(r.contains(&rl));
        assert!(r.contains(&rl.left().right()));
        let rr = TreePath::from_steps(&[true, true]);
        assert!(!r.contains(&rr));
    }

    #[test]
    fn root_block_is_top_levels_only() {
        let r = BitmaskTreeRegion::of_root_block(H_SPLIT);
        assert!(r.contains(&TreePath::ROOT));
        assert!(r.contains(&TreePath::from_steps(&[true])));
        assert!(!r.contains(&TreePath::from_steps(&[true, false])));
        assert_eq!(r.cardinality(HEIGHT), 3); // depths 0 and 1
    }

    #[test]
    fn full_covers_complete_tree() {
        let r = BitmaskTreeRegion::full(H_SPLIT);
        assert_eq!(r.cardinality(HEIGHT), (1 << HEIGHT) - 1);
    }

    #[test]
    fn subtree_root_paths_order_left_to_right() {
        let r = BitmaskTreeRegion::new(2);
        assert_eq!(r.subtree_root(0), TreePath::from_steps(&[false, false]));
        assert_eq!(r.subtree_root(1), TreePath::from_steps(&[false, true]));
        assert_eq!(r.subtree_root(2), TreePath::from_steps(&[true, false]));
        assert_eq!(r.subtree_root(3), TreePath::from_steps(&[true, true]));
    }

    #[test]
    fn block_of_inverts_subtree_root() {
        let r = BitmaskTreeRegion::new(3);
        for i in 0..8 {
            let p = r.subtree_root(i);
            assert_eq!(BitmaskTreeRegion::block_of(3, &p), Some(i));
            assert_eq!(BitmaskTreeRegion::block_of(3, &p.left().right()), Some(i));
        }
        assert_eq!(
            BitmaskTreeRegion::block_of(3, &TreePath::from_steps(&[true])),
            None
        );
    }

    #[test]
    fn laws_on_fixed_cases() {
        let mut a = BitmaskTreeRegion::new(H_SPLIT);
        a.set_root_block(true);
        a.set_subtree(0, true);
        let mut b = BitmaskTreeRegion::new(H_SPLIT);
        b.set_subtree(0, true);
        b.set_subtree(3, true);
        let cases = [
            BitmaskTreeRegion::new(H_SPLIT),
            BitmaskTreeRegion::full(H_SPLIT),
            BitmaskTreeRegion::of_root_block(H_SPLIT),
            BitmaskTreeRegion::of_subtree(H_SPLIT, 1),
            a,
            b,
        ];
        for x in &cases {
            for y in &cases {
                check_laws(x, y, oracle);
            }
        }
    }

    #[test]
    fn agrees_with_tree_region_conversion() {
        let mut r = BitmaskTreeRegion::new(H_SPLIT);
        r.set_root_block(true);
        r.set_subtree(1, true);
        let t = r.to_tree_region(HEIGHT);
        // Membership must agree for every node shallower than HEIGHT...
        let mut stack = vec![TreePath::ROOT];
        while let Some(p) = stack.pop() {
            if p.depth() < H_SPLIT {
                // ...within the root block the TreeRegion is bounded by the
                // subtree subtraction, identical to bitmask semantics.
                assert_eq!(r.contains(&p), t.contains(&p), "path {p:?}");
            } else {
                assert_eq!(r.contains(&p), t.contains(&p), "path {p:?}");
            }
            if p.depth() + 1 < HEIGHT {
                stack.push(p.left());
                stack.push(p.right());
            }
        }
    }

    #[test]
    #[should_panic(expected = "different split depths")]
    fn mixing_depths_panics() {
        let a = BitmaskTreeRegion::full(2);
        let b = BitmaskTreeRegion::full(3);
        let _ = a.union(&b);
    }

    #[test]
    fn large_split_depth_uses_multiple_words() {
        let mut r = BitmaskTreeRegion::new(8); // 257 bits
        r.set_subtree(200, true);
        r.set_root_block(true);
        assert!(r.has_subtree(200));
        assert!(!r.has_subtree(199));
        assert_eq!(r.subtrees().collect::<Vec<_>>(), vec![200]);
    }
}

//! Scalar data items — the degenerate but useful end of the data-item
//! spectrum (paper Section 3.1: "a large variety of data structures,
//! ranging from simple scalars, ordinary arrays, …").
//!
//! A scalar has exactly one element; its region algebra is the two-element
//! Boolean algebra {∅, {•}}, and its fragment holds at most one value.

use serde::{Deserialize, Serialize};

use crate::fragment::Fragment;
use crate::region::Region;

/// The region scheme of a single-element data item: either empty or the
/// whole element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnitRegion {
    present: bool,
}

impl UnitRegion {
    /// The region containing the scalar.
    pub const FULL: UnitRegion = UnitRegion { present: true };

    /// Whether the single element is in the region.
    pub fn contains_element(&self) -> bool {
        self.present
    }
}

impl Region for UnitRegion {
    fn empty() -> Self {
        UnitRegion { present: false }
    }
    fn is_empty(&self) -> bool {
        !self.present
    }
    fn union(&self, other: &Self) -> Self {
        UnitRegion {
            present: self.present || other.present,
        }
    }
    fn intersect(&self, other: &Self) -> Self {
        UnitRegion {
            present: self.present && other.present,
        }
    }
    fn difference(&self, other: &Self) -> Self {
        UnitRegion {
            present: self.present && !other.present,
        }
    }
}

/// Fragment of a scalar data item: at most one value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalarFragment<T> {
    value: Option<T>,
}

impl<T> ScalarFragment<T>
where
    T: Clone + Default + Serialize + for<'a> Deserialize<'a> + 'static,
{
    /// Read the value, if held locally.
    pub fn get(&self) -> Option<&T> {
        self.value.as_ref()
    }

    /// Write the value. Returns `false` when the fragment covers nothing.
    pub fn set(&mut self, v: T) -> bool {
        if self.value.is_some() {
            self.value = Some(v);
            true
        } else {
            false
        }
    }
}

impl<T> Fragment for ScalarFragment<T>
where
    T: Clone + Default + Serialize + for<'a> Deserialize<'a> + 'static,
{
    type Region = UnitRegion;

    fn empty() -> Self {
        ScalarFragment { value: None }
    }

    fn alloc(region: &UnitRegion) -> Self {
        ScalarFragment {
            value: region.contains_element().then(T::default),
        }
    }

    fn region(&self) -> UnitRegion {
        if self.value.is_some() {
            UnitRegion::FULL
        } else {
            UnitRegion::empty()
        }
    }

    fn extract(&self, region: &UnitRegion) -> Self {
        ScalarFragment {
            value: if region.contains_element() {
                self.value.clone()
            } else {
                None
            },
        }
    }

    fn insert(&mut self, other: &Self) {
        if other.value.is_some() {
            self.value = other.value.clone();
        }
    }

    fn remove(&mut self, region: &UnitRegion) {
        if region.contains_element() {
            self.value = None;
        }
    }

    fn approx_bytes(&self) -> usize {
        std::mem::size_of::<T>() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::check_laws;
    use std::collections::BTreeSet;

    fn oracle(r: &UnitRegion) -> BTreeSet<()> {
        if r.contains_element() {
            [()].into_iter().collect()
        } else {
            BTreeSet::new()
        }
    }

    #[test]
    fn unit_region_laws() {
        let cases = [UnitRegion::empty(), UnitRegion::FULL];
        for a in &cases {
            for b in &cases {
                check_laws(a, b, oracle);
            }
        }
    }

    #[test]
    fn scalar_fragment_round_trip() {
        let mut f = ScalarFragment::<f64>::alloc(&UnitRegion::FULL);
        assert_eq!(f.get(), Some(&0.0));
        assert!(f.set(42.0));
        let piece = f.extract(&UnitRegion::FULL);
        let mut g = ScalarFragment::<f64>::empty();
        assert!(!g.set(1.0), "uncovered fragment rejects writes");
        g.insert(&piece);
        assert_eq!(g.get(), Some(&42.0));
        g.remove(&UnitRegion::FULL);
        assert!(g.get().is_none());
        assert!(g.region().is_empty());
    }

    #[test]
    fn empty_extract_carries_nothing() {
        let mut f = ScalarFragment::<u32>::alloc(&UnitRegion::FULL);
        f.set(7);
        let none = f.extract(&UnitRegion::empty());
        assert!(none.get().is_none());
    }
}

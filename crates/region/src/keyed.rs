//! Keyed (map/set) data items — the paper's claim that "more complex
//! structures like lists, trees, graphs, sets, maps … can be implemented
//! using this interface" (Sections 1 and 3.1), made concrete for maps.
//!
//! Elements are addressed by the *hash bucket* of their key: the region
//! scheme [`BucketRegion`] is a bitmask over `B` buckets (closed under the
//! set operations trivially), and [`KeyedFragment`] stores the key-value
//! pairs of the covered buckets. Distribution therefore follows consistent
//! hashing: the runtime can migrate or replicate any subset of buckets.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::fragment::Fragment;
use crate::region::Region;

/// A region over the hash buckets of a keyed data item.
///
/// All regions of one item must use the same bucket count; mixing counts
/// panics (it is a programming error, like mixing items).
#[derive(Clone, Serialize, Deserialize)]
pub struct BucketRegion {
    buckets: u32,
    words: Vec<u64>,
}

impl PartialEq for BucketRegion {
    fn eq(&self, other: &Self) -> bool {
        // Semantic equality: empty regions are equal regardless of bucket
        // count (the canonical `Region::empty()` uses one bucket).
        if self.buckets == other.buckets {
            self.words == other.words
        } else {
            self.is_empty() && other.is_empty()
        }
    }
}

impl Eq for BucketRegion {}

impl BucketRegion {
    /// An empty region over `buckets` buckets.
    pub fn new(buckets: u32) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        BucketRegion {
            buckets,
            words: vec![0; (buckets as usize).div_ceil(64)],
        }
    }

    /// The region covering every bucket.
    pub fn full(buckets: u32) -> Self {
        let mut r = Self::new(buckets);
        for b in 0..buckets {
            r.set(b, true);
        }
        r
    }

    /// A region of one bucket.
    pub fn of_bucket(buckets: u32, b: u32) -> Self {
        let mut r = Self::new(buckets);
        r.set(b, true);
        r
    }

    /// A contiguous bucket range `[lo, hi)` — the block-distribution
    /// building block.
    pub fn of_range(buckets: u32, lo: u32, hi: u32) -> Self {
        let mut r = Self::new(buckets);
        for b in lo..hi.min(buckets) {
            r.set(b, true);
        }
        r
    }

    /// Total bucket count of the item.
    pub fn buckets(&self) -> u32 {
        self.buckets
    }

    /// Select or deselect a bucket.
    pub fn set(&mut self, b: u32, on: bool) {
        assert!(b < self.buckets, "bucket out of range");
        let (w, i) = ((b / 64) as usize, b % 64);
        if on {
            self.words[w] |= 1 << i;
        } else {
            self.words[w] &= !(1 << i);
        }
    }

    /// Whether bucket `b` is covered.
    pub fn contains(&self, b: u32) -> bool {
        if b >= self.buckets {
            return false;
        }
        (self.words[(b / 64) as usize] >> (b % 64)) & 1 == 1
    }

    /// Iterate covered buckets.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.buckets).filter(|&b| self.contains(b))
    }

    /// Number of covered buckets.
    pub fn cardinality(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// The bucket a key hashes into (splitmix64 over the serde bytes is
    /// overkill; a seeded FNV-1a keeps this dependency-free and stable).
    pub fn bucket_of_bytes(buckets: u32, key_bytes: &[u8]) -> u32 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in key_bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        (h % buckets as u64) as u32
    }

    fn zip(&self, other: &Self, op: fn(u64, u64) -> u64) -> Self {
        if self.buckets != other.buckets {
            // Semantic escape hatches for the canonical empty value.
            if self.is_empty() || other.is_empty() {
                let buckets = self.buckets.max(other.buckets);
                let a = self.resized(buckets);
                let b = other.resized(buckets);
                return a.zip(&b, op);
            }
            panic!("bucket regions with different bucket counts");
        }
        BucketRegion {
            buckets: self.buckets,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(&a, &b)| op(a, b))
                .collect(),
        }
    }

    fn resized(&self, buckets: u32) -> Self {
        debug_assert!(self.is_empty() || self.buckets == buckets);
        let mut r = Self::new(buckets);
        for b in self.iter() {
            r.set(b, true);
        }
        r
    }
}

impl std::fmt::Debug for BucketRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BucketRegion({}/{} buckets)",
            self.cardinality(),
            self.buckets
        )
    }
}

impl Region for BucketRegion {
    fn empty() -> Self {
        BucketRegion::new(1)
    }
    fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
    fn union(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a | b)
    }
    fn intersect(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a & b)
    }
    fn difference(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a & !b)
    }
}

/// The key-value pairs of a keyed data item's covered buckets.
#[derive(Clone, Serialize, Deserialize)]
#[serde(bound(
    serialize = "K: Serialize, V: Serialize",
    deserialize = "K: serde::de::DeserializeOwned + Ord, V: serde::de::DeserializeOwned"
))]
pub struct KeyedFragment<K: Ord, V> {
    region: BucketRegion,
    entries: BTreeMap<K, (u32, V)>, // key -> (bucket, value)
}

impl<K, V> KeyedFragment<K, V>
where
    K: Ord + Clone + Serialize + for<'a> Deserialize<'a> + 'static,
    V: Clone + Serialize + for<'a> Deserialize<'a> + 'static,
{
    /// An empty fragment covering `region`.
    pub fn new(region: BucketRegion) -> Self {
        KeyedFragment {
            region,
            entries: BTreeMap::new(),
        }
    }

    /// The bucket a key belongs to.
    pub fn bucket_of(&self, key: &K) -> u32 {
        let bytes = allscale_key_bytes(key);
        BucketRegion::bucket_of_bytes(self.region.buckets(), &bytes)
    }

    /// Insert a key-value pair. Returns `false` (dropping the value) when
    /// the key's bucket is not covered here.
    pub fn insert(&mut self, key: K, value: V) -> bool {
        let b = self.bucket_of(&key);
        if !self.region.contains(b) {
            return false;
        }
        self.entries.insert(key, (b, value));
        true
    }

    /// Look up a key.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.entries.get(key).map(|(_, v)| v)
    }

    /// Remove a key.
    pub fn remove_key(&mut self, key: &K) -> Option<V> {
        self.entries.remove(key).map(|(_, v)| v)
    }

    /// Number of stored pairs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no pairs are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, (_, v))| (k, v))
    }
}

/// Stable serialized key bytes for hashing.
fn allscale_key_bytes<K: Serialize>(key: &K) -> Vec<u8> {
    // A tiny standalone encoding (the wire codec lives in allscale-net,
    // which this crate must not depend on): serde → JSON-free canonical
    // bytes via the debug of a minimal hand encoder would be fragile, so
    // we use the pragmatic route — serde into a Vec through the compact
    // `serde` "bincode-like" encoding implemented by `postcard`-style
    // hand rolling is unnecessary: keys used by the runtime must simply
    // provide stable bytes, which `serde`'s derive of `Serialize` into
    // this minimal writer guarantees.
    struct W(Vec<u8>);
    impl W {
        fn push(&mut self, b: &[u8]) {
            self.0.extend_from_slice(b);
        }
    }
    // Minimal serializer: only what keys need (ints, strings, tuples,
    // newtypes). Anything else panics loudly.
    use serde::ser::{Impossible, Serializer};
    struct KeySer<'a>(&'a mut W);
    #[derive(Debug)]
    struct KeyErr(String);
    impl std::fmt::Display for KeyErr {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }
    impl std::error::Error for KeyErr {}
    impl serde::ser::Error for KeyErr {
        fn custom<T: std::fmt::Display>(m: T) -> Self {
            KeyErr(m.to_string())
        }
    }
    macro_rules! prim {
        ($f:ident, $t:ty) => {
            fn $f(self, v: $t) -> Result<(), KeyErr> {
                self.0.push(&v.to_le_bytes());
                Ok(())
            }
        };
    }
    impl<'a> Serializer for KeySer<'a> {
        type Ok = ();
        type Error = KeyErr;
        type SerializeSeq = Impossible<(), KeyErr>;
        type SerializeTuple = KeyTuple<'a>;
        type SerializeTupleStruct = Impossible<(), KeyErr>;
        type SerializeTupleVariant = Impossible<(), KeyErr>;
        type SerializeMap = Impossible<(), KeyErr>;
        type SerializeStruct = Impossible<(), KeyErr>;
        type SerializeStructVariant = Impossible<(), KeyErr>;
        prim!(serialize_i8, i8);
        prim!(serialize_i16, i16);
        prim!(serialize_i32, i32);
        prim!(serialize_i64, i64);
        prim!(serialize_u8, u8);
        prim!(serialize_u16, u16);
        prim!(serialize_u32, u32);
        prim!(serialize_u64, u64);
        prim!(serialize_f32, f32);
        prim!(serialize_f64, f64);
        fn serialize_bool(self, v: bool) -> Result<(), KeyErr> {
            self.0.push(&[v as u8]);
            Ok(())
        }
        fn serialize_char(self, v: char) -> Result<(), KeyErr> {
            self.0.push(&(v as u32).to_le_bytes());
            Ok(())
        }
        fn serialize_str(self, v: &str) -> Result<(), KeyErr> {
            self.0.push(v.as_bytes());
            Ok(())
        }
        fn serialize_bytes(self, v: &[u8]) -> Result<(), KeyErr> {
            self.0.push(v);
            Ok(())
        }
        fn serialize_none(self) -> Result<(), KeyErr> {
            self.0.push(&[0]);
            Ok(())
        }
        fn serialize_some<T: Serialize + ?Sized>(self, v: &T) -> Result<(), KeyErr> {
            self.0.push(&[1]);
            v.serialize(KeySer(self.0))
        }
        fn serialize_unit(self) -> Result<(), KeyErr> {
            Ok(())
        }
        fn serialize_unit_struct(self, _: &'static str) -> Result<(), KeyErr> {
            Ok(())
        }
        fn serialize_unit_variant(
            self,
            _: &'static str,
            idx: u32,
            _: &'static str,
        ) -> Result<(), KeyErr> {
            self.0.push(&idx.to_le_bytes());
            Ok(())
        }
        fn serialize_newtype_struct<T: Serialize + ?Sized>(
            self,
            _: &'static str,
            v: &T,
        ) -> Result<(), KeyErr> {
            v.serialize(self)
        }
        fn serialize_newtype_variant<T: Serialize + ?Sized>(
            self,
            _: &'static str,
            idx: u32,
            _: &'static str,
            v: &T,
        ) -> Result<(), KeyErr> {
            self.0.push(&idx.to_le_bytes());
            v.serialize(KeySer(self.0))
        }
        fn serialize_seq(self, _: Option<usize>) -> Result<Self::SerializeSeq, KeyErr> {
            Err(serde::ser::Error::custom("seq keys unsupported"))
        }
        fn serialize_tuple(self, _: usize) -> Result<Self::SerializeTuple, KeyErr> {
            Ok(KeyTuple(self.0))
        }
        fn serialize_tuple_struct(
            self,
            _: &'static str,
            _: usize,
        ) -> Result<Self::SerializeTupleStruct, KeyErr> {
            Err(serde::ser::Error::custom("tuple-struct keys unsupported"))
        }
        fn serialize_tuple_variant(
            self,
            _: &'static str,
            _: u32,
            _: &'static str,
            _: usize,
        ) -> Result<Self::SerializeTupleVariant, KeyErr> {
            Err(serde::ser::Error::custom("tuple-variant keys unsupported"))
        }
        fn serialize_map(self, _: Option<usize>) -> Result<Self::SerializeMap, KeyErr> {
            Err(serde::ser::Error::custom("map keys unsupported"))
        }
        fn serialize_struct(
            self,
            _: &'static str,
            _: usize,
        ) -> Result<Self::SerializeStruct, KeyErr> {
            Err(serde::ser::Error::custom("struct keys unsupported"))
        }
        fn serialize_struct_variant(
            self,
            _: &'static str,
            _: u32,
            _: &'static str,
            _: usize,
        ) -> Result<Self::SerializeStructVariant, KeyErr> {
            Err(serde::ser::Error::custom("struct-variant keys unsupported"))
        }
    }
    struct KeyTuple<'a>(&'a mut W);
    impl serde::ser::SerializeTuple for KeyTuple<'_> {
        type Ok = ();
        type Error = KeyErr;
        fn serialize_element<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), KeyErr> {
            v.serialize(KeySer(self.0))
        }
        fn end(self) -> Result<(), KeyErr> {
            Ok(())
        }
    }

    let mut w = W(Vec::new());
    key.serialize(KeySer(&mut w)).expect("hashable key type");
    w.0
}

impl<K, V> Fragment for KeyedFragment<K, V>
where
    K: Ord + Clone + Serialize + for<'a> Deserialize<'a> + 'static,
    V: Clone + Serialize + for<'a> Deserialize<'a> + 'static,
{
    type Region = BucketRegion;

    fn empty() -> Self {
        KeyedFragment {
            region: BucketRegion::empty(),
            entries: BTreeMap::new(),
        }
    }

    fn alloc(region: &BucketRegion) -> Self {
        KeyedFragment::new(region.clone())
    }

    fn region(&self) -> BucketRegion {
        self.region.clone()
    }

    fn extract(&self, region: &BucketRegion) -> Self {
        let r = self.region.intersect(region);
        let entries = self
            .entries
            .iter()
            .filter(|(_, (b, _))| r.contains(*b))
            .map(|(k, bv)| (k.clone(), bv.clone()))
            .collect();
        KeyedFragment { region: r, entries }
    }

    fn insert(&mut self, other: &Self) {
        self.region = self.region.union(&other.region);
        for (k, bv) in &other.entries {
            self.entries.insert(k.clone(), bv.clone());
        }
    }

    fn remove(&mut self, region: &BucketRegion) {
        self.region = self.region.difference(region);
        let keep = self.region.clone();
        self.entries.retain(|_, (b, _)| keep.contains(*b));
    }

    fn approx_bytes(&self) -> usize {
        self.entries.len() * (std::mem::size_of::<K>() + std::mem::size_of::<V>() + 24)
    }
}

impl<K: Ord, V> std::fmt::Debug for KeyedFragment<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "KeyedFragment({:?}, {} entries)",
            self.region,
            self.entries.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::check_laws;
    use std::collections::BTreeSet;

    const B: u32 = 16;

    fn oracle(r: &BucketRegion) -> BTreeSet<u32> {
        r.iter().collect()
    }

    #[test]
    fn bucket_region_laws() {
        let cases = [
            BucketRegion::new(B),
            BucketRegion::full(B),
            BucketRegion::of_range(B, 0, 8),
            BucketRegion::of_range(B, 4, 12),
            BucketRegion::of_bucket(B, 15),
        ];
        for a in &cases {
            for b in &cases {
                check_laws(a, b, oracle);
            }
        }
    }

    #[test]
    fn hashing_is_stable_and_spread() {
        // Same key, same bucket, forever.
        let b1 = BucketRegion::bucket_of_bytes(B, b"hello");
        let b2 = BucketRegion::bucket_of_bytes(B, b"hello");
        assert_eq!(b1, b2);
        // Different keys spread over multiple buckets.
        let used: BTreeSet<u32> = (0..64u64)
            .map(|i| BucketRegion::bucket_of_bytes(B, &i.to_le_bytes()))
            .collect();
        assert!(used.len() >= 8, "poor spread: {used:?}");
    }

    #[test]
    fn keyed_fragment_insert_get() {
        let mut f: KeyedFragment<u64, String> = KeyedFragment::new(BucketRegion::full(B));
        assert!(f.insert(7, "seven".into()));
        assert!(f.insert(11, "eleven".into()));
        assert_eq!(f.get(&7).map(String::as_str), Some("seven"));
        assert_eq!(f.get(&99), None);
        assert_eq!(f.len(), 2);
        assert_eq!(f.remove_key(&7).as_deref(), Some("seven"));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn uncovered_buckets_reject_inserts() {
        // Find a key for bucket 0 and one for another bucket.
        let covered = BucketRegion::of_bucket(B, 3);
        let mut f: KeyedFragment<u64, u64> = KeyedFragment::new(covered);
        let mut hit = None;
        let mut miss = None;
        for k in 0..1000u64 {
            let b = BucketRegion::bucket_of_bytes(B, &allscale_key_bytes(&k));
            if b == 3 && hit.is_none() {
                hit = Some(k);
            }
            if b != 3 && miss.is_none() {
                miss = Some(k);
            }
        }
        let (hit, miss) = (hit.unwrap(), miss.unwrap());
        let mut f2 = f.extract(&BucketRegion::full(B));
        assert!(f.insert(hit, 1));
        assert!(!f.insert(miss, 2), "uncovered bucket must reject");
        let _ = &mut f2;
    }

    #[test]
    fn migration_moves_buckets() {
        let mut src: KeyedFragment<u64, u64> = KeyedFragment::new(BucketRegion::full(B));
        for k in 0..200u64 {
            src.insert(k, k * 10);
        }
        let lower = BucketRegion::of_range(B, 0, 8);
        let moved = src.extract(&lower);
        src.remove(&lower);
        let mut dst: KeyedFragment<u64, u64> = KeyedFragment::new(BucketRegion::new(B));
        Fragment::insert(&mut dst, &moved);
        assert_eq!(src.len() + dst.len(), 200);
        // Every key is in exactly one fragment, determined by its bucket.
        for k in 0..200u64 {
            let in_src = src.get(&k).is_some();
            let in_dst = dst.get(&k).is_some();
            assert!(in_src ^ in_dst, "key {k}");
        }
    }

    #[test]
    fn string_and_tuple_keys_hash() {
        let mut f: KeyedFragment<String, u32> = KeyedFragment::new(BucketRegion::full(B));
        assert!(f.insert("alpha".into(), 1));
        assert_eq!(f.get(&"alpha".to_string()), Some(&1));
        let mut g: KeyedFragment<(u32, u32), u32> = KeyedFragment::new(BucketRegion::full(B));
        assert!(g.insert((3, 4), 7));
        assert_eq!(g.get(&(3, 4)), Some(&7));
    }
}

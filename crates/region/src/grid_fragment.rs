//! Fragments of N-dimensional grid data items (paper Fig. 4a).
//!
//! A [`GridFragment`] stores one dense, row-major chunk per disjoint box of
//! its region. Copies between fragments move whole innermost-axis rows at a
//! time, so halo exchange and redistribution are memcpy-bound rather than
//! per-element.

use serde::{Deserialize, Serialize};

use crate::boxes::BoxRegion;
use crate::fragment::Fragment;
use crate::point::{GridBox, Point};
use crate::region::Region;

/// A dense row-major block of grid elements covering one box.
#[derive(Clone, Serialize, Deserialize)]
struct Chunk<T, const D: usize> {
    bx: GridBox<D>,
    data: Vec<T>,
}

impl<T: Clone, const D: usize> Chunk<T, D> {
    fn offset(&self, p: &Point<D>) -> usize {
        debug_assert!(self.bx.contains(p));
        let lo = self.bx.lo();
        let hi = self.bx.hi();
        let mut off = 0usize;
        for d in 0..D {
            off = off * (hi[d] - lo[d]) as usize + (p[d] - lo[d]) as usize;
        }
        off
    }
}

/// The elements of one region of an N-dimensional grid, held in a single
/// address space.
#[derive(Clone, Serialize, Deserialize)]
pub struct GridFragment<T, const D: usize> {
    chunks: Vec<Chunk<T, D>>,
}

impl<T, const D: usize> GridFragment<T, D>
where
    T: Clone + Default + Serialize + for<'a> Deserialize<'a> + 'static,
{
    /// Allocate a fragment covering `region`, elements default-initialized.
    pub fn new(region: &BoxRegion<D>) -> Self {
        let chunks = region
            .boxes()
            .iter()
            .map(|&bx| Chunk {
                data: vec![T::default(); bx.cardinality() as usize],
                bx,
            })
            .collect();
        GridFragment { chunks }
    }

    /// Read the element at `p`, if covered.
    pub fn get(&self, p: &Point<D>) -> Option<&T> {
        self.chunks
            .iter()
            .find(|c| c.bx.contains(p))
            .map(|c| &c.data[c.offset(p)])
    }

    /// Mutable access to the element at `p`, if covered.
    pub fn get_mut(&mut self, p: &Point<D>) -> Option<&mut T> {
        self.chunks.iter_mut().find(|c| c.bx.contains(p)).map(|c| {
            let off = c.offset(p);
            &mut c.data[off]
        })
    }

    /// Write the element at `p`. Returns `false` when `p` is not covered.
    pub fn set(&mut self, p: &Point<D>, v: T) -> bool {
        match self.get_mut(p) {
            Some(slot) => {
                *slot = v;
                true
            }
            None => false,
        }
    }

    /// Number of elements held.
    pub fn len(&self) -> usize {
        self.chunks.iter().map(|c| c.data.len()).sum()
    }

    /// Whether the fragment holds no elements.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Visit `(point, &value)` for every held element.
    pub fn for_each(&self, mut f: impl FnMut(Point<D>, &T)) {
        for c in &self.chunks {
            for (i, p) in c.bx.points().enumerate() {
                f(p, &c.data[i]);
            }
        }
    }

    /// Visit `(point, &mut value)` for every held element.
    pub fn for_each_mut(&mut self, mut f: impl FnMut(Point<D>, &mut T)) {
        for c in &mut self.chunks {
            for (i, p) in c.bx.points().enumerate() {
                f(p, &mut c.data[i]);
            }
        }
    }

    /// Copy every element of `src` covered by both fragments into `self`,
    /// row-by-row (innermost axis runs are contiguous in both layouts).
    fn copy_covered_from(&mut self, src: &GridFragment<T, D>) {
        for dst in &mut self.chunks {
            for sc in &src.chunks {
                let Some(overlap) = dst.bx.intersect(&sc.bx) else {
                    continue;
                };
                copy_box(sc, dst, &overlap);
            }
        }
    }
}

/// Copy the elements of `overlap` from chunk `src` to chunk `dst` using
/// contiguous innermost-axis row slices.
fn copy_box<T: Clone, const D: usize>(src: &Chunk<T, D>, dst: &mut Chunk<T, D>, overlap: &GridBox<D>) {
    let run = (overlap.hi()[D - 1] - overlap.lo()[D - 1]) as usize;
    // Iterate row starts: all points of the overlap with last coord fixed
    // at its low value.
    let mut row_lo = overlap.lo();
    loop {
        let s_off = src.offset(&row_lo);
        let d_off = dst.offset(&row_lo);
        dst.data[d_off..d_off + run].clone_from_slice(&src.data[s_off..s_off + run]);
        // Odometer over axes 0..D-1.
        let mut d = D - 1;
        loop {
            if d == 0 {
                return;
            }
            d -= 1;
            row_lo[d] += 1;
            if row_lo[d] < overlap.hi()[d] {
                break;
            }
            row_lo[d] = overlap.lo()[d];
        }
    }
}

impl<T, const D: usize> Fragment for GridFragment<T, D>
where
    T: Clone + Default + Serialize + for<'a> Deserialize<'a> + 'static,
{
    type Region = BoxRegion<D>;

    fn empty() -> Self {
        GridFragment { chunks: Vec::new() }
    }

    fn alloc(region: &BoxRegion<D>) -> Self {
        GridFragment::new(region)
    }

    fn region(&self) -> BoxRegion<D> {
        BoxRegion::from_boxes(self.chunks.iter().map(|c| c.bx))
    }

    fn extract(&self, region: &BoxRegion<D>) -> Self {
        let covered = self.region().intersect(region);
        let mut out = GridFragment::new(&covered);
        out.copy_covered_from(self);
        out
    }

    fn insert(&mut self, other: &Self) {
        // Last-writer-wins on overlap: clear the overlap, then adopt
        // other's chunks wholesale (they are disjoint among themselves).
        self.remove(&other.region());
        self.chunks.extend(other.chunks.iter().cloned());
    }

    fn remove(&mut self, region: &BoxRegion<D>) {
        let mut new_chunks = Vec::with_capacity(self.chunks.len());
        for c in std::mem::take(&mut self.chunks) {
            let keep = BoxRegion::from_box(c.bx).difference(region);
            if keep.boxes().len() == 1 && keep.boxes()[0] == c.bx {
                new_chunks.push(c); // untouched
                continue;
            }
            for &bx in keep.boxes() {
                let mut nc = Chunk {
                    data: vec![T::default(); bx.cardinality() as usize],
                    bx,
                };
                copy_box(&c, &mut nc, &bx);
                new_chunks.push(nc);
            }
        }
        self.chunks = new_chunks;
    }

    fn approx_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<T>() + self.chunks.len() * 64
    }
}

impl<T, const D: usize> std::fmt::Debug for GridFragment<T, D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GridFragment(")?;
        for (i, c) in self.chunks.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{:?}", c.bx)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r2(lo: [i64; 2], hi: [i64; 2]) -> BoxRegion<2> {
        BoxRegion::cuboid(lo, hi)
    }

    fn filled(region: &BoxRegion<2>) -> GridFragment<i64, 2> {
        let mut f = GridFragment::new(region);
        f.for_each_mut(|p, v| *v = p[0] * 100 + p[1]);
        f
    }

    #[test]
    fn new_covers_region_with_defaults() {
        let f = GridFragment::<f64, 2>::new(&r2([0, 0], [3, 3]));
        assert_eq!(f.len(), 9);
        assert_eq!(f.get(&Point([1, 1])), Some(&0.0));
        assert_eq!(f.get(&Point([3, 3])), None);
        assert_eq!(f.region(), r2([0, 0], [3, 3]));
    }

    #[test]
    fn get_set_round_trip() {
        let mut f = GridFragment::<i64, 2>::new(&r2([5, 5], [8, 8]));
        assert!(f.set(&Point([6, 7]), 42));
        assert_eq!(f.get(&Point([6, 7])), Some(&42));
        assert!(!f.set(&Point([0, 0]), 1)); // outside coverage
    }

    #[test]
    fn extract_copies_values() {
        let f = filled(&r2([0, 0], [4, 4]));
        let sub = f.extract(&r2([1, 1], [3, 3]));
        assert_eq!(sub.region(), r2([1, 1], [3, 3]));
        assert_eq!(sub.get(&Point([2, 1])), Some(&201));
        assert_eq!(sub.get(&Point([0, 0])), None);
    }

    #[test]
    fn extract_clips_to_coverage() {
        let f = filled(&r2([0, 0], [2, 2]));
        let sub = f.extract(&r2([1, 1], [5, 5]));
        assert_eq!(sub.region(), r2([1, 1], [2, 2]));
        assert_eq!(sub.len(), 1);
        assert_eq!(sub.get(&Point([1, 1])), Some(&101));
    }

    #[test]
    fn insert_last_writer_wins() {
        let mut f = filled(&r2([0, 0], [3, 3]));
        let mut g = GridFragment::<i64, 2>::new(&r2([2, 0], [5, 3]));
        g.for_each_mut(|_, v| *v = -7);
        f.insert(&g);
        assert_eq!(f.region(), r2([0, 0], [5, 3]));
        assert_eq!(f.get(&Point([1, 1])), Some(&101)); // original
        assert_eq!(f.get(&Point([2, 1])), Some(&-7)); // overwritten
        assert_eq!(f.get(&Point([4, 2])), Some(&-7)); // extended
    }

    #[test]
    fn remove_preserves_survivors() {
        let mut f = filled(&r2([0, 0], [4, 4]));
        f.remove(&r2([1, 1], [3, 3]));
        assert_eq!(f.region(), r2([0, 0], [4, 4]).difference(&r2([1, 1], [3, 3])));
        assert_eq!(f.len(), 12);
        assert_eq!(f.get(&Point([2, 2])), None);
        assert_eq!(f.get(&Point([0, 3])), Some(&3));
        assert_eq!(f.get(&Point([3, 0])), Some(&300));
    }

    #[test]
    fn halo_exchange_pattern() {
        // Two neighbouring fragments exchange one-cell halos — the core
        // motion of the stencil benchmark.
        let left = filled(&r2([0, 0], [4, 8]));
        let mut right = GridFragment::<i64, 2>::new(&r2([4, 0], [8, 8]));
        right.for_each_mut(|p, v| *v = -(p[0] * 100 + p[1]));

        // Right needs left's boundary column x=3.
        let halo = left.extract(&r2([3, 0], [4, 8]));
        let mut right_view = right.clone();
        right_view.insert(&halo);
        assert_eq!(right_view.get(&Point([3, 5])), Some(&305));
        assert_eq!(right_view.get(&Point([4, 5])), Some(&-405));
        // The original right fragment is untouched.
        assert_eq!(right.get(&Point([3, 5])), None);
    }

    #[test]
    fn multi_chunk_fragment_access() {
        let region = r2([0, 0], [2, 2]).union(&r2([10, 10], [12, 12]));
        let mut f = GridFragment::<i64, 2>::new(&region);
        assert!(f.set(&Point([11, 11]), 5));
        assert!(f.set(&Point([1, 0]), 6));
        assert!(!f.set(&Point([5, 5]), 7));
        assert_eq!(f.len(), 8);
    }

    #[test]
    fn three_d_extract_insert() {
        let mut f = GridFragment::<f32, 3>::new(&BoxRegion::cuboid([0; 3], [4; 3]));
        f.for_each_mut(|p, v| *v = (p[0] * 16 + p[1] * 4 + p[2]) as f32);
        let sub = f.extract(&BoxRegion::cuboid([1, 1, 1], [3, 3, 3]));
        assert_eq!(sub.len(), 8);
        assert_eq!(sub.get(&Point([2, 1, 2])), Some(&38.0));
    }

    #[test]
    fn serde_round_trip_preserves_everything() {
        // Use a JSON-free check: clone acts as the serde stand-in at this
        // layer; byte-level round trips are covered by the wire codec tests
        // in allscale-net and the manager tests in allscale-core.
        let f = filled(&r2([0, 0], [3, 3]));
        let g = f.clone();
        assert_eq!(g.get(&Point([2, 2])), Some(&202));
        assert_eq!(g.region(), f.region());
    }

    #[test]
    fn approx_bytes_scales_with_len() {
        let small = GridFragment::<f64, 2>::new(&r2([0, 0], [2, 2]));
        let large = GridFragment::<f64, 2>::new(&r2([0, 0], [20, 20]));
        assert!(large.approx_bytes() > small.approx_bytes() * 10);
    }

    #[test]
    fn empty_fragment_behaviour() {
        let f = GridFragment::<i64, 2>::empty();
        assert!(f.is_empty());
        assert!(f.region().is_empty());
        assert!(f.extract(&r2([0, 0], [5, 5])).is_empty());
    }
}

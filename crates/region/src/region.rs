//! The region abstraction (paper Definition 2.2 and Section 3.1).
//!
//! A region describes an addressable subset of a data item's elements. The
//! runtime decomposes, locates, transfers, and locks data exclusively in
//! terms of regions, so region types must form a proper set algebra:
//! Section 3.1 requires closure under **union, intersection, and
//! set-difference** (which is why a single bounding box is *not* a valid
//! region type, but a *set* of boxes is).
//!
//! Every implementation in this crate is property-tested against a
//! brute-force element-set oracle; see [`check_laws`].

use serde::{de::DeserializeOwned, Serialize};
use std::collections::BTreeSet;
use std::fmt::Debug;

/// An addressable subset of a data item's elements, closed under the
/// Boolean set operations.
///
/// Implementations must satisfy, for all regions `a`, `b`:
///
/// - `a ∪ a = a`, `a ∩ a = a` (idempotence)
/// - `a ∪ b = b ∪ a`, `a ∩ b = b ∩ a` (commutativity)
/// - `a \ b` disjoint from `b`, and `(a \ b) ∪ (a ∩ b) = a`
/// - `a ∪ ∅ = a`, `a ∩ ∅ = ∅`, `a \ ∅ = a`, `∅ \ a = ∅`
///
/// Equality must be *semantic*: two differently-structured representations
/// of the same element set compare equal.
pub trait Region: Clone + PartialEq + Debug + Serialize + DeserializeOwned + 'static {
    /// The empty region.
    fn empty() -> Self;

    /// Whether this region contains no elements.
    fn is_empty(&self) -> bool;

    /// Set union.
    fn union(&self, other: &Self) -> Self;

    /// Set intersection.
    fn intersect(&self, other: &Self) -> Self;

    /// Set difference (`self \ other`).
    fn difference(&self, other: &Self) -> Self;

    /// Whether the two regions share no elements.
    ///
    /// The default computes the intersection; implementations may override
    /// with something cheaper.
    fn is_disjoint(&self, other: &Self) -> bool {
        self.intersect(other).is_empty()
    }

    /// Whether `self` is a subset of `other`.
    fn is_subset_of(&self, other: &Self) -> bool {
        self.difference(other).is_empty()
    }
}

/// Checks a [`Region`] implementation against a brute-force element-set
/// oracle and the algebraic laws above. Panics (with context) on the first
/// violated law. Intended for use from unit and property tests of each
/// region scheme.
///
/// `elems` must map a region to the exact element set it denotes, within a
/// finite universe chosen by the caller.
pub fn check_laws<R, E, F>(a: &R, b: &R, elems: F)
where
    R: Region,
    E: Ord + Clone + Debug,
    F: Fn(&R) -> BTreeSet<E>,
{
    let ea = elems(a);
    let eb = elems(b);

    // The three operations agree with the oracle.
    let union = a.union(b);
    assert_eq!(
        elems(&union),
        ea.union(&eb).cloned().collect::<BTreeSet<_>>(),
        "union disagrees with oracle for {a:?} ∪ {b:?}"
    );
    let inter = a.intersect(b);
    assert_eq!(
        elems(&inter),
        ea.intersection(&eb).cloned().collect::<BTreeSet<_>>(),
        "intersection disagrees with oracle for {a:?} ∩ {b:?}"
    );
    let diff = a.difference(b);
    assert_eq!(
        elems(&diff),
        ea.difference(&eb).cloned().collect::<BTreeSet<_>>(),
        "difference disagrees with oracle for {a:?} \\ {b:?}"
    );

    // Emptiness is consistent with the oracle.
    assert_eq!(a.is_empty(), ea.is_empty(), "is_empty inconsistent: {a:?}");

    // Derived predicates.
    assert_eq!(
        a.is_disjoint(b),
        ea.is_disjoint(&eb),
        "is_disjoint inconsistent for {a:?}, {b:?}"
    );
    assert_eq!(
        a.is_subset_of(b),
        ea.is_subset(&eb),
        "is_subset_of inconsistent for {a:?}, {b:?}"
    );

    // Algebraic laws via semantic equality.
    assert_eq!(a.union(a), *a, "union not idempotent for {a:?}");
    assert_eq!(a.intersect(a), *a, "intersection not idempotent for {a:?}");
    assert_eq!(a.union(b), b.union(a), "union not commutative");
    assert_eq!(a.intersect(b), b.intersect(a), "intersection not commutative");
    let empty = R::empty();
    assert!(empty.is_empty(), "R::empty() must be empty");
    assert_eq!(a.union(&empty), *a, "a ∪ ∅ ≠ a for {a:?}");
    assert_eq!(a.intersect(&empty), empty, "a ∩ ∅ ≠ ∅ for {a:?}");
    assert_eq!(a.difference(&empty), *a, "a \\ ∅ ≠ a for {a:?}");
    assert_eq!(empty.difference(a), empty, "∅ \\ a ≠ ∅ for {a:?}");
    assert!(
        diff.is_disjoint(b),
        "a \\ b not disjoint from b: {a:?}, {b:?}"
    );
    assert_eq!(
        diff.union(&inter),
        *a,
        "(a \\ b) ∪ (a ∩ b) ≠ a for {a:?}, {b:?}"
    );
    assert_eq!(a.difference(b).intersect(b), R::empty());

    // Round-trip through the wire-independent serde data model using the
    // canonical token-less path: Clone + PartialEq suffices here; actual
    // byte-level round-trips are exercised by the net crate's codec tests.
    let cloned = a.clone();
    assert_eq!(cloned, *a);
}

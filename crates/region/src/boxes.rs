//! Box-set regions for N-dimensional grids (paper Fig. 4a).
//!
//! A single axis-aligned bounding box is *not* closed under union or
//! difference, but a **set** of pairwise-disjoint boxes is — this is the
//! region scheme the AllScale prototype ships for its `Grid` data item and
//! the one used by the stencil and iPiC3D evaluation codes.

use serde::{Deserialize, Serialize};

use crate::point::{GridBox, Point};
use crate::region::Region;

/// A region of an N-dimensional grid: a set of pairwise-disjoint boxes.
///
/// The representation is normalized on construction: boxes never overlap,
/// and a greedy merge pass fuses face-adjacent boxes to curb fragmentation
/// (important for long-running simulations that repeatedly migrate halos).
/// Semantic equality is still *set* equality, implemented by mutual
/// difference, so structurally different decompositions compare equal.
#[derive(Clone, Serialize, Deserialize)]
pub struct BoxRegion<const D: usize> {
    boxes: Vec<GridBox<D>>,
}

impl<const D: usize> BoxRegion<D> {
    /// The region of a single box.
    pub fn from_box(b: GridBox<D>) -> Self {
        BoxRegion { boxes: vec![b] }
    }

    /// The region `[lo, hi)`; empty if the box is degenerate.
    pub fn cuboid(lo: impl Into<Point<D>>, hi: impl Into<Point<D>>) -> Self {
        match GridBox::new(lo.into(), hi.into()) {
            Some(b) => Self::from_box(b),
            None => Self::empty(),
        }
    }

    /// Build from arbitrary (possibly overlapping) boxes.
    pub fn from_boxes<I: IntoIterator<Item = GridBox<D>>>(boxes: I) -> Self {
        let mut r = Self::empty();
        for b in boxes {
            r = r.union(&Self::from_box(b));
        }
        r
    }

    /// The disjoint boxes making up this region.
    pub fn boxes(&self) -> &[GridBox<D>] {
        &self.boxes
    }

    /// Total number of lattice points covered.
    pub fn cardinality(&self) -> u64 {
        self.boxes.iter().map(|b| b.cardinality()).sum()
    }

    /// Whether the region contains the point `p`.
    pub fn contains(&self, p: &Point<D>) -> bool {
        self.boxes.iter().any(|b| b.contains(p))
    }

    /// The smallest box enclosing the region, or `None` when empty.
    pub fn bounding_box(&self) -> Option<GridBox<D>> {
        let first = self.boxes.first()?;
        let mut lo = first.lo();
        let mut hi = first.hi();
        for b in &self.boxes[1..] {
            lo = lo.cmin(&b.lo());
            hi = hi.cmax(&b.hi());
        }
        GridBox::new(lo, hi)
    }

    /// Iterate over every point of the region.
    pub fn points(&self) -> impl Iterator<Item = Point<D>> + '_ {
        self.boxes.iter().flat_map(|b| b.points())
    }

    /// Grow the region by `r` in every direction, clamped to `universe` —
    /// the neighbourhood operator used for stencil read requirements.
    pub fn dilate_within(&self, r: i64, universe: &GridBox<D>) -> Self {
        let mut out = Self::empty();
        for b in &self.boxes {
            if let Some(g) = b.dilate(r).intersect(universe) {
                out = out.union(&Self::from_box(g));
            }
        }
        out
    }

    /// Greedy merge of face-adjacent boxes (equal extent on all axes but
    /// one, and touching on that one). Keeps representations compact.
    fn coalesce(mut boxes: Vec<GridBox<D>>) -> Vec<GridBox<D>> {
        loop {
            let mut merged_any = false;
            'outer: for i in 0..boxes.len() {
                for j in i + 1..boxes.len() {
                    if let Some(m) = try_merge(&boxes[i], &boxes[j]) {
                        boxes[i] = m;
                        boxes.swap_remove(j);
                        merged_any = true;
                        break 'outer;
                    }
                }
            }
            if !merged_any {
                return boxes;
            }
        }
    }
}

/// Merge two boxes into one if they tile a box exactly.
fn try_merge<const D: usize>(a: &GridBox<D>, b: &GridBox<D>) -> Option<GridBox<D>> {
    // They must agree on all axes except one, where they are adjacent.
    let mut diff_axis = None;
    for d in 0..D {
        if a.lo()[d] == b.lo()[d] && a.hi()[d] == b.hi()[d] {
            continue;
        }
        if diff_axis.is_some() {
            return None;
        }
        diff_axis = Some(d);
    }
    let d = diff_axis?;
    if a.hi()[d] == b.lo()[d] {
        GridBox::new(a.lo(), {
            let mut h = a.hi();
            h[d] = b.hi()[d];
            h
        })
    } else if b.hi()[d] == a.lo()[d] {
        GridBox::new(b.lo(), {
            let mut h = b.hi();
            h[d] = a.hi()[d];
            h
        })
    } else {
        None
    }
}

impl<const D: usize> PartialEq for BoxRegion<D> {
    fn eq(&self, other: &Self) -> bool {
        // Semantic set equality via mutual difference. Fast path: identical
        // normalized representations.
        if self.boxes == other.boxes {
            return true;
        }
        if self.cardinality() != other.cardinality() {
            return false;
        }
        self.difference(other).is_empty() && other.difference(self).is_empty()
    }
}

impl<const D: usize> Eq for BoxRegion<D> {}

impl<const D: usize> std::fmt::Debug for BoxRegion<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BoxRegion{:?}", self.boxes)
    }
}

impl<const D: usize> Region for BoxRegion<D> {
    fn empty() -> Self {
        BoxRegion { boxes: Vec::new() }
    }

    fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }

    fn union(&self, other: &Self) -> Self {
        // A ∪ B = A ⊎ (B \ A): keep A's boxes, add the parts of B's boxes
        // that survive subtracting every box of A.
        let mut out = self.boxes.clone();
        for b in &other.boxes {
            let mut parts = vec![*b];
            for a in &self.boxes {
                let mut next = Vec::with_capacity(parts.len());
                for p in parts {
                    next.extend(p.subtract(a));
                }
                parts = next;
                if parts.is_empty() {
                    break;
                }
            }
            out.extend(parts);
        }
        BoxRegion {
            boxes: Self::coalesce(out),
        }
    }

    fn intersect(&self, other: &Self) -> Self {
        let mut out = Vec::new();
        for a in &self.boxes {
            for b in &other.boxes {
                if let Some(i) = a.intersect(b) {
                    out.push(i);
                }
            }
        }
        // Disjointness of inputs makes outputs disjoint automatically.
        BoxRegion {
            boxes: Self::coalesce(out),
        }
    }

    fn difference(&self, other: &Self) -> Self {
        let mut out = Vec::new();
        for a in &self.boxes {
            let mut parts = vec![*a];
            for b in &other.boxes {
                let mut next = Vec::with_capacity(parts.len());
                for p in parts {
                    next.extend(p.subtract(b));
                }
                parts = next;
                if parts.is_empty() {
                    break;
                }
            }
            out.extend(parts);
        }
        BoxRegion {
            boxes: Self::coalesce(out),
        }
    }

    fn is_disjoint(&self, other: &Self) -> bool {
        self.boxes
            .iter()
            .all(|a| other.boxes.iter().all(|b| a.intersect(b).is_none()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::check_laws;
    use std::collections::BTreeSet;

    fn r2(lo: [i64; 2], hi: [i64; 2]) -> BoxRegion<2> {
        BoxRegion::cuboid(lo, hi)
    }

    fn oracle(r: &BoxRegion<2>) -> BTreeSet<[i64; 2]> {
        r.points().map(|p| p.0).collect()
    }

    #[test]
    fn basic_construction() {
        let r = r2([0, 0], [3, 3]);
        assert_eq!(r.cardinality(), 9);
        assert!(!r.is_empty());
        assert!(r2([2, 2], [2, 5]).is_empty()); // degenerate
    }

    #[test]
    fn union_of_overlapping_boxes() {
        let a = r2([0, 0], [4, 4]);
        let b = r2([2, 2], [6, 6]);
        let u = a.union(&b);
        assert_eq!(u.cardinality(), 16 + 16 - 4);
        assert!(u.contains(&Point([5, 5])));
        assert!(u.contains(&Point([0, 0])));
        assert!(!u.contains(&Point([5, 0])));
    }

    #[test]
    fn union_disjointness_invariant() {
        let a = r2([0, 0], [4, 4]);
        let b = r2([2, 2], [6, 6]);
        let u = a.union(&b);
        for (i, x) in u.boxes().iter().enumerate() {
            for y in u.boxes().iter().skip(i + 1) {
                assert!(x.intersect(y).is_none(), "boxes overlap: {x:?} {y:?}");
            }
        }
    }

    #[test]
    fn difference_carves_hole() {
        let a = r2([0, 0], [5, 5]);
        let hole = r2([1, 1], [4, 4]);
        let d = a.difference(&hole);
        assert_eq!(d.cardinality(), 25 - 9);
        assert!(!d.contains(&Point([2, 2])));
        assert!(d.contains(&Point([0, 4])));
    }

    #[test]
    fn semantic_equality_across_decompositions() {
        // Same L-shape assembled two different ways.
        let a = r2([0, 0], [2, 4]).union(&r2([2, 0], [4, 2]));
        let b = r2([0, 0], [4, 2]).union(&r2([0, 2], [2, 4]));
        assert_eq!(a, b);
        assert_ne!(a, r2([0, 0], [4, 4]));
    }

    #[test]
    fn coalescing_keeps_representation_small() {
        // A 1x8 strip assembled from 8 unit boxes should merge down.
        let mut r = BoxRegion::<2>::empty();
        for i in 0..8 {
            r = r.union(&r2([i, 0], [i + 1, 1]));
        }
        assert_eq!(r.boxes().len(), 1);
        assert_eq!(r, r2([0, 8], [8, 9]).difference(&r2([0, 8], [8, 9])).union(&r2([0, 0], [8, 1])));
    }

    #[test]
    fn dilate_within_universe() {
        let u = GridBox::<2>::from_shape([10, 10]).unwrap();
        let r = r2([0, 0], [2, 2]);
        let g = r.dilate_within(1, &u);
        // Clamped at the low corner, grown at the high corner.
        assert_eq!(g, r2([0, 0], [3, 3]));
    }

    #[test]
    fn bounding_box() {
        let r = r2([0, 0], [1, 1]).union(&r2([5, 7], [6, 8]));
        let bb = r.bounding_box().unwrap();
        assert_eq!(bb.lo().0, [0, 0]);
        assert_eq!(bb.hi().0, [6, 8]);
        assert!(BoxRegion::<2>::empty().bounding_box().is_none());
    }

    #[test]
    fn laws_on_fixed_cases() {
        let cases = [
            BoxRegion::<2>::empty(),
            r2([0, 0], [3, 3]),
            r2([1, 1], [4, 4]),
            r2([0, 0], [1, 5]),
            r2([0, 0], [2, 2]).union(&r2([3, 3], [5, 5])),
            r2([2, 0], [3, 5]).union(&r2([0, 2], [5, 3])), // plus shape
        ];
        for a in &cases {
            for b in &cases {
                check_laws(a, b, oracle);
            }
        }
    }

    #[test]
    fn from_boxes_tolerates_overlap() {
        let r = BoxRegion::from_boxes([
            GridBox::new(Point([0, 0]), Point([3, 3])).unwrap(),
            GridBox::new(Point([1, 1]), Point([4, 4])).unwrap(),
            GridBox::new(Point([0, 0]), Point([2, 2])).unwrap(),
        ]);
        assert_eq!(r.cardinality(), 14);
    }

    #[test]
    fn three_dimensional_regions() {
        let a = BoxRegion::<3>::cuboid([0, 0, 0], [4, 4, 4]);
        let b = BoxRegion::<3>::cuboid([2, 2, 2], [6, 6, 6]);
        assert_eq!(a.intersect(&b).cardinality(), 8);
        assert_eq!(a.union(&b).cardinality(), 64 + 64 - 8);
        assert_eq!(a.difference(&b).cardinality(), 64 - 8);
    }

    #[test]
    fn seven_dimensional_regions_compile_and_work() {
        // TPC operates in 7-D space.
        let a = BoxRegion::<7>::cuboid([0; 7], [2; 7]);
        let b = BoxRegion::<7>::cuboid([1; 7], [3; 7]);
        assert_eq!(a.intersect(&b).cardinality(), 1);
        assert_eq!(a.union(&b).cardinality(), 128 + 128 - 1);
    }
}

//! Cheap, stable fingerprints for region values.
//!
//! The runtime's location cache (`allscale-core`) keys cached region
//! resolutions by a 64-bit fingerprint of the queried region. The hash has
//! to be *stable* (the same region value always fingerprints the same way,
//! across runs and processes — cache keys travel through reports and
//! tests) and *cheap* (it sits on the hot path in front of the index), so
//! we use the classic FNV-1a 64-bit function over the region's canonical
//! byte encoding rather than `std`'s randomly-keyed `SipHash`.
//!
//! Fingerprint equality does NOT imply region equality: callers that need
//! exactness (the location cache does) must confirm candidate hits with a
//! real equality check. Collisions therefore cost a cache miss, never a
//! wrong answer.

/// The FNV-1a 64-bit offset basis.
pub const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// The FNV-1a 64-bit prime.
pub const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hash a byte slice with FNV-1a 64-bit.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = FNV64_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV64_PRIME);
    }
    h
}

/// A streaming FNV-1a 64-bit hasher implementing [`std::hash::Hasher`],
/// for fingerprinting values piecewise without materializing a buffer.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// A hasher at the offset basis.
    pub fn new() -> Self {
        Fnv64(FNV64_OFFSET)
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl std::hash::Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV64_PRIME);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hasher;

    #[test]
    fn matches_known_fnv1a_vectors() {
        // Reference values of the canonical FNV-1a 64-bit function.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn streaming_agrees_with_oneshot() {
        let mut h = Fnv64::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a_64(b"foobar"));
    }

    #[test]
    fn distinct_inputs_distinct_outputs() {
        assert_ne!(fnv1a_64(b"0 10"), fnv1a_64(b"0 11"));
        assert_ne!(fnv1a_64(&[0, 1]), fnv1a_64(&[1, 0]));
    }
}

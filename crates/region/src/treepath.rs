//! Addresses of nodes in binary-tree data items.
//!
//! A node is addressed by the left/right path from the root (paper Fig. 4b
//! identifies subtrees "by its respective root node"). Paths support at
//! most 64 levels, far beyond any practical tree height.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The path from the root of a binary tree to one of its nodes.
///
/// Bit `i` (little-endian within `bits`) is 0 for "left child" and 1 for
/// "right child" at depth `i`. `len` is the node's depth; the root has
/// `len == 0`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TreePath {
    bits: u64,
    len: u8,
}

impl TreePath {
    /// The root node.
    pub const ROOT: TreePath = TreePath { bits: 0, len: 0 };

    /// Build a path from a slice of steps (`false` = left, `true` = right).
    pub fn from_steps(steps: &[bool]) -> Self {
        assert!(steps.len() <= 64, "tree paths support at most 64 levels");
        let mut bits = 0u64;
        for (i, &s) in steps.iter().enumerate() {
            if s {
                bits |= 1 << i;
            }
        }
        TreePath {
            bits,
            len: steps.len() as u8,
        }
    }

    /// Depth of the addressed node (root = 0).
    #[inline]
    pub fn depth(&self) -> u8 {
        self.len
    }

    /// The step at depth `i` (`false` = left).
    #[inline]
    pub fn step(&self, i: u8) -> bool {
        debug_assert!(i < self.len);
        (self.bits >> i) & 1 == 1
    }

    /// The left child of this node.
    pub fn left(&self) -> TreePath {
        assert!(self.len < 64);
        TreePath {
            bits: self.bits,
            len: self.len + 1,
        }
    }

    /// The right child of this node.
    pub fn right(&self) -> TreePath {
        assert!(self.len < 64);
        TreePath {
            bits: self.bits | (1 << self.len),
            len: self.len + 1,
        }
    }

    /// The child selected by `step` (`false` = left).
    pub fn child(&self, step: bool) -> TreePath {
        if step {
            self.right()
        } else {
            self.left()
        }
    }

    /// The parent node, or `None` for the root.
    pub fn parent(&self) -> Option<TreePath> {
        if self.len == 0 {
            return None;
        }
        let len = self.len - 1;
        Some(TreePath {
            bits: self.bits & !(u64::MAX << len),
            len,
        })
    }

    /// Whether `self` is an ancestor of (or equal to) `other`.
    pub fn is_prefix_of(&self, other: &TreePath) -> bool {
        if self.len > other.len {
            return false;
        }
        let mask = if self.len == 0 {
            0
        } else {
            u64::MAX >> (64 - self.len)
        };
        (self.bits & mask) == (other.bits & mask)
    }

    /// The index of this node in breadth-first order (root = 0, its
    /// children 1 and 2, …) — the classic heap layout.
    pub fn bfs_index(&self) -> u64 {
        let mut idx: u64 = 0;
        for i in 0..self.len {
            idx = 2 * idx + 1 + (self.step(i) as u64);
        }
        idx
    }

    /// Inverse of [`TreePath::bfs_index`].
    pub fn from_bfs_index(mut idx: u64) -> TreePath {
        let mut steps = Vec::new();
        while idx > 0 {
            steps.push(idx.is_multiple_of(2)); // right children have even indices
            idx = (idx - 1) / 2;
        }
        steps.reverse();
        TreePath::from_steps(&steps)
    }
}

impl fmt::Debug for TreePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ε")?;
        for i in 0..self.len {
            write!(f, "{}", if self.step(i) { 'R' } else { 'L' })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_and_children() {
        let r = TreePath::ROOT;
        assert_eq!(r.depth(), 0);
        let l = r.left();
        let rr = r.right();
        assert_eq!(l.depth(), 1);
        assert!(!l.step(0));
        assert!(rr.step(0));
        assert_eq!(l.parent(), Some(r));
        assert_eq!(rr.parent(), Some(r));
        assert_eq!(r.parent(), None);
    }

    #[test]
    fn prefix_relation() {
        let p = TreePath::from_steps(&[true, false]);
        let q = p.left().right();
        assert!(p.is_prefix_of(&q));
        assert!(p.is_prefix_of(&p));
        assert!(!q.is_prefix_of(&p));
        assert!(TreePath::ROOT.is_prefix_of(&q));
        let sib = TreePath::from_steps(&[true, true]);
        assert!(!p.is_prefix_of(&sib));
    }

    #[test]
    fn bfs_index_round_trip() {
        for idx in 0..127u64 {
            let p = TreePath::from_bfs_index(idx);
            assert_eq!(p.bfs_index(), idx, "path {p:?}");
        }
        // Spot checks against the heap layout.
        assert_eq!(TreePath::ROOT.bfs_index(), 0);
        assert_eq!(TreePath::ROOT.left().bfs_index(), 1);
        assert_eq!(TreePath::ROOT.right().bfs_index(), 2);
        assert_eq!(TreePath::ROOT.left().right().bfs_index(), 4);
    }

    #[test]
    fn parent_clears_high_bit() {
        let p = TreePath::from_steps(&[true, true, true]);
        let q = p.parent().unwrap();
        assert_eq!(q, TreePath::from_steps(&[true, true]));
    }

    #[test]
    fn debug_format() {
        let p = TreePath::from_steps(&[true, false, true]);
        assert_eq!(format!("{p:?}"), "εRLR");
    }
}

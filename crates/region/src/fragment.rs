//! The data item type trio (paper Section 3.1, Fig. 4).
//!
//! A data item implementation provides three cooperating types:
//!
//! - a **façade** — the application developer's logical view (provided by
//!   the runtime crate, e.g. `allscale_core::Grid`);
//! - a **fragment** — "the runtime's view on the data structure …
//!   capable of maintaining subsets of elements of a data structure within
//!   some address space";
//! - a **region** — the addressing scheme for those subsets
//!   ([`crate::Region`]).
//!
//! This module defines the fragment contract. Fragments are plain values:
//! extracting a region yields a *new fragment* holding copies of the
//! covered elements, and fragments are serializable, so the runtime can
//! ship them between simulated address spaces as bytes.

use serde::{de::DeserializeOwned, Serialize};

use crate::region::Region;

/// A container holding the elements of one region of a data item within a
/// single address space.
///
/// Laws (checked by the implementations' tests):
/// - `Self::empty().region()` is the empty region;
/// - `f.extract(r).region() == f.region() ∩ r`;
/// - after `f.insert(&g)`, `f.region() == old ∪ g.region()`, and elements
///   covered by `g` take `g`'s values (last writer wins);
/// - after `f.remove(&r)`, `f.region() == old \ r`, all surviving elements
///   unchanged.
pub trait Fragment: Serialize + DeserializeOwned + Clone + 'static {
    /// The region scheme addressing this fragment's elements.
    type Region: Region;

    /// A fragment covering nothing.
    fn empty() -> Self;

    /// Allocate a fragment covering `region` with default-initialized
    /// elements (used by the runtime for first-touch allocation — the
    /// paper's (init) rule).
    fn alloc(region: &Self::Region) -> Self;

    /// The region this fragment currently covers.
    fn region(&self) -> Self::Region;

    /// Copy out the sub-fragment covering `region ∩ self.region()`.
    fn extract(&self, region: &Self::Region) -> Self;

    /// Merge `other` into `self`; on overlap, `other`'s values win.
    fn insert(&mut self, other: &Self);

    /// Drop coverage of `region` (and the elements within).
    fn remove(&mut self, region: &Self::Region);

    /// Approximate payload size in bytes, for transfer-cost estimation.
    fn approx_bytes(&self) -> usize;
}

/// Compile-time description of a data item implementation: its region
/// scheme, fragment type, and sizing information. The runtime's data item
/// manager is instantiated per `ItemType`.
pub trait ItemType: 'static {
    /// Region scheme used to address element subsets.
    type Region: Region;
    /// Fragment container for element storage.
    type Fragment: Fragment<Region = Self::Region>;

    /// Estimated serialized bytes per element (drives the network cost of
    /// migrating a region before the actual byte count is known).
    const BYTES_PER_ELEMENT: usize;
}

//! One-dimensional interval-set regions — the natural region type for
//! arrays and other linearly addressed data items (paper Example 2.1).

use serde::{Deserialize, Serialize};

use crate::region::Region;

/// A set of disjoint, non-adjacent, sorted half-open intervals `[lo, hi)`
/// over `u64` element indices.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntervalRegion {
    /// Sorted, pairwise disjoint, non-touching intervals.
    ivs: Vec<(u64, u64)>,
}

impl IntervalRegion {
    /// The single interval `[lo, hi)`; empty when `lo >= hi`.
    pub fn span(lo: u64, hi: u64) -> Self {
        if lo >= hi {
            Self::empty()
        } else {
            IntervalRegion { ivs: vec![(lo, hi)] }
        }
    }

    /// Build from arbitrary intervals (overlap and disorder allowed).
    pub fn from_intervals<I: IntoIterator<Item = (u64, u64)>>(ivs: I) -> Self {
        let mut v: Vec<(u64, u64)> = ivs.into_iter().filter(|(l, h)| l < h).collect();
        v.sort_unstable();
        let mut out: Vec<(u64, u64)> = Vec::with_capacity(v.len());
        for (l, h) in v {
            match out.last_mut() {
                Some((_, ph)) if l <= *ph => *ph = (*ph).max(h),
                _ => out.push((l, h)),
            }
        }
        IntervalRegion { ivs: out }
    }

    /// The normalized intervals.
    pub fn intervals(&self) -> &[(u64, u64)] {
        &self.ivs
    }

    /// Number of covered indices.
    pub fn cardinality(&self) -> u64 {
        self.ivs.iter().map(|(l, h)| h - l).sum()
    }

    /// Whether index `i` is covered.
    pub fn contains(&self, i: u64) -> bool {
        // Binary search on interval starts.
        match self.ivs.binary_search_by(|&(l, _)| l.cmp(&i)) {
            Ok(_) => true,
            Err(0) => false,
            Err(k) => i < self.ivs[k - 1].1,
        }
    }

    /// Iterate over every covered index.
    pub fn indices(&self) -> impl Iterator<Item = u64> + '_ {
        self.ivs.iter().flat_map(|&(l, h)| l..h)
    }
}

impl std::fmt::Debug for IntervalRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Intervals{:?}", self.ivs)
    }
}

impl Region for IntervalRegion {
    fn empty() -> Self {
        IntervalRegion { ivs: Vec::new() }
    }

    fn is_empty(&self) -> bool {
        self.ivs.is_empty()
    }

    fn union(&self, other: &Self) -> Self {
        Self::from_intervals(self.ivs.iter().chain(other.ivs.iter()).copied())
    }

    fn intersect(&self, other: &Self) -> Self {
        // Linear merge sweep over both sorted interval lists.
        let (mut i, mut j) = (0, 0);
        let mut out = Vec::new();
        while i < self.ivs.len() && j < other.ivs.len() {
            let (al, ah) = self.ivs[i];
            let (bl, bh) = other.ivs[j];
            let lo = al.max(bl);
            let hi = ah.min(bh);
            if lo < hi {
                out.push((lo, hi));
            }
            if ah <= bh {
                i += 1;
            } else {
                j += 1;
            }
        }
        IntervalRegion { ivs: out }
    }

    fn difference(&self, other: &Self) -> Self {
        let mut out = Vec::new();
        let mut j = 0;
        for &(al, ah) in &self.ivs {
            let mut lo = al;
            // Skip other-intervals entirely before this one.
            while j < other.ivs.len() && other.ivs[j].1 <= al {
                j += 1;
            }
            let mut k = j;
            while k < other.ivs.len() && other.ivs[k].0 < ah {
                let (bl, bh) = other.ivs[k];
                if lo < bl {
                    out.push((lo, bl.min(ah)));
                }
                lo = lo.max(bh);
                if bh >= ah {
                    break;
                }
                k += 1;
            }
            if lo < ah {
                out.push((lo, ah));
            }
        }
        IntervalRegion { ivs: out }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::check_laws;
    use std::collections::BTreeSet;

    fn oracle(r: &IntervalRegion) -> BTreeSet<u64> {
        r.indices().collect()
    }

    #[test]
    fn normalization_merges_touching() {
        let r = IntervalRegion::from_intervals([(5, 7), (0, 3), (3, 5)]);
        assert_eq!(r.intervals(), &[(0, 7)]);
        assert_eq!(r.cardinality(), 7);
    }

    #[test]
    fn degenerate_spans_are_empty() {
        assert!(IntervalRegion::span(4, 4).is_empty());
        assert!(IntervalRegion::span(5, 2).is_empty());
    }

    #[test]
    fn contains_uses_binary_search_correctly() {
        let r = IntervalRegion::from_intervals([(2, 4), (8, 10)]);
        for i in 0..12 {
            assert_eq!(r.contains(i), (2..4).contains(&i) || (8..10).contains(&i));
        }
    }

    #[test]
    fn laws_on_fixed_cases() {
        let cases = [
            IntervalRegion::empty(),
            IntervalRegion::span(0, 10),
            IntervalRegion::span(5, 15),
            IntervalRegion::from_intervals([(0, 2), (4, 6), (8, 10)]),
            IntervalRegion::from_intervals([(1, 5), (9, 12)]),
            IntervalRegion::span(3, 4),
        ];
        for a in &cases {
            for b in &cases {
                check_laws(a, b, oracle);
            }
        }
    }

    #[test]
    fn difference_splinters() {
        let a = IntervalRegion::span(0, 10);
        let b = IntervalRegion::from_intervals([(2, 3), (5, 7)]);
        let d = a.difference(&b);
        assert_eq!(d.intervals(), &[(0, 2), (3, 5), (7, 10)]);
    }
}

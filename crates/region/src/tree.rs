//! Flexible tree regions (paper Fig. 4b): unions of whole subtrees minus
//! excluded nested subtrees.
//!
//! The paper describes these regions as "two sets of sub-trees … the first
//! set enumerates included sub-trees, while the second set enumerates
//! excluded sub-trees nested within the included trees". The canonical
//! machine representation of exactly that language of node sets is a binary
//! *trie* whose leaves mark uniformly-included or uniformly-excluded
//! subtrees; interior trie nodes additionally record whether the tree node
//! they sit on is itself a member. The trie form is closed under all three
//! set operations, and its normalized shape is canonical, making structural
//! equality semantic.

use serde::{Deserialize, Serialize};

use crate::region::Region;
use crate::treepath::TreePath;

/// A region over the nodes of a (conceptually unbounded) binary tree.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeRegion {
    root: Trie,
}

#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
enum Trie {
    /// The whole subtree (including its root) is in the region.
    Full,
    /// Nothing of the subtree is in the region.
    Empty,
    /// Mixed: `self_in` tells whether this node belongs to the region.
    Node {
        self_in: bool,
        left: Box<Trie>,
        right: Box<Trie>,
    },
}

impl Trie {
    fn node(self_in: bool, left: Trie, right: Trie) -> Trie {
        // Normalize: collapse uniform subtrees so the form is canonical.
        match (&left, &right) {
            (Trie::Full, Trie::Full) if self_in => Trie::Full,
            (Trie::Empty, Trie::Empty) if !self_in => Trie::Empty,
            _ => Trie::Node {
                self_in,
                left: Box::new(left),
                right: Box::new(right),
            },
        }
    }

    fn binop(&self, other: &Trie, op: fn(bool, bool) -> bool) -> Trie {
        match (self, other) {
            // Uniform × uniform resolves immediately.
            (Trie::Full, Trie::Full) => uniform(op(true, true)),
            (Trie::Full, Trie::Empty) => uniform(op(true, false)),
            (Trie::Empty, Trie::Full) => uniform(op(false, true)),
            (Trie::Empty, Trie::Empty) => uniform(op(false, false)),
            _ => {
                let (a_in, al, ar) = self.parts();
                let (b_in, bl, br) = other.parts();
                Trie::node(op(a_in, b_in), al.binop(bl, op), ar.binop(br, op))
            }
        }
    }

    /// View any trie as (self_in, left, right).
    fn parts(&self) -> (bool, &Trie, &Trie) {
        match self {
            Trie::Full => (true, &Trie::Full, &Trie::Full),
            Trie::Empty => (false, &Trie::Empty, &Trie::Empty),
            Trie::Node {
                self_in,
                left,
                right,
            } => (*self_in, left, right),
        }
    }

    fn contains(&self, path: &TreePath, depth: u8) -> bool {
        match self {
            Trie::Full => true,
            Trie::Empty => false,
            Trie::Node {
                self_in,
                left,
                right,
            } => {
                if depth == path.depth() {
                    *self_in
                } else if path.step(depth) {
                    right.contains(path, depth + 1)
                } else {
                    left.contains(path, depth + 1)
                }
            }
        }
    }

    /// Count member nodes among depths `0..height` below this point.
    fn cardinality(&self, height: u8) -> u64 {
        if height == 0 {
            return 0;
        }
        match self {
            Trie::Full => (1u64 << height) - 1,
            Trie::Empty => 0,
            Trie::Node {
                self_in,
                left,
                right,
            } => {
                (*self_in as u64) + left.cardinality(height - 1) + right.cardinality(height - 1)
            }
        }
    }

    fn collect(&self, prefix: TreePath, height: u8, out: &mut Vec<TreePath>) {
        if height == 0 {
            return;
        }
        let (self_in, l, r) = self.parts();
        if self_in {
            out.push(prefix);
        }
        if height > 1 {
            match self {
                Trie::Empty => {}
                _ => {
                    l.collect(prefix.left(), height - 1, out);
                    r.collect(prefix.right(), height - 1, out);
                }
            }
        }
    }

    /// Depth of the trie representation (for complexity assertions).
    fn repr_depth(&self) -> u32 {
        match self {
            Trie::Full | Trie::Empty => 0,
            Trie::Node { left, right, .. } => 1 + left.repr_depth().max(right.repr_depth()),
        }
    }
}

fn uniform(b: bool) -> Trie {
    if b {
        Trie::Full
    } else {
        Trie::Empty
    }
}

impl TreeRegion {
    /// The region containing the whole subtree rooted at `path` (the paper's
    /// "included sub-tree identified by its root node").
    pub fn subtree(path: TreePath) -> Self {
        let mut t = Trie::Full;
        for i in (0..path.depth()).rev() {
            t = if path.step(i) {
                Trie::node(false, Trie::Empty, t)
            } else {
                Trie::node(false, t, Trie::Empty)
            };
        }
        TreeRegion { root: t }
    }

    /// The region containing the single node at `path`.
    pub fn single(path: TreePath) -> Self {
        let mut t = Trie::node(true, Trie::Empty, Trie::Empty);
        for i in (0..path.depth()).rev() {
            t = if path.step(i) {
                Trie::node(false, Trie::Empty, t)
            } else {
                Trie::node(false, t, Trie::Empty)
            };
        }
        TreeRegion { root: t }
    }

    /// Build from the paper's include/exclude representation: the union of
    /// the `include` subtrees, minus the union of the `exclude` subtrees.
    pub fn from_include_exclude(include: &[TreePath], exclude: &[TreePath]) -> Self {
        let mut r = Self::empty();
        for p in include {
            r = r.union(&Self::subtree(*p));
        }
        for p in exclude {
            r = r.difference(&Self::subtree(*p));
        }
        r
    }

    /// Whether the node at `path` is in the region.
    pub fn contains(&self, path: &TreePath) -> bool {
        self.root.contains(path, 0)
    }

    /// Number of member nodes with depth `< height` (i.e. within a complete
    /// binary tree of `height` levels).
    pub fn cardinality(&self, height: u8) -> u64 {
        self.root.cardinality(height)
    }

    /// All member node paths with depth `< height`, in DFS order.
    pub fn paths(&self, height: u8) -> Vec<TreePath> {
        let mut out = Vec::new();
        self.root.collect(TreePath::ROOT, height, &mut out);
        out
    }

    /// Depth of the internal trie (proportional to representation size).
    pub fn repr_depth(&self) -> u32 {
        self.root.repr_depth()
    }
}

impl std::fmt::Debug for TreeRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn rec(t: &Trie, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match t {
                Trie::Full => write!(f, "*"),
                Trie::Empty => write!(f, "."),
                Trie::Node {
                    self_in,
                    left,
                    right,
                } => {
                    write!(f, "({}", if *self_in { '+' } else { '-' })?;
                    rec(left, f)?;
                    rec(right, f)?;
                    write!(f, ")")
                }
            }
        }
        write!(f, "TreeRegion[")?;
        rec(&self.root, f)?;
        write!(f, "]")
    }
}

impl Region for TreeRegion {
    fn empty() -> Self {
        TreeRegion { root: Trie::Empty }
    }

    fn is_empty(&self) -> bool {
        matches!(self.root, Trie::Empty)
    }

    fn union(&self, other: &Self) -> Self {
        TreeRegion {
            root: self.root.binop(&other.root, |a, b| a | b),
        }
    }

    fn intersect(&self, other: &Self) -> Self {
        TreeRegion {
            root: self.root.binop(&other.root, |a, b| a & b),
        }
    }

    fn difference(&self, other: &Self) -> Self {
        TreeRegion {
            root: self.root.binop(&other.root, |a, b| a & !b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::check_laws;
    use std::collections::BTreeSet;

    const H: u8 = 5; // 31-node universe for oracles

    fn oracle(r: &TreeRegion) -> BTreeSet<TreePath> {
        r.paths(H).into_iter().collect()
    }

    fn p(steps: &[bool]) -> TreePath {
        TreePath::from_steps(steps)
    }

    #[test]
    fn subtree_membership() {
        let r = TreeRegion::subtree(p(&[true]));
        assert!(!r.contains(&TreePath::ROOT));
        assert!(!r.contains(&p(&[false])));
        assert!(r.contains(&p(&[true])));
        assert!(r.contains(&p(&[true, false, true])));
    }

    #[test]
    fn single_node_region() {
        let r = TreeRegion::single(p(&[false, true]));
        assert_eq!(r.cardinality(H), 1);
        assert!(r.contains(&p(&[false, true])));
        assert!(!r.contains(&p(&[false, true, false])));
    }

    #[test]
    fn paper_example_fig4b() {
        // "at most three nodes characterize the regions": e.g. include the
        // left subtree but exclude its right-right corner.
        let include = [p(&[false])];
        let exclude = [p(&[false, true, true])];
        let r = TreeRegion::from_include_exclude(&include, &exclude);
        assert!(r.contains(&p(&[false])));
        assert!(r.contains(&p(&[false, true])));
        assert!(!r.contains(&p(&[false, true, true])));
        assert!(!r.contains(&p(&[false, true, true, false])));
        // Cardinality in a 5-level tree: subtree at depth1 has 15 nodes,
        // excluded subtree at depth 3 has 3 → 12.
        assert_eq!(r.cardinality(H), 12);
    }

    #[test]
    fn cardinality_of_full_tree() {
        let full = TreeRegion::subtree(TreePath::ROOT);
        assert_eq!(full.cardinality(4), 15); // the paper's Example 2.1 tree
        assert_eq!(full.cardinality(1), 1);
        assert_eq!(full.cardinality(0), 0);
    }

    #[test]
    fn normalization_makes_equality_semantic() {
        // left ∪ right ∪ root == whole tree
        let l = TreeRegion::subtree(p(&[false]));
        let r = TreeRegion::subtree(p(&[true]));
        let root = TreeRegion::single(TreePath::ROOT);
        let assembled = l.union(&r).union(&root);
        assert_eq!(assembled, TreeRegion::subtree(TreePath::ROOT));
        assert_eq!(assembled.repr_depth(), 0); // collapsed to Full
    }

    #[test]
    fn laws_on_fixed_cases() {
        let cases = [
            TreeRegion::empty(),
            TreeRegion::subtree(TreePath::ROOT),
            TreeRegion::subtree(p(&[false])),
            TreeRegion::subtree(p(&[true, true])),
            TreeRegion::single(TreePath::ROOT),
            TreeRegion::from_include_exclude(&[p(&[false])], &[p(&[false, false])]),
            TreeRegion::single(p(&[true]))
                .union(&TreeRegion::subtree(p(&[false, true]))),
        ];
        for a in &cases {
            for b in &cases {
                check_laws(a, b, oracle);
            }
        }
    }

    #[test]
    fn representation_stays_compact() {
        // Region expressible with 3 subtree roots must not blow up.
        let r = TreeRegion::from_include_exclude(
            &[p(&[false]), p(&[true, true])],
            &[p(&[false, true, false])],
        );
        assert!(r.repr_depth() <= 4);
    }

    #[test]
    fn difference_of_nested_subtrees() {
        let outer = TreeRegion::subtree(p(&[false]));
        let inner = TreeRegion::subtree(p(&[false, false]));
        let d = outer.difference(&inner);
        assert!(d.contains(&p(&[false])));
        assert!(!d.contains(&p(&[false, false])));
        assert!(d.contains(&p(&[false, true])));
        assert!(inner.is_subset_of(&outer));
        assert!(!outer.is_subset_of(&inner));
    }
}

//! Integer points and axis-aligned boxes in `D` dimensions — the element
//! addresses of grid data items (paper Example 2.2).

use serde::de::{SeqAccess, Visitor};
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Sub};

/// A point in the `D`-dimensional integer lattice.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Point<const D: usize>(pub [i64; D]);

// serde's derive only covers arrays up to length 32 and not const-generic
// ones, so points encode manually as fixed-size tuples.
impl<const D: usize> Serialize for Point<D> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeTuple;
        let mut t = s.serialize_tuple(D)?;
        for c in &self.0 {
            t.serialize_element(c)?;
        }
        t.end()
    }
}

impl<'de, const D: usize> Deserialize<'de> for Point<D> {
    fn deserialize<Dz: Deserializer<'de>>(d: Dz) -> Result<Self, Dz::Error> {
        struct PointVisitor<const D: usize>;
        impl<'de, const D: usize> Visitor<'de> for PointVisitor<D> {
            type Value = Point<D>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "a tuple of {D} coordinates")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Point<D>, A::Error> {
                let mut out = [0i64; D];
                for (i, slot) in out.iter_mut().enumerate() {
                    *slot = seq
                        .next_element()?
                        .ok_or_else(|| serde::de::Error::invalid_length(i, &self))?;
                }
                Ok(Point(out))
            }
        }
        d.deserialize_tuple(D, PointVisitor::<D>)
    }
}

impl<const D: usize> Point<D> {
    /// The origin.
    pub const fn zero() -> Self {
        Point([0; D])
    }

    /// A point with all coordinates equal to `v`.
    pub const fn splat(v: i64) -> Self {
        Point([v; D])
    }

    /// Componentwise minimum.
    pub fn cmin(&self, other: &Self) -> Self {
        let mut out = [0; D];
        for (d, o) in out.iter_mut().enumerate() {
            *o = self.0[d].min(other.0[d]);
        }
        Point(out)
    }

    /// Componentwise maximum.
    pub fn cmax(&self, other: &Self) -> Self {
        let mut out = [0; D];
        for (d, o) in out.iter_mut().enumerate() {
            *o = self.0[d].max(other.0[d]);
        }
        Point(out)
    }
}

impl<const D: usize> Index<usize> for Point<D> {
    type Output = i64;
    #[inline]
    fn index(&self, i: usize) -> &i64 {
        &self.0[i]
    }
}

impl<const D: usize> IndexMut<usize> for Point<D> {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut i64 {
        &mut self.0[i]
    }
}

impl<const D: usize> Add for Point<D> {
    type Output = Point<D>;
    fn add(self, rhs: Point<D>) -> Point<D> {
        let mut out = [0; D];
        for (d, o) in out.iter_mut().enumerate() {
            *o = self.0[d] + rhs.0[d];
        }
        Point(out)
    }
}

impl<const D: usize> Sub for Point<D> {
    type Output = Point<D>;
    fn sub(self, rhs: Point<D>) -> Point<D> {
        let mut out = [0; D];
        for (d, o) in out.iter_mut().enumerate() {
            *o = self.0[d] - rhs.0[d];
        }
        Point(out)
    }
}

impl<const D: usize> From<[i64; D]> for Point<D> {
    fn from(a: [i64; D]) -> Self {
        Point(a)
    }
}

fn fmt_point<const D: usize>(p: &Point<D>, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "(")?;
    for (i, c) in p.0.iter().enumerate() {
        if i > 0 {
            write!(f, ",")?;
        }
        write!(f, "{c}")?;
    }
    write!(f, ")")
}

impl<const D: usize> fmt::Debug for Point<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_point(self, f)
    }
}

impl<const D: usize> fmt::Display for Point<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_point(self, f)
    }
}

/// A non-empty axis-aligned box `[lo, hi)` (inclusive low, exclusive high).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GridBox<const D: usize> {
    lo: Point<D>,
    hi: Point<D>,
}

impl<const D: usize> GridBox<D> {
    /// Construct the box `[lo, hi)`. Returns `None` when empty on any axis.
    pub fn new(lo: Point<D>, hi: Point<D>) -> Option<Self> {
        for d in 0..D {
            if lo[d] >= hi[d] {
                return None;
            }
        }
        Some(GridBox { lo, hi })
    }

    /// The box `[0, shape)` — a whole grid of the given shape.
    pub fn from_shape(shape: [i64; D]) -> Option<Self> {
        Self::new(Point::zero(), Point(shape))
    }

    /// Inclusive lower corner.
    #[inline]
    pub fn lo(&self) -> Point<D> {
        self.lo
    }

    /// Exclusive upper corner.
    #[inline]
    pub fn hi(&self) -> Point<D> {
        self.hi
    }

    /// Number of lattice points inside.
    pub fn cardinality(&self) -> u64 {
        let mut n: u64 = 1;
        for d in 0..D {
            n = n.saturating_mul((self.hi[d] - self.lo[d]) as u64);
        }
        n
    }

    /// Whether `p` lies inside the box.
    pub fn contains(&self, p: &Point<D>) -> bool {
        (0..D).all(|d| self.lo[d] <= p[d] && p[d] < self.hi[d])
    }

    /// Whether `other` is entirely inside `self`.
    pub fn contains_box(&self, other: &GridBox<D>) -> bool {
        (0..D).all(|d| self.lo[d] <= other.lo[d] && other.hi[d] <= self.hi[d])
    }

    /// The overlap of two boxes, if non-empty.
    pub fn intersect(&self, other: &GridBox<D>) -> Option<GridBox<D>> {
        GridBox::new(self.lo.cmax(&other.lo), self.hi.cmin(&other.hi))
    }

    /// `self \ other` as a set of disjoint boxes (at most `2·D`).
    ///
    /// Classic slab decomposition: for each axis in turn, peel off the parts
    /// of `self` lying outside `other`'s extent on that axis, then shrink to
    /// the overlap and continue with the next axis.
    pub fn subtract(&self, other: &GridBox<D>) -> Vec<GridBox<D>> {
        let Some(overlap) = self.intersect(other) else {
            return vec![*self];
        };
        if overlap == *self {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut lo = self.lo;
        let mut hi = self.hi;
        for d in 0..D {
            if lo[d] < overlap.lo[d] {
                let mut slab_hi = hi;
                slab_hi[d] = overlap.lo[d];
                out.push(GridBox { lo, hi: slab_hi });
                lo[d] = overlap.lo[d];
            }
            if overlap.hi[d] < hi[d] {
                let mut slab_lo = lo;
                slab_lo[d] = overlap.hi[d];
                out.push(GridBox { lo: slab_lo, hi });
                hi[d] = overlap.hi[d];
            }
        }
        out
    }

    /// Iterate all lattice points of the box in lexicographic order.
    pub fn points(&self) -> BoxPoints<D> {
        BoxPoints {
            bx: *self,
            next: Some(self.lo),
        }
    }

    /// Grow the box by `r` in every direction (Minkowski sum with the
    /// `[-r, r]^D` cube); used for stencil neighbourhood requirements.
    pub fn dilate(&self, r: i64) -> GridBox<D> {
        debug_assert!(r >= 0);
        GridBox {
            lo: self.lo - Point::splat(r),
            hi: self.hi + Point::splat(r),
        }
    }
}

impl<const D: usize> fmt::Debug for GridBox<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:?}..{:?})", self.lo, self.hi)
    }
}

/// Iterator over the lattice points of a box.
pub struct BoxPoints<const D: usize> {
    bx: GridBox<D>,
    next: Option<Point<D>>,
}

impl<const D: usize> Iterator for BoxPoints<D> {
    type Item = Point<D>;
    fn next(&mut self) -> Option<Point<D>> {
        let cur = self.next?;
        // Advance odometer-style from the last axis.
        let mut nxt = cur;
        let mut d = D;
        loop {
            if d == 0 {
                self.next = None;
                break;
            }
            d -= 1;
            nxt[d] += 1;
            if nxt[d] < self.bx.hi[d] {
                self.next = Some(nxt);
                break;
            }
            nxt[d] = self.bx.lo[d];
        }
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bx(lo: [i64; 2], hi: [i64; 2]) -> GridBox<2> {
        GridBox::new(Point(lo), Point(hi)).unwrap()
    }

    #[test]
    fn empty_boxes_rejected() {
        assert!(GridBox::<2>::new(Point([0, 0]), Point([0, 5])).is_none());
        assert!(GridBox::<2>::new(Point([3, 0]), Point([2, 5])).is_none());
        assert!(GridBox::<1>::new(Point([1]), Point([2])).is_some());
    }

    #[test]
    fn cardinality_and_contains() {
        let b = bx([1, 2], [4, 6]);
        assert_eq!(b.cardinality(), 12);
        assert!(b.contains(&Point([1, 2])));
        assert!(b.contains(&Point([3, 5])));
        assert!(!b.contains(&Point([4, 5]))); // hi is exclusive
        assert!(!b.contains(&Point([0, 3])));
    }

    #[test]
    fn intersect_boxes() {
        let a = bx([0, 0], [4, 4]);
        let b = bx([2, 2], [6, 6]);
        assert_eq!(a.intersect(&b), Some(bx([2, 2], [4, 4])));
        let c = bx([4, 0], [5, 4]);
        assert_eq!(a.intersect(&c), None); // adjacency is not overlap
    }

    #[test]
    fn subtract_no_overlap_returns_self() {
        let a = bx([0, 0], [2, 2]);
        let b = bx([5, 5], [6, 6]);
        assert_eq!(a.subtract(&b), vec![a]);
    }

    #[test]
    fn subtract_full_cover_returns_empty() {
        let a = bx([1, 1], [3, 3]);
        let b = bx([0, 0], [5, 5]);
        assert!(a.subtract(&b).is_empty());
    }

    #[test]
    fn subtract_center_hole() {
        let a = bx([0, 0], [3, 3]);
        let hole = bx([1, 1], [2, 2]);
        let parts = a.subtract(&hole);
        // Pieces are disjoint, don't touch the hole, and cover a \ hole.
        let total: u64 = parts.iter().map(|p| p.cardinality()).sum();
        assert_eq!(total, 9 - 1);
        for (i, p) in parts.iter().enumerate() {
            assert!(p.intersect(&hole).is_none());
            for q in parts.iter().skip(i + 1) {
                assert!(p.intersect(q).is_none());
            }
        }
    }

    #[test]
    fn subtract_exhaustive_small_boxes() {
        // All pairs of boxes within a 4x4 universe: verify by enumeration.
        let mut boxes = Vec::new();
        for x0 in 0..4 {
            for x1 in x0 + 1..=4 {
                for y0 in 0..4 {
                    for y1 in y0 + 1..=4 {
                        boxes.push(bx([x0, y0], [x1, y1]));
                    }
                }
            }
        }
        for a in &boxes {
            for b in &boxes {
                let parts = a.subtract(b);
                let mut covered = std::collections::BTreeSet::new();
                for p in &parts {
                    for pt in p.points() {
                        assert!(covered.insert(pt.0), "overlapping parts");
                    }
                }
                let expect: std::collections::BTreeSet<_> = a
                    .points()
                    .filter(|p| !b.contains(p))
                    .map(|p| p.0)
                    .collect();
                assert_eq!(covered, expect, "a={a:?} b={b:?}");
            }
        }
    }

    #[test]
    fn point_iteration_order() {
        let b = bx([0, 0], [2, 2]);
        let pts: Vec<_> = b.points().map(|p| p.0).collect();
        assert_eq!(pts, vec![[0, 0], [0, 1], [1, 0], [1, 1]]);
    }

    #[test]
    fn point_iteration_3d_count() {
        let b = GridBox::<3>::from_shape([2, 3, 4]).unwrap();
        assert_eq!(b.points().count(), 24);
    }

    #[test]
    fn dilate_grows_symmetrically() {
        let b = bx([2, 2], [4, 4]);
        let g = b.dilate(1);
        assert_eq!(g, bx([1, 1], [5, 5]));
    }

    #[test]
    fn point_arithmetic() {
        let a = Point([1, 2]);
        let b = Point([10, 20]);
        assert_eq!(a + b, Point([11, 22]));
        assert_eq!(b - a, Point([9, 18]));
        assert_eq!(a.cmin(&b), a);
        assert_eq!(a.cmax(&b), b);
    }
}

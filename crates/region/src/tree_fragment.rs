//! Fragments of binary-tree data items (paper Fig. 4b/4c).
//!
//! A [`TreeFragment`] stores a sparse map from node paths to values and is
//! generic over the region scheme: the flexible [`TreeRegion`] or the
//! blocked [`BitmaskTreeRegion`], both of which implement [`PathRegion`].
//! The TPC evaluation code distributes its kd-tree with the blocked scheme.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::bitmask::BitmaskTreeRegion;
use crate::fragment::Fragment;
use crate::region::Region;
use crate::tree::TreeRegion;
use crate::treepath::TreePath;

/// A region scheme over binary-tree node paths that can answer point
/// membership queries — the capability tree fragments need to clip data.
pub trait PathRegion: Region {
    /// Whether the node at `path` belongs to the region.
    fn contains_path(&self, path: &TreePath) -> bool;
}

impl PathRegion for TreeRegion {
    fn contains_path(&self, path: &TreePath) -> bool {
        self.contains(path)
    }
}

impl PathRegion for BitmaskTreeRegion {
    fn contains_path(&self, path: &TreePath) -> bool {
        self.contains(path)
    }
}

/// The nodes of one region of a binary-tree data item, held in a single
/// address space.
///
/// Storage is sparse: a node exists once the application stores a value at
/// its path and the path lies inside the fragment's region. This fits both
/// incomplete trees (kd-trees over arbitrary point sets) and staged
/// construction.
#[derive(Clone, Serialize, Deserialize)]
#[serde(bound(
    serialize = "T: Serialize, R: Serialize",
    deserialize = "T: serde::de::DeserializeOwned, R: serde::de::DeserializeOwned"
))]
pub struct TreeFragment<T, R: PathRegion> {
    region: R,
    nodes: BTreeMap<TreePath, T>,
}

impl<T, R> TreeFragment<T, R>
where
    T: Clone + Serialize + for<'a> Deserialize<'a> + 'static,
    R: PathRegion,
{
    /// An empty fragment covering `region` (no nodes stored yet).
    pub fn new(region: R) -> Self {
        TreeFragment {
            region,
            nodes: BTreeMap::new(),
        }
    }

    /// Read the node at `path`, if present.
    pub fn get(&self, path: &TreePath) -> Option<&T> {
        self.nodes.get(path)
    }

    /// Store a value at `path`. Returns `false` (and drops the value) when
    /// `path` is outside the fragment's region.
    pub fn set(&mut self, path: TreePath, value: T) -> bool {
        if !self.region.contains_path(&path) {
            return false;
        }
        self.nodes.insert(path, value);
        true
    }

    /// Number of stored nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no nodes are stored.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterate over `(path, value)` pairs in path order.
    pub fn iter(&self) -> impl Iterator<Item = (&TreePath, &T)> {
        self.nodes.iter()
    }
}

impl<T, R> Fragment for TreeFragment<T, R>
where
    T: Clone + Serialize + for<'a> Deserialize<'a> + 'static,
    R: PathRegion,
{
    type Region = R;

    fn empty() -> Self {
        TreeFragment {
            region: R::empty(),
            nodes: BTreeMap::new(),
        }
    }

    fn alloc(region: &R) -> Self {
        TreeFragment::new(region.clone())
    }

    fn region(&self) -> R {
        self.region.clone()
    }

    fn extract(&self, region: &R) -> Self {
        let r = self.region.intersect(region);
        let nodes = self
            .nodes
            .iter()
            .filter(|(p, _)| r.contains_path(p))
            .map(|(p, v)| (*p, v.clone()))
            .collect();
        TreeFragment { region: r, nodes }
    }

    fn insert(&mut self, other: &Self) {
        self.region = self.region.union(&other.region);
        for (p, v) in &other.nodes {
            self.nodes.insert(*p, v.clone());
        }
    }

    fn remove(&mut self, region: &R) {
        self.region = self.region.difference(region);
        let keep = &self.region;
        self.nodes.retain(|p, _| keep.contains_path(p));
    }

    fn approx_bytes(&self) -> usize {
        self.nodes.len() * (std::mem::size_of::<T>() + std::mem::size_of::<TreePath>() + 16)
    }
}

impl<T, R: PathRegion> std::fmt::Debug for TreeFragment<T, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TreeFragment(region={:?}, nodes={})",
            self.region,
            self.nodes.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(steps: &[bool]) -> TreePath {
        TreePath::from_steps(steps)
    }

    fn sample_flexible() -> TreeFragment<u32, TreeRegion> {
        let mut f = TreeFragment::new(TreeRegion::subtree(TreePath::ROOT));
        for idx in 0..15u64 {
            f.set(TreePath::from_bfs_index(idx), idx as u32 * 10);
        }
        f
    }

    #[test]
    fn set_outside_region_rejected() {
        let mut f: TreeFragment<u32, TreeRegion> =
            TreeFragment::new(TreeRegion::subtree(p(&[false])));
        assert!(f.set(p(&[false, true]), 1));
        assert!(!f.set(p(&[true]), 2));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn extract_clips_nodes_and_region() {
        let f = sample_flexible();
        let sub = f.extract(&TreeRegion::subtree(p(&[false])));
        assert_eq!(sub.region(), TreeRegion::subtree(p(&[false])));
        // Left subtree of a 15-node tree holds 7 nodes.
        assert_eq!(sub.len(), 7);
        assert!(sub.get(&p(&[false])).is_some());
        assert!(sub.get(&p(&[true])).is_none());
        assert!(sub.get(&TreePath::ROOT).is_none());
    }

    #[test]
    fn insert_merges_and_overwrites() {
        let mut f = sample_flexible();
        let mut g: TreeFragment<u32, TreeRegion> =
            TreeFragment::new(TreeRegion::single(TreePath::ROOT));
        g.set(TreePath::ROOT, 999);
        f.insert(&g);
        assert_eq!(f.get(&TreePath::ROOT), Some(&999));
        assert_eq!(f.len(), 15);
    }

    #[test]
    fn remove_shrinks() {
        let mut f = sample_flexible();
        f.remove(&TreeRegion::subtree(p(&[true])));
        assert_eq!(f.len(), 8);
        assert!(f.get(&p(&[true])).is_none());
        assert!(f.get(&p(&[false])).is_some());
        assert!(!f.region().contains(&p(&[true, false])));
    }

    #[test]
    fn blocked_scheme_fragment() {
        // Split depth 2: root block + 4 subtrees, as in Fig 4c.
        let region = BitmaskTreeRegion::of_subtree(2, 3); // subtree at RR
        let mut f: TreeFragment<u32, BitmaskTreeRegion> = TreeFragment::new(region);
        let rr = p(&[true, true]);
        assert!(f.set(rr, 7));
        assert!(f.set(rr.left(), 8));
        assert!(!f.set(TreePath::ROOT, 9)); // root block not covered
        assert_eq!(f.len(), 2);

        let sub = f.extract(&BitmaskTreeRegion::of_subtree(2, 3));
        assert_eq!(sub.len(), 2);
        let none = f.extract(&BitmaskTreeRegion::of_subtree(2, 0));
        assert!(none.is_empty());
    }

    #[test]
    fn blocked_migration_round_trip() {
        // Move a subtree block from one fragment to another.
        let mut src: TreeFragment<u32, BitmaskTreeRegion> =
            TreeFragment::new(BitmaskTreeRegion::full(2));
        for idx in 0..31u64 {
            src.set(TreePath::from_bfs_index(idx), idx as u32);
        }
        let block = BitmaskTreeRegion::of_subtree(2, 1);
        let moved = src.extract(&block);
        src.remove(&block);

        let mut dst: TreeFragment<u32, BitmaskTreeRegion> =
            TreeFragment::new(BitmaskTreeRegion::new(2));
        dst.insert(&moved);

        // Subtree 1 roots at path LR; in a 5-level tree it has 7 nodes.
        assert_eq!(moved.len(), 7);
        assert_eq!(dst.len(), 7);
        assert_eq!(src.len(), 31 - 7);
        let lr = p(&[false, true]);
        assert!(dst.get(&lr).is_some());
        assert!(src.get(&lr).is_none());
    }

    #[test]
    fn empty_fragment() {
        let f: TreeFragment<u32, TreeRegion> = TreeFragment::empty();
        assert!(f.is_empty());
        assert!(f.region().is_empty());
    }
}

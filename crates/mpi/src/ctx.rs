//! The rank-side API of the MPI-flavoured baseline.
//!
//! Application code runs blocking-style on a dedicated thread per rank
//! (via [`allscale_des::ThreadActor`]); every call suspends the rank and
//! hands control to the coordinator, which accounts virtual time on the
//! shared network model.

use allscale_des::{SimDuration, ThreadCtx};
use allscale_net::wire;
use serde::{de::DeserializeOwned, Serialize};

/// Requests a rank can issue to the coordinator.
pub enum MpiCall {
    /// Buffered send: returns once the message is handed to the NIC.
    Send {
        /// Destination rank.
        to: usize,
        /// Message tag.
        tag: u32,
        /// Serialized payload.
        bytes: Vec<u8>,
    },
    /// Blocking receive of a matching message.
    Recv {
        /// Source rank (matching is per (source, tag), FIFO).
        from: usize,
        /// Message tag.
        tag: u32,
    },
    /// Advance this rank's clock by a compute duration.
    Compute(SimDuration),
    /// Block until all ranks reach the barrier.
    Barrier,
    /// Read this rank's virtual clock.
    Now,
    /// All-reduce a vector of f64 (element-wise).
    AllReduce {
        /// Local contribution.
        vals: Vec<f64>,
        /// Reduction operator.
        op: ReduceOp,
    },
}

/// Reduction operators for [`MpiCall::AllReduce`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Element-wise sum.
    Sum,
    /// Element-wise maximum.
    Max,
    /// Element-wise minimum.
    Min,
}

/// Replies from the coordinator.
pub enum MpiReply {
    /// Acknowledge a send/compute/barrier.
    Ok,
    /// The rank's current virtual time.
    Time(allscale_des::SimTime),
    /// A received message's payload.
    Msg(Vec<u8>),
    /// The reduced vector.
    Reduced(Vec<f64>),
}

/// The per-rank context handed to SPMD application code.
pub struct RankCtx<'a, T> {
    pub(crate) inner: &'a ThreadCtx<MpiCall, MpiReply, T>,
    pub(crate) rank: usize,
    pub(crate) size: usize,
}

impl<T> RankCtx<'_, T> {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Send a serializable value to `to` with `tag`.
    pub fn send<V: Serialize>(&self, to: usize, tag: u32, value: &V) {
        let bytes = wire::encode(value).expect("mpi payload serialization");
        match self.inner.call(MpiCall::Send { to, tag, bytes }) {
            MpiReply::Ok => {}
            _ => unreachable!("protocol violation: send reply"),
        }
    }

    /// Receive a value from `from` with `tag` (blocking, FIFO per channel).
    pub fn recv<V: DeserializeOwned>(&self, from: usize, tag: u32) -> V {
        match self.inner.call(MpiCall::Recv { from, tag }) {
            MpiReply::Msg(bytes) => {
                wire::decode(&bytes).expect("mpi payload deserialization")
            }
            _ => unreachable!("protocol violation: recv reply"),
        }
    }

    /// Combined send+receive with a partner rank (halo-exchange idiom;
    /// deadlock-free because sends are buffered).
    pub fn sendrecv<V: Serialize, W: DeserializeOwned>(
        &self,
        partner: usize,
        tag: u32,
        value: &V,
    ) -> W {
        self.send(partner, tag, value);
        self.recv(partner, tag)
    }

    /// Charge `dur` of local computation to this rank's clock.
    pub fn compute(&self, dur: SimDuration) {
        match self.inner.call(MpiCall::Compute(dur)) {
            MpiReply::Ok => {}
            _ => unreachable!("protocol violation: compute reply"),
        }
    }

    /// This rank's current virtual time (e.g. to exclude setup phases
    /// from measured windows).
    pub fn now(&self) -> allscale_des::SimTime {
        match self.inner.call(MpiCall::Now) {
            MpiReply::Time(t) => t,
            _ => unreachable!("protocol violation: now reply"),
        }
    }

    /// Synchronize all ranks.
    pub fn barrier(&self) {
        match self.inner.call(MpiCall::Barrier) {
            MpiReply::Ok => {}
            _ => unreachable!("protocol violation: barrier reply"),
        }
    }

    /// Element-wise all-reduce over all ranks.
    pub fn allreduce(&self, vals: Vec<f64>, op: ReduceOp) -> Vec<f64> {
        match self.inner.call(MpiCall::AllReduce { vals, op }) {
            MpiReply::Reduced(v) => v,
            _ => unreachable!("protocol violation: allreduce reply"),
        }
    }

    /// Scalar sum all-reduce.
    pub fn allreduce_sum(&self, v: f64) -> f64 {
        self.allreduce(vec![v], ReduceOp::Sum)[0]
    }

    /// Scalar max all-reduce.
    pub fn allreduce_max(&self, v: f64) -> f64 {
        self.allreduce(vec![v], ReduceOp::Max)[0]
    }

    /// Personalized all-to-all: element `i` of `outbox` goes to rank `i`;
    /// returns the inbox indexed by source rank. Built from point-to-point
    /// messages (ring schedule), like a small MPI_Alltoallv.
    pub fn alltoall<V: Serialize + DeserializeOwned>(
        &self,
        tag: u32,
        outbox: Vec<V>,
    ) -> Vec<V> {
        assert_eq!(outbox.len(), self.size, "one outbox entry per rank");
        let me = self.rank;
        let n = self.size;
        let mut inbox: Vec<Option<V>> = (0..n).map(|_| None).collect();
        let mut mine = None;
        for (dst, v) in outbox.into_iter().enumerate() {
            if dst == me {
                mine = Some(v);
            } else {
                self.send(dst, tag, &v);
            }
        }
        inbox[me] = mine;
        #[allow(clippy::needless_range_loop)] // rank order is the protocol
        for src in 0..n {
            if src != me {
                inbox[src] = Some(self.recv(src, tag));
            }
        }
        inbox.into_iter().map(|v| v.expect("all received")).collect()
    }
}

//! The SPMD coordinator: runs one blocking rank thread per simulated node
//! and advances virtual time conservatively.
//!
//! Exactly one thread (coordinator or a single rank) runs at any instant,
//! so executions are deterministic. Each rank carries its own virtual
//! clock; sends are buffered-eager (they complete locally after the NIC
//! hand-off), receives block until a matching message's arrival time, and
//! collectives synchronize all clocks plus a log-tree cost.

use std::collections::VecDeque;

use allscale_des::{SimDuration, SimTime, Suspended, ThreadActor};
use allscale_net::{ClusterSpec, Network, TrafficStats};

use crate::ctx::{MpiCall, MpiReply, RankCtx, ReduceOp};

/// Summary of an SPMD run.
pub struct MpiReport<T> {
    /// Virtual completion time (max over ranks).
    pub finish_time: SimTime,
    /// Each rank's return value.
    pub results: Vec<T>,
    /// Network traffic stats.
    pub traffic: TrafficStats,
    /// Total point-to-point messages.
    pub p2p_msgs: u64,
    /// Total collective operations.
    pub collectives: u64,
}

struct Pending {
    from: usize,
    tag: u32,
    arrival: SimTime,
    seq: u64,
    bytes: Vec<u8>,
}

enum RankState<T> {
    /// Suspended on a request not yet satisfiable / not yet handled.
    Waiting(MpiCall),
    /// Finished with its result.
    Done(T),
}

/// Run `body` as an SPMD program over the cluster; one rank per node.
///
/// `body` is cloned per rank; ranks communicate only through the
/// [`RankCtx`] API, never through shared memory — the closure must not
/// capture shared mutable state (enforced by `Send + Sync`).
pub fn run_spmd<T, F>(spec: &ClusterSpec, body: F) -> MpiReport<T>
where
    T: Send + 'static,
    F: Fn(&mut RankCtx<'_, T>) -> T + Clone + Send + 'static,
{
    let n = spec.nodes;
    let mut net = Network::new(spec.build_topology(), spec.net.clone());
    let overhead = SimDuration::from_nanos(spec.net.sw_overhead_ns);

    // Spawn rank threads (they idle until first resume).
    let mut actors: Vec<ThreadActor<MpiCall, MpiReply, T>> = (0..n)
        .map(|rank| {
            let body = body.clone();
            ThreadActor::spawn(format!("rank{rank}"), move |tc| {
                let mut ctx = RankCtx {
                    inner: tc,
                    rank,
                    size: n,
                };
                body(&mut ctx)
            })
        })
        .collect();

    let mut clock = vec![SimTime::ZERO; n];
    let mut mailbox: Vec<VecDeque<Pending>> = (0..n).map(|_| VecDeque::new()).collect();
    let mut states: Vec<Option<RankState<T>>> = Vec::with_capacity(n);
    let mut seq = 0u64;
    let mut p2p_msgs = 0u64;
    let mut collectives = 0u64;

    // Kick off all ranks with the start token.
    for actor in &mut actors {
        match actor.resume(MpiReply::Ok) {
            Suspended::Request(q) => states.push(Some(RankState::Waiting(q))),
            Suspended::Finished(t) => states.push(Some(RankState::Done(t))),
        }
    }

    // Conservative round-robin scheduling until all ranks finish.
    loop {
        let mut progressed = false;
        let mut all_done = true;

        // Collective rendezvous: if every live rank waits on Barrier or
        // AllReduce (mixing kinds is a program error), execute it.
        let live: Vec<usize> = (0..n)
            .filter(|&r| matches!(states[r], Some(RankState::Waiting(_))))
            .collect();
        let all_barrier = !live.is_empty()
            && live.len()
                == (0..n)
                    .filter(|&r| !matches!(states[r], Some(RankState::Done(_))))
                    .count()
            && live
                .iter()
                .all(|&r| matches!(states[r], Some(RankState::Waiting(MpiCall::Barrier))));
        let all_reduce = !live.is_empty()
            && live.len()
                == (0..n)
                    .filter(|&r| !matches!(states[r], Some(RankState::Done(_))))
                    .count()
            && live.iter().all(|&r| {
                matches!(states[r], Some(RankState::Waiting(MpiCall::AllReduce { .. })))
            });

        if all_barrier || all_reduce {
            collectives += 1;
            // Cost: a reduce+broadcast tree of small messages.
            let depth = (n.max(2) as f64).log2().ceil() as u64;
            let hop = SimDuration::from_nanos(
                spec.net.base_latency_ns + 2 * spec.net.per_hop_latency_ns,
            );
            let t_sync = live
                .iter()
                .map(|&r| clock[r])
                .max()
                .unwrap_or(SimTime::ZERO)
                + hop.saturating_mul(2 * depth);
            // Gather the operation.
            let mut reduced: Option<(Vec<f64>, ReduceOp)> = None;
            for &r in &live {
                let st = states[r].take().unwrap();
                if let RankState::Waiting(MpiCall::AllReduce { vals, op }) = st {
                    reduced = Some(match reduced.take() {
                        None => (vals, op),
                        Some((mut acc, op0)) => {
                            assert_eq!(op0, op, "mismatched allreduce ops");
                            assert_eq!(acc.len(), vals.len(), "mismatched lengths");
                            for (a, v) in acc.iter_mut().zip(&vals) {
                                *a = match op {
                                    ReduceOp::Sum => *a + *v,
                                    ReduceOp::Max => a.max(*v),
                                    ReduceOp::Min => a.min(*v),
                                };
                            }
                            (acc, op0)
                        }
                    });
                } else {
                    states[r] = Some(st);
                }
            }
            for &r in &live {
                clock[r] = t_sync;
                let reply = if all_barrier {
                    MpiReply::Ok
                } else {
                    MpiReply::Reduced(reduced.as_ref().unwrap().0.clone())
                };
                match actors[r].resume(reply) {
                    Suspended::Request(q) => states[r] = Some(RankState::Waiting(q)),
                    Suspended::Finished(t) => states[r] = Some(RankState::Done(t)),
                }
            }
            continue;
        }

        for r in 0..n {
            let st = states[r].take().expect("state present");
            match st {
                RankState::Done(t) => {
                    states[r] = Some(RankState::Done(t));
                }
                RankState::Waiting(call) => {
                    all_done = false;
                    let reply = match call {
                        MpiCall::Compute(d) => {
                            clock[r] += d;
                            Some(MpiReply::Ok)
                        }
                        MpiCall::Now => Some(MpiReply::Time(clock[r])),
                        MpiCall::Send { to, tag, bytes } => {
                            clock[r] += overhead;
                            let arrival = net.transfer(clock[r], r, to, bytes.len());
                            seq += 1;
                            p2p_msgs += 1;
                            mailbox[to].push_back(Pending {
                                from: r,
                                tag,
                                arrival,
                                seq,
                                bytes,
                            });
                            Some(MpiReply::Ok)
                        }
                        MpiCall::Recv { from, tag } => {
                            // FIFO per (source, tag) channel.
                            let pos = mailbox[r]
                                .iter()
                                .enumerate()
                                .filter(|(_, m)| m.from == from && m.tag == tag)
                                .min_by_key(|(_, m)| m.seq)
                                .map(|(i, _)| i);
                            match pos {
                                Some(i) => {
                                    let msg = mailbox[r].remove(i).unwrap();
                                    clock[r] = clock[r].max(msg.arrival) + overhead;
                                    Some(MpiReply::Msg(msg.bytes))
                                }
                                None => {
                                    states[r] =
                                        Some(RankState::Waiting(MpiCall::Recv { from, tag }));
                                    None
                                }
                            }
                        }
                        other @ (MpiCall::Barrier | MpiCall::AllReduce { .. }) => {
                            // Handled at the rendezvous above.
                            states[r] = Some(RankState::Waiting(other));
                            None
                        }
                    };
                    if let Some(reply) = reply {
                        progressed = true;
                        match actors[r].resume(reply) {
                            Suspended::Request(q) => states[r] = Some(RankState::Waiting(q)),
                            Suspended::Finished(t) => states[r] = Some(RankState::Done(t)),
                        }
                    }
                }
            }
        }

        if all_done {
            break;
        }
        if !progressed {
            // Either everyone is at a collective (handled above next
            // iteration) or the program deadlocked.
            let anyone_collective = (0..n).any(|r| {
                matches!(
                    states[r],
                    Some(RankState::Waiting(MpiCall::Barrier))
                        | Some(RankState::Waiting(MpiCall::AllReduce { .. }))
                )
            });
            let all_waiting_collective = (0..n).all(|r| {
                matches!(
                    states[r],
                    Some(RankState::Waiting(MpiCall::Barrier))
                        | Some(RankState::Waiting(MpiCall::AllReduce { .. }))
                        | Some(RankState::Done(_))
                )
            });
            if anyone_collective && all_waiting_collective {
                continue;
            }
            panic!("SPMD deadlock: all ranks blocked on unmatched receives");
        }
    }

    let finish_time = clock.iter().copied().max().unwrap_or(SimTime::ZERO);
    let results = states
        .into_iter()
        .map(|s| match s {
            Some(RankState::Done(t)) => t,
            _ => unreachable!("all ranks finished"),
        })
        .collect();
    MpiReport {
        finish_time,
        results,
        traffic: net.stats().clone(),
        p2p_msgs,
        collectives,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(n: usize) -> ClusterSpec {
        ClusterSpec::test(n, 4)
    }

    #[test]
    fn ring_pass_around() {
        let report = run_spmd(&spec(4), |ctx: &mut RankCtx<'_, u64>| {
            let me = ctx.rank();
            let n = ctx.size();
            if me == 0 {
                ctx.send(1, 0, &1u64);
                ctx.recv::<u64>(n - 1, 0)
            } else {
                let v: u64 = ctx.recv(me - 1, 0);
                ctx.send((me + 1) % n, 0, &(v + 1));
                v
            }
        });
        // Rank 0 receives the token after it passed all ranks.
        assert_eq!(report.results[0], 4);
        assert_eq!(report.p2p_msgs, 4);
        assert!(report.finish_time.as_nanos() > 4 * 900);
    }

    #[test]
    fn compute_advances_clocks() {
        let report = run_spmd(&spec(2), |ctx: &mut RankCtx<'_, ()>| {
            ctx.compute(SimDuration::from_micros(ctx.rank() as u64 * 100 + 10));
            ctx.barrier();
        });
        // Finish dominated by the slower rank + barrier cost.
        assert!(report.finish_time.as_nanos() >= 110_000);
        assert_eq!(report.collectives, 1);
    }

    #[test]
    fn allreduce_sums() {
        let report = run_spmd(&spec(8), |ctx: &mut RankCtx<'_, f64>| {
            ctx.allreduce_sum((ctx.rank() + 1) as f64)
        });
        for r in report.results {
            assert_eq!(r, 36.0);
        }
    }

    #[test]
    fn allreduce_max_and_vectors() {
        let report = run_spmd(&spec(4), |ctx: &mut RankCtx<'_, Vec<f64>>| {
            ctx.allreduce(vec![ctx.rank() as f64, -(ctx.rank() as f64)], ReduceOp::Max)
        });
        for r in report.results {
            assert_eq!(r, vec![3.0, 0.0]);
        }
    }

    #[test]
    fn sendrecv_halo_idiom() {
        let report = run_spmd(&spec(4), |ctx: &mut RankCtx<'_, (f64, f64)>| {
            let me = ctx.rank();
            let n = ctx.size();
            let left = (me + n - 1) % n;
            let right = (me + 1) % n;
            ctx.send(left, 1, &(me as f64));
            ctx.send(right, 2, &(me as f64));
            let from_right: f64 = ctx.recv(right, 1);
            let from_left: f64 = ctx.recv(left, 2);
            (from_left, from_right)
        });
        for (me, &(l, r)) in report.results.iter().enumerate() {
            let n = 4;
            assert_eq!(l as usize, (me + n - 1) % n);
            assert_eq!(r as usize, (me + 1) % n);
        }
    }

    #[test]
    fn alltoall_exchanges_everything() {
        let report = run_spmd(&spec(3), |ctx: &mut RankCtx<'_, Vec<u64>>| {
            let me = ctx.rank() as u64;
            let out: Vec<u64> = (0..3).map(|dst| me * 10 + dst).collect();
            ctx.alltoall(7, out)
        });
        for (me, inbox) in report.results.iter().enumerate() {
            for (src, &v) in inbox.iter().enumerate() {
                assert_eq!(v, src as u64 * 10 + me as u64);
            }
        }
    }

    #[test]
    fn determinism() {
        let run = || {
            let report = run_spmd(&spec(6), |ctx: &mut RankCtx<'_, f64>| {
                let x = ctx.allreduce_sum(1.0);
                ctx.compute(SimDuration::from_micros(5));
                let partner = ctx.size() - 1 - ctx.rank();
                if partner != ctx.rank() {
                    ctx.send(partner, 3, &(ctx.rank() as f64));
                    let y: f64 = ctx.recv(partner, 3);
                    x + y
                } else {
                    x
                }
            });
            (report.finish_time, report.p2p_msgs)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fifo_per_channel_ordering() {
        let report = run_spmd(&spec(2), |ctx: &mut RankCtx<'_, Vec<u64>>| {
            if ctx.rank() == 0 {
                for i in 0..5u64 {
                    ctx.send(1, 0, &i);
                }
                Vec::new()
            } else {
                (0..5).map(|_| ctx.recv::<u64>(0, 0)).collect()
            }
        });
        assert_eq!(report.results[1], vec![0, 1, 2, 3, 4]);
    }
}

//! # allscale-mpi — the message-passing baseline
//!
//! The paper evaluates AllScale against hand-written MPI ports of the same
//! applications ("We ported each of our three applications to the AllScale
//! model and MPI to provide a reference"). This crate is that reference
//! substrate: an MPI-flavoured SPMD library — ranks, tagged point-to-point
//! messages, barriers, all-reduce, all-to-all — running over the *same*
//! simulated network ([`allscale_net`]) as the AllScale runtime, so
//! comparisons isolate the programming/runtime model rather than the
//! machine.
//!
//! Rank code is written blocking-style and runs on one OS thread per rank
//! with strict deterministic hand-off (see
//! [`allscale_des::ThreadActor`]).

#![warn(missing_docs)]

mod ctx;
mod spmd;

pub use ctx::{MpiCall, MpiReply, RankCtx, ReduceOp};
pub use spmd::{run_spmd, MpiReport};

//! Chrome trace-event JSON export (the format `chrome://tracing` and
//! Perfetto load).
//!
//! Layout: one *process* per locality (`pid` = locality), one *thread*
//! per compute core (`tid` = core index) plus a `runtime` track (`tid` =
//! [`RUNTIME_TID`]) carrying communication, index and lifecycle events.
//! Task spans become complete (`"X"`) events, instants become `"i"`
//! events, and two families of flow arrows are emitted: `spawn → execute`
//! for every task (flow id `t<task>`) and `send → receive` for every
//! transfer (flow id `x<event-id>`).
//!
//! The output is built with deterministic integer formatting only — the
//! same trace always serializes to the same bytes, which the determinism
//! test relies on.

use std::fmt::Write;

use crate::event::{EventKind, TraceEvent};
use crate::sink::Trace;

/// The `tid` of each locality's communication/runtime track.
pub const RUNTIME_TID: i64 = 1000;

/// Microsecond timestamp with fixed 3-decimal nanosecond fraction.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn tid_of(ev: &TraceEvent) -> i64 {
    if ev.core >= 0 {
        ev.core as i64
    } else {
        RUNTIME_TID
    }
}

/// Append one JSON event object (no trailing comma).
#[allow(clippy::too_many_arguments)]
fn emit(
    out: &mut String,
    name: &str,
    cat: &str,
    ph: &str,
    ts_ns: u64,
    pid: u32,
    tid: i64,
    extra: &str,
) {
    let _ = write!(
        out,
        "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"{ph}\",\"ts\":{ts},\"pid\":{pid},\"tid\":{tid}{extra}}}",
        ts = us(ts_ns),
    );
}

fn args_of(ev: &TraceEvent) -> String {
    let mut a = String::new();
    let mut put = |k: &str, v: String| {
        if !a.is_empty() {
            a.push(',');
        }
        let _ = write!(a, "\"{k}\":{v}");
    };
    put("epoch", ev.epoch.to_string());
    match ev.kind {
        EventKind::TaskSpawn {
            task,
            parent,
            variant,
            target,
        } => {
            put("task", task.to_string());
            if let Some(p) = parent {
                put("parent", p.to_string());
            }
            put(
                "variant",
                format!("\"{}\"", if variant == crate::SpawnVariant::Split { "split" } else { "process" }),
            );
            put("target", target.to_string());
        }
        EventKind::TaskSplit { task }
        | EventKind::TaskExec { task }
        | EventKind::TaskParked { task } => put("task", task.to_string()),
        EventKind::TaskEnd { task, parent } => {
            put("task", task.to_string());
            if let Some(p) = parent {
                put("parent", p.to_string());
            }
        }
        EventKind::ItemCreate { item } | EventKind::ItemDestroy { item } => {
            put("item", item.to_string())
        }
        EventKind::FirstTouch { item, task } => {
            put("item", item.to_string());
            put("task", task.to_string());
        }
        EventKind::Transfer {
            src,
            dst,
            bytes,
            task,
            item,
            batch,
            ..
        } => {
            put("src", src.to_string());
            put("dst", dst.to_string());
            put("bytes", bytes.to_string());
            if let Some(t) = task {
                put("task", t.to_string());
            }
            if let Some(i) = item {
                put("item", i.to_string());
            }
            if let Some(b) = batch {
                put("batch", b.to_string());
            }
        }
        EventKind::BatchFlush {
            src,
            dst,
            msgs,
            bytes,
            cause,
            batch,
        } => {
            put("src", src.to_string());
            put("dst", dst.to_string());
            put("msgs", msgs.to_string());
            put("bytes", bytes.to_string());
            put("cause", format!("\"{}\"", cause.name()));
            put("batch", batch.to_string());
        }
        EventKind::TransferLost {
            src,
            dst,
            bytes,
            task,
            ..
        } => {
            put("src", src.to_string());
            put("dst", dst.to_string());
            put("bytes", bytes.to_string());
            if let Some(t) = task {
                put("task", t.to_string());
            }
        }
        EventKind::IndexLookup {
            item,
            hops,
            cache_hit,
        } => {
            put("item", item.to_string());
            put("hops", hops.to_string());
            put("cache_hit", cache_hit.to_string());
        }
        EventKind::IndexUpdate { item, hops } => {
            put("item", item.to_string());
            put("hops", hops.to_string());
        }
        EventKind::NetDrop { src, dst, bytes } => {
            put("src", src.to_string());
            put("dst", dst.to_string());
            put("bytes", bytes.to_string());
        }
        EventKind::NetDelay { src, dst, extra_ns } => {
            put("src", src.to_string());
            put("dst", dst.to_string());
            put("extra_ns", extra_ns.to_string());
        }
        EventKind::NetRetry {
            src,
            dst,
            attempt,
            backoff_ns,
        } => {
            put("src", src.to_string());
            put("dst", dst.to_string());
            put("attempt", attempt.to_string());
            put("backoff_ns", backoff_ns.to_string());
        }
        EventKind::NetCorrupt {
            src,
            dst,
            bytes,
            detected,
        } => {
            put("src", src.to_string());
            put("dst", dst.to_string());
            put("bytes", bytes.to_string());
            put("detected", detected.to_string());
        }
        EventKind::ScrubPass {
            replicas,
            divergent,
        } => {
            put("replicas", replicas.to_string());
            put("divergent", divergent.to_string());
        }
        EventKind::ScrubRepair { item, owner, bytes } => {
            put("item", item.to_string());
            put("owner", owner.to_string());
            put("bytes", bytes.to_string());
        }
        EventKind::Quarantine { item, strikes } => {
            put("item", item.to_string());
            put("strikes", strikes.to_string());
        }
        EventKind::Checkpoint { phase, bytes } => {
            put("phase", phase.to_string());
            put("bytes", bytes.to_string());
        }
        EventKind::CheckpointDrain {
            phase,
            shards,
            bytes,
        } => {
            put("phase", phase.to_string());
            put("shards", shards.to_string());
            put("bytes", bytes.to_string());
        }
        EventKind::CheckpointFence { phase } | EventKind::CheckpointTorn { phase } => {
            put("phase", phase.to_string());
        }
        EventKind::Suspicion { suspect, misses } => {
            put("suspect", suspect.to_string());
            put("misses", misses.to_string());
        }
        EventKind::Recovery {
            dead,
            phase,
            restored_bytes,
        } => {
            put("dead", dead.to_string());
            put("phase", phase.to_string());
            put("restored_bytes", restored_bytes.to_string());
        }
        EventKind::StealRequest { thief, victim } => {
            put("thief", thief.to_string());
            put("victim", victim.to_string());
        }
        EventKind::StealGrant { victim, thief, task } => {
            put("victim", victim.to_string());
            put("thief", thief.to_string());
            put("task", task.to_string());
        }
        EventKind::StealDeny { victim, thief } => {
            put("victim", victim.to_string());
            put("thief", thief.to_string());
        }
        EventKind::RequestArrival { req, shard, write }
        | EventKind::Request { req, shard, write } => {
            put("req", req.to_string());
            put("shard", shard.to_string());
            put("write", write.to_string());
        }
        EventKind::RequestAdmit { req, task } => {
            put("req", req.to_string());
            put("task", task.to_string());
        }
        EventKind::RequestShed { req, shard } => {
            put("req", req.to_string());
            put("shard", shard.to_string());
        }
        EventKind::SloReplicate { shard, p99_ns } => {
            put("shard", shard.to_string());
            put("p99_ns", p99_ns.to_string());
        }
        EventKind::SloRetire { shard } => put("shard", shard.to_string()),
        EventKind::PhaseBegin { phase } | EventKind::PhaseEnd { phase } => {
            put("phase", phase.to_string())
        }
    }
    format!(",\"args\":{{{a}}}")
}

impl Trace {
    /// Serialize to Chrome trace-event JSON (an object with a
    /// `traceEvents` array), loadable in Perfetto / `chrome://tracing`.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.events.len() * 160);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        let mut first = true;
        let mut sep = |out: &mut String| {
            if first {
                first = false;
            } else {
                out.push(',');
            }
        };

        // Track discovery: cores used per locality (for thread metadata),
        // plus the flush time of every recorded batch so member sends can
        // anchor their flow arrows at the flush slice.
        let mut max_core = vec![-1i32; self.nodes];
        let mut spawned: Vec<u64> = Vec::new();
        let mut executed: Vec<u64> = Vec::new();
        let mut flushes: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
        for ev in &self.events {
            if (ev.loc as usize) < self.nodes && ev.core > max_core[ev.loc as usize] {
                max_core[ev.loc as usize] = ev.core;
            }
            match ev.kind {
                EventKind::TaskSpawn { task, .. } => spawned.push(task),
                EventKind::TaskExec { task, .. } => executed.push(task),
                EventKind::BatchFlush { batch, .. } => {
                    flushes.insert(batch, ev.ts_ns);
                }
                _ => {}
            }
        }
        spawned.sort_unstable();
        executed.sort_unstable();

        // Metadata: process and thread names.
        for (loc, &top_core) in max_core.iter().enumerate() {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{loc},\"tid\":0,\"args\":{{\"name\":\"locality {loc}\"}}}}",
            );
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":{loc},\"tid\":0,\"args\":{{\"sort_index\":{loc}}}}}",
            );
            for core in 0..=top_core {
                sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{loc},\"tid\":{core},\"args\":{{\"name\":\"core {core}\"}}}}",
                );
            }
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{loc},\"tid\":{RUNTIME_TID},\"args\":{{\"name\":\"runtime\"}}}}",
            );
        }

        for ev in &self.events {
            let name = ev.kind.name();
            let cat = ev.kind.category();
            let args = args_of(ev);
            match ev.kind {
                // Transfers: a zero-duration send slice at the source, the
                // flight span at the destination, and a flow arrow. A
                // batched member's arrow ends at its batch's flush slice
                // (same locality, flush time) instead of at the receiver —
                // the batching wait is the visible gap it crosses.
                EventKind::Transfer { src, dst, batch, .. } => {
                    sep(&mut out);
                    let extra = format!(",\"dur\":0{args}");
                    emit(&mut out, "send", cat, "X", ev.ts_ns, src, RUNTIME_TID, &extra);
                    sep(&mut out);
                    let extra = format!(",\"dur\":{}{args}", us(ev.dur_ns));
                    emit(&mut out, name, cat, "X", ev.ts_ns, dst, RUNTIME_TID, &extra);
                    let flush_ts = batch.and_then(|b| flushes.get(&b).copied());
                    sep(&mut out);
                    let extra = format!(",\"id\":\"x{}\"", ev.id);
                    emit(&mut out, "wire", "flow-net", "s", ev.ts_ns, src, RUNTIME_TID, &extra);
                    sep(&mut out);
                    let extra = format!(",\"bp\":\"e\",\"id\":\"x{}\"", ev.id);
                    match flush_ts {
                        Some(ts) => {
                            emit(&mut out, "wire", "flow-net", "f", ts, src, RUNTIME_TID, &extra)
                        }
                        None => emit(
                            &mut out, "wire", "flow-net", "f", ev.end_ns(), dst, RUNTIME_TID, &extra,
                        ),
                    }
                }
                // Batch flushes: a flush slice at the source (the anchor
                // member arrows point at), the batch span at the
                // destination, and the wire arrow of the priced message.
                EventKind::BatchFlush { src, dst, batch, .. } => {
                    sep(&mut out);
                    let extra = format!(",\"dur\":0{args}");
                    emit(&mut out, "flush", cat, "X", ev.ts_ns, src, RUNTIME_TID, &extra);
                    sep(&mut out);
                    let extra = format!(",\"dur\":{}{args}", us(ev.dur_ns));
                    emit(&mut out, name, cat, "X", ev.ts_ns, dst, RUNTIME_TID, &extra);
                    sep(&mut out);
                    let extra = format!(",\"id\":\"b{batch}\"");
                    emit(&mut out, "wire", "flow-net", "s", ev.ts_ns, src, RUNTIME_TID, &extra);
                    sep(&mut out);
                    let extra = format!(",\"bp\":\"e\",\"id\":\"b{batch}\"");
                    emit(&mut out, "wire", "flow-net", "f", ev.end_ns(), dst, RUNTIME_TID, &extra);
                }
                // Spawns: a zero-duration slice (so the flow anchors) plus
                // the spawn→execute flow start when the task ran.
                EventKind::TaskSpawn { task, .. } => {
                    sep(&mut out);
                    let extra = format!(",\"dur\":0{args}");
                    emit(&mut out, name, cat, "X", ev.ts_ns, ev.loc, tid_of(ev), &extra);
                    if executed.binary_search(&task).is_ok() {
                        sep(&mut out);
                        let extra = format!(",\"id\":\"t{task}\"");
                        emit(&mut out, "task", "flow-task", "s", ev.ts_ns, ev.loc, tid_of(ev), &extra);
                    }
                }
                EventKind::TaskExec { task, .. } => {
                    sep(&mut out);
                    let extra = format!(",\"dur\":{}{args}", us(ev.dur_ns));
                    emit(&mut out, name, cat, "X", ev.ts_ns, ev.loc, tid_of(ev), &extra);
                    if spawned.binary_search(&task).is_ok() {
                        sep(&mut out);
                        let extra = format!(",\"bp\":\"e\",\"id\":\"t{task}\"");
                        emit(&mut out, "task", "flow-task", "f", ev.ts_ns, ev.loc, tid_of(ev), &extra);
                    }
                }
                _ if ev.dur_ns > 0 => {
                    sep(&mut out);
                    let extra = format!(",\"dur\":{}{args}", us(ev.dur_ns));
                    emit(&mut out, name, cat, "X", ev.ts_ns, ev.loc, tid_of(ev), &extra);
                }
                _ => {
                    sep(&mut out);
                    let extra = format!(",\"s\":\"t\"{args}");
                    emit(&mut out, name, cat, "i", ev.ts_ns, ev.loc, tid_of(ev), &extra);
                }
            }
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TransferPurpose;
    use crate::sink::{TraceConfig, TraceSink};

    fn sample_trace() -> Trace {
        let sink = TraceSink::enabled(2, &TraceConfig::default());
        sink.record(|| {
            TraceEvent::instant(
                0,
                0,
                EventKind::TaskSpawn {
                    task: 1,
                    parent: None,
                    variant: crate::SpawnVariant::Process,
                    target: 1,
                },
            )
        });
        sink.record(|| {
            TraceEvent::span(
                100,
                400,
                1,
                EventKind::Transfer {
                    purpose: TransferPurpose::TaskForward,
                    src: 0,
                    dst: 1,
                    bytes: 64,
                    task: Some(1),
                    item: None,
                    batch: None,
                },
            )
        });
        sink.record(|| TraceEvent::span(500, 2000, 1, EventKind::TaskExec { task: 1 }).on_core(0));
        sink.record(|| TraceEvent::instant(2500, 1, EventKind::TaskEnd { task: 1, parent: None }));
        sink.take().unwrap()
    }

    #[test]
    fn export_is_wellformed_and_deterministic() {
        let t = sample_trace();
        let a = t.to_chrome_json();
        let b = t.to_chrome_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(a.ends_with("]}"));
        // Balanced braces is a cheap well-formedness smoke test; the CI
        // job runs the real parser (jq) over the example's export.
        let open = a.matches('{').count();
        let close = a.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn export_contains_tracks_spans_and_flows() {
        let json = sample_trace().to_chrome_json();
        assert!(json.contains("\"name\":\"process_name\""));
        assert!(json.contains("\"name\":\"core 0\""));
        assert!(json.contains("\"name\":\"runtime\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"s\""));
        assert!(json.contains("\"ph\":\"f\""));
        // Task flow links spawn and exec by task id.
        assert!(json.contains("\"id\":\"t1\""));
        // Microsecond timestamps carry the ns fraction.
        assert!(json.contains("\"ts\":0.100"));
    }

    #[test]
    fn timestamps_format_as_fixed_point_microseconds() {
        assert_eq!(us(0), "0.000");
        assert_eq!(us(999), "0.999");
        assert_eq!(us(1000), "1.000");
        assert_eq!(us(1234567), "1234.567");
    }
}

//! Critical-path analysis over a finished trace.
//!
//! A run's makespan is explained by one chain of causally dependent
//! events: the last phase's root completed because its slowest child
//! completed, which executed only after its data transfers arrived, which
//! were sent only after the task was forwarded, which was spawned by its
//! parent's split, … back through every phase barrier to time zero. The
//! analyzer reconstructs that chain from the event stream and attributes
//! every nanosecond of it to a category:
//!
//! - **compute** — task bodies and split overhead occupying cores;
//! - **transfer** — network flight time of forwards, data movement and
//!   results on the chain;
//! - **index** — otherwise-idle chain gaps in which the gating locality
//!   was doing index traffic (lookups/updates);
//! - **lock-wait** — time a gating task sat parked on a lock conflict;
//! - **recovery-replay** — chain time inside a replay window (between a
//!   recovery and the first phase that surpasses pre-failure progress),
//!   regardless of its base category;
//! - **runtime** — remaining gaps (queueing, scheduling overhead).
//!
//! The walk is defensive: a trace truncated by ring overflow yields a
//! partial chain rather than a panic.

use std::collections::BTreeMap;
use std::fmt::Write;

use crate::event::{EventKind, TransferPurpose};
use crate::sink::Trace;

/// Attribution category of one chain segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PathCategory {
    /// Task bodies and split overhead on cores.
    Compute,
    /// Network flight time on the chain.
    Transfer,
    /// Chain gaps dominated by index traffic.
    Index,
    /// Parked-on-lock-conflict time.
    LockWait,
    /// Chain time spent re-executing work after a recovery.
    RecoveryReplay,
    /// Unattributed gaps: queueing and scheduling overhead.
    Runtime,
}

impl PathCategory {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PathCategory::Compute => "compute",
            PathCategory::Transfer => "transfer",
            PathCategory::Index => "index",
            PathCategory::LockWait => "lock-wait",
            PathCategory::RecoveryReplay => "recovery-replay",
            PathCategory::Runtime => "runtime",
        }
    }

    /// All categories, in report order.
    pub const ALL: [PathCategory; 6] = [
        PathCategory::Compute,
        PathCategory::Transfer,
        PathCategory::Index,
        PathCategory::LockWait,
        PathCategory::RecoveryReplay,
        PathCategory::Runtime,
    ];
}

/// One contiguous piece of the critical path.
#[derive(Debug, Clone)]
pub struct PathSegment {
    /// Segment start, simulated ns.
    pub start_ns: u64,
    /// Segment end, simulated ns.
    pub end_ns: u64,
    /// The locality the chain was gated at.
    pub loc: u32,
    /// Base attribution (before replay-window reclassification).
    pub category: PathCategory,
    /// Human-readable description ("exec task 42", "replicate 8192 B 0→3").
    pub label: String,
}

impl PathSegment {
    /// Segment length in ns.
    pub fn ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// The analyzer's result: the chain and its per-category attribution.
#[derive(Debug, Clone)]
pub struct CriticalPathReport {
    /// End of the chain — the simulated completion time explained.
    pub total_ns: u64,
    /// Chain segments in chronological order, non-overlapping.
    pub segments: Vec<PathSegment>,
    /// Nanoseconds attributed to each category (replay windows already
    /// carved out into [`PathCategory::RecoveryReplay`]).
    pub by_category: Vec<(PathCategory, u64)>,
}

impl CriticalPathReport {
    /// Nanoseconds attributed to `cat`.
    pub fn category_ns(&self, cat: PathCategory) -> u64 {
        self.by_category
            .iter()
            .find(|(c, _)| *c == cat)
            .map(|(_, ns)| *ns)
            .unwrap_or(0)
    }

    /// Sum of all attributed chain time.
    pub fn attributed_ns(&self) -> u64 {
        self.by_category.iter().map(|(_, ns)| ns).sum()
    }

    /// Render a human-readable report: totals per category plus the
    /// longest individual segments.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "critical path: {:.3} ms over {} segments",
            self.total_ns as f64 / 1e6,
            self.segments.len()
        );
        let total = self.attributed_ns().max(1);
        for (cat, ns) in &self.by_category {
            if *ns == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "  {:15} {:>12.3} ms  ({:5.1}%)",
                cat.name(),
                *ns as f64 / 1e6,
                *ns as f64 * 100.0 / total as f64
            );
        }
        let mut longest: Vec<&PathSegment> = self.segments.iter().collect();
        longest.sort_by_key(|s| std::cmp::Reverse(s.ns()));
        for seg in longest.iter().take(5) {
            let _ = writeln!(
                out,
                "  ▸ [{:>12.3} .. {:>12.3}] µs  {:10} @loc {:<3} {}",
                seg.start_ns as f64 / 1e3,
                seg.end_ns as f64 / 1e3,
                seg.category.name(),
                seg.loc,
                seg.label
            );
        }
        out
    }
}

#[derive(Default)]
struct TaskRec {
    spawn: Option<(u64, u32, Option<u64>)>,
    split: Option<(u64, u64, u32)>,
    exec: Option<(u64, u64, u32)>,
    end: Option<(u64, u32)>,
    park: Option<u64>,
    children: Vec<u64>,
    /// (start, dur, purpose, src, dst, bytes) of transfers tagged with
    /// this task.
    transfers: Vec<(u64, u64, TransferPurpose, u32, u32, u64)>,
}

/// Walk state: builds the chain backwards with gap filling.
struct Walker<'a> {
    cursor: u64,
    segments: Vec<PathSegment>,
    index_events: &'a [(u64, u32)],
}

impl Walker<'_> {
    /// Push `seg` (which must end at or before the cursor); the gap up to
    /// the cursor, if any, becomes an index or runtime segment at `seg`'s
    /// locality. Advances the cursor to `seg.start_ns`.
    fn push(&mut self, mut seg: PathSegment) {
        if seg.start_ns >= self.cursor {
            return; // out of causal order (truncated trace) — skip
        }
        seg.end_ns = seg.end_ns.min(self.cursor);
        if seg.end_ns < self.cursor {
            self.fill_gap(seg.end_ns, seg.loc);
        }
        self.cursor = seg.start_ns;
        self.segments.push(seg);
    }

    /// Close the chain down to `to` with a gap segment.
    fn fill_gap(&mut self, to: u64, loc: u32) {
        if to >= self.cursor {
            return;
        }
        let (start, end) = (to, self.cursor);
        let indexed = self
            .index_events
            .iter()
            .any(|&(ts, l)| l == loc && ts > start && ts <= end);
        self.segments.push(PathSegment {
            start_ns: start,
            end_ns: end,
            loc,
            category: if indexed {
                PathCategory::Index
            } else {
                PathCategory::Runtime
            },
            label: if indexed {
                "index traffic".into()
            } else {
                "queue / overhead".into()
            },
        });
        self.cursor = start;
    }
}

/// Analyze `trace` and return the critical-path report. An empty or
/// taskless trace yields an empty report.
pub fn critical_path(trace: &Trace) -> CriticalPathReport {
    let mut tasks: BTreeMap<u64, TaskRec> = BTreeMap::new();
    let mut index_events: Vec<(u64, u32)> = Vec::new();
    let mut phase_begins: Vec<(u32, u64)> = Vec::new();
    let mut recoveries: Vec<u64> = Vec::new();
    // Tasks that changed hands via work stealing: their latest forward
    // hop is the victim→thief handoff and is labeled as such.
    let mut stolen: Vec<u64> = Vec::new();

    for ev in &trace.events {
        match ev.kind {
            EventKind::TaskSpawn { task, parent, .. } => {
                let rec = tasks.entry(task).or_default();
                rec.spawn = Some((ev.ts_ns, ev.loc, parent));
                if let Some(p) = parent {
                    tasks.entry(p).or_default().children.push(task);
                }
            }
            EventKind::TaskSplit { task } => {
                tasks.entry(task).or_default().split = Some((ev.ts_ns, ev.dur_ns, ev.loc));
            }
            EventKind::TaskExec { task } => {
                tasks.entry(task).or_default().exec = Some((ev.ts_ns, ev.dur_ns, ev.loc));
            }
            EventKind::TaskEnd { task, parent } => {
                let rec = tasks.entry(task).or_default();
                rec.end = Some((ev.ts_ns, ev.loc));
                if let Some(p) = parent {
                    let prec = tasks.entry(p).or_default();
                    if !prec.children.contains(&task) {
                        prec.children.push(task);
                    }
                }
            }
            EventKind::TaskParked { task } => {
                let rec = tasks.entry(task).or_default();
                if rec.park.is_none() {
                    rec.park = Some(ev.ts_ns);
                }
            }
            EventKind::Transfer {
                purpose,
                src,
                dst,
                bytes,
                task: Some(task),
                ..
            } => {
                tasks
                    .entry(task)
                    .or_default()
                    .transfers
                    .push((ev.ts_ns, ev.dur_ns, purpose, src, dst, bytes));
            }
            EventKind::IndexLookup { .. } | EventKind::IndexUpdate { .. } => {
                index_events.push((ev.ts_ns, ev.loc));
            }
            EventKind::PhaseBegin { phase } => phase_begins.push((phase, ev.ts_ns)),
            EventKind::Recovery { .. } => recoveries.push(ev.ts_ns),
            EventKind::StealGrant { task, .. } => stolen.push(task),
            _ => {}
        }
    }

    // The chain's anchor: the task end that explains the finish time.
    let last = tasks
        .iter()
        .filter_map(|(id, r)| r.end.map(|(ts, _)| (ts, *id)))
        .max();
    let Some((total_ns, mut current)) = last else {
        return CriticalPathReport {
            total_ns: 0,
            segments: Vec::new(),
            by_category: PathCategory::ALL.iter().map(|c| (*c, 0)).collect(),
        };
    };

    let mut walker = Walker {
        cursor: total_ns,
        segments: Vec::new(),
        index_events: &index_events,
    };

    // Walk phase by phase (each phase root's completion explains the next
    // phase's begin), bounded by the task count as a cycle guard.
    let mut guard = tasks.len() + 8;
    loop {
        guard = guard.saturating_sub(1);
        if guard == 0 {
            break;
        }
        // ---- descend from `current` to the leaf that gated its end.
        let mut descent: Vec<u64> = vec![current];
        loop {
            let t = *descent.last().unwrap();
            let rec = &tasks[&t];
            if rec.children.is_empty() {
                break;
            }
            // The gating child: latest (result arrival, else own end).
            let gating = rec
                .children
                .iter()
                .filter_map(|c| {
                    let cr = tasks.get(c)?;
                    let key = cr
                        .transfers
                        .iter()
                        .filter(|x| x.2 == TransferPurpose::Result)
                        .map(|x| x.0 + x.1)
                        .max()
                        .or(cr.end.map(|(ts, _)| ts))?;
                    Some((key, *c))
                })
                .max();
            match gating {
                Some((_, c)) if !descent.contains(&c) => descent.push(c),
                _ => break,
            }
        }

        // ---- backwards: result hops from each parent's end to its child.
        for pair in descent.windows(2) {
            let (parent, child) = (pair[0], pair[1]);
            let ploc = tasks[&parent].end.map(|(_, l)| l).unwrap_or(0);
            if let Some(&(ts, dur, _, src, dst, bytes)) = tasks[&child]
                .transfers
                .iter()
                .filter(|x| x.2 == TransferPurpose::Result)
                .max_by_key(|x| x.0 + x.1)
            {
                walker.push(PathSegment {
                    start_ns: ts,
                    end_ns: ts + dur,
                    loc: ploc,
                    category: PathCategory::Transfer,
                    label: format!("result {bytes} B {src}→{dst}"),
                });
            }
        }

        // ---- the leaf: compute, data transfers, lock wait, forward.
        let leaf = *descent.last().unwrap();
        let leaf_rec = &tasks[&leaf];
        let leaf_loc = leaf_rec
            .exec
            .map(|(_, _, l)| l)
            .or(leaf_rec.end.map(|(_, l)| l))
            .unwrap_or(0);
        if let Some((ts, dur, loc)) = leaf_rec.exec {
            walker.push(PathSegment {
                start_ns: ts,
                end_ns: ts + dur,
                loc,
                category: PathCategory::Compute,
                label: format!("exec task {leaf}"),
            });
        }
        if let Some(&(ts, dur, purpose, src, dst, bytes)) = leaf_rec
            .transfers
            .iter()
            .filter(|x| matches!(x.2, TransferPurpose::Migrate | TransferPurpose::Replicate))
            .max_by_key(|x| x.0 + x.1)
        {
            walker.push(PathSegment {
                start_ns: ts,
                end_ns: ts + dur,
                loc: leaf_loc,
                category: PathCategory::Transfer,
                label: format!("{} {bytes} B {src}→{dst}", purpose.name()),
            });
        }
        if let Some(park) = leaf_rec.park {
            walker.push(PathSegment {
                start_ns: park,
                end_ns: walker.cursor,
                loc: leaf_loc,
                category: PathCategory::LockWait,
                label: format!("task {leaf} parked on lock conflict"),
            });
        }
        if let Some(&(ts, dur, _, src, dst, bytes)) = leaf_rec
            .transfers
            .iter()
            .filter(|x| x.2 == TransferPurpose::TaskForward)
            .max_by_key(|x| x.0 + x.1)
        {
            let verb = if stolen.contains(&leaf) { "steal" } else { "forward" };
            walker.push(PathSegment {
                start_ns: ts,
                end_ns: ts + dur,
                loc: leaf_loc,
                category: PathCategory::Transfer,
                label: format!("{verb} {bytes} B {src}→{dst}"),
            });
        }

        // ---- climb: each ancestor's decomposition span and forward hop.
        for &anc in descent.iter().rev().skip(1) {
            let rec = &tasks[&anc];
            let span = rec.split.or(rec.exec);
            if let Some((ts, dur, loc)) = span {
                walker.push(PathSegment {
                    start_ns: ts,
                    end_ns: ts + dur,
                    loc,
                    category: PathCategory::Compute,
                    label: format!("split task {anc}"),
                });
            }
            if let Some(&(ts, dur, _, src, dst, bytes)) = rec
                .transfers
                .iter()
                .filter(|x| x.2 == TransferPurpose::TaskForward)
                .max_by_key(|x| x.0 + x.1)
            {
                walker.push(PathSegment {
                    start_ns: ts,
                    end_ns: ts + dur,
                    loc: rec.spawn.map(|(_, l, _)| l).unwrap_or(0),
                    category: PathCategory::Transfer,
                    label: format!("forward {bytes} B {src}→{dst}"),
                });
            }
        }

        // ---- chain into the previous phase: the root's spawn was caused
        // by the completion of the latest root task ending at or before it.
        let root = descent[0];
        let root_spawn = tasks[&root].spawn.map(|(ts, _, _)| ts);
        let prev = tasks
            .iter()
            .filter_map(|(id, r)| {
                let (end, _) = r.end?;
                let (_, _, parent) = r.spawn.or(Some((0, 0, None)))?;
                if parent.is_none() && *id != root && end <= root_spawn.unwrap_or(0) {
                    Some((end, *id))
                } else {
                    None
                }
            })
            .max();
        match prev {
            Some((_, prev_root)) if walker.cursor > 0 => current = prev_root,
            _ => break,
        }
    }

    // Close the chain down to t = 0.
    walker.fill_gap(0, 0);
    walker.segments.reverse();

    // Replay windows: [recovery, first phase begin surpassing prior
    // progress); chain time inside them is re-attributed.
    let mut windows: Vec<(u64, u64)> = Vec::new();
    for &r in &recoveries {
        let reached = phase_begins
            .iter()
            .filter(|&&(_, ts)| ts <= r)
            .map(|&(p, _)| p)
            .max()
            .unwrap_or(0);
        let end = phase_begins
            .iter()
            .filter(|&&(p, ts)| ts > r && p > reached)
            .map(|&(_, ts)| ts)
            .min()
            .unwrap_or(total_ns);
        windows.push((r, end));
    }

    let mut by: BTreeMap<PathCategory, u64> = PathCategory::ALL.iter().map(|c| (*c, 0)).collect();
    for seg in &walker.segments {
        let len = seg.ns();
        let replay: u64 = windows
            .iter()
            .map(|&(a, b)| {
                let lo = seg.start_ns.max(a);
                let hi = seg.end_ns.min(b);
                hi.saturating_sub(lo)
            })
            .sum::<u64>()
            .min(len);
        *by.get_mut(&PathCategory::RecoveryReplay).unwrap() += replay;
        *by.get_mut(&seg.category).unwrap() += len - replay;
    }

    CriticalPathReport {
        total_ns,
        segments: walker.segments,
        by_category: PathCategory::ALL.iter().map(|c| (*c, by[c])).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{SpawnVariant, TraceEvent};
    use crate::sink::{TraceConfig, TraceSink};

    /// A hand-built two-level run: root 0 splits into tasks 1 and 2; task
    /// 2 waits on a replicate transfer and gates the finish.
    fn synthetic() -> Trace {
        let sink = TraceSink::enabled(2, &TraceConfig::default());
        let i = |ts, loc, kind| TraceEvent::instant(ts, loc, kind);
        let s = |ts, dur, loc, kind| TraceEvent::span(ts, dur, loc, kind);
        sink.record(|| i(0, 0, EventKind::PhaseBegin { phase: 0 }));
        sink.record(|| {
            i(0, 0, EventKind::TaskSpawn { task: 0, parent: None, variant: SpawnVariant::Split, target: 0 })
        });
        sink.record(|| s(0, 100, 0, EventKind::TaskSplit { task: 0 }));
        for t in [1u64, 2u64] {
            sink.record(|| {
                i(100, 0, EventKind::TaskSpawn { task: t, parent: Some(0), variant: SpawnVariant::Process, target: 1 })
            });
        }
        sink.record(|| {
            s(100, 200, 1, EventKind::Transfer {
                purpose: TransferPurpose::TaskForward, src: 0, dst: 1, bytes: 64, task: Some(2), item: None, batch: None,
            })
        });
        sink.record(|| s(150, 300, 0, EventKind::TaskExec { task: 1 }).on_core(0));
        sink.record(|| i(450, 0, EventKind::TaskEnd { task: 1, parent: Some(0) }));
        // Task 2's boundary data arrives at t=800; it executes 800..1800.
        sink.record(|| {
            s(300, 500, 1, EventKind::Transfer {
                purpose: TransferPurpose::Replicate, src: 0, dst: 1, bytes: 4096, task: Some(2), item: Some(0), batch: None,
            })
        });
        sink.record(|| s(800, 1000, 1, EventKind::TaskExec { task: 2 }).on_core(1));
        sink.record(|| i(1800, 1, EventKind::TaskEnd { task: 2, parent: Some(0) }));
        sink.record(|| {
            s(1800, 150, 0, EventKind::Transfer {
                purpose: TransferPurpose::Result, src: 1, dst: 0, bytes: 16, task: Some(2), item: None, batch: None,
            })
        });
        sink.record(|| i(1950, 0, EventKind::TaskEnd { task: 0, parent: None }));
        sink.record(|| i(1950, 0, EventKind::PhaseEnd { phase: 0 }));
        sink.take().unwrap()
    }

    #[test]
    fn chain_explains_the_finish_time() {
        let report = critical_path(&synthetic());
        assert_eq!(report.total_ns, 1950);
        // Every nanosecond of [0, finish] is attributed.
        assert_eq!(report.attributed_ns(), 1950);
        // Segments are chronological and non-overlapping.
        for w in report.segments.windows(2) {
            assert!(w[0].end_ns <= w[1].start_ns, "{w:?}");
        }
    }

    #[test]
    fn attribution_finds_compute_and_the_gating_transfer() {
        let report = critical_path(&synthetic());
        // exec of task 2 (1000 ns) + split (100 ns) are compute.
        assert_eq!(report.category_ns(PathCategory::Compute), 1100);
        // replicate (500) + result (150) + forward portion land in transfer.
        assert!(report.category_ns(PathCategory::Transfer) >= 650);
        assert!(report
            .segments
            .iter()
            .any(|s| s.category == PathCategory::Transfer && s.label.starts_with("replicate")));
        assert_eq!(report.category_ns(PathCategory::RecoveryReplay), 0);
    }

    #[test]
    fn empty_trace_yields_empty_report() {
        let sink = TraceSink::enabled(1, &TraceConfig::default());
        let report = critical_path(&sink.take().unwrap());
        assert_eq!(report.total_ns, 0);
        assert!(report.segments.is_empty());
    }

    #[test]
    fn summary_renders_percentages() {
        let report = critical_path(&synthetic());
        let text = report.summary();
        assert!(text.contains("critical path"));
        assert!(text.contains("compute"));
        assert!(text.contains("transfer"));
    }
}

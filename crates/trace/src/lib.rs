//! # allscale-trace — structured tracing & profiling
//!
//! The paper's prototype leaned on an "extended monitoring
//! infrastructure" (Section 3.2) to observe scheduling, data movement and
//! index traffic; the runtime's [`Monitor`] scopes that to end-of-run
//! counters. This crate is the per-event side: a zero-cost-when-disabled
//! subsystem recording timestamped spans and instants *on the simulated
//! clock* into bounded per-locality ring buffers, plus two consumers of
//! the finished stream:
//!
//! - a **Chrome trace-event exporter** ([`Trace::to_chrome_json`]) whose
//!   output loads in Perfetto / `chrome://tracing`, with one track per
//!   locality·core and flow arrows linking `spawn → execute` and
//!   `send → receive`;
//! - a **critical-path analyzer** ([`critical_path`]) that walks the span
//!   graph of a finished run and attributes the longest dependency chain
//!   to compute / transfer / index / lock-wait / recovery-replay time.
//!
//! Recording never touches the simulated clock: a traced run and an
//! untraced run of the same program produce identical `RunReport`s, and
//! the same seed always produces a byte-identical export — both are
//! regression-tested.
//!
//! [`Monitor`]: https://docs.rs/allscale-core
//!
//! ## Example
//!
//! ```
//! use allscale_trace::{critical_path, EventKind, TraceConfig, TraceEvent, TraceSink};
//!
//! let sink = TraceSink::enabled(1, &TraceConfig::default());
//! sink.record(|| TraceEvent::span(0, 500, 0, EventKind::TaskExec { task: 7 }).on_core(0));
//! sink.record(|| TraceEvent::instant(500, 0, EventKind::TaskEnd { task: 7, parent: None }));
//! let trace = sink.take().unwrap();
//! assert!(trace.to_chrome_json().contains("\"ph\":\"X\""));
//! assert_eq!(critical_path(&trace).total_ns, 500);
//! ```

#![warn(missing_docs)]

mod chrome;
mod critical_path;
mod event;
mod sink;

pub use chrome::RUNTIME_TID;
pub use critical_path::{critical_path, CriticalPathReport, PathCategory, PathSegment};
pub use event::{EventKind, FlushCause, SpawnVariant, TraceEvent, TransferPurpose};
pub use sink::{Trace, TraceBuffer, TraceConfig, TraceSink};

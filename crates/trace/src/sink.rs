//! The recording side: bounded per-locality ring buffers behind a
//! cloneable handle that costs one branch when tracing is disabled.
//!
//! The runtime, the network layer and the data-item manager all hold
//! clones of one [`TraceSink`]. A disabled sink is a `None` — recording
//! through it is a single well-predicted branch and the event-constructing
//! closure is never evaluated, which is what makes tracing free to leave
//! compiled in. An enabled sink shares one [`TraceBuffer`] through an
//! `Arc<Mutex<_>>`: the simulation is single-threaded, so the lock is
//! never contended, but the handle stays `Send + Sync` for the
//! thread-actor-based MPI baseline.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::event::TraceEvent;

/// Tracing configuration.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Capacity of each per-locality ring buffer, in events. When a ring
    /// is full the oldest event is dropped (and counted): a bounded trace
    /// of the *end* of a run beats an unbounded allocation.
    pub ring_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            ring_capacity: 1 << 18, // 256 Ki events/locality ≈ 14 MiB/node
        }
    }
}

/// One locality's bounded event ring.
#[derive(Debug)]
struct Ring {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        Ring {
            events: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }
}

/// The shared recording state of an enabled sink.
#[derive(Debug)]
pub struct TraceBuffer {
    rings: Vec<Ring>,
    next_id: u64,
}

impl TraceBuffer {
    fn new(nodes: usize, cfg: &TraceConfig) -> Self {
        TraceBuffer {
            rings: (0..nodes.max(1)).map(|_| Ring::new(cfg.ring_capacity)).collect(),
            next_id: 0,
        }
    }

    fn push(&mut self, mut ev: TraceEvent) {
        ev.id = self.next_id;
        self.next_id += 1;
        let ring = (ev.loc as usize).min(self.rings.len() - 1);
        self.rings[ring].push(ev);
    }
}

/// A cloneable recording handle; disabled by default.
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    inner: Option<Arc<Mutex<TraceBuffer>>>,
}

impl TraceSink {
    /// A disabled sink: recording through it is a single branch.
    pub fn disabled() -> Self {
        TraceSink { inner: None }
    }

    /// An enabled sink with one ring buffer per locality.
    pub fn enabled(nodes: usize, cfg: &TraceConfig) -> Self {
        TraceSink {
            inner: Some(Arc::new(Mutex::new(TraceBuffer::new(nodes, cfg)))),
        }
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record one event. The closure building the event runs only when the
    /// sink is enabled — the disabled path is the branch on the `Option`
    /// and nothing else.
    #[inline]
    pub fn record(&self, build: impl FnOnce() -> TraceEvent) {
        if let Some(buf) = &self.inner {
            buf.lock().expect("trace buffer poisoned").push(build());
        }
    }

    /// Drain all recorded events into a finished [`Trace`], leaving the
    /// sink empty (but still enabled). Returns `None` on a disabled sink.
    pub fn take(&self) -> Option<Trace> {
        let buf = self.inner.as_ref()?;
        let mut b = buf.lock().expect("trace buffer poisoned");
        let nodes = b.rings.len();
        let mut events: Vec<TraceEvent> = Vec::new();
        let mut dropped = Vec::with_capacity(nodes);
        for ring in &mut b.rings {
            events.extend(ring.events.drain(..));
            dropped.push(ring.dropped);
            ring.dropped = 0;
        }
        events.sort_by_key(|e| (e.ts_ns, e.id));
        Some(Trace {
            nodes,
            events,
            dropped,
        })
    }
}

/// A finished, time-sorted event stream of one run.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Number of localities the trace was recorded over.
    pub nodes: usize,
    /// All events, sorted by `(ts_ns, id)`.
    pub events: Vec<TraceEvent>,
    /// Per-locality count of events lost to ring overflow.
    pub dropped: Vec<u64>,
}

impl Trace {
    /// Total number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events lost to ring overflow across all localities.
    pub fn total_dropped(&self) -> u64 {
        self.dropped.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(ts: u64, loc: u32) -> TraceEvent {
        TraceEvent::instant(ts, loc, EventKind::PhaseBegin { phase: 0 })
    }

    #[test]
    fn disabled_sink_records_nothing_and_never_builds() {
        let sink = TraceSink::disabled();
        let mut built = false;
        sink.record(|| {
            built = true;
            ev(1, 0)
        });
        assert!(!built, "closure must not run on the disabled path");
        assert!(sink.take().is_none());
    }

    #[test]
    fn events_are_sorted_and_ids_monotonic() {
        let sink = TraceSink::enabled(2, &TraceConfig::default());
        sink.record(|| ev(30, 1));
        sink.record(|| ev(10, 0));
        sink.record(|| ev(20, 1));
        let trace = sink.take().unwrap();
        let ts: Vec<u64> = trace.events.iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![10, 20, 30]);
        assert_eq!(trace.events[0].id, 1, "ids assigned in record order");
        assert_eq!(trace.total_dropped(), 0);
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let cfg = TraceConfig { ring_capacity: 4 };
        let sink = TraceSink::enabled(1, &cfg);
        for t in 0..10 {
            sink.record(|| ev(t, 0));
        }
        let trace = sink.take().unwrap();
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.total_dropped(), 6);
        // The survivors are the newest events.
        assert_eq!(trace.events.first().unwrap().ts_ns, 6);
    }

    #[test]
    fn take_drains_but_keeps_recording() {
        let sink = TraceSink::enabled(1, &TraceConfig::default());
        sink.record(|| ev(1, 0));
        assert_eq!(sink.take().unwrap().len(), 1);
        sink.record(|| ev(2, 0));
        let again = sink.take().unwrap();
        assert_eq!(again.len(), 1);
        assert_eq!(again.events[0].ts_ns, 2);
    }

    #[test]
    fn out_of_range_locality_is_clamped() {
        let sink = TraceSink::enabled(2, &TraceConfig::default());
        sink.record(|| ev(5, 7));
        assert_eq!(sink.take().unwrap().len(), 1);
    }
}

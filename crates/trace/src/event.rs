//! The event taxonomy: everything the runtime can record, as plain data.
//!
//! An event is either an *instant* (`dur_ns == 0`) or a *span* (`dur_ns >
//! 0`) on the simulated clock, attributed to one locality and optionally
//! one core of that locality. Payloads are small `Copy` values — task,
//! item and locality identifiers, byte counts, hop counts — so recording
//! an event never chases pointers or allocates.

/// Why a message crossed the network (semantic label on transfer spans).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferPurpose {
    /// A task descriptor forwarded to its execution locality.
    TaskForward,
    /// An ownership migration of a data-item region.
    Migrate,
    /// A read replica of a data-item region.
    Replicate,
    /// A runtime-initiated persistent broadcast replica.
    Broadcast,
    /// A task result travelling to its parent.
    Result,
    /// A control message (index hops, replica releases, requests).
    Control,
    /// A scrubber repair shipping a fresh copy to a divergent replica.
    Scrub,
}

impl TransferPurpose {
    /// Short name used in exports and reports.
    pub fn name(self) -> &'static str {
        match self {
            TransferPurpose::TaskForward => "forward",
            TransferPurpose::Migrate => "migrate",
            TransferPurpose::Replicate => "replicate",
            TransferPurpose::Broadcast => "broadcast",
            TransferPurpose::Result => "result",
            TransferPurpose::Control => "control",
            TransferPurpose::Scrub => "scrub",
        }
    }
}

/// Why a coalesced batch left the sender's buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FlushCause {
    /// The flush window (`max_delay_ns`) expired.
    Window = 0,
    /// The byte cap was reached.
    Bytes = 1,
    /// The message-count cap was reached.
    Msgs = 2,
}

impl FlushCause {
    /// Short name used in exports and reports.
    pub fn name(self) -> &'static str {
        match self {
            FlushCause::Window => "window",
            FlushCause::Bytes => "bytes",
            FlushCause::Msgs => "msgs",
        }
    }

    /// All causes, in stats-array order.
    pub const ALL: [FlushCause; 3] = [FlushCause::Window, FlushCause::Bytes, FlushCause::Msgs];
}

/// Which variant the scheduler picked for a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpawnVariant {
    /// Decomposition (split) variant.
    Split,
    /// Leaf execution (process) variant.
    Process,
}

/// The payload of one trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    // ------------------------------------------------------ task lifecycle
    /// A task was created and assigned by Algorithm 2 (instant, at the
    /// spawning locality).
    TaskSpawn {
        /// The new task.
        task: u64,
        /// Its parent task, if any.
        parent: Option<u64>,
        /// The variant the policy picked.
        variant: SpawnVariant,
        /// The locality the task was sent to.
        target: u32,
    },
    /// A split-variant task decomposing into children (span: the split
    /// overhead on a core).
    TaskSplit {
        /// The splitting task.
        task: u64,
    },
    /// A process-variant task body occupying a core (span).
    TaskExec {
        /// The executing task.
        task: u64,
    },
    /// A task (leaf or combined parent) completed (instant).
    TaskEnd {
        /// The finished task.
        task: u64,
        /// Its parent task, if any.
        parent: Option<u64>,
    },
    /// A task was parked on a lock conflict (instant).
    TaskParked {
        /// The parked task.
        task: u64,
    },
    // ------------------------------------------------------ data-item ops
    /// A data item was registered cluster-wide (instant).
    ItemCreate {
        /// The new item.
        item: u32,
    },
    /// A data item was destroyed everywhere (instant).
    ItemDestroy {
        /// The destroyed item.
        item: u32,
    },
    /// A region was first-touch allocated (instant).
    FirstTouch {
        /// The touched item.
        item: u32,
        /// The task whose requirement triggered the allocation.
        task: u64,
    },
    // ---------------------------------------------------------- transfers
    /// A message delivered over the simulated network (span from send to
    /// full arrival, attributed to the *destination* locality).
    Transfer {
        /// Why the message was sent.
        purpose: TransferPurpose,
        /// Sending locality.
        src: u32,
        /// Receiving locality.
        dst: u32,
        /// Payload size.
        bytes: u64,
        /// The task this transfer feeds (forward/migrate/replicate: the
        /// waiting task; result: the finished child).
        task: Option<u64>,
        /// The data item moved, if any.
        item: Option<u32>,
        /// The coalesced batch this message rode in, if batching was on.
        batch: Option<u64>,
    },
    /// A coalesced batch leaving the wire as one priced message (span
    /// from the flush to full arrival, attributed to the *destination*
    /// locality — mirroring [`EventKind::Transfer`]).
    BatchFlush {
        /// Sending locality.
        src: u32,
        /// Receiving locality.
        dst: u32,
        /// Number of aggregated messages.
        msgs: u32,
        /// Total payload bytes of the batch.
        bytes: u64,
        /// What triggered the flush.
        cause: FlushCause,
        /// Batch id linking member [`EventKind::Transfer`] events here.
        batch: u64,
    },
    /// A message definitively lost (dead endpoint or retries exhausted;
    /// instant at the send time).
    TransferLost {
        /// Why the message was sent.
        purpose: TransferPurpose,
        /// Sending locality.
        src: u32,
        /// Intended receiving locality.
        dst: u32,
        /// Payload size.
        bytes: u64,
        /// The task stranded by the loss, if any.
        task: Option<u64>,
    },
    // -------------------------------------------------------------- index
    /// A data-location resolution (Algorithm 1; instant at the asking
    /// locality).
    IndexLookup {
        /// The resolved item.
        item: u32,
        /// Control-message hops the traversal cost.
        hops: u32,
        /// Whether the location cache answered without hops.
        cache_hit: bool,
    },
    /// An index leaf update with its upward propagation (instant).
    IndexUpdate {
        /// The updated item.
        item: u32,
        /// Propagation hops.
        hops: u32,
    },
    // ----------------------------------------------------- network faults
    /// A transfer attempt dropped by fault injection (instant, recorded by
    /// the network layer).
    NetDrop {
        /// Sending locality.
        src: u32,
        /// Receiving locality.
        dst: u32,
        /// Payload size of the lost attempt.
        bytes: u64,
    },
    /// A transfer delivered late because of an injected delay (instant).
    NetDelay {
        /// Sending locality.
        src: u32,
        /// Receiving locality.
        dst: u32,
        /// Injected extra latency.
        extra_ns: u64,
    },
    /// A retry attempt after a dropped transfer (instant at the moment the
    /// sender re-sends, backoff already elapsed).
    NetRetry {
        /// Sending locality.
        src: u32,
        /// Receiving locality.
        dst: u32,
        /// 1-based attempt number of the retry.
        attempt: u32,
        /// Simulated nanoseconds of timeout + backoff before this retry.
        backoff_ns: u64,
    },
    /// A transfer arrived with a mangled payload (instant at the
    /// receiver; recorded by the network layer).
    NetCorrupt {
        /// Sending locality.
        src: u32,
        /// Receiving locality.
        dst: u32,
        /// Payload size of the corrupted message.
        bytes: u64,
        /// Whether checksum verification caught it (integrity on).
        detected: bool,
    },
    // ---------------------------------------------------------- integrity
    /// The background scrubber audited one locality's replicas against
    /// their owners (instant at the scrubbed locality).
    ScrubPass {
        /// Replicas fingerprint-compared in this pass.
        replicas: u32,
        /// Replicas found divergent from their owner.
        divergent: u32,
    },
    /// The scrubber repaired a divergent replica with a fresh copy from
    /// the owner (instant at the repaired locality).
    ScrubRepair {
        /// The repaired item.
        item: u32,
        /// The owner locality the fresh copy came from.
        owner: u32,
        /// Bytes re-shipped.
        bytes: u64,
    },
    /// A replica that kept diverging was evicted from the replica set
    /// (instant at the quarantined locality).
    Quarantine {
        /// The item whose replica was evicted.
        item: u32,
        /// Divergences observed before eviction.
        strikes: u32,
    },
    // --------------------------------------------------------- resilience
    /// A cluster-wide checkpoint was taken (instant, locality 0).
    Checkpoint {
        /// Phase boundary at which the snapshot was taken.
        phase: u32,
        /// Serialized size of the snapshot.
        bytes: u64,
    },
    /// An asynchronous checkpoint draining to the storage tiers in the
    /// background (span from capture to durable commit, locality 0).
    CheckpointDrain {
        /// Phase boundary the snapshot belongs to.
        phase: u32,
        /// Shards persisted (all of them for an anchor, changed ones
        /// for a delta).
        shards: u32,
        /// Bytes written to each storage tier.
        bytes: u64,
    },
    /// A phase boundary stalled on the write-fence because the previous
    /// checkpoint's drain had not finished (span, locality 0).
    CheckpointFence {
        /// The boundary that waited.
        phase: u32,
    },
    /// An in-flight checkpoint was discarded torn because a recovery
    /// interrupted its drain (instant, locality 0).
    CheckpointTorn {
        /// The boundary whose snapshot was abandoned.
        phase: u32,
    },
    /// The failure detector counted a missed heartbeat (instant).
    Suspicion {
        /// The suspected locality.
        suspect: u32,
        /// Consecutive misses so far.
        misses: u32,
    },
    /// A locality was declared dead and the cluster recovered (instant,
    /// locality 0).
    Recovery {
        /// The locality declared dead.
        dead: u32,
        /// The phase the run was rewound to.
        phase: u32,
        /// Checkpointed bytes grafted onto the heir.
        restored_bytes: u64,
    },
    // ---------------------------------------------------------- scheduler
    /// An idle locality asked a victim for queued work (instant at the
    /// thief; the request itself is a billed control transfer).
    StealRequest {
        /// The asking (idle) locality.
        thief: u32,
        /// The locality asked.
        victim: u32,
    },
    /// A victim handed the back of its queue to a thief (instant at the
    /// victim; the descriptor travels as a billed `TaskForward`).
    StealGrant {
        /// The granting locality.
        victim: u32,
        /// The receiving locality.
        thief: u32,
        /// The stolen task.
        task: u64,
    },
    /// A victim had nothing to give (instant at the victim; the reply
    /// is a billed control transfer).
    StealDeny {
        /// The denying locality.
        victim: u32,
        /// The asking locality.
        thief: u32,
    },
    // ------------------------------------------------------------ serving
    /// An open-loop request hit the cluster (instant at the frontend
    /// locality, on the arrival process's clock).
    RequestArrival {
        /// Sequence number of the request in the arrival stream.
        req: u64,
        /// The shard the request addresses.
        shard: u32,
        /// Whether the request mutates the shard.
        write: bool,
    },
    /// An admitted request's life from arrival to reply (span at the
    /// frontend: arrival → admission → execute → reply).
    Request {
        /// Sequence number of the request.
        req: u64,
        /// The shard the request addressed.
        shard: u32,
        /// Whether the request mutated the shard.
        write: bool,
    },
    /// A request was admitted and its root task spawned (instant at the
    /// frontend).
    RequestAdmit {
        /// Sequence number of the request.
        req: u64,
        /// The root task serving it.
        task: u64,
    },
    /// A request was turned away at admission because its shard's tail
    /// latency breached the SLO (instant at the frontend).
    RequestShed {
        /// Sequence number of the request.
        req: u64,
        /// The overloaded shard.
        shard: u32,
    },
    /// The SLO controller replicated a hot shard to every live locality
    /// (instant at the controller locality).
    SloReplicate {
        /// The replicated shard.
        shard: u32,
        /// The shard's p99 latency that triggered the action.
        p99_ns: u64,
    },
    /// The SLO controller retired a cold shard's broadcast replicas
    /// (instant at the controller locality).
    SloRetire {
        /// The shard whose replicas were retired.
        shard: u32,
    },
    // -------------------------------------------------------- application
    /// A phase's root work item was requested from the driver (instant,
    /// locality 0).
    PhaseBegin {
        /// 0-based phase index.
        phase: u32,
    },
    /// A phase's task tree fully completed (instant, locality 0).
    PhaseEnd {
        /// 0-based phase index.
        phase: u32,
    },
}

impl EventKind {
    /// Short display/export name.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::TaskSpawn { .. } => "spawn",
            EventKind::TaskSplit { .. } => "split",
            EventKind::TaskExec { .. } => "exec",
            EventKind::TaskEnd { .. } => "end",
            EventKind::TaskParked { .. } => "parked",
            EventKind::ItemCreate { .. } => "create",
            EventKind::ItemDestroy { .. } => "destroy",
            EventKind::FirstTouch { .. } => "first-touch",
            EventKind::Transfer { purpose, .. } => purpose.name(),
            EventKind::BatchFlush { .. } => "batch-flush",
            EventKind::TransferLost { .. } => "lost",
            EventKind::IndexLookup { .. } => "lookup",
            EventKind::IndexUpdate { .. } => "update",
            EventKind::NetDrop { .. } => "drop",
            EventKind::NetDelay { .. } => "delay",
            EventKind::NetRetry { .. } => "retry",
            EventKind::NetCorrupt { .. } => "corrupt",
            EventKind::ScrubPass { .. } => "scrub-pass",
            EventKind::ScrubRepair { .. } => "scrub-repair",
            EventKind::Quarantine { .. } => "quarantine",
            EventKind::Checkpoint { .. } => "checkpoint",
            EventKind::CheckpointDrain { .. } => "ckpt-drain",
            EventKind::CheckpointFence { .. } => "ckpt-fence",
            EventKind::CheckpointTorn { .. } => "ckpt-torn",
            EventKind::Suspicion { .. } => "suspicion",
            EventKind::Recovery { .. } => "recovery",
            EventKind::StealRequest { .. } => "steal-request",
            EventKind::StealGrant { .. } => "steal-grant",
            EventKind::StealDeny { .. } => "steal-deny",
            EventKind::RequestArrival { .. } => "req-arrival",
            EventKind::Request { .. } => "request",
            EventKind::RequestAdmit { .. } => "req-admit",
            EventKind::RequestShed { .. } => "req-shed",
            EventKind::SloReplicate { .. } => "slo-replicate",
            EventKind::SloRetire { .. } => "slo-retire",
            EventKind::PhaseBegin { .. } => "phase-begin",
            EventKind::PhaseEnd { .. } => "phase-end",
        }
    }

    /// Export category (one per subsystem; Perfetto filters on these).
    pub fn category(&self) -> &'static str {
        match self {
            EventKind::TaskSpawn { .. }
            | EventKind::TaskSplit { .. }
            | EventKind::TaskExec { .. }
            | EventKind::TaskEnd { .. }
            | EventKind::TaskParked { .. } => "task",
            EventKind::ItemCreate { .. }
            | EventKind::ItemDestroy { .. }
            | EventKind::FirstTouch { .. } => "data",
            EventKind::Transfer { .. }
            | EventKind::BatchFlush { .. }
            | EventKind::TransferLost { .. } => "net",
            EventKind::IndexLookup { .. } | EventKind::IndexUpdate { .. } => "index",
            EventKind::NetDrop { .. }
            | EventKind::NetDelay { .. }
            | EventKind::NetRetry { .. }
            | EventKind::NetCorrupt { .. } => "fault",
            EventKind::ScrubPass { .. }
            | EventKind::ScrubRepair { .. }
            | EventKind::Quarantine { .. } => "integrity",
            EventKind::Checkpoint { .. }
            | EventKind::CheckpointDrain { .. }
            | EventKind::CheckpointFence { .. }
            | EventKind::CheckpointTorn { .. }
            | EventKind::Suspicion { .. }
            | EventKind::Recovery { .. } => "resilience",
            EventKind::StealRequest { .. }
            | EventKind::StealGrant { .. }
            | EventKind::StealDeny { .. } => "sched",
            EventKind::RequestArrival { .. }
            | EventKind::Request { .. }
            | EventKind::RequestAdmit { .. }
            | EventKind::RequestShed { .. }
            | EventKind::SloReplicate { .. }
            | EventKind::SloRetire { .. } => "serve",
            EventKind::PhaseBegin { .. } | EventKind::PhaseEnd { .. } => "phase",
        }
    }
}

/// One recorded trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Globally monotonic id, assigned by the sink at record time. Doubles
    /// as the tie-breaker that makes exports byte-stable and as the flow-id
    /// namespace for transfer arrows.
    pub id: u64,
    /// Begin time (spans) or occurrence time (instants), simulated ns.
    pub ts_ns: u64,
    /// Span duration in ns; 0 marks an instant.
    pub dur_ns: u64,
    /// The locality the event is attributed to.
    pub loc: u32,
    /// Core index within the locality, or -1 for the communication /
    /// runtime track.
    pub core: i32,
    /// Recovery epoch the event was recorded in (0 before any recovery).
    pub epoch: u32,
    /// The payload.
    pub kind: EventKind,
}

impl TraceEvent {
    /// An instant event on `loc`'s runtime track.
    pub fn instant(ts_ns: u64, loc: u32, kind: EventKind) -> Self {
        TraceEvent {
            id: 0,
            ts_ns,
            dur_ns: 0,
            loc,
            core: -1,
            epoch: 0,
            kind,
        }
    }

    /// A span `[ts_ns, ts_ns + dur_ns]` on `loc`'s runtime track.
    pub fn span(ts_ns: u64, dur_ns: u64, loc: u32, kind: EventKind) -> Self {
        TraceEvent {
            id: 0,
            ts_ns,
            dur_ns,
            loc,
            core: -1,
            epoch: 0,
            kind,
        }
    }

    /// Attribute the event to a specific core of its locality.
    pub fn on_core(mut self, core: usize) -> Self {
        self.core = core as i32;
        self
    }

    /// Stamp the recovery epoch.
    pub fn in_epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch as u32;
        self
    }

    /// End time of the event (== `ts_ns` for instants).
    pub fn end_ns(&self) -> u64 {
        self.ts_ns + self.dur_ns
    }
}

//! End-to-end scheduler throughput: how many (empty) tasks per second the
//! runtime can assign, place, and complete — the fixed overhead that caps
//! fine-grained workloads like TPC (paper Algorithm 2 and Section 4.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use allscale_core::{
    pfor, Grid, PforSpec, Requirement, RtConfig, RtCtx, Runtime, TaskValue, WorkItem,
};
use allscale_region::BoxRegion;

/// Run one pfor of `leaves` single-element tasks on `nodes` nodes and
/// return (virtual ns, host wall seconds are criterion's concern).
fn run_tasks(nodes: usize, leaves: i64) {
    let runtime = Runtime::new(RtConfig::test(nodes, 4));
    runtime.run(
        move |phase: usize, ctx: &mut RtCtx<'_>, _prev: TaskValue| -> Option<Box<dyn WorkItem>> {
            if phase > 0 {
                return None;
            }
            let g = Grid::<u64, 1>::create(ctx, "v", [leaves]);
            Some(pfor(
                PforSpec {
                    name: "noop-tasks",
                    range: g.full_box(),
                    grain: 1,
                    ns_per_point: 100.0,
                    axis0_pieces: nodes as u64,
                },
                move |tile| vec![Requirement::write(g.id, BoxRegion::from_box(*tile))],
                move |tctx, p| {
                    g.set(tctx, p.0, 1);
                },
            ))
        },
    );
}

fn bench_task_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler");
    g.sample_size(10);
    for &nodes in &[1usize, 4, 16] {
        g.bench_with_input(
            BenchmarkId::new("assign_place_complete_256_tasks", nodes),
            &nodes,
            |b, &nodes| b.iter(|| run_tasks(nodes, 256)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_task_throughput);
criterion_main!(benches);

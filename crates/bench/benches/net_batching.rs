//! Host-side cost of the message-coalescing layer, swept over the flush
//! window, on the communication-heavy stencil shape (8 nodes, 64×64
//! local grids): the coalescer must buy its simulated-makespan win
//! without a measurable host-time cost per simulated message.
//!
//! - `off`: batching disabled — the ablation baseline every message is
//!   priced individually.
//! - `window_2us`: the default knobs (2 µs window, 64 KiB / 64-message
//!   caps) — what `BatchParams::default()` ships.
//! - `window_10us`: a 5× wider window — more joins per flush, more
//!   buffered state, the worst case for coalescer bookkeeping.
//!
//! EXPERIMENTS.md quotes the resulting numbers next to the simulated
//! message-count and makespan effects (which this bench does not
//! measure — see `examples/batching.rs` for those).

use criterion::{criterion_group, criterion_main, Criterion};

use allscale_apps::stencil::{allscale_version, StencilConfig};
use allscale_core::{BatchParams, RtConfig};

const NODES: usize = 8;

fn run(batching: Option<BatchParams>) -> u64 {
    let cfg = StencilConfig {
        nodes: NODES,
        rows_per_node: 64,
        cols: 64,
        steps: 4,
        validate: false,
        work_scale: 1.0,
    };
    let mut rt = RtConfig::meggie(NODES);
    if let Some(p) = batching {
        rt = rt.with_batching(p);
    }
    let (_, report) = allscale_version::run_with_report(&cfg, rt);
    report.remote_msgs
}

fn bench_net_batching(c: &mut Criterion) {
    let mut g = c.benchmark_group("net_batching");
    g.sample_size(10);
    g.bench_function("off", |b| b.iter(|| run(None)));
    g.bench_function("window_2us", |b| {
        b.iter(|| run(Some(BatchParams::default())))
    });
    g.bench_function("window_10us", |b| {
        b.iter(|| {
            run(Some(BatchParams {
                max_delay_ns: 10_000,
                ..BatchParams::default()
            }))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_net_batching);
criterion_main!(benches);

//! Microbenchmarks of the discrete-event simulation kernel: event
//! scheduling/dispatch throughput and core-pool accounting — the substrate
//! everything else's wall-clock cost rests on.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use allscale_des::{CorePool, Sim, SimDuration, SimTime};

fn bench_event_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("des");
    for &n in &[1_000usize, 100_000] {
        g.bench_with_input(BenchmarkId::new("schedule_run", n), &n, |b, &n| {
            b.iter(|| {
                let mut sim = Sim::new(0u64);
                for i in 0..n {
                    sim.schedule(SimDuration::from_nanos((i % 97) as u64), |sim| {
                        sim.world += 1;
                    });
                }
                sim.run();
                black_box(sim.world)
            })
        });
    }
    // Self-rescheduling chain: the pattern of message hand-offs.
    g.bench_function("event_chain_10k", |b| {
        fn hop(sim: &mut Sim<u64>) {
            if sim.world < 10_000 {
                sim.world += 1;
                sim.schedule(SimDuration::from_nanos(3), hop);
            }
        }
        b.iter(|| {
            let mut sim = Sim::new(0u64);
            sim.schedule(SimDuration::ZERO, hop);
            sim.run();
            black_box(sim.world)
        })
    });
    g.finish();
}

fn bench_core_pool(c: &mut Criterion) {
    c.bench_function("core_pool/acquire_20cores", |b| {
        b.iter(|| {
            let mut pool = CorePool::new(20);
            let mut last = SimTime::ZERO;
            for i in 0..1000u64 {
                let (_, end) = pool.acquire(SimTime::from_nanos(i), SimDuration::from_nanos(50));
                last = last.max(end);
            }
            black_box(last)
        })
    });
}

criterion_group!(benches, bench_event_dispatch, bench_core_pool);
criterion_main!(benches);

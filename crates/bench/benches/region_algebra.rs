//! Microbenchmarks of the region algebra (paper Section 3.1: "represen-
//! tations ought to be efficient, both in space and runtime complexity").
//! Covers the three Fig. 4 schemes at varying fragmentation levels.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use allscale_region::{BitmaskTreeRegion, BoxRegion, Region, TreePath, TreeRegion};

/// A checkerboard-ish region of `n` disjoint boxes.
fn fragmented(n: i64) -> BoxRegion<2> {
    BoxRegion::from_boxes((0..n).map(|i| {
        allscale_region::GridBox::new(
            allscale_region::Point([i * 20, (i % 7) * 20]),
            allscale_region::Point([i * 20 + 10, (i % 7) * 20 + 10]),
        )
        .unwrap()
    }))
}

fn bench_box_regions(c: &mut Criterion) {
    let mut g = c.benchmark_group("box_region");
    for &n in &[4i64, 16, 64] {
        let a = fragmented(n);
        let b = {
            // Shifted copy: partial overlaps everywhere.
            BoxRegion::from_boxes((0..n).map(|i| {
                allscale_region::GridBox::new(
                    allscale_region::Point([i * 20 + 5, (i % 7) * 20 + 5]),
                    allscale_region::Point([i * 20 + 15, (i % 7) * 20 + 15]),
                )
                .unwrap()
            }))
        };
        g.bench_with_input(BenchmarkId::new("union", n), &n, |bch, _| {
            bch.iter(|| black_box(&a).union(black_box(&b)))
        });
        g.bench_with_input(BenchmarkId::new("intersect", n), &n, |bch, _| {
            bch.iter(|| black_box(&a).intersect(black_box(&b)))
        });
        g.bench_with_input(BenchmarkId::new("difference", n), &n, |bch, _| {
            bch.iter(|| black_box(&a).difference(black_box(&b)))
        });
    }
    g.finish();
}

fn bench_halo_pattern(c: &mut Criterion) {
    // The hot pattern of the stencil benchmark: dilate a tile, subtract
    // the owned block, split the remainder by owner.
    let universe = allscale_region::GridBox::<2>::from_shape([4096, 4096]).unwrap();
    let tile = BoxRegion::cuboid([1024, 0], [2048, 4096]);
    let owned = BoxRegion::cuboid([1024, 0], [2048, 4096]);
    c.bench_function("halo/dilate_subtract", |b| {
        b.iter(|| {
            let read = black_box(&tile).dilate_within(1, &universe);
            read.difference(black_box(&owned))
        })
    });
}

fn bench_tree_regions(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree_region");
    // Flexible scheme: include/exclude sets of increasing depth.
    for &depth in &[4u8, 8, 12] {
        let mut left_path = TreePath::ROOT;
        let mut right_path = TreePath::ROOT;
        for _ in 0..depth {
            left_path = left_path.left();
            right_path = right_path.right();
        }
        let a = TreeRegion::from_include_exclude(&[TreePath::ROOT], &[left_path]);
        let b = TreeRegion::from_include_exclude(&[TreePath::ROOT], &[right_path]);
        g.bench_with_input(BenchmarkId::new("flexible_ops", depth), &depth, |bch, _| {
            bch.iter(|| {
                let u = black_box(&a).union(black_box(&b));
                let i = a.intersect(&b);
                let d = a.difference(&b);
                (u, i, d)
            })
        });
    }
    // Blocked scheme (Fig. 4c): pure bitmask ops — orders of magnitude
    // cheaper, which is the point of the coarser representation.
    for &h in &[4u8, 8, 12] {
        let mut a = BitmaskTreeRegion::new(h);
        let mut b = BitmaskTreeRegion::new(h);
        for i in 0..(1usize << h) {
            if i % 2 == 0 {
                a.set_subtree(i, true);
            }
            if i % 3 == 0 {
                b.set_subtree(i, true);
            }
        }
        g.bench_with_input(BenchmarkId::new("blocked_ops", h), &h, |bch, _| {
            bch.iter(|| {
                let u = black_box(&a).union(black_box(&b));
                let i = a.intersect(&b);
                let d = a.difference(&b);
                (u, i, d)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_box_regions, bench_halo_pattern, bench_tree_regions);
criterion_main!(benches);

//! Microbenchmarks of the hierarchical distributed index (paper Fig. 5 +
//! Algorithm 1) against the central-directory ablation (A1): resolution
//! cost and hop counts across cluster sizes, plus cached vs. uncached
//! repeat-resolutions through the [`LocationCache`].

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use allscale_core::{CentralIndex, DistIndex, ItemId, LocationCache};
use allscale_region::{BoxRegion, Region};

fn r1(lo: i64, hi: i64) -> BoxRegion<1> {
    BoxRegion::cuboid([lo], [hi])
}

fn populated_dist(procs: usize) -> DistIndex {
    let mut idx = DistIndex::new(procs);
    idx.register_item(ItemId(0), &BoxRegion::<1>::empty());
    for p in 0..procs {
        let lo = p as i64 * 100;
        idx.update_leaf(ItemId(0), p, Box::new(r1(lo, lo + 100)));
    }
    idx
}

fn populated_central(procs: usize) -> CentralIndex {
    let mut idx = CentralIndex::new(procs);
    idx.register_item(ItemId(0), &BoxRegion::<1>::empty());
    for p in 0..procs {
        let lo = p as i64 * 100;
        idx.update_leaf(ItemId(0), p, Box::new(r1(lo, lo + 100)));
    }
    idx
}

fn bench_resolution(c: &mut Criterion) {
    let mut g = c.benchmark_group("index_resolve");
    for &procs in &[8usize, 64, 256] {
        let dist = populated_dist(procs);
        let central = populated_central(procs);
        // A local lookup, a sibling lookup, and a cross-cluster lookup.
        let local = r1(0, 100);
        let far = r1((procs as i64 - 1) * 100, procs as i64 * 100);
        let spread = r1(50, (procs as i64) * 100 - 50);
        g.bench_with_input(BenchmarkId::new("dist_local", procs), &procs, |b, _| {
            b.iter(|| dist.resolve(ItemId(0), 0, black_box(&local)))
        });
        g.bench_with_input(BenchmarkId::new("dist_far", procs), &procs, |b, _| {
            b.iter(|| dist.resolve(ItemId(0), 0, black_box(&far)))
        });
        g.bench_with_input(BenchmarkId::new("dist_spread", procs), &procs, |b, _| {
            b.iter(|| dist.resolve(ItemId(0), 0, black_box(&spread)))
        });
        g.bench_with_input(BenchmarkId::new("central_far", procs), &procs, |b, _| {
            b.iter(|| central.resolve(ItemId(0), 0, black_box(&far)))
        });
    }
    g.finish();
}

/// Repeat-resolution of a stable distribution: the scheduler's steady-state
/// access pattern. The cached variant should beat the uncached traversal by
/// a wide margin (acceptance: ≥ 5× at 64 processes) because a warm hit is a
/// hash lookup plus a piece-list clone, with zero control-message hops.
fn bench_cached_resolution(c: &mut Criterion) {
    let mut g = c.benchmark_group("index_resolve_cached");
    for &procs in &[8usize, 64, 256] {
        let dist = populated_dist(procs);
        let far = r1((procs as i64 - 1) * 100, procs as i64 * 100);
        let spread = r1(50, (procs as i64) * 100 - 50);
        g.bench_with_input(BenchmarkId::new("uncached_far", procs), &procs, |b, _| {
            b.iter(|| dist.resolve(ItemId(0), 0, black_box(&far)))
        });
        g.bench_with_input(BenchmarkId::new("cached_far", procs), &procs, |b, _| {
            let mut cache = LocationCache::new();
            cache.resolve(&dist, ItemId(0), 0, &far); // warm
            b.iter(|| cache.resolve(&dist, ItemId(0), 0, black_box(&far)))
        });
        g.bench_with_input(
            BenchmarkId::new("uncached_spread", procs),
            &procs,
            |b, _| b.iter(|| dist.resolve(ItemId(0), 0, black_box(&spread))),
        );
        g.bench_with_input(BenchmarkId::new("cached_spread", procs), &procs, |b, _| {
            let mut cache = LocationCache::new();
            cache.resolve(&dist, ItemId(0), 0, &spread); // warm
            b.iter(|| cache.resolve(&dist, ItemId(0), 0, black_box(&spread)))
        });
    }
    g.finish();
}

fn bench_updates(c: &mut Criterion) {
    let mut g = c.benchmark_group("index_update");
    for &procs in &[8usize, 64, 256] {
        g.bench_with_input(BenchmarkId::new("dist", procs), &procs, |b, _| {
            let mut idx = populated_dist(procs);
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % procs;
                idx.update_leaf(
                    ItemId(0),
                    i,
                    Box::new(r1(i as i64 * 100, i as i64 * 100 + 100)),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_resolution, bench_cached_resolution, bench_updates);
criterion_main!(benches);

//! Microbenchmarks of fragment operations: extract/insert (the data paths
//! of replica and migration transfers) and the wire codec round-trip that
//! every inter-locality transfer pays.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use allscale_net::wire;
use allscale_region::{BoxRegion, Fragment, GridFragment};

fn filled(n: i64) -> GridFragment<f64, 2> {
    let mut f = GridFragment::new(&BoxRegion::cuboid([0, 0], [n, n]));
    f.for_each_mut(|p, v| *v = (p[0] * n + p[1]) as f64);
    f
}

fn bench_extract_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("fragment");
    for &n in &[64i64, 256] {
        let f = filled(n);
        // Halo row: the stencil's per-step transfer.
        let halo = BoxRegion::cuboid([n - 1, 0], [n, n]);
        g.bench_with_input(BenchmarkId::new("extract_halo", n), &n, |b, _| {
            b.iter(|| black_box(&f).extract(black_box(&halo)))
        });
        // Half-block: a migration-sized extract.
        let half = BoxRegion::cuboid([0, 0], [n / 2, n]);
        g.bench_with_input(BenchmarkId::new("extract_half", n), &n, |b, _| {
            b.iter(|| black_box(&f).extract(black_box(&half)))
        });
        let piece = f.extract(&half);
        g.bench_with_input(BenchmarkId::new("insert_half", n), &n, |b, _| {
            b.iter(|| {
                let mut dst = GridFragment::<f64, 2>::empty();
                dst.insert(black_box(&piece));
                dst
            })
        });
    }
    g.finish();
}

fn bench_wire_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire");
    for &n in &[64i64, 256] {
        let f = filled(n);
        let bytes = wire::encode(&f).unwrap();
        g.bench_with_input(BenchmarkId::new("encode_fragment", n), &n, |b, _| {
            b.iter(|| wire::encode(black_box(&f)).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("decode_fragment", n), &n, |b, _| {
            b.iter(|| wire::decode::<GridFragment<f64, 2>>(black_box(&bytes)).unwrap())
        });
        g.throughput(criterion::Throughput::Bytes(bytes.len() as u64));
    }
    g.finish();
}

criterion_group!(benches, bench_extract_insert, bench_wire_codec);
criterion_main!(benches);

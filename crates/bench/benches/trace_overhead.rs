//! Cost of the structured tracing subsystem, measured end-to-end on a
//! task-dense workload (many tiny tasks → maximum events per unit of
//! simulated work):
//!
//! - `disabled`: tracing compiled in but off — the sink is a `None`, so
//!   every record site is one branch. This is the configuration every
//!   normal run pays; it should be indistinguishable from the pre-tracing
//!   runtime.
//! - `enabled`: full recording into the per-locality rings.
//! - `enabled_export`: recording plus the Chrome JSON serialization.
//!
//! EXPERIMENTS.md quotes the resulting overhead numbers.

use criterion::{criterion_group, criterion_main, Criterion};

use allscale_core::{
    pfor, Grid, PforSpec, Requirement, RtConfig, RtCtx, RunReport, Runtime, TaskValue,
    TraceConfig, WorkItem,
};
use allscale_region::BoxRegion;

const NODES: usize = 4;
const LEAVES: i64 = 512;

/// One pfor of `LEAVES` single-element tasks: every task generates spawn,
/// forward, first-touch/replicate, exec, end and result events.
fn run_tasks(trace: Option<TraceConfig>) -> RunReport {
    let mut cfg = RtConfig::test(NODES, 4);
    cfg.trace = trace;
    let runtime = Runtime::new(cfg);
    runtime.run(
        move |phase: usize, ctx: &mut RtCtx<'_>, _prev: TaskValue| -> Option<Box<dyn WorkItem>> {
            if phase > 0 {
                return None;
            }
            let g = Grid::<u64, 1>::create(ctx, "v", [LEAVES]);
            Some(pfor(
                PforSpec {
                    name: "noop-tasks",
                    range: g.full_box(),
                    grain: 1,
                    ns_per_point: 100.0,
                    axis0_pieces: NODES as u64,
                },
                move |tile| vec![Requirement::write(g.id, BoxRegion::from_box(*tile))],
                move |tctx, p| {
                    g.set(tctx, p.0, 1);
                },
            ))
        },
    )
}

fn bench_trace_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_overhead");
    g.sample_size(10);
    g.bench_function("disabled", |b| {
        b.iter(|| run_tasks(None));
    });
    g.bench_function("enabled", |b| {
        b.iter(|| run_tasks(Some(TraceConfig::default())));
    });
    g.bench_function("enabled_export", |b| {
        b.iter(|| {
            let report = run_tasks(Some(TraceConfig::default()));
            report.trace.as_ref().unwrap().to_chrome_json().len()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);

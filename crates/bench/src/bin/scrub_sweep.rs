//! Scrub-cadence sweep (EXPERIMENTS.md entry I1): how often must the
//! background replica scrubber run to keep rotting replicas repaired,
//! and what does each cadence cost?
//!
//! The scenario is the integrity suite's rot harness scaled up: a
//! 64-cell item is broadcast-replicated from its owner to every other
//! locality, the fault plan's rot arm decays replica imports at a swept
//! probability, and work phases keep virtual time flowing while the
//! scrubber audits on its period. Swept: rot probability × scrub
//! cadence (off, 1 µs, 3 µs, 10 µs, 30 µs). Reported per cell: rot
//! events injected, scrub passes/audits, divergences found, repairs,
//! quarantines, and the run's virtual makespan (scrub fingerprint
//! requests and repair transfers are billed on the simulated network,
//! so cadence shows up as time).
//!
//! ```text
//! cargo run --release -p allscale-bench --bin scrub_sweep
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use allscale_core::{
    pfor, FaultPlan, Grid, IntegrityConfig, PforSpec, Requirement, RtConfig, RtCtx, RunReport,
    Runtime, TaskValue, WorkItem,
};
use allscale_des::SimDuration;
use allscale_region::BoxRegion;

const NODES: usize = 4;
const N: i64 = 64;
const WORK: i64 = 512;

type GridPair = Rc<RefCell<Option<(Grid<f64, 1>, Grid<f64, 1>)>>>;
const STEPS: usize = 8;

fn run(rot: f64, scrub_period: Option<SimDuration>) -> RunReport {
    let st: GridPair = Rc::new(RefCell::new(None));
    let s2 = st.clone();
    let mut cfg = RtConfig::test(NODES, 2);
    cfg.faults = Some(FaultPlan::new(0x5c2b).with_rot(rot));
    cfg = cfg.with_integrity(IntegrityConfig {
        scrub_period,
        ..IntegrityConfig::default()
    });

    fn work_phase(w: Grid<f64, 1>) -> Box<dyn WorkItem> {
        pfor(
            PforSpec {
                name: "work",
                range: w.full_box(),
                grain: 32,
                ns_per_point: 60.0,
                axis0_pieces: 4,
            },
            move |tile| vec![Requirement::write(w.id, BoxRegion::from_box(*tile))],
            move |tctx, p| w.set(tctx, p.0, 1.0),
        )
    }

    Runtime::new(cfg).run(
        move |phase: usize, ctx: &mut RtCtx<'_>, _prev: TaskValue| -> Option<Box<dyn WorkItem>> {
            if phase == 0 {
                let g = Grid::<f64, 1>::create(ctx, "shared", [N]);
                let w = Grid::<f64, 1>::create(ctx, "work", [WORK]);
                *s2.borrow_mut() = Some((g, w));
                return Some(pfor(
                    PforSpec {
                        name: "init",
                        range: g.full_box(),
                        grain: 64,
                        ns_per_point: 4.0,
                        axis0_pieces: 0,
                    },
                    move |tile| vec![Requirement::write(g.id, BoxRegion::from_box(*tile))],
                    move |tctx, p| g.set(tctx, p.0, p[0] as f64),
                ));
            }
            if phase == 1 {
                let (g, w) = s2.borrow().unwrap();
                let owner = (0..ctx.nodes())
                    .find(|&l| !ctx.owned_region_at(l, g.id).is_empty_dyn())
                    .expect("grid owned somewhere");
                ctx.broadcast_replicate(g.id, owner, &g.full_region());
                return Some(work_phase(w));
            }
            if phase <= STEPS {
                return Some(work_phase(s2.borrow().unwrap().1));
            }
            None
        },
    )
}

fn main() {
    println!(
        "scrub-cadence sweep: {NODES} nodes, {N}-cell broadcast item, {STEPS} work phases\n"
    );
    println!(
        "{:>5}  {:>7}  {:>4}  {:>6}  {:>6}  {:>9}  {:>7}  {:>11}  {:>12}",
        "rot", "cadence", "rot#", "passes", "audits", "divergent", "repairs", "quarantines",
        "makespan",
    );
    for rot in [0.1, 0.5, 1.0] {
        for period_us in [None, Some(30u64), Some(10), Some(3), Some(1)] {
            let r = run(rot, period_us.map(SimDuration::from_micros));
            let g = &r.monitor.integrity;
            println!(
                "{:>5}  {:>7}  {:>4}  {:>6}  {:>6}  {:>9}  {:>7}  {:>11}  {:>9.1} us",
                format!("{:.0}%", rot * 100.0),
                period_us.map_or("off".into(), |us| format!("{us} us")),
                g.rot_injected,
                g.scrub_passes,
                g.replicas_scrubbed,
                g.scrub_divergent,
                g.scrub_repairs,
                g.quarantines,
                r.finish_time.as_secs_f64() * 1e6,
            );
        }
        println!();
    }
    println!(
        "reading guide: faster cadence buys earlier divergence detection and\n\
         more repairs before quarantine strikes accumulate; the makespan\n\
         column is the price of the extra billed fingerprint and repair\n\
         traffic. 'off' leaves every rotted replica divergent for the whole\n\
         run — the ablation baseline."
    );
}

//! Regenerates the paper's Figure 7: throughput scaling of the three
//! evaluation applications, AllScale vs. MPI vs. linear.
//!
//! ```text
//! cargo run --release -p allscale-bench --bin fig7            # all apps
//! cargo run --release -p allscale-bench --bin fig7 -- --app tpc
//! cargo run --release -p allscale-bench --bin fig7 -- --app tpc --batched
//! cargo run --release -p allscale-bench --bin fig7 -- --ablations
//! cargo run --release -p allscale-bench --bin fig7 -- --max-nodes 16
//! ```

use allscale_bench::{fmt_throughput, sweep_on, App, Sample, System, NODE_COUNTS};
use allscale_net::TopologyKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut apps = vec![App::Stencil, App::Ipic3d, App::Tpc];
    let mut extra_systems: Vec<System> = Vec::new();
    let mut max_nodes = 64usize;
    let mut topology = TopologyKind::FatTree;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--app" => {
                i += 1;
                let app = App::parse(&args[i]).unwrap_or_else(|| {
                    eprintln!("unknown app {:?} (stencil|ipic3d|tpc)", args[i]);
                    std::process::exit(2);
                });
                apps = vec![app];
            }
            "--batched" => extra_systems.push(System::AllScaleBatched),
            "--ablations" => {
                extra_systems.push(System::AllScaleCentralIndex);
                extra_systems.push(System::AllScaleRoundRobin);
                extra_systems.push(System::AllScaleBatched);
            }
            "--topology" => {
                i += 1;
                topology = match args[i].as_str() {
                    "fattree" => TopologyKind::FatTree,
                    "torus" => TopologyKind::Torus,
                    "single" => TopologyKind::Single,
                    other => {
                        eprintln!("unknown topology {other:?} (fattree|torus|single)");
                        std::process::exit(2);
                    }
                };
            }
            "--calib" => {
                allscale_bench::calib::print();
                return;
            }
            "--max-nodes" => {
                i += 1;
                max_nodes = args[i].parse().expect("numeric --max-nodes");
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let nodes: Vec<usize> = NODE_COUNTS
        .iter()
        .copied()
        .filter(|&n| n <= max_nodes)
        .collect();

    println!("# Figure 7 reproduction — throughput scaling (simulated Meggie cluster)");
    println!("# shapes to compare with the paper: stencil & iPiC3D: AllScale ≈ MPI,");
    println!("# near-linear; TPC: MPI scales, AllScale saturates beyond ~8 nodes.");
    for app in apps {
        println!();
        println!("## {:?} [{}]", app, app.unit());
        let mut systems = vec![System::AllScale, System::Mpi];
        for &s in &extra_systems {
            // The batched variant only differs for TPC.
            if s == System::AllScaleBatched && app != App::Tpc {
                continue;
            }
            systems.push(s);
        }
        let sweeps: Vec<(System, Vec<Sample>)> = systems
            .iter()
            .map(|&s| (s, sweep_on(app, s, &nodes, topology)))
            .collect();
        // Linear reference anchored at the 1-node AllScale throughput.
        let base = sweeps[0].1[0].throughput;

        print!("{:>8}", "nodes");
        for (s, _) in &sweeps {
            print!(" {:>21}", s.label());
        }
        println!(" {:>12}", "linear");
        for (row, &n) in nodes.iter().enumerate() {
            print!("{n:>8}");
            for (_, samples) in &sweeps {
                print!(" {:>21}", fmt_throughput(samples[row].throughput));
            }
            println!(" {:>12}", fmt_throughput(base * n as f64));
        }
        // CSV block for plotting.
        println!("csv,app,nodes,{}", {
            let mut names: Vec<&str> = sweeps.iter().map(|(s, _)| s.label()).collect();
            names.push("linear");
            names.join(",")
        });
        for (row, &n) in nodes.iter().enumerate() {
            print!("csv,{app:?},{n}");
            for (_, samples) in &sweeps {
                print!(",{:.3e}", samples[row].throughput);
            }
            println!(",{:.3e}", base * n as f64);
        }
    }
}

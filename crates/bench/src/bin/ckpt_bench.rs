//! The recovery-time/overhead frontier of the checkpoint pipeline
//! (EXPERIMENTS.md entry C1): sweep mode × incrementality × cadence on
//! the stencil, recording per point the makespan overhead against an
//! uncheckpointed baseline and the cost of recovering from a fail-stop
//! kill at 55% of the run — the per-PR perf-tracking artifact.
//!
//! Emits `BENCH_ckpt.json` (path overridable as the first argument):
//! a JSON array with one object per swept point.
//!
//! ```text
//! cargo run --release -p allscale-bench --bin ckpt_bench [out.json]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use allscale_apps::stencil::{allscale_version, StencilConfig};
use allscale_core::{CheckpointConfig, CkptMode, FaultPlan, ResilienceConfig, RtConfig};
use allscale_des::{SimDuration, SimTime};

fn stencil() -> StencilConfig {
    StencilConfig {
        steps: 6,
        work_scale: 150.0,
        ..StencilConfig::small(4)
    }
}

fn rt_with(ckpt: CheckpointConfig, every: usize, hb: Option<u64>) -> RtConfig {
    let mut rt = RtConfig::test(4, 2);
    let mut res = ResilienceConfig {
        checkpoint_every: every,
        ckpt,
        ..ResilienceConfig::default()
    };
    if let Some(ns) = hb {
        res.heartbeat_period = SimDuration::from_nanos(ns);
    }
    rt.resilience = Some(res);
    rt
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_ckpt.json".to_string());
    let cfg = stencil();
    let (base_res, base) = allscale_version::run_with_report(&cfg, RtConfig::test(4, 2));
    assert!(base_res.validated);
    let base_ns = base.finish_time.as_nanos();

    let mut rows = Vec::new();
    for (mode, incremental, label) in [
        (CkptMode::Sync, false, "sync-full"),
        (CkptMode::Sync, true, "sync-inc"),
        (CkptMode::Async, false, "async-full"),
        (CkptMode::Async, true, "async-inc"),
    ] {
        for every in [1usize, 2, 4] {
            let ckpt = CheckpointConfig {
                mode,
                incremental,
                ..CheckpointConfig::default()
            };
            let started = Instant::now();
            let (res, report) = allscale_version::run_with_report(&cfg, rt_with(ckpt, every, None));
            assert!(res.validated, "{label}/{every} perturbed the result");
            let total = report.finish_time.as_nanos();
            let overhead = total.saturating_sub(base_ns);

            // Recovery axis: kill a locality at 55% of this arm's clean
            // run and measure what the recovery costs.
            let mut plan = FaultPlan::new(0xc1);
            plan.kill_at(2, SimTime::from_nanos(total * 55 / 100));
            let mut rt = rt_with(ckpt, every, Some((total / 100).max(1_000)));
            rt.faults = Some(plan);
            let (rres, rreport) = allscale_version::run_with_report(&cfg, rt);
            assert_eq!(rres.checksum, res.checksum, "{label}/{every} recovery diverged");
            let rr = &rreport.monitor.resilience;
            assert!(rr.recoveries >= 1);
            let host_ms = started.elapsed().as_secs_f64() * 1e3;

            let r = &report.monitor.resilience;
            println!(
                "{label:<10} every {every}: overhead {overhead:>8} ns ({:>5.2}%), \
                 stored {:>7} B, recovery {:>8} ns reexec + {:>7} ns reads",
                overhead as f64 / base_ns as f64 * 100.0,
                r.checkpoint_bytes,
                rreport.finish_time.as_nanos().saturating_sub(total),
                rr.recovery_read_ns,
            );
            let mut row = String::new();
            let _ = write!(
                row,
                "{{\"pipeline\":\"{label}\",\"cadence\":{every},\"baseline_ns\":{base_ns},\
                 \"makespan_ns\":{total},\"overhead_ns\":{overhead},\
                 \"stored_bytes\":{},\"logical_bytes\":{},\"anchors\":{},\"deltas\":{},\
                 \"stall_ns\":{},\"fence_ns\":{},\"scan_ns\":{},\
                 \"recovery_makespan_ns\":{},\"recovery_read_ns\":{},\
                 \"restored_bytes\":{},\"tasks_reexecuted\":{},\"torn\":{},\
                 \"host_ms\":{host_ms:.1}}}",
                r.checkpoint_bytes,
                r.ckpt_logical_bytes,
                r.ckpt_anchors,
                r.ckpt_deltas,
                r.ckpt_stall_ns,
                r.ckpt_fence_ns,
                r.ckpt_fp_ns,
                rreport.finish_time.as_nanos(),
                rr.recovery_read_ns,
                rr.restored_bytes,
                rr.tasks_reexecuted,
                rr.ckpt_torn,
            );
            rows.push(row);
        }
    }
    let json = format!("[\n  {}\n]\n", rows.join(",\n  "));
    std::fs::write(&out_path, &json).expect("write BENCH_ckpt.json");
    println!("\nwrote {} points to {out_path}", rows.len());
}

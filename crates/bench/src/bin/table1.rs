//! Regenerates the paper's Table 1: the list of target application codes
//! with their data structures, (scaled) problem sizes, and metrics, plus
//! the actual instantiation used by this reproduction's `fig7` harness.

use allscale_apps::{ipic3d::PicConfig, stencil::StencilConfig, tpc::TpcConfig};

fn main() {
    println!("# Table 1 reproduction — list of target application codes");
    println!();
    println!(
        "{:<8} | {:<34} | {:<28} | {:<44} | Metric",
        "Name", "Description", "Data Structure", "Problem Size (paper -> this repro)"
    );
    println!("{}", "-".repeat(150));

    let s = StencilConfig::paper_scaled(64);
    println!(
        "{:<8} | {:<34} | {:<28} | {:<44} | FLOPS",
        "stencil",
        "2D stencil kernel (PRK)",
        "regular 2D grid",
        format!(
            "20,000^2 elems/node -> {} x {} total at 64 nodes",
            s.total_rows(),
            s.cols
        )
    );
    let p = PicConfig::paper_scaled(64);
    println!(
        "{:<8} | {:<34} | {:<28} | {:<44} | particle updates per second",
        "iPiC3D",
        "particle-in-cell simulator",
        "multiple regular 3D grids",
        format!(
            "48e6 particles/node -> {} particles/node",
            p.total_particles() / 64
        )
    );
    let t = TpcConfig::paper_scaled(64);
    println!(
        "{:<8} | {:<34} | {:<28} | {:<44} | queries per second",
        "TPC",
        "two-point-correlation search",
        "kd-tree",
        format!(
            "2^29 points, r=20 -> 2^{} points, r={}",
            t.levels, t.radius
        )
    );
    println!();
    println!("# every version validated against a sequential oracle in `cargo test -p allscale-apps`");
}

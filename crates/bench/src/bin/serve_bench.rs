//! Serving-throughput trajectory (EXPERIMENTS.md entry SV1): sweep the
//! offered load of the sharded key-value workload and record, per point,
//! the achieved request rate, the latency percentiles and the host time
//! the simulation took — the per-PR perf-tracking artifact.
//!
//! Emits `BENCH_serve.json` (path overridable as the first argument):
//! a JSON array with one object per swept rate.
//!
//! ```text
//! cargo run --release -p allscale-bench --bin serve_bench [out.json]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use allscale_apps::serve::{run_with, ServeAppConfig};
use allscale_core::{RtConfig, SloConfig};

const RATES: [f64; 5] = [100_000.0, 200_000.0, 400_000.0, 800_000.0, 1_200_000.0];
const REQUESTS: u64 = 10_000;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let mut rows = Vec::new();
    for (static_placement, label) in [(true, "static"), (false, "slo")] {
        for rate in RATES {
            let mut cfg = ServeAppConfig {
                rate_rps: rate,
                requests: REQUESTS,
                ..Default::default()
            };
            if static_placement {
                cfg.slo = SloConfig::default().observe_only();
            }
            let started = Instant::now();
            let out = run_with(&cfg, RtConfig::test(4, 2));
            let host_ms = started.elapsed().as_secs_f64() * 1e3;
            let v = &out.report.monitor.serve;
            println!(
                "{label:7} offered {rate:>10.0} req/s -> achieved {:>10.0} req/s, p99 {:>9.1} us, host {host_ms:>8.1} ms",
                v.completed_rps(),
                v.latency.p99() as f64 / 1_000.0,
            );
            let mut row = String::new();
            let _ = write!(
                row,
                "{{\"placement\":\"{label}\",\"offered_rps\":{rate},\"achieved_rps\":{:.1},\
                 \"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"completed\":{},\"shed\":{},\
                 \"replications\":{},\"virtual_ms\":{:.3},\"host_ms\":{host_ms:.1}}}",
                v.completed_rps(),
                v.latency.p50(),
                v.latency.p90(),
                v.latency.p99(),
                v.completed,
                v.shed,
                v.replications,
                v.serve_ns as f64 / 1e6,
            );
            rows.push(row);
        }
    }
    let json = format!("[\n  {}\n]\n", rows.join(",\n  "));
    std::fs::write(&out_path, &json).expect("write BENCH_serve.json");
    println!("\nwrote {} points to {out_path}", rows.len());
}

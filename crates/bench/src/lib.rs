//! # allscale-bench — the experiment harness
//!
//! Regenerates the paper's evaluation artifacts on the simulated cluster:
//!
//! - `table1`: the application inventory (paper Table 1);
//! - `fig7`: throughput scaling of stencil / iPiC3D / TPC, AllScale vs.
//!   MPI vs. linear, over 1-64 nodes (paper Fig. 7), plus the A1-A3
//!   ablations from DESIGN.md.
//!
//! Criterion microbenches for the runtime's building blocks live under
//! `benches/`.

#![warn(missing_docs)]

pub mod calib;

use allscale_apps::{ipic3d, stencil, tpc};
use allscale_core::RtConfig;
use allscale_net::TopologyKind;

/// Which application to sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum App {
    /// 2D stencil (GFLOPS).
    Stencil,
    /// Particle-in-cell (particle updates/s).
    Ipic3d,
    /// Two-point correlation (queries/s).
    Tpc,
}

impl App {
    /// Parse from a CLI string.
    pub fn parse(s: &str) -> Option<App> {
        match s {
            "stencil" => Some(App::Stencil),
            "ipic3d" => Some(App::Ipic3d),
            "tpc" => Some(App::Tpc),
            _ => None,
        }
    }

    /// The metric's unit label.
    pub fn unit(&self) -> &'static str {
        match self {
            App::Stencil => "GFLOPS",
            App::Ipic3d => "particles/s",
            App::Tpc => "queries/s",
        }
    }
}

/// Which system runs the workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// The AllScale runtime (this repository's core contribution).
    AllScale,
    /// The MPI reference port.
    Mpi,
    /// AllScale with batched TPC queries (ablation A3).
    AllScaleBatched,
    /// AllScale with the central-directory index (ablation A1).
    AllScaleCentralIndex,
    /// AllScale with round-robin placement (ablation A2).
    AllScaleRoundRobin,
}

impl System {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            System::AllScale => "AllScale",
            System::Mpi => "MPI",
            System::AllScaleBatched => "AllScale(batched)",
            System::AllScaleCentralIndex => "AllScale(central-idx)",
            System::AllScaleRoundRobin => "AllScale(round-robin)",
        }
    }
}

/// One measurement: throughput in the app's metric at a node count.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Node count.
    pub nodes: usize,
    /// Throughput in the app's unit.
    pub throughput: f64,
    /// Remote messages during the run.
    pub remote_msgs: u64,
    /// Remote bytes during the run.
    pub remote_bytes: u64,
}

fn rt_config(system: System, nodes: usize, topology: TopologyKind) -> RtConfig {
    let mut cfg = RtConfig::meggie(nodes);
    cfg.spec.topology = topology;
    match system {
        System::AllScaleCentralIndex => cfg.central_index = true,
        System::AllScaleRoundRobin => {
            cfg.policy = Box::new(allscale_core::RoundRobinPolicy::default())
        }
        _ => {}
    }
    cfg
}

/// Run one (app, system, nodes) cell of the sweep at paper-scaled size.
pub fn measure(app: App, system: System, nodes: usize) -> Sample {
    measure_on(app, system, nodes, TopologyKind::FatTree)
}

/// Like [`measure`], on a chosen interconnect topology (ablation A4).
pub fn measure_on(app: App, system: System, nodes: usize, topology: TopologyKind) -> Sample {
    match app {
        App::Stencil => {
            let cfg = stencil::StencilConfig::paper_scaled(nodes);
            let r = match system {
                System::Mpi => {
                    let mut spec = allscale_net::ClusterSpec::meggie(nodes);
                    spec.topology = topology;
                    stencil::mpi_version::run_with(&cfg, &spec)
                }
                s => stencil::allscale_version::run_with(&cfg, rt_config(s, nodes, topology)),
            };
            Sample {
                nodes,
                throughput: r.gflops * 1e9, // report raw FLOPS; scaled later
                remote_msgs: r.remote_msgs,
                remote_bytes: r.remote_bytes,
            }
        }
        App::Ipic3d => {
            let cfg = ipic3d::PicConfig::paper_scaled(nodes);
            let r = match system {
                System::Mpi => {
                    let mut spec = allscale_net::ClusterSpec::meggie(nodes);
                    spec.topology = topology;
                    ipic3d::mpi_version::run_with(&cfg, &spec)
                }
                s => ipic3d::allscale_version::run_with(&cfg, rt_config(s, nodes, topology)),
            };
            Sample {
                nodes,
                throughput: r.updates_per_sec,
                remote_msgs: r.remote_msgs,
                remote_bytes: r.remote_bytes,
            }
        }
        App::Tpc => {
            let mut cfg = tpc::TpcConfig::paper_scaled(nodes);
            if system == System::AllScaleBatched {
                cfg.batch = 32;
            }
            let r = match system {
                System::Mpi => {
                    let mut spec = allscale_net::ClusterSpec::meggie(nodes);
                    spec.topology = topology;
                    tpc::mpi_version::run_with(&cfg, &spec)
                }
                s => tpc::allscale_version::run_with(&cfg, rt_config(s, nodes, topology)),
            };
            Sample {
                nodes,
                throughput: r.queries_per_sec,
                remote_msgs: r.remote_msgs,
                remote_bytes: r.remote_bytes,
            }
        }
    }
}

/// The node counts of the paper's Fig. 7.
pub const NODE_COUNTS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Run a full scaling sweep.
pub fn sweep(app: App, system: System, nodes: &[usize]) -> Vec<Sample> {
    sweep_on(app, system, nodes, TopologyKind::FatTree)
}

/// Run a full scaling sweep on a chosen topology.
pub fn sweep_on(
    app: App,
    system: System,
    nodes: &[usize],
    topology: TopologyKind,
) -> Vec<Sample> {
    nodes
        .iter()
        .map(|&n| measure_on(app, system, n, topology))
        .collect()
}

/// Format a throughput with engineering suffixes.
pub fn fmt_throughput(v: f64) -> String {
    if v >= 1e9 {
        format!("{:8.2}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:8.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:8.2}k", v / 1e3)
    } else {
        format!("{v:8.2} ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_parsing() {
        assert_eq!(App::parse("stencil"), Some(App::Stencil));
        assert_eq!(App::parse("tpc"), Some(App::Tpc));
        assert_eq!(App::parse("nope"), None);
    }

    #[test]
    fn throughput_formatting() {
        assert!(fmt_throughput(2.5e9).contains('G'));
        assert!(fmt_throughput(2.5e6).contains('M'));
        assert!(fmt_throughput(999.0).trim().starts_with("999"));
    }
}

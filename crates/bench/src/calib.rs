//! Calibration notes and sanity checks for the virtual-time cost model.
//!
//! The constants in [`allscale_core::CostModel`] and
//! [`allscale_net::NetParams`] are chosen so the simulated machine behaves
//! like the paper's testbed (RRZE Meggie: 2× Xeon E5-2630 v4 per node,
//! Intel OmniPath). This module derives the headline figures those
//! constants imply and asserts they stay in the right ranges — a tripwire
//! against accidental recalibration.

use allscale_core::CostModel;
use allscale_net::NetParams;

/// Derived machine characteristics implied by the cost model.
#[derive(Debug, Clone)]
pub struct DerivedFigures {
    /// Sustained GFLOPS per core on a memory-bound kernel.
    pub gflops_per_core: f64,
    /// Sustained GFLOPS of a full 20-core node.
    pub gflops_per_node: f64,
    /// End-to-end latency of a small message across the spine, µs.
    pub small_msg_latency_us: f64,
    /// Wire time of a 1 MiB transfer (one NIC crossing), µs.
    pub mib_transfer_us: f64,
    /// Tasks per second one core can dispatch (1/overhead).
    pub tasks_per_core_per_sec: f64,
}

/// Compute the derived figures from the default models.
pub fn derived() -> DerivedFigures {
    let cost = CostModel::default();
    let net = NetParams::default();
    let gflops_per_core = 1.0 / cost.ns_per_flop;
    DerivedFigures {
        gflops_per_core,
        gflops_per_node: gflops_per_core * 20.0,
        small_msg_latency_us: (net.base_latency_ns + 4 * net.per_hop_latency_ns) as f64 / 1e3,
        mib_transfer_us: (1 << 20) as f64 / net.bandwidth_bps * 1e6,
        tasks_per_core_per_sec: 1e9 / cost.task_overhead_ns as f64,
    }
}

/// Print the calibration table (used by `fig7 --calib` style inspection
/// and EXPERIMENTS.md).
pub fn print() {
    let d = derived();
    println!("# cost-model calibration (derived figures)");
    println!("  sustained GFLOPS/core : {:8.2}", d.gflops_per_core);
    println!("  sustained GFLOPS/node : {:8.2}", d.gflops_per_node);
    println!("  small-msg latency     : {:8.2} us", d.small_msg_latency_us);
    println!("  1 MiB NIC crossing    : {:8.2} us", d.mib_transfer_us);
    println!("  task dispatch rate    : {:8.0} /core/s", d.tasks_per_core_per_sec);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figures_stay_in_testbed_ranges() {
        let d = derived();
        // E5-2630 v4 class, memory-bound kernel: 2-4 GFLOPS/core.
        assert!(
            (2.0..4.0).contains(&d.gflops_per_core),
            "{}",
            d.gflops_per_core
        );
        // Node-level peak comparable to the paper's ~47 GFLOPS/node
        // observed at 64 nodes.
        assert!((40.0..80.0).contains(&d.gflops_per_node));
        // OmniPath MPI latency ~1-2 µs.
        assert!((0.8..2.0).contains(&d.small_msg_latency_us));
        // 100 Gbit/s → ~84 µs per MiB.
        assert!((70.0..100.0).contains(&d.mib_transfer_us));
        // HPX-class task overhead: 0.5-5 µs.
        assert!((2e5..2e6).contains(&d.tasks_per_core_per_sec));
    }

    #[test]
    fn stencil_per_step_budget_is_compute_dominated() {
        // At paper scale, a node's per-step compute budget must dwarf its
        // halo transfer time — the premise of the work-scale calibration
        // (EXPERIMENTS.md). 20,000² cells × 7 flops vs two 20,000-cell
        // halo rows of f64.
        let cost = CostModel::default();
        let net = NetParams::default();
        let compute_ns = 20_000.0 * 20_000.0 * 7.0 * cost.ns_per_flop / 20.0;
        let halo_bytes = 2.0 * 20_000.0 * 8.0;
        let halo_ns = halo_bytes / net.bandwidth_bps * 1e9 + net.base_latency_ns as f64;
        assert!(
            compute_ns > 100.0 * halo_ns,
            "compute {compute_ns} ns vs halo {halo_ns} ns"
        );
    }
}

//! Shared cluster configuration.
//!
//! Both the AllScale runtime and the MPI baseline are parameterized by a
//! [`ClusterSpec`] so that every comparison in the experiment harness runs
//! on an *identical* simulated machine — the analogue of the paper running
//! both versions on the same RRZE Meggie nodes.

use crate::network::NetParams;
use crate::topology::{AnyTopology, FatTree, SingleSwitch, Torus2D};

/// Which interconnect topology to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// Two-level fat-tree (the paper's OmniPath testbed). The associated
    /// value is the leaf-switch radix.
    FatTree,
    /// 2-D torus (network-sensitivity ablation).
    Torus,
    /// Single crossbar (tests).
    Single,
}

/// Description of the simulated machine.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Number of cluster nodes (each is one address space / process).
    pub nodes: usize,
    /// CPU cores per node. The paper's nodes carry 2× Xeon E5-2630 v4
    /// (10 cores each), hence the default of 20.
    pub cores_per_node: usize,
    /// Nodes per leaf switch of the fat-tree.
    pub leaf_radix: usize,
    /// Interconnect topology.
    pub topology: TopologyKind,
    /// Interconnect cost parameters.
    pub net: NetParams,
}

impl ClusterSpec {
    /// Instantiate the configured topology.
    pub fn build_topology(&self) -> AnyTopology {
        match self.topology {
            TopologyKind::FatTree => AnyTopology::FatTree(FatTree::new(self.nodes, self.leaf_radix)),
            TopologyKind::Torus => AnyTopology::Torus(Torus2D::square(self.nodes)),
            TopologyKind::Single => AnyTopology::Single(SingleSwitch::new(self.nodes)),
        }
    }
}

impl ClusterSpec {
    /// A Meggie-like cluster of `nodes` nodes (20 cores, OmniPath fat-tree).
    pub fn meggie(nodes: usize) -> Self {
        ClusterSpec {
            nodes,
            cores_per_node: 20,
            leaf_radix: 16,
            topology: TopologyKind::FatTree,
            net: NetParams::default(),
        }
    }

    /// A small test cluster: `nodes` nodes × `cores` cores, default network.
    pub fn test(nodes: usize, cores: usize) -> Self {
        ClusterSpec {
            nodes,
            cores_per_node: cores,
            leaf_radix: 16,
            topology: TopologyKind::FatTree,
            net: NetParams::default(),
        }
    }

    /// Total core count across the cluster.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.cores_per_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meggie_defaults() {
        let c = ClusterSpec::meggie(64);
        assert_eq!(c.nodes, 64);
        assert_eq!(c.cores_per_node, 20);
        assert_eq!(c.total_cores(), 1280);
    }
}
